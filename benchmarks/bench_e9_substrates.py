"""E9 — substrate validation benches.

Cross-checks Suurballe against the MILP min-sum and the flow-LP lower
bound against the exact optimum, and times the individual substrates on a
fixed mid-size instance.
"""

import numpy as np

from repro.eval.experiments import run_e9
from repro.flow import min_cost_k_flow, suurballe_k_paths
from repro.graph import anticorrelated_weights, gnp_digraph
from repro.lp import solve_flow_lp
from repro.paths import dijkstra, rsp_exact


def test_e9_substrates_table(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        run_e9, kwargs={"n_instances": 10}, rounds=1, iterations=1
    )
    record_table(
        "e9",
        "E9: substrate agreement with exact oracles",
        headers,
        rows,
    )
    for check, total, agreements, _gap in rows:
        assert agreements == total, f"substrate check failed: {check}"


def _fixed_instance():
    g = anticorrelated_weights(gnp_digraph(40, 0.15, rng=9100), rng=9101)
    return g


def test_e9_speed_dijkstra(benchmark):
    g = _fixed_instance()
    benchmark(dijkstra, g, 0)


def test_e9_speed_mincost_flow(benchmark):
    g = _fixed_instance()
    benchmark(min_cost_k_flow, g, 0, g.n - 1, 3)


def test_e9_speed_suurballe(benchmark):
    g = _fixed_instance()
    benchmark(suurballe_k_paths, g, 0, g.n - 1, 3)


def test_e9_speed_flow_lp(benchmark):
    g = _fixed_instance()
    benchmark(solve_flow_lp, g, 0, g.n - 1, 3, 200)


def test_e9_speed_rsp_exact(benchmark):
    g = _fixed_instance()
    benchmark(rsp_exact, g, 0, g.n - 1, 60)
