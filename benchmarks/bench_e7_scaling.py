"""E7 — runtime scaling of the full solver with instance size.

The pseudo-polynomial algorithm's wall clock grows with both the graph and
the weight magnitudes; this series tracks n (ER family, fixed density).
"""

from repro.eval.experiments import run_e7


def test_e7_scaling(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        run_e7,
        kwargs={"sizes": (8, 10, 12, 14), "n_instances": 3},
        rounds=1,
        iterations=1,
    )
    record_table(
        "e7",
        "E7: solver runtime vs n (ER anti-correlated family)",
        headers,
        rows,
    )
    assert rows
