"""E10 — laptop-scale stress: n up to 40, LP-bound normalization.

Beyond the MILP oracle's comfort zone; the reported beta upper bound must
still respect the proven guarantee (<= 2 modulo the LP integrality gap,
which only inflates the reported number)."""

from repro.eval.experiments import run_e10_stress


def test_e10_stress(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        run_e10_stress,
        kwargs={"sizes": (20, 30, 40), "n_instances": 3},
        rounds=1,
        iterations=1,
    )
    record_table(
        "e10",
        "E10: stress scale (beta vs flow-LP lower bound)",
        headers,
        rows,
    )
    assert rows
