"""E4 — head-to-head against the related-work baselines.

Who wins on cost while meeting the delay budget: this paper's bicameral
algorithm vs Guo'14 LP rounding (2,2), Orda–Sprintson-style single-
criterion cancellation, Suurballe min-sum, and greedy sequential RSP.

Expected shape (the paper's motivation): only the bicameral algorithm and
the [18]-style baseline always meet the budget among guarantee-carrying
methods; the bicameral one does so at lower cost; min-sum busts the budget;
greedy sometimes fails outright.
"""

from repro.eval.experiments import run_e4


def test_e4_baselines(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        run_e4, kwargs={"n_instances": 12}, rounds=1, iterations=1
    )
    record_table(
        "e4",
        "E4: baselines head-to-head (beta vs exact optimum)",
        headers,
        rows,
    )
    by_name = {r[0]: r for r in rows}
    ours = by_name.get("bicameral(this paper)")
    assert ours is not None
    # Ours always meets the budget and stays within the proven cost bound.
    assert ours[2] == 1.0  # feasible_frac
    assert ours[4] <= 2.0 + 1e-9  # beta_max
    # Min-sum is the cost anchor: nothing beats it on beta_mean.
    minsum = by_name.get("minsum")
    if minsum is not None:
        assert minsum[3] <= ours[3] + 1e-9
