"""E6 — Theorem 16/17: anatomy and cost of the bicameral finder.

Reports Bellman–Ford probe counts, LP solve counts, auxiliary-graph sizes,
and how often the type-0 short-circuit avoids the layered machinery
entirely. Also times one exhaustive candidate search.
"""

from repro.core import build_residual, find_bicameral_candidates
from repro.core.phase1 import phase1_minsum
from repro.core.instance import KRSPInstance
from repro.eval.experiments import run_e6
from repro.eval.workloads import er_anticorrelated


def test_e6_finder_anatomy(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        run_e6, kwargs={"n_instances": 6}, rounds=1, iterations=1
    )
    record_table(
        "e6",
        "E6: bicameral finder anatomy (probes / LPs / aux sizes)",
        headers,
        rows,
    )
    (searches, probes, lps, aux_nodes_mean, type0_rate, cand_mean) = rows[0]
    if searches:
        assert probes >= searches  # at least one BF probe per search
        assert cand_mean >= 1  # a delay-infeasible start always has cycles


def test_e6_exhaustive_search_speed(benchmark):
    """Time one full (no-early-exit) candidate sweep on a fixed instance."""
    insts = [
        i for i in er_anticorrelated(n=10, n_instances=8, seed=6100)
    ]
    chosen = None
    for inst in insts:
        problem = KRSPInstance(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
        start = phase1_minsum(problem).solution
        if start.delay > inst.delay_bound:
            chosen = (inst, start)
            break
    if chosen is None:
        import pytest

        pytest.skip("no delay-infeasible start in the workload sample")
    inst, start = chosen
    residual = build_residual(inst.graph, start.edge_ids)
    benchmark(find_bicameral_candidates, residual)
