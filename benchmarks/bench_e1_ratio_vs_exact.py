"""E1 — Lemma 11 / Lemma 3: measured bifactor against the MILP optimum.

The headline claim: delay <= D (alpha <= 1) and cost <= 2 * C_OPT
(beta <= 2) on every feasible instance, across three graph families.
"""

from repro.eval.experiments import run_e1


def test_e1_ratio_vs_exact(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        run_e1, kwargs={"n_instances": 6}, rounds=1, iterations=1
    )
    record_table(
        "e1",
        "E1: measured bifactor vs the (1, 2) bound (exact normalization)",
        headers,
        rows,
    )
    assert rows, "no feasible instances generated"
    for workload, solved, alpha_max, beta_mean, beta_max, iters_mean in rows:
        assert alpha_max <= 1.0 + 1e-9, f"{workload}: delay bound violated"
        assert beta_max <= 2.0 + 1e-9, f"{workload}: cost bound violated"
