"""F2 — Figure 2: the auxiliary-graph construction H_v^+(B).

Regenerates the worked example (path ``s-x-y-z-t`` reversed, B = 6) as a
table of per-anchor construction sizes and Lemma 15 cycle counts, and
times the construction itself.
"""

from repro.eval.experiments import figure2_instance, run_figure2
from repro.core import build_aux_paper, build_residual


def test_f2_auxgraph_table(benchmark, record_table):
    headers, rows = benchmark.pedantic(run_figure2, kwargs={"B": 6}, rounds=1, iterations=1)
    record_table(
        "f2",
        "F2 / Figure 2: H_v^+(6) over the s-x-y-z-t example",
        headers,
        rows,
    )
    g, ids, path = figure2_instance()
    for anchor, B, h_nodes, h_edges, wraps, _cycles in rows:
        assert h_nodes == g.n * (B + 1)  # Algorithm 2 step 1
        assert wraps == B  # Algorithm 2 step 3


def test_f2_construction_speed(benchmark):
    g, ids, path = figure2_instance()
    residual = build_residual(g, path)
    benchmark(build_aux_paper, residual.graph, ids["y"], 6, +1)
