"""F1 — Figure 1: the cost cap on bicameral cycles is essential.

Regenerates the figure's claim as a table over growing ``D``: the capped
bicameral algorithm stays within cost ``2 * C_OPT`` while the naive
delay-greedy canceller (no cap, no rate test) pays ``~ (D+1) * C_OPT``.
"""

from repro.eval.experiments import run_figure1


def test_f1_figure1_gadget(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        run_figure1,
        kwargs={"d_values": (4, 8, 16, 32), "c_opt": 10},
        rounds=1,
        iterations=1,
    )
    record_table(
        "f1",
        "F1 / Figure 1: capped vs naive cancellation on the gadget",
        headers,
        rows,
    )
    for D, opt, bic, bic_ratio, naive, naive_ratio in rows:
        assert bic_ratio <= 2.0 + 1e-9, "paper bound (1,2) violated"
        # The naive canceller's blow-up grows with D (the figure's point).
        assert naive_ratio >= 0.5 * (D + 1), "gadget failed to trap naive variant"
