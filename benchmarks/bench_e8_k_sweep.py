"""E8 — quality across k, with the k = 1 case cross-checked against the
exact single-RSP dynamic program."""

from repro.eval.experiments import run_e8


def test_e8_k_sweep(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        run_e8, kwargs={"k_values": (1, 2, 3), "n_instances": 4}, rounds=1, iterations=1
    )
    record_table(
        "e8",
        "E8: bifactor across k (k=1 cross-checked vs exact RSP DP)",
        headers,
        rows,
    )
    assert rows
    for k, solved, beta_mean, beta_max, agreement in rows:
        assert beta_max <= 2.0 + 1e-9
        if k == 1 and agreement != "n/a":
            done, total = agreement.split("/")
            assert done == total, "MILP and RSP DP disagreed on k=1 optima"
