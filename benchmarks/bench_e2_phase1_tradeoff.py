"""E2 — Lemma 5: the phase-1 (alpha, 2 - alpha) trade-off.

The LP-rounding phase-1 of [9] must satisfy
``delay/D + cost/C_LP <= 2`` at every budget tightness.
"""

from repro.eval.experiments import run_e2


def test_e2_phase1_tradeoff(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        run_e2, kwargs={"n_instances": 8}, rounds=1, iterations=1
    )
    record_table(
        "e2",
        "E2: Lemma 5 score (delay/D + cost/C_LP) across budget tightness",
        headers,
        rows,
    )
    assert rows
    for tightness, count, score_mean, score_max, alpha_mean in rows:
        assert score_max <= 2.0 + 1e-6, f"Lemma 5 violated at tightness {tightness}"
