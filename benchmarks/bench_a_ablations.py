"""A1/A2 — ablations of the design choices DESIGN.md section 5 calls out.

A1: phase-1 provider (paper's LP rounding vs Lagrangian vs min-sum) —
    same guarantees, different starting points; measures iterations saved.
A2: cycle-selection fallback — production ``type1_first`` vs the paper's
    literal Algorithm 3 step 3 rule; measures quality and failure rate.
"""

from repro.eval.experiments import run_a1_phase1_ablation, run_a2_selection_ablation


def test_a1_phase1_ablation(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        run_a1_phase1_ablation, kwargs={"n_instances": 8}, rounds=1, iterations=1
    )
    record_table(
        "a1",
        "A1: phase-1 provider ablation (same guarantee, different start)",
        headers,
        rows,
    )
    by_name = {r[0]: r for r in rows}
    assert set(by_name) == {"lp_rounding", "lagrangian", "minsum"}
    for name, row in by_name.items():
        assert row[3] <= 2.0 + 1e-9  # beta_max within the proven bound
    # LP rounding starts nearest to feasibility: never more iterations than
    # the delay-oblivious start on the same instances.
    assert by_name["lp_rounding"][4] <= by_name["minsum"][4] + 1e-9


def test_a2_selection_ablation(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        run_a2_selection_ablation, kwargs={"n_instances": 8}, rounds=1, iterations=1
    )
    record_table(
        "a2",
        "A2: selection-rule ablation (production vs paper step 3)",
        headers,
        rows,
    )
    by_rule = {r[0]: r for r in rows}
    # The production rule never fails on feasible instances.
    assert by_rule["type1_first"][2] == 0


def test_a3_finder_ablation(benchmark, record_table):
    from repro.eval.experiments import run_a3_finder_ablation

    headers, rows = benchmark.pedantic(
        run_a3_finder_ablation, kwargs={"n_instances": 6}, rounds=1, iterations=1
    )
    record_table(
        "a3",
        "A3: finder ablation (shifted single graph vs literal per-anchor)",
        headers,
        rows,
    )
    by_name = {r[0]: r for r in rows}
    if by_name["production"][1]:  # any searches happened
        # The consolidation must not cost more LP solves than the literal
        # per-anchor scheme.
        assert by_name["production"][2] <= by_name["paper_literal"][2]
