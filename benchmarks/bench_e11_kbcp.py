"""E11 — the kBCP adoption claim (paper Section 1.2).

"All approximations of kRSP can be adopted to solve kBCP": on feasible
instances the engine lands within (1, 2) of the two budgets; rejections
are certified."""

from repro.eval.experiments import run_e11_kbcp


def test_e11_kbcp(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        run_e11_kbcp, kwargs={"n_instances": 10}, rounds=1, iterations=1
    )
    record_table("e11", "E11: kBCP via the kRSP engine", headers, rows)
    feasible_row = rows[0]
    assert feasible_row[2] == feasible_row[1], "a feasible kBCP run broke its factor"
    assert feasible_row[4] <= 2.0 + 1e-9
