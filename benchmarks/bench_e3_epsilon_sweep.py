"""E3 — Theorem 4: the (1 + eps, 2 + eps) scaled variant.

Sweeps eps and reports measured alpha/beta (vs exact optimum) plus mean
runtime; 'exact' rows run the unscaled pseudo-polynomial algorithm.
"""

from repro.eval.experiments import run_e3


def test_e3_epsilon_sweep(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        run_e3, kwargs={"n_instances": 4}, rounds=1, iterations=1
    )
    record_table(
        "e3",
        "E3: Theorem 4 epsilon sweep (quality vs runtime)",
        headers,
        rows,
    )
    assert rows
    for eps, solved, alpha_max, beta_max, seconds_mean in rows:
        if eps == "exact":
            assert alpha_max <= 1.0 + 1e-9
            assert beta_max <= 2.0 + 1e-9
        else:
            assert alpha_max <= 1.0 + float(eps) + 1e-9
            assert beta_max <= 2.0 + float(eps) + 1e-9
