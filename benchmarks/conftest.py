"""Shared helpers for the benchmark suite.

Every benchmark wraps one experiment runner from
:mod:`repro.eval.experiments`, times it via pytest-benchmark, prints the
regenerated table (run with ``-s`` to see it live), and writes it under
``benchmarks/results/`` — those files are the source for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Return a callback that prints + persists an experiment's table."""

    def _record(name: str, title: str, headers, rows) -> str:
        from repro.eval.reporting import format_table

        out = format_table(headers, rows, title=title)
        print("\n" + out)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(out + "\n")
        return out

    return _record


@pytest.fixture
def counter_snapshots():
    """Run a callable under a telemetry session, returning its result plus
    the counter snapshot for that run.

    Benchmarks use this to cross-check an experiment's self-reported table
    against what the solver-work counters actually recorded (e.g. E5's
    iteration totals vs the ``cancellation.iterations`` counter) — and to
    persist the counters next to the table for later inspection.
    """

    def _run(fn, *args, **kwargs):
        from repro import obs

        with obs.session(label="benchmark") as tel:
            result = fn(*args, **kwargs)
        return result, dict(tel.counters)

    return _run
