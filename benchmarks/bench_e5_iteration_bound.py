"""E5 — Lemma 12 / Lemma 13: iteration behaviour of the cancellation loop.

Audits recorded traces for the Lemma 12 invariant (r non-decreasing under
the exact C_OPT) and compares measured iteration counts against the
pseudo-polynomial bound ``D * sum(c) * sum(d)`` — expected to be
astronomically loose (bound_ratio_max << 1).

The run executes inside a telemetry session (``counter_snapshots``), so the
experiment's self-reported iteration total is cross-checked against the
solver's own ``cancellation.iterations`` counter — the table and the
telemetry layer must tell the same Lemma-12 story.
"""

from repro.eval.experiments import run_e5


def test_e5_iteration_bound(benchmark, record_table, counter_snapshots):
    (headers, rows), counters = benchmark.pedantic(
        counter_snapshots,
        args=(run_e5,),
        kwargs={"n_instances": 8},
        rounds=1,
        iterations=1,
    )
    record_table(
        "e5",
        "E5: Lemma 12 audit + iterations vs the Lemma 13 bound",
        headers,
        rows,
    )
    (count, iters_total, iters_max, violations, bound_ratio_max) = rows[0]
    assert violations == 0, "Lemma 12 invariant violated on a recorded trace"
    assert bound_ratio_max < 0.01, "iterations approached the theoretical bound?!"
    # Lemma-12 audit from counters: every iteration the experiment counted
    # must have been recorded by the cancellation loop's own counter.
    assert counters.get("cancellation.iterations", 0) == iters_total
    assert counters.get("residual.rebuilds", 0) >= count
