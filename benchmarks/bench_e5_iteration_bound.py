"""E5 — Lemma 12 / Lemma 13: iteration behaviour of the cancellation loop.

Audits recorded traces for the Lemma 12 invariant (r non-decreasing under
the exact C_OPT) and compares measured iteration counts against the
pseudo-polynomial bound ``D * sum(c) * sum(d)`` — expected to be
astronomically loose (bound_ratio_max << 1).
"""

from repro.eval.experiments import run_e5


def test_e5_iteration_bound(benchmark, record_table):
    headers, rows = benchmark.pedantic(
        run_e5, kwargs={"n_instances": 8}, rounds=1, iterations=1
    )
    record_table(
        "e5",
        "E5: Lemma 12 audit + iterations vs the Lemma 13 bound",
        headers,
        rows,
    )
    (count, iters_total, iters_max, violations, bound_ratio_max) = rows[0]
    assert violations == 0, "Lemma 12 invariant violated on a recorded trace"
    assert bound_ratio_max < 0.01, "iterations approached the theoretical bound?!"
