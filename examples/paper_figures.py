#!/usr/bin/env python
"""Regenerate the paper's two figures as tables, straight from the library.

Figure 1: the adversarial gadget showing why bicameral cycles need the
cost cap — the naive delay-greedy canceller pays ~(D+1) x optimal, the
bicameral algorithm stays optimal.

Figure 2: the auxiliary-graph construction H_v^+(B) over the worked
example (path s-x-y-z-t reversed, B = 6).

Run:  python examples/paper_figures.py
(The benchmark suite regenerates the same tables with assertions; this
script is the interactive version.)
"""

from repro.eval.experiments import run_figure1, run_figure2
from repro.eval.reporting import format_table


def main() -> None:
    headers, rows = run_figure1(d_values=(4, 8, 16), c_opt=10)
    print(format_table(
        headers, rows,
        title="Figure 1: capped bicameral vs naive delay-greedy cancellation",
    ))
    print()
    headers, rows = run_figure2(B=6)
    print(format_table(
        headers, rows,
        title="Figure 2: auxiliary graph H_v^+(6) over the s-x-y-z-t example",
    ))
    print(
        "\nSee EXPERIMENTS.md for the full validation suite and DESIGN.md "
        "for the reconstruction caveats."
    )


if __name__ == "__main__":
    main()
