#!/usr/bin/env python
"""Failure resilience: how k disjoint QoS paths survive link failures.

The introduction's other motivation: disjointness buys fault tolerance.
This example provisions k = 3 disjoint delay-budgeted paths on a grid
fabric, then knocks out random links and measures how often at least one
(or two) provisioned paths survive — versus provisioning a single path of
the same total budget.

Run:  python examples/resilient_backbone.py
"""

import numpy as np

from repro import solve_krsp
from repro.errors import InfeasibleInstanceError
from repro.eval import format_table, interesting_delay_bound
from repro.graph import anticorrelated_weights, grid_digraph


def survival_counts(paths, dead_edges: set[int]) -> int:
    """How many provisioned paths avoid every dead link."""
    return sum(1 for p in paths if not dead_edges.intersection(p))


def main() -> None:
    g, _, _ = grid_digraph(5, 6)
    g = anticorrelated_weights(g, total=25, rng=11)
    # Corners only touch 2 links, so k = 3 disjoint paths need interior
    # terminals (degree 4).
    s, t = 1 * 6 + 1, 3 * 6 + 4
    k = 3
    bound = interesting_delay_bound(g, s, t, k, tightness=0.5)
    if bound is None:
        raise SystemExit("degenerate seed")

    multi = solve_krsp(g, s, t, k, bound)
    try:
        single = solve_krsp(g, s, t, 1, bound // k)
        single_paths = single.paths
    except InfeasibleInstanceError:
        single_paths = []

    print(
        f"grid fabric {g.n} nodes / {g.m} links; k={k} disjoint paths, "
        f"total delay budget {bound}; provisioned cost {multi.cost}\n"
    )

    rng = np.random.default_rng(99)
    trials = 400
    rows = []
    for failures in (1, 2, 3, 5):
        any_alive = all_dead_single = at_least_two = 0
        for _ in range(trials):
            dead = set(int(e) for e in rng.choice(g.m, size=failures, replace=False))
            alive = survival_counts(multi.paths, dead)
            any_alive += int(alive >= 1)
            at_least_two += int(alive >= 2)
            if single_paths:
                all_dead_single += int(survival_counts(single_paths, dead) == 0)
        rows.append(
            [
                failures,
                f"{any_alive / trials:.1%}",
                f"{at_least_two / trials:.1%}",
                f"{1 - all_dead_single / trials:.1%}" if single_paths else "n/a",
            ]
        )

    print(format_table(
        [
            "random link failures",
            "k=3: >=1 path survives",
            "k=3: >=2 paths survive",
            "single path survives",
        ],
        rows,
        title=f"survival over {trials} random failure draws",
    ))

    # And when a provisioned link does die: online repair pins the
    # surviving tunnels and re-routes only the broken one.
    from repro.core import repair_solution

    victim = multi.paths[0][len(multi.paths[0]) // 2]
    repaired = repair_solution(
        g, s, t, k, bound, multi.paths, dead_edges=[victim]
    )
    print(
        f"\nlink {victim} failed: pinned {repaired.pinned} tunnels, "
        f"re-routed {repaired.rerouted}; cost {multi.cost} -> {repaired.cost}, "
        f"delay {multi.delay} -> {repaired.delay} (budget {bound})"
    )


if __name__ == "__main__":
    main()
