#!/usr/bin/env python
"""SDN multipath provisioning across an ISP-like topology.

The paper's introduction motivates kRSP with software-defined networking:
a controller with a global view provisions multiple disjoint QoS paths per
flow. This example plays that controller:

* topology: a ring of PoP cliques with a few long-haul chords
  (:func:`repro.graph.ring_of_cliques`) and euclidean-style weights;
* demand: 3 edge-disjoint tunnels between two PoPs, with an end-to-end
  total-latency budget;
* knobs: sweep the latency budget and watch the provisioned cost climb as
  the budget tightens — the cost/latency trade-off curve the controller
  would expose to an operator.

Run:  python examples/sdn_multipath.py
"""

import numpy as np

from repro import solve_krsp
from repro.errors import InfeasibleInstanceError
from repro.eval import format_table
from repro.flow import min_cost_k_flow
from repro.graph import ring_of_cliques, uniform_weights


def build_backbone(rng_seed: int = 42):
    """6 PoPs x 4 routers, ring + 4 chords.

    Intra-PoP hops are fast and cheap. Inter-PoP spans come in two service
    tiers — leased dark fiber (pricey, fast) and best-effort transit
    (cheap, slow) — which is what makes latency genuinely purchasable.
    """
    g, s, t = ring_of_cliques(6, 4, rng=rng_seed, chords=4)
    gen = np.random.default_rng(rng_seed + 1)
    intra = (g.tail // 4) == (g.head // 4)
    premium = gen.random(g.m) < 0.5
    delay = np.where(
        intra,
        gen.integers(1, 3, g.m),
        np.where(premium, gen.integers(3, 8, g.m), gen.integers(25, 50, g.m)),
    )
    cost = np.where(
        intra,
        gen.integers(1, 3, g.m),
        np.where(premium, gen.integers(30, 50, g.m), gen.integers(3, 10, g.m)),
    )
    return g.with_weights(cost.astype(np.int64), delay.astype(np.int64)), s, t


def main() -> None:
    g, s, t = build_backbone()
    k = 3
    print(f"backbone: n={g.n} routers, m={g.m} links; "
          f"provisioning {k} disjoint tunnels {s} -> {t}\n")

    # Anchor the sweep at the physical limits.
    fastest = min_cost_k_flow(g, s, t, k, weight=g.delay)
    cheapest = min_cost_k_flow(g, s, t, k, weight=g.cost)
    if fastest is None:
        raise SystemExit("backbone does not support 3 disjoint tunnels")
    d_min = fastest.weight
    d_max = int(g.delay[np.nonzero(cheapest.used)[0]].sum())
    print(f"latency range across trade-off: [{d_min}, {d_max}] "
          f"(total across {k} tunnels)\n")

    rows = []
    for frac in (1.0, 0.8, 0.6, 0.4, 0.2, 0.0):
        budget = int(d_min + frac * (d_max - d_min))
        try:
            sol = solve_krsp(g, s, t, k, budget)
            rows.append(
                [budget, sol.cost, sol.delay, sol.iterations,
                 f"{float(sol.cost_lower_bound):.0f}"]
            )
        except InfeasibleInstanceError:
            rows.append([budget, "-", "-", "-", "infeasible"])

    print(format_table(
        ["latency budget", "tunnel cost", "latency used", "iters", "LP bound"],
        rows,
        title="cost/latency trade-off (tighter budget -> pricier tunnels)",
    ))


if __name__ == "__main__":
    main()
