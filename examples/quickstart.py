#!/usr/bin/env python
"""Quickstart: solve one kRSP instance and inspect the result.

Builds a small random network with anti-correlated cost/delay (cheap links
are slow — the regime where the delay budget really bites), asks for k = 2
edge-disjoint s-t paths under a total delay budget, and prints the paths,
their totals, and the solver's certified lower bound.

Run:  python examples/quickstart.py
"""

from repro import solve_krsp
from repro.graph import anticorrelated_weights, gnp_digraph
from repro.lp import solve_krsp_milp


def main() -> None:
    # A 16-vertex random digraph; every edge gets cost + delay ~ 21.
    g = anticorrelated_weights(gnp_digraph(16, 0.3, rng=7), rng=8)
    s, t, k = 0, 15, 2

    # Pick a budget between "whatever the cheapest routes need" and the
    # minimum achievable — i.e. where the constraint matters.
    from repro.eval import interesting_delay_bound

    delay_bound = interesting_delay_bound(g, s, t, k, tightness=0.6)
    if delay_bound is None:
        raise SystemExit("seed produced a degenerate instance; change rng")

    print(f"instance: n={g.n} m={g.m} k={k} D={delay_bound}")

    sol = solve_krsp(g, s, t, k, delay_bound)
    print(f"\nsolved in {sol.iterations} cancellation iterations "
          f"(phase 1: {sol.provider})")
    print(f"total cost  = {sol.cost}")
    print(f"total delay = {sol.delay}  (budget {delay_bound}, "
          f"feasible={sol.delay_feasible})")
    print(f"certified lower bound on OPT cost: {float(sol.cost_lower_bound):.2f}")

    for i, path in enumerate(sol.paths, 1):
        hops = [int(g.tail[path[0]])] + [int(g.head[e]) for e in path]
        print(f"path {i}: vertices {hops}  cost={g.cost_of(path)} "
              f"delay={g.delay_of(path)}")

    # On an instance this small the exact optimum is cheap to compute —
    # compare (the paper guarantees cost <= 2 * OPT, delay <= D).
    exact = solve_krsp_milp(g, s, t, k, delay_bound)
    if exact is not None:
        print(f"\nexact optimum (MILP oracle): cost={exact.cost} "
              f"-> approximation ratio {sol.cost / exact.cost:.3f}")


if __name__ == "__main__":
    main()
