#!/usr/bin/env python
"""Video delivery with urgency-priority scheduling over k disjoint paths.

The paper justifies the *total*-delay (rather than per-path) budget with a
scheduling argument: compute k disjoint paths whose delay **sum** is
bounded, then "route urgent packages via paths of low delay whilst
deferrable ones via paths of high delay". This example acts that out:

1. solve kRSP on a Waxman (router-level) topology for k = 3 paths;
2. split a video stream into urgency classes (I-frames > P-frames >
   B-frames) and assign classes to paths by ascending delay;
3. report per-class latency and compare with (a) the delay-oblivious
   min-cost router and (b) single-path routing.

Run:  python examples/video_streaming.py
"""

from repro import solve_krsp
from repro.baselines import minsum_baseline
from repro.eval import format_table, interesting_delay_bound
from repro.graph import euclidean_weights, waxman_digraph


URGENCY_CLASSES = [
    ("I-frames (urgent)", 0.2),   # fraction of traffic
    ("P-frames", 0.3),
    ("B-frames (deferrable)", 0.5),
]


def assign_classes(g, paths):
    """Urgency classes onto paths by ascending delay (the paper's rule)."""
    ordered = sorted(paths, key=g.delay_of)
    return [
        (cls, frac, path, g.delay_of(path))
        for (cls, frac), path in zip(URGENCY_CLASSES, ordered)
    ]


def main() -> None:
    g, pos = waxman_digraph(24, alpha=0.7, beta=0.45, rng=2015)
    g = euclidean_weights(g, pos, delay_scale=40, cost_scale=40, rng=7)
    s, t, k = 0, 23, 3

    bound = interesting_delay_bound(g, s, t, k, tightness=0.65)
    if bound is None:
        raise SystemExit("degenerate seed; change rng")
    print(f"CDN edge {s} -> client ISP {t}: k={k} disjoint paths, "
          f"total delay budget {bound}\n")

    sol = solve_krsp(g, s, t, k, bound)
    rows = [
        [cls, f"{frac:.0%}", len(path), d]
        for cls, frac, path, d in assign_classes(g, sol.paths)
    ]
    print(format_table(
        ["traffic class", "share", "hops", "path delay"],
        rows,
        title=f"bicameral kRSP: cost={sol.cost}, total delay={sol.delay}",
    ))

    # Delay-oblivious routing: cheapest paths, whatever the latency.
    base = minsum_baseline(g, s, t, k, bound)
    rows = [
        [cls, f"{frac:.0%}", len(path), d]
        for cls, frac, path, d in assign_classes(g, base.paths)
    ]
    print()
    print(format_table(
        ["traffic class", "share", "hops", "path delay"],
        rows,
        title=(
            f"min-cost routing: cost={base.cost}, total delay={base.delay} "
            f"({'meets' if base.meets_delay_bound else 'BUSTS'} budget)"
        ),
    ))

    # Single-path comparison: all classes share one pipe.
    single_bound = bound // k
    try:
        single = solve_krsp(g, s, t, 1, single_bound)
        print(
            f"\nsingle-path RSP at budget {single_bound}: "
            f"cost={single.cost}, delay={single.delay} — no class isolation, "
            f"no failover."
        )
    except Exception as exc:
        print(f"\nsingle-path RSP at budget {single_bound}: {exc}")


if __name__ == "__main__":
    main()
