#!/usr/bin/env python
"""Coverage gate (PR 6): a floor for the online package, drift for the repo.

Runs the tier-1 suite under ``pytest-cov`` and enforces two checks:

* **Online floor** — aggregated line coverage of ``src/repro/online/``
  must be >= 90%. The online re-solving layer is guarantee-critical (every
  warm result carries the same registered bound as a cold solve), so its
  fallback and validation branches must stay exercised.
* **Repo drift** — total line coverage must not drop more than 2 points
  below the committed ``COVERAGE_BASELINE.json``. The baseline is
  self-priming: while its ``total_percent`` is null the drift check is
  skipped, and ``--update-baseline`` records the measured values.

``pytest-cov`` is a dev-extra dependency (``pip install -e .[dev]``);
without it the gate degrades to a no-op locally (exit 0 with a notice) so
offline environments keep working. CI installs the dev extra and passes
``--strict``, which turns the missing-tool degrade into a failure. The
XML report (``--xml``) is written for artifact upload either way.

Usage::

    python scripts/coverage_gate.py                    # local, best effort
    python scripts/coverage_gate.py --strict           # CI
    python scripts/coverage_gate.py --update-baseline
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro._util.atomicio import atomic_write_json  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "COVERAGE_BASELINE.json"
SCHEMA = "coverage-baseline/1"
ONLINE_FLOOR = 90.0
DRIFT_POINTS = 2.0
ONLINE_MARKER = "repro/online/"


def run_suite(json_report: Path, xml_report: Path) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable, "-m", "pytest", "-x", "-q",
            "--cov=repro",
            f"--cov-report=json:{json_report}",
            f"--cov-report=xml:{xml_report}",
        ],
        cwd=REPO_ROOT, env=env,
    )
    return proc.returncode


def online_percent(data: dict) -> float | None:
    """Aggregated line coverage over the online package's files."""
    covered = statements = 0
    for path, entry in data.get("files", {}).items():
        if ONLINE_MARKER in path.replace("\\", "/"):
            summary = entry.get("summary", {})
            covered += int(summary.get("covered_lines", 0))
            statements += int(summary.get("num_statements", 0))
    if statements == 0:
        return None
    return 100.0 * covered / statements


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--strict", action="store_true",
                    help="fail (instead of no-op) when pytest-cov is missing")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                    help="committed baseline JSON")
    ap.add_argument("--xml", type=Path, default=REPO_ROOT / "coverage.xml",
                    help="where to write the XML report (CI artifact)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="record the measured percentages as the new baseline")
    args = ap.parse_args(argv)

    if importlib.util.find_spec("pytest_cov") is None:
        msg = ("coverage gate: pytest-cov is not installed "
               "(pip install -e .[dev]); coverage not measured")
        if args.strict:
            print(msg, file=sys.stderr)
            return 1
        print(f"{msg} — skipping (non-strict mode)")
        return 0

    with tempfile.TemporaryDirectory(prefix="coverage_gate_") as tmp:
        json_report = Path(tmp) / "coverage.json"
        rc = run_suite(json_report, args.xml)
        if rc != 0:
            print(f"coverage gate: test suite failed (exit {rc})",
                  file=sys.stderr)
            return rc
        data = json.loads(json_report.read_text())

    total = float(data["totals"]["percent_covered"])
    online = online_percent(data)
    print(f"total coverage  {total:6.2f}%")
    print(f"online coverage {online:6.2f}% (floor {ONLINE_FLOOR}%)"
          if online is not None else
          "online coverage     n/a (no src/repro/online files measured)")

    failures = []
    if online is None:
        failures.append(
            "no coverage recorded for src/repro/online/ — the suite did "
            "not import the online package"
        )
    elif online < ONLINE_FLOOR:
        failures.append(
            f"src/repro/online/ coverage {online:.2f}% is below the "
            f"{ONLINE_FLOOR}% floor"
        )

    baseline = None
    if args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
    if not args.update_baseline and baseline is not None:
        base_total = baseline.get("total_percent")
        if base_total is None:
            print("baseline is unprimed (total_percent null) — drift "
                  "check skipped; run with --update-baseline to prime it")
        else:
            drift = total - float(base_total)
            print(f"drift vs baseline {drift:+.2f} points "
                  f"(allowed -{DRIFT_POINTS})")
            if drift < -DRIFT_POINTS:
                failures.append(
                    f"total coverage {total:.2f}% regressed "
                    f"{-drift:.2f} points vs baseline {base_total:.2f}% "
                    f"(allowed {DRIFT_POINTS})"
                )

    if args.update_baseline:
        atomic_write_json(
            args.baseline,
            {
                "schema": SCHEMA,
                "total_percent": round(total, 2),
                "online_percent": None if online is None else round(online, 2),
            },
            indent=2, sort_keys=True,
        )
        print(f"wrote {args.baseline}")

    if failures:
        print("\nCOVERAGE GATE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("coverage gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
