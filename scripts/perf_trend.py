#!/usr/bin/env python
"""Aggregate committed ``BENCH_*.json`` baselines into a markdown trend table.

The bench gate (:mod:`scripts.bench_gate`) writes one JSON report per
baseline family (``BENCH_PR4.json`` end-to-end kernels + speedup ratios,
``BENCH_PR6.json`` online resolve). This script folds every ``BENCH_*.json``
it finds — the committed baselines plus any ``--extra`` reports produced by
the current run — into a single markdown document: kernel medians side by
side, speedup ratios vs their floors, and the headline counters of the
online replay. CI uploads the result as the ``perf-trend`` artifact so a
reviewer can see where the numbers stand without replaying the gate.

Usage::

    PYTHONPATH=src python scripts/perf_trend.py                  # to stdout
    PYTHONPATH=src python scripts/perf_trend.py --out trend.md
    PYTHONPATH=src python scripts/perf_trend.py --extra ci_bench.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

KNOWN_SCHEMAS = ("bench-gate/1", "bench-online/1", "load-harness/1")


def _load_reports(paths: list[Path]) -> list[tuple[str, dict]]:
    reports = []
    for path in paths:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"perf_trend: skipping {path}: {exc}", file=sys.stderr)
            continue
        schema = data.get("schema")
        if schema not in KNOWN_SCHEMAS:
            print(f"perf_trend: skipping {path}: unknown schema {schema!r}",
                  file=sys.stderr)
            continue
        reports.append((path.name, data))
    return reports


def _fmt_ms(seconds: float | None) -> str:
    return f"{seconds * 1e3:.2f}" if seconds is not None else "—"


def _pivots_of(report: dict, kernel: str) -> int | None:
    """``lp.pivots`` for one kernel, from the PR 9 ``lp_engine`` section or
    (older reports) the kernel's raw counter snapshot."""
    pivots = report.get("lp_engine", {}).get("pivots", {})
    if kernel in pivots:
        return int(pivots[kernel])
    counters = report.get("kernels", {}).get(kernel, {}).get("counters", {})
    value = counters.get("lp.pivots")
    return int(value) if value is not None else None


def _pivot_backend(report: dict) -> str:
    """The LP backend a bench-gate report ran on (pre-PR9 reports: scipy)."""
    return report.get("lp_engine", {}).get("backend", "scipy")


def render_trend(reports: list[tuple[str, dict]]) -> str:
    """The full markdown document for a set of parsed reports."""
    gate = [(n, d) for n, d in reports if d.get("schema") == "bench-gate/1"]
    online = [(n, d) for n, d in reports if d.get("schema") == "bench-online/1"]
    load = [(n, d) for n, d in reports if d.get("schema") == "load-harness/1"]

    lines = ["# Performance trend", ""]
    lines.append(
        "Medians are wall-clock and only comparable within one machine; "
        "speedup ratios and counters are deterministic and comparable "
        "everywhere. `quick` reports come from CI hardware."
    )
    lines.append("")

    if gate:
        kernel_names = sorted({k for _, d in gate for k in d.get("kernels", {})})
        lines.append("## Kernel medians (ms)")
        lines.append("")
        header = ["kernel"] + [
            f"{name}{' (quick)' if d.get('quick') else ''}" for name, d in gate
        ]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for kernel in kernel_names:
            row = [f"`{kernel}`"]
            for _, d in gate:
                row.append(_fmt_ms(d["kernels"].get(kernel, {}).get("median_s")))
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")

        lines.append("## LP pivot trend (deterministic)")
        lines.append("")
        lines.append(
            "Simplex iterations per kernel (`lp.pivots`), comparable across "
            "machines and releases; drift is current-vs-oldest report. The "
            "active backend is shown per report — warm-started `highspy` "
            "runs should sit well below cold `scipy` counts "
            "(docs/PERFORMANCE.md \"LP engine & warm starts\")."
        )
        lines.append("")
        header = ["kernel"] + [
            f"{name} ({_pivot_backend(d)})" for name, d in gate
        ] + ["drift"]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for kernel in kernel_names:
            vals = [_pivots_of(d, kernel) for _, d in gate]
            row = [f"`{kernel}`"] + [
                str(v) if v is not None else "—" for v in vals
            ]
            known = [v for v in vals if v is not None]
            if len(known) >= 2 and known[0]:
                row.append(f"{(known[-1] / known[0] - 1.0):+.1%}")
            else:
                row.append("—")
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")

        speedup_names = sorted({k for _, d in gate for k in d.get("speedups", {})})
        if speedup_names:
            lines.append("## Speedup ratios (gated floors)")
            lines.append("")
            lines.append("| ratio | " + " | ".join(n for n, _ in gate) + " | floor |")
            lines.append("|" + "---|" * (len(gate) + 2))
            for name in speedup_names:
                row = [f"`{name}`"]
                floor = None
                for _, d in gate:
                    entry = d.get("speedups", {}).get(name)
                    row.append(f"{entry['ratio']:.2f}x" if entry else "—")
                    floor = entry.get("floor", floor) if entry else floor
                row.append(f"{floor}x" if floor is not None else "—")
                lines.append("| " + " | ".join(row) + " |")
            lines.append("")

    if online:
        lines.append("## Online resolve (warm vs cold replay)")
        lines.append("")
        lines.append(
            "| report | warm (ms) | cold (ms) | speedup | floor | steps | modes |"
        )
        lines.append("|" + "---|" * 7)
        for name, d in online:
            o = d.get("online", {})
            modes = ",".join(o.get("modes", [])) or "—"
            lines.append(
                f"| {name}{' (quick)' if d.get('quick') else ''} "
                f"| {_fmt_ms(o.get('warm_median_s'))} "
                f"| {_fmt_ms(o.get('cold_median_s'))} "
                f"| {o.get('ratio', '—')}x | {o.get('floor', '—')}x "
                f"| {o.get('steps', '—')} | `{modes}` |"
            )
        lines.append("")
        counters = {
            name: d.get("online", {}).get("counters") or {} for name, d in online
        }
        counter_names = sorted({c for cs in counters.values() for c in cs})
        if counter_names:
            lines.append("### Warm-replay counters (deterministic)")
            lines.append("")
            lines.append("| counter | " + " | ".join(counters) + " |")
            lines.append("|" + "---|" * (len(counters) + 1))
            for cname in counter_names:
                row = [f"`{cname}`"]
                row += [str(cs.get(cname, "—")) for cs in counters.values()]
                lines.append("| " + " | ".join(row) + " |")
            lines.append("")

    if load:
        lines.append("## Service load harness (scripts/load_harness.py)")
        lines.append("")
        lines.append(
            "| report / run | workers | offered rps | achieved rps "
            "| dropped | dedup hit-rate | p50 (ms) | p99 (ms) "
            "| deadline miss | verified |"
        )
        lines.append("|" + "---|" * 10)
        for name, d in load:
            for entry in d.get("runs", []):
                cfg = entry.get("config", {})
                m = entry.get("metrics", {})
                tag = " (quick)" if d.get("quick") else ""
                lines.append(
                    f"| {name}{tag} / {cfg.get('name', '—')} "
                    f"| {cfg.get('workers', '—')} "
                    f"| {m.get('offered_rate_rps', '—')} "
                    f"| {m.get('achieved_rate_rps', '—')} "
                    f"| {m.get('dropped', '—')} "
                    f"| {m.get('dedup_hit_rate', '—')} "
                    f"| {_fmt_ms(m.get('latency_p50_seconds'))} "
                    f"| {_fmt_ms(m.get('latency_p99_seconds'))} "
                    f"| {m.get('deadline_miss_fraction', '—')} "
                    f"| {m.get('verified_fraction', '—')} |"
                )
        lines.append("")

    if not gate and not online and not load:
        lines.append("_No bench reports found._")
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo", type=Path, default=REPO_ROOT,
        help="repository root to glob BENCH_*.json from",
    )
    parser.add_argument(
        "--extra", type=Path, action="append", default=[],
        help="additional bench report JSON (e.g. the current CI run's "
             "--out); repeatable",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the markdown here instead of stdout",
    )
    args = parser.parse_args(argv)

    paths = sorted(args.repo.glob("BENCH_*.json")) + list(args.extra)
    reports = _load_reports(paths)
    doc = render_trend(reports)
    if args.out:
        args.out.write_text(doc + "\n")
        print(f"wrote {args.out} ({len(reports)} reports)")
    else:
        print(doc)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
