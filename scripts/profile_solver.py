#!/usr/bin/env python
"""Profile the solver on a seeded workload — the guides' "no optimization
without measuring" entry point, rewired onto the telemetry layer.

    PYTHONPATH=src python scripts/profile_solver.py [--n 14] [--instances 5]
        [--eps 0.5] [--phase1 lp_rounding] [--top 15]
        [--trace out.jsonl] [--cprofile]

The whole run executes inside one :func:`repro.obs.session`, so the output
is the same report ``repro trace`` renders: phase-time breakdown over the
root spans, the hot-span *tree* (who spends the time, and under whom —
ratio-LP solves inside the bicameral sweep vs the flow LP inside the lower
bound), and the solver-work counters. That replaces the old raw cProfile
dump as the default view; pass ``--cprofile`` to additionally print the
classic top-functions table when you need line-level attribution, and
``--trace out.jsonl`` to keep the machine-readable trace for later
``repro trace`` / ``repro trace --json`` runs.
"""

from __future__ import annotations

import argparse

from repro import obs
from repro.core import solve_krsp
from repro.errors import ReproError
from repro.eval.workloads import er_anticorrelated
from repro.obs.report import Trace, render_report


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--n", type=int, default=14)
    parser.add_argument("--instances", type=int, default=5)
    parser.add_argument("--eps", type=float, default=None)
    parser.add_argument("--phase1", default="lp_rounding")
    parser.add_argument("--top", type=int, default=15,
                        help="rows in the hot-span tree")
    parser.add_argument("--trace", default=None, metavar="OUT.JSONL",
                        help="also write the telemetry trace here")
    parser.add_argument("--cprofile", action="store_true",
                        help="additionally print the cProfile top functions")
    args = parser.parse_args()

    instances = list(
        er_anticorrelated(n=args.n, n_instances=args.instances, seed=515, tightness=0.7)
    )
    if not instances:
        print("workload emitted no instances; change parameters")
        return 1

    profiler = None
    if args.cprofile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()

    solved = 0
    with obs.session(trace_path=args.trace, label="profile_solver") as tel:
        for inst in instances:
            try:
                solve_krsp(
                    inst.graph,
                    inst.s,
                    inst.t,
                    inst.k,
                    inst.delay_bound,
                    phase1=args.phase1,
                    eps=args.eps,
                )
            except ReproError:
                continue
            solved += 1

    if profiler is not None:
        profiler.disable()

    print(f"solved {solved}/{len(instances)} instances\n")
    print(render_report(Trace.from_session(tel), top=args.top))
    if args.trace:
        print(f"\ntrace written to {args.trace}")

    if profiler is not None:
        import io
        import pstats

        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(15)
        print(stream.getvalue())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
