#!/usr/bin/env python
"""Profile the solver on a seeded workload — the guides' "no optimization
without measuring" entry point.

    python scripts/profile_solver.py [--n 14] [--instances 5] [--eps 0.5]

Prints per-phase wall-clock (from the solver's own timers) plus the
cProfile top functions, so regressions in the LP layer vs the search layer
vs bookkeeping are immediately attributable.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats

from repro.core import solve_krsp
from repro.errors import ReproError
from repro.eval.workloads import er_anticorrelated


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--n", type=int, default=14)
    parser.add_argument("--instances", type=int, default=5)
    parser.add_argument("--eps", type=float, default=None)
    parser.add_argument("--phase1", default="lp_rounding")
    parser.add_argument("--top", type=int, default=15)
    args = parser.parse_args()

    instances = list(
        er_anticorrelated(n=args.n, n_instances=args.instances, seed=515, tightness=0.7)
    )
    if not instances:
        print("workload emitted no instances; change parameters")
        return 1

    phase_totals: dict[str, float] = {}
    profiler = cProfile.Profile()
    solved = 0
    profiler.enable()
    for inst in instances:
        try:
            sol = solve_krsp(
                inst.graph,
                inst.s,
                inst.t,
                inst.k,
                inst.delay_bound,
                phase1=args.phase1,
                eps=args.eps,
            )
        except ReproError:
            continue
        solved += 1
        for name, secs in sol.timings.items():
            phase_totals[name] = phase_totals.get(name, 0.0) + secs
    profiler.disable()

    print(f"solved {solved}/{len(instances)} instances\n")
    print("solver-phase wall clock (s):")
    for name, secs in sorted(phase_totals.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<14} {secs:8.3f}")
    print()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(args.top)
    print(stream.getvalue())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
