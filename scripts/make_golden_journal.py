#!/usr/bin/env python
"""Regenerate the pinned golden journal fixture.

Writes ``tests/corpus/golden_v1.journal`` (a complete checkpointed solve
of the 3-iteration chaos instance) and ``tests/corpus/golden_v1.expect``
(the expected solution, plain JSON). Run this ONLY when
``JOURNAL_FORMAT_VERSION`` is bumped; the point of the fixture is that a
journal written by an old build keeps resuming on every future build of
the same format version (tests/test_crash_resume.py replays it in CI).
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro._util.atomicio import atomic_write_json  # noqa: E402
from repro.graph.generators import gnp_digraph  # noqa: E402
from repro.graph.weights import anticorrelated_weights  # noqa: E402
from repro.robustness import JOURNAL_FORMAT_VERSION, solve_checkpointed  # noqa: E402


def main() -> int:
    rng = np.random.default_rng(21)
    g = gnp_digraph(16, 0.30, rng=rng)
    g = anticorrelated_weights(g, total=37, noise=3, rng=rng)

    out = REPO_ROOT / "tests" / "corpus" / f"golden_v{JOURNAL_FORMAT_VERSION}.journal"
    sol = solve_checkpointed(
        g, 0, 15, 3, 231, journal_path=out, checkpoint_every=2, phase1="minsum",
    )
    atomic_write_json(
        out.parent / f"golden_v{JOURNAL_FORMAT_VERSION}.expect",
        {
            "cost": sol.cost,
            "delay": sol.delay,
            "iterations": sol.iterations,
            "paths": [list(map(int, p)) for p in sol.paths],
        },
        indent=1, sort_keys=True,
    )
    print(f"wrote {out} ({out.stat().st_size} bytes, "
          f"{sol.iterations} iterations, cost={sol.cost} delay={sol.delay})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
