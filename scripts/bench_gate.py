#!/usr/bin/env python
"""Performance gate over pinned solver kernels (PR 4, extended PR 9).

Runs a fixed set of kernels drawn from the benchmark suite's experiment
areas (E5 cancellation, E6 bicameral finder, E7 full solver, E10 stress
scale, F2 auxiliary-graph construction), records median wall-clock plus the
deterministic telemetry-counter snapshot of each, and enforces two gates:

* **Regression gate** — any pinned kernel more than ``--tolerance`` (15%
  default) slower than the committed ``BENCH_PR9.json`` baseline fails the
  run. Skipped under ``--quick`` (CI hardware is not the baseline's).
  Failures carry a counter-drift attribution block (via
  :mod:`repro.obs.diff`): the kernels are deterministic, so moved counters
  name the behavioural cause, while identical counters point at the
  machine.
* **Speedup gate** — the incremental search engine (:mod:`repro.perf`)
  must beat the from-scratch path on the search-layer kernels by the pinned
  floors: >= 2x on the E6-scale residual+aux layer, >= 1.5x at E10 stress
  scale. These are *ratios* measured on the same machine in the same
  process, so they hold on any hardware and run under ``--quick`` too.
* **Online resolve gate (PR 6)** — warm re-solving a pinned E10-scale
  churn trace through :func:`repro.online.resolve` must beat from-scratch
  ``solve_krsp`` replays of the same instance sequence by >= 2x (median,
  ratio-gated, runs under ``--quick``). The warm replay's median is also
  regression-gated against the committed ``BENCH_PR6.json`` in full mode.

The search-layer speedup deliberately excludes the HiGHS LP solves: LP time
dominates end-to-end runs, so gating the ratio there would measure the LP
solver, not the incremental engine. The LP solver itself is gated
separately (PR 9):

* **LP engine gate (PR 9)** — the warm-started LP engine
  (:mod:`repro.lp.engine`) is held to deterministic ``lp.pivots`` ceilings
  per backend on the E5 cancellation kernel (enforced in every mode,
  including ``--quick`` — counters don't depend on hardware), and, when
  highspy is installed, to end-to-end backend speedup floors: the same
  E5/E10 kernels run under the warm highspy backend must beat their scipy
  runs by >= 2x (ratio-gated, same machine/process). Without highspy the
  backend ratios are reported as skipped and only the scipy pivot ceiling
  applies.

Usage::

    PYTHONPATH=src python scripts/bench_gate.py              # full gate
    PYTHONPATH=src python scripts/bench_gate.py --quick      # CI mode
    PYTHONPATH=src python scripts/bench_gate.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro._util.atomicio import atomic_write_json  # noqa: E402
from repro.obs.diff import format_drift_block, rank_counter_drift  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_PR9.json"
ONLINE_OUT = REPO_ROOT / "BENCH_PR6.json"
SCHEMA = "bench-gate/1"
ONLINE_SCHEMA = "bench-online/1"

# Search-layer speedup floors (ISSUE acceptance criteria). The online
# resolve floor is the PR 6 acceptance bar: warm re-solving a pinned
# E10-scale churn trace must beat from-scratch solving by >= 2x. The
# lp_backend floors are the PR 9 bar: the warm-started highspy backend
# must beat the scipy fallback end-to-end on the E5/E10 kernels by >= 2x
# (measured only when highspy is installed).
SPEEDUP_FLOORS = {
    "e6_search_layer": 2.0,
    "e10_search_layer": 1.5,
    "e10_online_resolve": 2.0,
    "e5_lp_backend": 2.0,
    "e10_lp_backend": 2.0,
}

# Deterministic simplex-pivot ceilings on the E5 cancellation kernel, per
# LP backend (PR 9). The scipy path is bit-compatible with the pre-engine
# solver, so its ceiling is the BENCH_PR4 measurement (95,746) plus ~5%
# headroom for scipy-version drift; the highspy ceiling is the ISSUE
# acceptance bar — at most half the cold-basis pivot count, which warm
# basis reuse across the doubling schedule must deliver. Enforced in every
# mode including --quick: counters are machine-independent.
PIVOT_CEILINGS = {
    "e5_cancellation": {"scipy": 100_534, "highspy": 47_873},
}
# Budget levels swept by the search-layer kernels — a pinned prefix of the
# production finder's doubling schedule.
B_VALUES = (1, 2, 4, 8, 16)


def _median_time(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _best_time(fn, repeats: int) -> float:
    """Minimum wall-clock over ``repeats`` runs.

    Used for the same-process speedup ratios: scheduler noise only ever
    *adds* time, so min-of-N is the stablest estimator of intrinsic cost
    and keeps ratio gates near their floor from flaking. Medians stay in
    use for the committed-baseline kernels, where they describe typical
    (not best-case) behavior.
    """
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _counters_of(fn) -> dict:
    from repro import obs

    with obs.session(label="bench_gate") as tel:
        fn()
    return {k: v for k, v in sorted(tel.counters.items())}


# ---------------------------------------------------------------------------
# pinned end-to-end kernels (regression-gated)
# ---------------------------------------------------------------------------


def _pinned_instances(n, count, seed, k=2):
    from repro.eval.workloads import er_anticorrelated

    return list(er_anticorrelated(n=n, n_instances=count, seed=seed, k=k))


def kernel_e5_cancellation():
    """A handful of full cancellation runs (production finder, incremental)."""
    from repro.core import KRSPInstance, cancel_to_feasibility
    from repro.core.phase1 import phase1_minsum
    from repro.errors import ReproError

    for inst in _pinned_instances(n=10, count=2, seed=6500):
        problem = KRSPInstance(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
        try:
            start = phase1_minsum(problem).solution
            cancel_to_feasibility(problem, start)
        except ReproError:
            continue


def _delay_infeasible_start(n, seed):
    from repro.core.instance import KRSPInstance
    from repro.core.phase1 import phase1_minsum

    for inst in _pinned_instances(n=n, count=8, seed=seed):
        problem = KRSPInstance(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
        try:
            start = phase1_minsum(problem).solution
        except Exception:  # noqa: BLE001 — workload scan, skip infeasible
            continue
        if start.delay > inst.delay_bound:
            return inst.graph, start
    raise SystemExit("bench_gate: no delay-infeasible start in pinned workload")


def kernel_e6_finder():
    """One exhaustive (no-early-exit) bicameral candidate sweep."""
    from repro.core import build_residual, find_bicameral_candidates

    g, start = _E6_FIXTURE
    residual = build_residual(g, start.edge_ids)
    find_bicameral_candidates(residual)


def kernel_e7_solver():
    """Full solver on one pinned mid-size instance."""
    from repro.core.krsp import solve_krsp
    from repro.errors import ReproError

    for inst in _pinned_instances(n=12, count=4, seed=712):
        try:
            solve_krsp(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
        except ReproError:
            pass


def kernel_e10_stress():
    """Full solver at stress scale (n = 20, the gate-budget slice of E10)."""
    from repro.core.krsp import solve_krsp
    from repro.errors import ReproError

    # Index 3 of this workload needs real cancellation work (the first
    # three are phase-1 feasible and would time nothing but phase 1).
    inst = _pinned_instances(n=20, count=4, seed=1020)[3]
    try:
        solve_krsp(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
    except ReproError:
        pass


def kernel_f2_auxgraph():
    """Figure-2 auxiliary-graph constructions, paper and shifted variants."""
    from repro.core import build_aux_paper, build_residual
    from repro.core.auxgraph import build_aux_shifted
    from repro.eval.experiments import figure2_instance

    g, ids, path = figure2_instance()
    residual = build_residual(g, path)
    for b in B_VALUES:
        build_aux_shifted(residual.graph, b)
    for anchor in (ids["x"], ids["y"], ids["z"]):
        for sign in (+1, -1):
            build_aux_paper(residual.graph, anchor, 6, sign)


KERNELS = {
    "e5_cancellation": kernel_e5_cancellation,
    "e6_finder": kernel_e6_finder,
    "e7_solver": kernel_e7_solver,
    "e10_stress": kernel_e10_stress,
    "f2_auxgraph": kernel_f2_auxgraph,
}

_E6_FIXTURE = None


# ---------------------------------------------------------------------------
# search-layer speedup kernels (ratio-gated, hardware independent)
# ---------------------------------------------------------------------------


def _solution_sequence(g, rounds, flips_per_round, seed):
    """A deterministic drift of solution edge sets, mimicking the small
    symmetric differences produced by successive cycle cancellations."""
    rng = np.random.default_rng(seed)
    sol = set(
        int(e) for e in rng.choice(g.m, size=min(g.m // 3 + 1, g.m), replace=False)
    )
    seq = [sorted(sol)]
    for _ in range(rounds):
        for e in rng.choice(g.m, size=min(flips_per_round, g.m), replace=False):
            sol.symmetric_difference_update({int(e)})
        seq.append(sorted(sol))
    return seq


def _search_layer_ratio(n, seed, rounds=10, flips_per_round=4):
    """Median from-scratch vs incremental time over one solution drift.

    Per round both sides produce the residual of the current solution and
    the full ``B_VALUES`` ladder of shifted auxiliary graphs — exactly the
    work :func:`~repro.core.search.find_bicameral_cycle` consumes, minus
    the (unchanged) Bellman–Ford probes and LP solves.
    """
    from repro.core import build_residual
    from repro.core.auxgraph import build_aux_shifted
    from repro.perf import IncrementalSearch

    from repro.graph import anticorrelated_weights, gnp_digraph

    g = anticorrelated_weights(gnp_digraph(n, 0.35, rng=seed), rng=seed + 1)
    seq = _solution_sequence(g, rounds, flips_per_round, seed + 2)

    def scratch():
        for sol in seq:
            residual = build_residual(g, sol)
            for b in B_VALUES:
                build_aux_shifted(residual.graph, b)

    def incremental():
        engine = IncrementalSearch(g)
        for sol in seq:
            residual = engine.residual_for(sol)
            for b in B_VALUES:
                engine.aux_provider(residual.graph, b)

    t_scratch = _best_time(scratch, repeats=5)
    t_incr = _best_time(incremental, repeats=5)
    return t_scratch / t_incr if t_incr > 0 else float("inf")


def measure_speedups(quick: bool) -> dict:
    # The ladder of rounds amortizes the cache's first build; 12 matches a
    # realistic cancellation-run length and is cheap at both scales.
    rounds = 12
    return {
        "e6_search_layer": {
            "ratio": round(_search_layer_ratio(10, seed=6600, rounds=rounds), 3),
            "floor": SPEEDUP_FLOORS["e6_search_layer"],
        },
        "e10_search_layer": {
            "ratio": round(_search_layer_ratio(40, seed=1040, rounds=rounds), 3),
            "floor": SPEEDUP_FLOORS["e10_search_layer"],
        },
    }


# ---------------------------------------------------------------------------
# LP backend speedup kernels (PR 9, ratio-gated, highspy only)
# ---------------------------------------------------------------------------


def measure_lp_backend_speedups() -> dict:
    """End-to-end scipy-vs-highspy ratios on the E5/E10 kernels.

    Same machine, same process, same pinned instances — only the LP
    backend differs, so the ratio isolates exactly what the warm-started
    engine buys. Each backend gets one untimed warm-up run (imports,
    workload construction); the highspy side's persistent models reset
    between repeats anyway because every solver run owns a fresh AuxCache
    token — warm starts pay off *within* a run (doubling schedule ×
    cancellation iterations), which is the production shape.

    Returns ``{}`` when highspy is not installed (the gate prints the
    skip); the scipy fallback's health is still covered by the pivot
    ceiling and the regression gate.
    """
    from repro.lp.engine import force_backend, highspy_available

    if not highspy_available():
        return {}
    out = {}
    for name, kernel in (
        ("e5_lp_backend", kernel_e5_cancellation),
        ("e10_lp_backend", kernel_e10_stress),
    ):
        with force_backend("scipy"):
            kernel()
            t_scipy = _best_time(kernel, repeats=3)
        with force_backend("highspy"):
            kernel()
            t_highs = _best_time(kernel, repeats=3)
        out[name] = {
            "ratio": round(t_scipy / t_highs, 3) if t_highs > 0 else float("inf"),
            "floor": SPEEDUP_FLOORS[name],
            "scipy_best_s": round(t_scipy, 6),
            "highspy_best_s": round(t_highs, 6),
        }
    return out


# ---------------------------------------------------------------------------
# online warm-vs-cold resolve kernel (PR 6, ratio-gated + BENCH_PR6.json)
# ---------------------------------------------------------------------------

# Pinned E10-scale churn workload: the e10_search_layer substrate (n = 40
# anticorrelated ER) under an 8-delta feasibility-preserving churn trace.
# Churn seed 62 is pinned because its replay stays warm on every step —
# the kernel measures the warm path, not the (separately tested) fallback
# taxonomy — and because none of its deltas tighten the delay budget into
# a cancellation blow-up that would swamp the timing with LP solves.
ONLINE_N = 40
ONLINE_WORKLOAD_SEED = 1040
ONLINE_CHURN_SEED = 62
ONLINE_STEPS = 8

_ONLINE_FIXTURE = None


def _online_fixture():
    """(base workload instance, pinned churn trace), built once."""
    global _ONLINE_FIXTURE
    if _ONLINE_FIXTURE is None:
        from repro.oracle import generate_churn_trace
        from repro.oracle.instances import OracleInstance

        w = _pinned_instances(n=ONLINE_N, count=1, seed=ONLINE_WORKLOAD_SEED)[0]
        inst = OracleInstance(
            graph=w.graph,
            s=w.s,
            t=w.t,
            k=w.k,
            delay_bound=w.delay_bound,
            label="bench-e10-online",
            substrate="er_anticorrelated",
            seed=ONLINE_WORKLOAD_SEED,
        )
        trace = generate_churn_trace(inst, ONLINE_STEPS, rng=ONLINE_CHURN_SEED)
        _ONLINE_FIXTURE = (w, trace)
    return _ONLINE_FIXTURE


def kernel_online_warm():
    """Warm replay: one cold start, then ``resolve`` per churn delta."""
    from repro.online import resolve, start_online

    w, trace = _online_fixture()
    state = start_online(w.graph, w.s, w.t, w.k, w.delay_bound)
    for delta in trace.deltas:
        resolve(state, delta)


def kernel_online_cold():
    """Cold replay: a from-scratch solve of every post-delta instance."""
    from repro.core.krsp import solve_krsp
    from repro.oracle import replay_instances

    w, trace = _online_fixture()
    solve_krsp(w.graph, w.s, w.t, w.k, w.delay_bound)
    for _step, _delta, g, s, t, k, bound in replay_instances(trace):
        solve_krsp(g, s, t, k, bound)


def measure_online_resolve(repeats: int) -> dict:
    """Warm-vs-cold medians, ratio, and the warm replay's mode ledger.

    Both closures include the one unavoidable cold solve of the base
    instance (``start_online`` on the warm side), so the ratio compares
    equal step counts: 1 base + ``ONLINE_STEPS`` churn states each.
    """
    from repro.online import resolve, start_online

    w, trace = _online_fixture()
    kernel_online_warm()  # warm imports and the LP solver before timing
    t_warm = _median_time(kernel_online_warm, repeats)
    t_cold = _median_time(kernel_online_cold, repeats)

    state = start_online(w.graph, w.s, w.t, w.k, w.delay_bound)
    modes = []
    for delta in trace.deltas:
        resolve(state, delta)
        modes.append(
            state.last.mode
            if state.last.fallback is None
            else f"cold:{state.last.fallback}"
        )

    return {
        "ratio": round(t_cold / t_warm, 3) if t_warm > 0 else float("inf"),
        "floor": SPEEDUP_FLOORS["e10_online_resolve"],
        "warm_median_s": round(t_warm, 6),
        "cold_median_s": round(t_cold, 6),
        "repeats": repeats,
        "n": ONLINE_N,
        "steps": len(trace.deltas),
        "workload_seed": ONLINE_WORKLOAD_SEED,
        "churn_seed": ONLINE_CHURN_SEED,
        "modes": modes,
        "counters": _counters_of(kernel_online_warm),
    }


# ---------------------------------------------------------------------------
# gate driver
# ---------------------------------------------------------------------------


def _attribution(base_counters, counters) -> str:
    """Counter-drift attribution block for a regression failure.

    The kernels are deterministic, so a wall-clock regression with moved
    counters names its own cause ("lp.pivots grew 40%"); identical counters
    mean the machine, not the code, changed. Rendered via the same
    :func:`repro.obs.diff.format_drift_block` that ``repro trace --diff``
    uses.
    """
    if not base_counters:
        return "\n      (no baseline counters to attribute against)"
    drifts = rank_counter_drift(base_counters, counters)
    lines = ["    counter drift (baseline -> current), by contribution:"]
    lines += format_drift_block(drifts, top=8, indent="      ")
    return "\n" + "\n".join(lines)


def run_gate(args) -> int:
    global _E6_FIXTURE
    _E6_FIXTURE = _delay_infeasible_start(n=10, seed=6100)

    repeats = 3 if args.quick else args.repeats
    baseline = None
    if args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())

    report = {"schema": SCHEMA, "quick": bool(args.quick), "kernels": {}, "speedups": {}}
    failures = []

    for name, fn in KERNELS.items():
        fn()  # warm imports and caches outside the timed region
        median = _median_time(fn, repeats)
        counters = _counters_of(fn)
        report["kernels"][name] = {
            "median_s": round(median, 6),
            "repeats": repeats,
            "counters": counters,
        }
        line = f"{name:18s} median {median * 1e3:9.2f} ms"
        if baseline and not args.quick and not args.update_baseline:
            base = baseline["kernels"].get(name, {}).get("median_s")
            if base:
                rel = median / base - 1.0
                line += f"  ({rel:+.1%} vs baseline)"
                if rel > args.tolerance:
                    failures.append(
                        f"{name}: {median:.4f}s is {rel:.1%} over baseline "
                        f"{base:.4f}s (tolerance {args.tolerance:.0%})"
                        + _attribution(
                            baseline["kernels"].get(name, {}).get("counters"),
                            counters,
                        )
                    )
        print(line)

    # -- LP engine gate (PR 9): deterministic pivot ceilings + backend ratios
    from repro.lp.engine import get_engine, highspy_available

    backend = get_engine().backend_name
    report["lp_engine"] = {
        "backend": backend,
        "highspy_available": highspy_available(),
        "pivots": {
            name: entry["counters"].get("lp.pivots", 0)
            for name, entry in report["kernels"].items()
        },
        "ceilings": PIVOT_CEILINGS,
    }
    for kname, ceilings in PIVOT_CEILINGS.items():
        ceiling = ceilings.get(backend)
        pivots = report["kernels"][kname]["counters"].get("lp.pivots", 0)
        print(
            f"{kname:18s} lp.pivots {pivots:9d} "
            f"(ceiling {ceiling} on {backend})"
        )
        if ceiling is not None and pivots > ceiling:
            failures.append(
                f"{kname}: lp.pivots {pivots} exceeds the {backend} "
                f"ceiling {ceiling}"
            )

    report["speedups"] = measure_speedups(args.quick)
    report["speedups"].update(measure_lp_backend_speedups())
    if not highspy_available():
        print(
            f"{'e5/e10_lp_backend':18s} skipped (highspy not installed — "
            "scipy fallback active; install repro[perf] to gate the "
            "backend ratios)"
        )
    for name, entry in report["speedups"].items():
        print(f"{name:18s} speedup {entry['ratio']:6.2f}x (floor {entry['floor']}x)")
        if entry["ratio"] < entry["floor"]:
            failures.append(
                f"{name}: speedup {entry['ratio']}x below the "
                f"{entry['floor']}x floor"
            )

    online = measure_online_resolve(repeats)
    print(
        f"{'e10_online_resolve':18s} speedup {online['ratio']:6.2f}x "
        f"(floor {online['floor']}x)  warm {online['warm_median_s'] * 1e3:.2f} ms  "
        f"cold {online['cold_median_s'] * 1e3:.2f} ms"
    )
    if online["ratio"] < online["floor"]:
        failures.append(
            f"e10_online_resolve: warm-vs-cold speedup {online['ratio']}x "
            f"below the {online['floor']}x floor"
        )
    if args.online_baseline.exists() and not args.quick and not args.update_baseline:
        base = json.loads(args.online_baseline.read_text())
        base_warm = base.get("online", {}).get("warm_median_s")
        if base_warm:
            rel = online["warm_median_s"] / base_warm - 1.0
            print(f"{'':18s} warm replay {rel:+.1%} vs baseline")
            if rel > args.tolerance:
                failures.append(
                    f"e10_online_resolve: warm replay {online['warm_median_s']:.4f}s "
                    f"is {rel:.1%} over baseline {base_warm:.4f}s "
                    f"(tolerance {args.tolerance:.0%})"
                    + _attribution(
                        base.get("online", {}).get("counters"),
                        online["counters"],
                    )
                )
    online_report = {
        "schema": ONLINE_SCHEMA,
        "quick": bool(args.quick),
        "online": online,
    }
    atomic_write_json(args.online_out, online_report, indent=2, sort_keys=True)

    atomic_write_json(args.out, report, indent=2, sort_keys=True)
    print(f"wrote {args.out} and {args.online_out}")

    if failures:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: fewer repeats, skip the hardware-dependent baseline "
        "comparison (speedup ratios are still enforced)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats per kernel"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed relative regression vs baseline medians",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_OUT,
        help="committed baseline JSON to compare against",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="where to write the report"
    )
    parser.add_argument(
        "--online-baseline",
        type=Path,
        default=ONLINE_OUT,
        help="committed online-resolve baseline JSON to compare against",
    )
    parser.add_argument(
        "--online-out",
        type=Path,
        default=ONLINE_OUT,
        help="where to write the online-resolve report",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="skip the regression comparison and rewrite the baseline",
    )
    args = parser.parse_args(argv)
    return run_gate(args)


if __name__ == "__main__":
    raise SystemExit(main())
