#!/usr/bin/env python
"""CI wall-clock guard: budgeted solves must respect their deadline.

Runs the E10-style stress workload (the largest instances the repo solves
routinely) under ``SolveBudget(deadline_seconds=D)`` and fails when:

* any solve overruns ``D`` by more than ``--grace`` (default 25%, the
  contract stated in docs/ROBUSTNESS.md — cooperative checkpoints are
  spaced so one LP solve is the largest indivisible overrun), or
* any returned solution fails the independent auditor.

Exit status: 0 when every solve honored the deadline and verified, 1
otherwise. Usage (CI runs this with the defaults)::

    PYTHONPATH=src python scripts/deadline_guard.py --deadline 2
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import solve_krsp
from repro.core.verify import verify_solution
from repro.errors import InfeasibleInstanceError
from repro.eval.workloads import er_anticorrelated
from repro.robustness import SolveBudget


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--deadline", type=float, default=2.0,
                        help="per-solve wall-clock budget in seconds")
    parser.add_argument("--grace", type=float, default=0.25,
                        help="allowed fractional overrun (0.25 = +25%%)")
    parser.add_argument("--sizes", default="20,30,40",
                        help="comma-separated instance sizes (E10 stress)")
    parser.add_argument("--n-instances", type=int, default=2)
    args = parser.parse_args(argv)

    limit = args.deadline * (1.0 + args.grace)
    violations: list[str] = []
    solves = 0
    worst = 0.0
    for n in (int(tok) for tok in args.sizes.split(",")):
        for k in (2, 3):
            instances = er_anticorrelated(
                n=n, p=min(0.3, 6.0 / n + 0.1), k=k,
                n_instances=args.n_instances, seed=10_000 + n * 10 + k,
            )
            for inst in instances:
                start = time.perf_counter()
                try:
                    sol = solve_krsp(
                        inst.graph, inst.s, inst.t, inst.k, inst.delay_bound,
                        budget=SolveBudget(deadline_seconds=args.deadline),
                    )
                except InfeasibleInstanceError:
                    continue  # a property of the instance, not of the budget
                elapsed = time.perf_counter() - start
                solves += 1
                worst = max(worst, elapsed)
                label = f"n={n} k={k} seed={inst.seed}"
                if elapsed > limit:
                    violations.append(
                        f"{label}: {elapsed:.3f}s > {limit:.3f}s "
                        f"(deadline {args.deadline}s +{args.grace:.0%})"
                    )
                    continue
                report = verify_solution(
                    inst.graph, inst.s, inst.t, inst.k, inst.delay_bound,
                    sol.paths,
                )
                if not (report.valid and report.delay_feasible):
                    violations.append(
                        f"{label}: unverifiable answer under budget "
                        f"(status={sol.status}): {report.issues}"
                    )

    print(f"deadline guard: {solves} budgeted solves, worst {worst:.3f}s "
          f"against a {limit:.3f}s limit")
    if violations:
        print(f"FAILED: {len(violations)} violation(s)", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print("ok: every solve honored the deadline and verified")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
