#!/usr/bin/env python
"""Chaos gate: the kill-based crash campaign for crash-safe solving.

For every instance in a small deterministic chaos corpus this script:

1. runs a **golden** checkpointed solve in-process, capturing the final
   solution and the full ``cancel.iteration`` telemetry trail;
2. checks the **checkpoint-off identity**: the same solve without a
   journal returns bit-identical paths/cost/delay/status (the journal
   must observe, never steer);
3. runs a **subprocess kill campaign**: ``python -m repro solve
   --checkpoint`` is SIGKILLed at chosen record counts and byte offsets
   (via the ``REPRO_JOURNAL_KILL_*`` fault-injection hooks in
   :mod:`repro.robustness.journal`), including genuinely torn mid-record
   writes, then ``resume_krsp`` finishes the run;
4. sweeps **truncation points** over the golden journal — every record
   boundary plus fuzz-chosen mid-record offsets (a journal cut at byte
   ``b`` is exactly what a crash whose last durable byte was ``b`` leaves
   behind, since appends are fsync'd in order);
5. asserts every resumed run is **bit-identical** to the golden one:
   same paths, cost, delay, status, iteration count, and the same
   ``cancel.iteration`` event trail (modulo the global ``seq`` counter).

6. repeats the campaign **inside an online ``resolve`` replay** (PR 6):
   a pinned warm re-solve — a delay spike on a solution edge forces real
   cancellation work — is journaled at ``--checkpoint-every 1``, the
   ``python -m repro resolve --checkpoint`` subprocess is SIGKILLed past
   the warm-start prelude, and ``resume_krsp`` must finish the mid-churn
   solve bit-identically to the uninterrupted golden resolve.

Full mode enforces the acceptance floor: >= 25 kill/cut points per
corpus instance, at least 5 of them torn mid-record (the resolve
kill-point has its own floor: >= 10 points, >= 3 torn). ``--quick`` runs
a bounded subset for CI. On any failure the journals are kept and their
location printed; the JSON report (``--report``) is written atomically.

Usage::

    python scripts/chaos_gate.py                 # full campaign
    python scripts/chaos_gate.py --quick --report chaos_report.json
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

# The gate's golden trails and checkpoint-identity comparisons are byte
# replays; warm-started highspy solves are history-dependent (a warm basis
# may land on a different optimal vertex), so pin the deterministic scipy
# LP backend here and in every child process this script spawns.
os.environ.setdefault("REPRO_LP_BACKEND", "scipy")

from repro import obs  # noqa: E402
from repro._util.atomicio import atomic_write_json  # noqa: E402
from repro.core.krsp import solve_krsp  # noqa: E402
from repro.graph.generators import gnp_digraph  # noqa: E402
from repro.graph.io import save_instance  # noqa: E402
from repro.graph.weights import anticorrelated_weights  # noqa: E402
from repro.robustness.checkpointing import (  # noqa: E402
    resume_krsp,
    solve_checkpointed,
)

#: Snapshot cadence for the campaign: small, so cuts land in every region
#: of the journal (before the first snapshot, between snapshots, after
#: the last one).
CHECKPOINT_EVERY = 2

#: Deterministic chaos corpus. Both instances drive the cancellation loop
#: through multiple iterations (6 and 3) under ``--phase1 minsum``, so a
#: cut can land mid-history. Parameters were searched for, not sampled:
#: most small instances solve in 0-1 iterations and exercise nothing.
CORPUS = [
    {"name": "gnp18_anticorr_it6", "seed": 11, "n": 18, "p": 0.28,
     "total": 41, "noise": 4, "s": 0, "t": 17, "k": 3, "delay_bound": 93},
    {"name": "gnp16_anticorr_it3", "seed": 21, "n": 16, "p": 0.30,
     "total": 37, "noise": 3, "s": 0, "t": 15, "k": 3, "delay_bound": 231},
]

#: Fuzz-chosen intra-record byte offsets for torn cuts (plus the record
#: midpoint, added per record at runtime).
TORN_OFFSETS = (1, 7, 23)


def build_instance(spec: dict):
    rng = np.random.default_rng(spec["seed"])
    g = gnp_digraph(spec["n"], spec["p"], rng=rng)
    g = anticorrelated_weights(g, total=spec["total"], noise=spec["noise"], rng=rng)
    return g, spec["s"], spec["t"], spec["k"], spec["delay_bound"]


def fingerprint(sol) -> tuple:
    """Everything 'bit-identical' quantifies over, solution-side."""
    return (
        tuple(tuple(int(e) for e in p) for p in sol.paths),
        sol.cost, sol.delay, sol.status, sol.iterations, sol.delay_feasible,
    )


def trail(tel) -> list[dict]:
    """The cancel.iteration event trail, minus the global seq counter."""
    return [
        {k: v for k, v in e.items() if k != "seq"}
        for e in tel.events
        if e.get("kind") == "cancel.iteration"
    ]


def record_ends(raw: bytes) -> list[int]:
    """Byte offset just past each intact journal record (framing scan)."""
    import zlib

    ends = []
    pos = 0
    while pos < len(raw):
        sp1 = raw.find(b" ", pos)
        if sp1 < 0 or not raw[pos:sp1].isdigit():
            break
        sp2 = raw.find(b" ", sp1 + 1)
        if sp2 < 0:
            break
        end = sp2 + 1 + int(raw[pos:sp1])
        if end + 1 > len(raw) or raw[end : end + 1] != b"\n":
            break
        body = raw[sp2 + 1 : end]
        if (zlib.crc32(body) & 0xFFFFFFFF) != int(raw[sp1 + 1 : sp2], 16):
            break
        pos = end + 1
        ends.append(pos)
    return ends


def resume_and_check(journal: Path, golden_fp, golden_trail, failures, tag: str):
    try:
        with obs.session(label=f"chaos resume {tag}") as tel:
            sol = resume_krsp(journal)
    except Exception as exc:  # noqa: BLE001 — a gate records, never crashes
        failures.append(f"{tag}: resume raised {type(exc).__name__}: {exc}")
        return
    if fingerprint(sol) != golden_fp:
        failures.append(
            f"{tag}: resumed solution differs from golden "
            f"({fingerprint(sol)} != {golden_fp})"
        )
    elif trail(tel) != golden_trail:
        failures.append(f"{tag}: resumed cancel.iteration trail differs from golden")


def subprocess_solve(inst_path: Path, journal: Path, env_extra: dict) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(env_extra)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "solve", str(inst_path),
         "--checkpoint", str(journal),
         "--checkpoint-every", str(CHECKPOINT_EVERY),
         "--phase1", "minsum"],
        env=env, capture_output=True, text=True, timeout=300,
    )
    return proc.returncode


def run_instance(spec: dict, workdir: Path, quick: bool) -> dict:
    name = spec["name"]
    g, s, t, k, bound = build_instance(spec)
    inst_path = workdir / f"{name}.json"
    save_instance(inst_path, g, s, t, k, bound)

    # 1. Golden run (in-process) + trail capture.
    golden_journal = workdir / f"{name}.golden.journal"
    t0 = time.perf_counter()
    with obs.session(label=f"chaos golden {name}") as tel:
        golden = solve_checkpointed(
            g, s, t, k, bound, journal_path=golden_journal,
            checkpoint_every=CHECKPOINT_EVERY, phase1="minsum",
        )
    golden_fp = fingerprint(golden)
    golden_trail = trail(tel)
    failures: list[str] = []

    # 2. Checkpoint-off identity.
    plain = solve_krsp(g, s, t, k, bound, phase1="minsum")
    if fingerprint(plain) != golden_fp:
        failures.append(f"{name}: checkpointed solve differs from plain solve")

    raw = golden_journal.read_bytes()
    ends = record_ends(raw)
    n_rec = len(ends)

    # 3. Subprocess kill campaign. Journals are byte-deterministic, so
    #    offsets measured on the golden journal transfer to the child's.
    if quick:
        kill_records = sorted({2, n_rec - 2})
        kill_bytes = [ends[n_rec // 2] + 9]
    else:
        kill_records = sorted({2, 3, n_rec // 2, n_rec - 2, n_rec - 1})
        kill_bytes = [ends[1] + 1, ends[n_rec // 2] + 9, ends[n_rec - 2] + 17]
    sub_kills = []
    for r in kill_records:
        j = workdir / f"{name}.killrec{r}.journal"
        rc = subprocess_solve(
            inst_path, j, {"REPRO_JOURNAL_KILL_AFTER_RECORDS": str(r)}
        )
        if rc != -9:
            failures.append(f"{name}: kill-after-records={r} exited {rc}, expected SIGKILL")
            continue
        resume_and_check(j, golden_fp, golden_trail, failures, f"{name}:killrec{r}")
        sub_kills.append({"kind": "after_records", "value": r})
    for b in kill_bytes:
        j = workdir / f"{name}.killbyte{b}.journal"
        rc = subprocess_solve(inst_path, j, {"REPRO_JOURNAL_KILL_AT_BYTE": str(b)})
        if rc != -9:
            failures.append(f"{name}: kill-at-byte={b} exited {rc}, expected SIGKILL")
            continue
        resume_and_check(j, golden_fp, golden_trail, failures, f"{name}:killbyte{b}")
        sub_kills.append({"kind": "at_byte", "value": b, "torn": True})

    # 4. Truncation sweep over the golden journal: every record boundary
    #    (clean cuts, including the complete journal — the final-record
    #    short-circuit) plus torn mid-record offsets.
    clean_cuts = list(ends)
    torn_cuts = []
    for i in range(1, n_rec):
        start, length = ends[i - 1], ends[i] - ends[i - 1]
        for off in sorted({*TORN_OFFSETS, length // 2}):
            if 0 < off < length:
                torn_cuts.append(start + off)
    torn_cuts = sorted(set(torn_cuts))
    if quick:
        torn_cuts = torn_cuts[:: max(1, len(torn_cuts) // 5)][:5]
    for cut in clean_cuts + torn_cuts:
        j = workdir / f"{name}.cut{cut}.journal"
        j.write_bytes(raw[:cut])
        resume_and_check(j, golden_fp, golden_trail, failures, f"{name}:cut{cut}")
        if not failures:
            j.unlink()  # keep the workdir small while everything passes

    n_torn = len(torn_cuts) + sum(1 for kp in sub_kills if kp.get("torn"))
    n_points = len(clean_cuts) + len(torn_cuts) + len(sub_kills)
    if not quick:
        if n_points < 25:
            failures.append(f"{name}: only {n_points} kill/cut points (< 25 floor)")
        if n_torn < 5:
            failures.append(f"{name}: only {n_torn} torn mid-record points (< 5 floor)")

    return {
        "instance": name,
        "records": n_rec,
        "iterations": golden.iterations,
        "points": n_points,
        "torn_points": n_torn,
        "subprocess_kills": sub_kills,
        "seconds": round(time.perf_counter() - t0, 3),
        "failures": failures,
    }


#: Online-resolve kill-point fixture (PR 6). Parameters were searched
#: for: this substrate's warm re-solve after the pinned delay spike does
#: one real cancellation iteration (a five-record journal at
#: ``checkpoint_every=1``) in a few seconds — most spikes either stay
#: trivially feasible (nothing to kill) or blow up into minute-long
#: cancellation runs (too slow for a gate).
RESOLVE_SPEC = {
    "name": "online_resolve_gnp10", "seed": 3, "n": 10, "p": 0.35,
    "total": 29, "noise": 3, "k": 2, "slack": 6, "extra": 2,
}


def subprocess_resolve(
    state_path: Path, delta_path: Path, out_path: Path, journal: Path,
    env_extra: dict,
) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(env_extra)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "resolve", str(state_path),
         "--delta", str(delta_path), "--out", str(out_path),
         "--checkpoint", str(journal), "--checkpoint-every", "1"],
        env=env, capture_output=True, text=True, timeout=300,
    )
    return proc.returncode


def run_resolve_killpoint(workdir: Path, quick: bool) -> dict:
    """Kill and truncation points inside a journaled online ``resolve``.

    The golden run is an in-process warm re-solve journaled at
    ``checkpoint_every=1``; every interrupted copy must resume to the
    same solution fingerprint and ``cancel.iteration`` trail.
    """
    from repro.flow.mincost import min_cost_k_flow
    from repro.online import (
        EdgeReweight,
        InstanceDelta,
        resolve,
        save_delta,
        save_state,
        start_online,
    )

    spec = RESOLVE_SPEC
    name = spec["name"]
    t0 = time.perf_counter()
    rng = np.random.default_rng(spec["seed"])
    g = gnp_digraph(spec["n"], spec["p"], rng=rng)
    g = anticorrelated_weights(g, total=spec["total"], noise=spec["noise"], rng=rng)
    s, t, k = 0, spec["n"] - 1, spec["k"]
    bound = int(min_cost_k_flow(g, s, t, k, weight=g.delay).weight) + spec["slack"]

    state = start_online(g, s, t, k, bound)
    eid = sorted({e for path in state.solution.paths for e in path})[0]
    spike = (bound - state.solution.delay) + spec["extra"]
    delta = InstanceDelta(
        ops=(EdgeReweight(eid, int(g.cost[eid]), int(g.delay[eid]) + spike),),
        label=f"{name} delay spike",
    )
    state_path = workdir / f"{name}.state.json"
    delta_path = workdir / f"{name}.delta.json"
    save_state(state_path, state)
    save_delta(delta_path, delta)

    # 1. Golden journaled resolve (in-process) + trail capture. The same
    #    ``state`` object keeps serving: ``save_state`` above snapshotted
    #    it, so the subprocess replays an identical warm start.
    golden_journal = workdir / f"{name}.golden.journal"
    failures: list[str] = []
    with obs.session(label=f"chaos golden {name}") as tel:
        golden = resolve(
            state, delta, journal_path=golden_journal, checkpoint_every=1
        )
    golden_fp = fingerprint(golden)
    golden_trail = trail(tel)
    if state.last.mode != "warm" or state.last.cycles_cancelled < 1:
        failures.append(
            f"{name}: fixture degraded — golden resolve was "
            f"{state.last.mode}/{state.last.fallback} with "
            f"{state.last.cycles_cancelled} cancellations (wanted a warm "
            f"resolve that cancels; the kill would land in dead air)"
        )

    raw = golden_journal.read_bytes()
    ends = record_ends(raw)
    n_rec = len(ends)

    # 2. Subprocess kill campaign: every kill lands past the warm-start
    #    prelude (record 1), so resume continues a mid-churn solve.
    if quick:
        kill_records = [2]
        kill_bytes = []
    else:
        kill_records = sorted({2, 3, n_rec - 1})
        kill_bytes = [ends[min(2, n_rec - 1)] + 9]
    sub_kills = []
    for r in kill_records:
        j = workdir / f"{name}.killrec{r}.journal"
        rc = subprocess_resolve(
            state_path, delta_path, workdir / f"{name}.killrec{r}.state.json",
            j, {"REPRO_JOURNAL_KILL_AFTER_RECORDS": str(r)},
        )
        if rc != -9:
            failures.append(
                f"{name}: kill-after-records={r} exited {rc}, expected SIGKILL"
            )
            continue
        resume_and_check(j, golden_fp, golden_trail, failures, f"{name}:killrec{r}")
        sub_kills.append({"kind": "after_records", "value": r})
    for b in kill_bytes:
        j = workdir / f"{name}.killbyte{b}.journal"
        rc = subprocess_resolve(
            state_path, delta_path, workdir / f"{name}.killbyte{b}.state.json",
            j, {"REPRO_JOURNAL_KILL_AT_BYTE": str(b)},
        )
        if rc != -9:
            failures.append(
                f"{name}: kill-at-byte={b} exited {rc}, expected SIGKILL"
            )
            continue
        resume_and_check(j, golden_fp, golden_trail, failures, f"{name}:killbyte{b}")
        sub_kills.append({"kind": "at_byte", "value": b, "torn": True})

    # 3. Truncation sweep over the golden resolve journal. Cuts at or
    #    past the prelude (record 1) must replay the warm start and stay
    #    fully bit-identical. Cuts that lose the prelude resume as a cold
    #    solve of the patched instance (the documented crash semantic),
    #    which on this pinned fixture reaches the same solution by a
    #    different route — so those compare everything except the
    #    iteration count and the (warm-only) cancellation trail.
    warm_cuts = [] if quick else list(ends[1:])
    torn_cuts = []
    pre_prelude_cuts = []
    if not quick:
        for i in range(2, n_rec):
            mid = ends[i - 1] + (ends[i] - ends[i - 1]) // 2
            if ends[i - 1] < mid < ends[i]:
                torn_cuts.append(mid)
        pre_prelude_cuts = [ends[0], ends[0] + (ends[1] - ends[0]) // 2]
    for cut in warm_cuts + torn_cuts:
        j = workdir / f"{name}.cut{cut}.journal"
        j.write_bytes(raw[:cut])
        resume_and_check(j, golden_fp, golden_trail, failures, f"{name}:cut{cut}")
        if not failures:
            j.unlink()
    cold_fp = golden_fp[:4] + golden_fp[5:]  # drop the iteration count
    for cut in pre_prelude_cuts:
        j = workdir / f"{name}.coldcut{cut}.journal"
        j.write_bytes(raw[:cut])
        try:
            sol = resume_krsp(j)
        except Exception as exc:  # noqa: BLE001 — a gate records, never crashes
            failures.append(
                f"{name}:coldcut{cut}: resume raised {type(exc).__name__}: {exc}"
            )
            continue
        fp = fingerprint(sol)
        if fp[:4] + fp[5:] != cold_fp:
            failures.append(
                f"{name}:coldcut{cut}: cold-resumed solution differs from "
                f"golden ({fp} vs {golden_fp})"
            )
        elif not failures:
            j.unlink()

    n_torn = (
        len(torn_cuts)
        + sum(1 for kp in sub_kills if kp.get("torn"))
        + sum(1 for cut in pre_prelude_cuts if cut not in ends)
    )
    n_points = (
        len(warm_cuts) + len(torn_cuts) + len(pre_prelude_cuts) + len(sub_kills)
    )
    if not quick:
        if n_points < 10:
            failures.append(f"{name}: only {n_points} kill/cut points (< 10 floor)")
        if n_torn < 3:
            failures.append(
                f"{name}: only {n_torn} torn mid-record points (< 3 floor)"
            )

    return {
        "instance": name,
        "records": n_rec,
        "iterations": golden.iterations,
        "points": n_points,
        "torn_points": n_torn,
        "subprocess_kills": sub_kills,
        "seconds": round(time.perf_counter() - t0, 3),
        "failures": failures,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="bounded CI subset (fewer kill and cut points)")
    ap.add_argument("--report", type=Path, default=None,
                    help="write a JSON report here (atomic)")
    ap.add_argument("--keep-dir", type=Path, default=None,
                    help="work under this directory and never delete it")
    args = ap.parse_args(argv)

    workdir = args.keep_dir or Path(tempfile.mkdtemp(prefix="chaos_gate_"))
    workdir.mkdir(parents=True, exist_ok=True)
    results = [run_instance(spec, workdir, args.quick) for spec in CORPUS]
    results.append(run_resolve_killpoint(workdir, args.quick))
    all_failures = [f for r in results for f in r["failures"]]

    report = {
        "schema": "chaos-gate/1",
        "mode": "quick" if args.quick else "full",
        "instances": results,
        "total_points": sum(r["points"] for r in results),
        "total_torn": sum(r["torn_points"] for r in results),
        "passed": not all_failures,
    }
    if args.report is not None:
        atomic_write_json(args.report, report, indent=2, sort_keys=True)
        print(f"wrote {args.report}")

    for r in results:
        print(f"{r['instance']:24s} records={r['records']:3d} "
              f"points={r['points']:3d} (torn {r['torn_points']}) "
              f"{r['seconds']:6.1f}s "
              f"{'ok' if not r['failures'] else 'FAIL'}")
    if all_failures:
        print(f"\nCHAOS GATE FAILED ({len(all_failures)}); journals kept "
              f"in {workdir}:", file=sys.stderr)
        for f in all_failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    if args.keep_dir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    print(f"chaos gate passed: {report['total_points']} kill/cut points "
          f"({report['total_torn']} torn mid-record), all resumes bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
