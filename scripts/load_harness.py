#!/usr/bin/env python
"""Open-loop load generator for the kRSP solve service (docs/SERVICE.md).

Locust-style, stdlib-only: a declarative *run table* describes each run
as a request mix × arrival rate × pool size; the harness fires requests
at the configured rate **without waiting for responses** (open loop — a
slow server cannot slow the generator down, so queueing shows up as
latency, not as a lower offered rate). Every response becomes one JSONL
row; each run folds into a summary with achieved rate, dedup hit-rate,
latency quantiles, and deadline-miss / degraded / verified fractions.

The request mix cycles deterministically through three shapes:

* ``solve_unique`` — a fresh instance from the generator pool (cache
  cold, exercises admission + workers);
* ``solve_dup`` — re-posts one pinned instance (overlapping in-flight
  duplicates hit the dedup path and must share byte-identical results);
* ``resolve`` — churns the online session of an instance whose solve
  already completed (falls back to ``solve_dup`` until one exists).

Usage::

    PYTHONPATH=src python scripts/load_harness.py --quick \
        --jsonl out.jsonl --summary-out LOAD_QUICK.json --md-out load.md \
        --require dropped==0 --require dedup_hits>0 \
        --require verified_fraction==1.0 --require deadline_misses==0

    PYTHONPATH=src python scripts/load_harness.py --table runs.json
    PYTHONPATH=src python scripts/load_harness.py --url http://host:8710

Exit status is nonzero iff a ``--require`` gate fails (or a run table
cannot be executed), which is what the CI ``service-smoke`` job keys on.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import re
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.graph.generators import parallel_chains  # noqa: E402
from repro.graph.io import instance_to_dict  # noqa: E402
from repro.service import client as svc_client  # noqa: E402
from repro.service.protocol import canonical_instance, instance_digest  # noqa: E402

SUMMARY_SCHEMA = "load-harness/1"

#: Default run table (see docs/SERVICE.md, "Run table format"). --quick
#: replaces it with a single short mixed run against 4 workers.
DEFAULT_TABLE = [
    {
        "name": "mixed-4w",
        "duration_seconds": 20.0,
        "rate_rps": 6.0,
        "workers": 4,
        "mix": {"solve_unique": 2, "solve_dup": 3, "resolve": 2},
        "deadline_seconds": 30.0,
        "tenants": ["alice", "bravo", "carol"],
    },
    {
        "name": "dup-heavy-2w",
        "duration_seconds": 15.0,
        "rate_rps": 8.0,
        "workers": 2,
        "mix": {"solve_unique": 1, "solve_dup": 6, "resolve": 1},
        "deadline_seconds": 30.0,
        "tenants": ["alice", "bravo"],
    },
]

QUICK_TABLE = [
    {
        "name": "quick-4w",
        "duration_seconds": 6.0,
        "rate_rps": 5.0,
        "workers": 4,
        "mix": {"solve_unique": 1, "solve_dup": 3, "resolve": 2},
        "deadline_seconds": 30.0,
        "tenants": ["alice", "bravo"],
    },
]


def build_instance_pool(count: int = 8) -> list[dict]:
    """Deterministic pool of small, always-feasible k=2 instances."""
    pool = []
    for i in range(count):
        length = 2 + (i % 4)
        g, s, t = parallel_chains(2, length)
        rng = np.random.default_rng(1000 + i)
        cost = rng.integers(1, 9, size=g.m).astype(np.int64)
        delay = rng.integers(1, 5, size=g.m).astype(np.int64)
        g = g.with_weights(cost, delay)
        # Budget = total delay of everything: feasibility is structural.
        inst = instance_to_dict(g, s, t, 2, int(delay.sum()))
        pool.append(canonical_instance(inst))
    return pool


class RunRecorder:
    """Collects one row per completed request, thread-safely."""

    def __init__(self) -> None:
        self.rows: list[dict] = []
        self._lock = threading.Lock()
        self.result_bytes: dict[str, list[bytes]] = {}
        self.solved_hashes: list[str] = []

    def add(self, row: dict) -> None:
        with self._lock:
            self.rows.append(row)

    def note_solved(self, instance_hash: str) -> None:
        with self._lock:
            if instance_hash not in self.solved_hashes:
                self.solved_hashes.append(instance_hash)

    def pick_solved(self) -> str | None:
        with self._lock:
            return self.solved_hashes[0] if self.solved_hashes else None


def _fire(url: str, body: dict, meta: dict, rec: RunRecorder) -> None:
    t0 = time.perf_counter()
    try:
        code, resp, hdrs = svc_client.submit(url, body, timeout=120.0)
    except OSError as exc:
        rec.add({**meta, "ok": False, "dropped": True,
                 "error": f"{type(exc).__name__}: {exc}",
                 "latency_seconds": round(time.perf_counter() - t0, 6)})
        return
    latency = time.perf_counter() - t0
    row = {
        **meta,
        "http_status": code,
        "latency_seconds": round(latency, 6),
        "dedup": hdrs.get("x-krsp-dedup"),
        "job_id": hdrs.get("x-krsp-job"),
        "ok": code == 200,
        "dropped": code not in (200, 202),
    }
    if code == 200 and isinstance(resp, dict):
        row["state"] = resp.get("state")
        verification = resp.get("verification") or {}
        row["verified"] = bool(verification.get("verified"))
        sol = resp.get("solution") or {}
        cert = sol.get("certificate") or {}
        row["has_certificate"] = bool(cert)
        row["deadline_missed"] = cert.get("exhausted_reason") == "deadline"
        if resp.get("kind") == "solve" and resp.get("state") in (
            "done", "degraded"
        ):
            rec.note_solved(resp.get("instance_hash"))
    rec.add(row)


def run_one(
    run: dict,
    url: str | None,
    pool: list[dict],
    rec: RunRecorder,
) -> dict:
    """Execute one run-table entry; returns its metrics summary."""
    service_thread = None
    drain_clean = None
    if url is None:
        from repro.service.server import ServiceConfig, ServiceThread

        service_thread = ServiceThread(
            ServiceConfig(workers=int(run.get("workers", 2)))
        )
        target = service_thread.url
    else:
        target = url

    mix = run.get("mix", {"solve_unique": 1})
    cycle: list[str] = []
    for kind in ("solve_unique", "solve_dup", "resolve"):
        cycle.extend([kind] * int(mix.get(kind, 0)))
    if not cycle:
        raise SystemExit(f"run {run.get('name')!r} has an empty mix")
    tenants = run.get("tenants", ["default"])
    deadline = run.get("deadline_seconds")
    rate = float(run["rate_rps"])
    duration = float(run["duration_seconds"])
    total = max(1, int(rate * duration))
    interval = 1.0 / rate
    pinned = pool[0]
    pinned_hash = instance_digest(pinned)

    started = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(max_workers=64) as tp:
        futures = []
        unique_i = 0
        for i in range(total):
            target_t = started + i * interval
            delay_for = target_t - time.perf_counter()
            if delay_for > 0:
                time.sleep(delay_for)
            shape = cycle[i % len(cycle)]
            tenant = tenants[i % len(tenants)]
            if shape == "resolve":
                solved = rec.pick_solved()
                if solved is None:
                    shape = "solve_dup"
                else:
                    delta = {
                        "schema": "instance-delta/1",
                        "ops": [{"op": "reweight", "edge": 0,
                                 "cost": 1 + (i % 7), "delay": 1}],
                    }
                    body = svc_client.solve_request(
                        kind="resolve", instance_hash=solved, delta=delta,
                        tenant=tenant, deadline_seconds=deadline,
                    )
            copies = 1
            if shape == "solve_dup":
                body = svc_client.solve_request(
                    pinned, tenant=tenant, deadline_seconds=deadline
                )
                # Fire the duplicate as a simultaneous pair from two
                # tenants: overlapping in-flight identical requests are
                # the dedup path's reason to exist, and on instances
                # this small a lone duplicate would land after its twin
                # already finished.
                copies = 2
            elif shape == "solve_unique":
                inst = pool[1 + unique_i % (len(pool) - 1)]
                unique_i += 1
                body = svc_client.solve_request(
                    inst, tenant=tenant, deadline_seconds=deadline
                )
            for copy in range(copies):
                meta = {
                    "run": run["name"],
                    "seq": i,
                    "copy": copy,
                    "shape": shape,
                    "tenant": tenants[(i + copy) % len(tenants)],
                    "submitted_offset": round(
                        time.perf_counter() - started, 6
                    ),
                }
                futures.append(tp.submit(_fire, target, body, meta, rec))
        concurrent.futures.wait(futures)
    elapsed = time.perf_counter() - started

    scraped: dict[str, float] = {}
    try:
        text = svc_client.scrape_metrics(target)
        for line in text.splitlines():
            m = re.match(r"repro_(service_[a-z_]+)_total (\d+)", line)
            if m:
                scraped[m.group(1)] = float(m.group(2))
    except OSError:
        pass

    if service_thread is not None:
        t_drain = time.perf_counter()
        service_thread.stop(drain=True)
        drain_clean = (time.perf_counter() - t_drain) < 60.0

    rows = [r for r in rec.rows if r.get("run") == run["name"]]
    latencies = sorted(
        r["latency_seconds"] for r in rows if "latency_seconds" in r
    )

    def pct(p: float) -> float | None:
        if not latencies:
            return None
        idx = min(len(latencies) - 1, int(p * len(latencies)))
        return round(latencies[idx], 6)

    completed = [r for r in rows if r.get("ok")]
    n_or_zero = max(1, len(completed))
    metrics = {
        "sent": len(rows),
        "completed": len(completed),
        "dropped": sum(1 for r in rows if r.get("dropped")),
        "offered_rate_rps": round(rate, 3),
        "achieved_rate_rps": round(len(completed) / max(elapsed, 1e-9), 3),
        "dedup_hits": sum(1 for r in rows if r.get("dedup") == "hit"),
        "dedup_hit_rate": round(
            sum(1 for r in rows if r.get("dedup") == "hit") / max(1, len(rows)),
            4,
        ),
        "latency_p50_seconds": pct(0.50),
        "latency_p99_seconds": pct(0.99),
        "deadline_misses": sum(1 for r in rows if r.get("deadline_missed")),
        "deadline_miss_fraction": round(
            sum(1 for r in rows if r.get("deadline_missed")) / n_or_zero, 4
        ),
        "degraded_fraction": round(
            sum(1 for r in completed if r.get("state") == "degraded")
            / n_or_zero,
            4,
        ),
        "verified_fraction": round(
            sum(1 for r in completed if r.get("verified")) / n_or_zero, 4
        ),
        "certificate_fraction": round(
            sum(1 for r in completed if r.get("has_certificate")) / n_or_zero,
            4,
        ),
        "wall_seconds": round(elapsed, 3),
        "drain_clean": drain_clean,
        "server_counters": scraped,
    }
    return metrics


_REQ_RE = re.compile(r"^([a-z_]+)\s*(==|>=|<=|>|<)\s*([0-9.]+)$")


def check_requirements(
    requires: list[str], aggregate: dict
) -> list[str]:
    """Evaluate ``--require`` expressions against the aggregate metrics."""
    failures = []
    ops = {
        "==": lambda a, b: a == b,
        ">=": lambda a, b: a >= b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        "<": lambda a, b: a < b,
    }
    for spec in requires:
        m = _REQ_RE.match(spec.strip())
        if m is None:
            failures.append(f"unparseable --require {spec!r}")
            continue
        key, op, raw = m.groups()
        if key not in aggregate or aggregate[key] is None:
            failures.append(f"--require {spec!r}: metric {key!r} missing")
            continue
        if not ops[op](float(aggregate[key]), float(raw)):
            failures.append(
                f"--require {spec!r} failed: {key}={aggregate[key]}"
            )
    return failures


def aggregate_metrics(per_run: list[dict]) -> dict:
    """Fold per-run metrics into the gate-facing aggregate."""
    agg: dict = {
        "sent": sum(r["metrics"]["sent"] for r in per_run),
        "completed": sum(r["metrics"]["completed"] for r in per_run),
        "dropped": sum(r["metrics"]["dropped"] for r in per_run),
        "dedup_hits": sum(r["metrics"]["dedup_hits"] for r in per_run),
        "deadline_misses": sum(
            r["metrics"]["deadline_misses"] for r in per_run
        ),
    }
    completed = max(1, agg["completed"])
    agg["verified_fraction"] = round(
        sum(
            r["metrics"]["verified_fraction"] * r["metrics"]["completed"]
            for r in per_run
        )
        / completed,
        4,
    )
    agg["certificate_fraction"] = round(
        sum(
            r["metrics"]["certificate_fraction"] * r["metrics"]["completed"]
            for r in per_run
        )
        / completed,
        4,
    )
    drains = [r["metrics"]["drain_clean"] for r in per_run
              if r["metrics"]["drain_clean"] is not None]
    agg["drain_clean"] = float(all(drains)) if drains else None
    return agg


def render_markdown(per_run: list[dict], aggregate: dict) -> str:
    lines = [
        "# Load harness summary",
        "",
        "Open-loop generator (scripts/load_harness.py); rates are offered "
        "vs achieved over the run's wall clock. See docs/SERVICE.md.",
        "",
        "| run | workers | offered rps | achieved rps | sent | dropped "
        "| dedup hit-rate | p50 (s) | p99 (s) | deadline miss | degraded "
        "| verified |",
        "|---|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for entry in per_run:
        cfg, m = entry["config"], entry["metrics"]
        lines.append(
            f"| {cfg['name']} | {cfg.get('workers', '—')} "
            f"| {m['offered_rate_rps']} | {m['achieved_rate_rps']} "
            f"| {m['sent']} | {m['dropped']} | {m['dedup_hit_rate']} "
            f"| {m['latency_p50_seconds']} | {m['latency_p99_seconds']} "
            f"| {m['deadline_miss_fraction']} | {m['degraded_fraction']} "
            f"| {m['verified_fraction']} |"
        )
    lines += [
        "",
        f"Aggregate: {aggregate['completed']}/{aggregate['sent']} completed, "
        f"{aggregate['dropped']} dropped, {aggregate['dedup_hits']} dedup "
        f"hits, {aggregate['deadline_misses']} deadline misses, verified "
        f"fraction {aggregate['verified_fraction']}.",
        "",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--table", type=Path, default=None,
                    help="run-table JSON (list of run objects); default: "
                         "the built-in two-run table")
    ap.add_argument("--quick", action="store_true",
                    help="single short 4-worker run (the CI smoke shape)")
    ap.add_argument("--url", default=None,
                    help="target an already-running service instead of "
                         "starting one per run (workers column is then "
                         "informational)")
    ap.add_argument("--jsonl", type=Path, default=None,
                    help="write one JSON row per request here")
    ap.add_argument("--summary-out", type=Path, default=None,
                    help=f"write the {SUMMARY_SCHEMA} summary JSON here")
    ap.add_argument("--md-out", type=Path, default=None,
                    help="write the markdown summary table here")
    ap.add_argument("--require", action="append", default=[],
                    metavar="EXPR",
                    help="aggregate gate, e.g. dropped==0 or dedup_hits>0 "
                         "(repeatable; nonzero exit on failure)")
    args = ap.parse_args(argv)

    if args.table is not None:
        table = json.loads(args.table.read_text())
        if not isinstance(table, list) or not table:
            print("error: run table must be a nonempty JSON list",
                  file=sys.stderr)
            return 2
    elif args.quick:
        table = QUICK_TABLE
    else:
        table = DEFAULT_TABLE

    pool = build_instance_pool()
    rec = RunRecorder()
    per_run = []
    for run in table:
        print(f"load_harness: run {run['name']!r} "
              f"({run['rate_rps']} rps x {run['duration_seconds']}s, "
              f"workers={run.get('workers')})", flush=True)
        metrics = run_one(run, args.url, pool, rec)
        per_run.append({"config": run, "metrics": metrics})
        print(f"  -> {metrics['completed']}/{metrics['sent']} ok, "
              f"{metrics['dropped']} dropped, "
              f"dedup {metrics['dedup_hits']}, "
              f"p50 {metrics['latency_p50_seconds']}s "
              f"p99 {metrics['latency_p99_seconds']}s", flush=True)

    aggregate = aggregate_metrics(per_run)
    summary = {
        "schema": SUMMARY_SCHEMA,
        "quick": bool(args.quick),
        "runs": per_run,
        "aggregate": aggregate,
    }
    if args.jsonl is not None:
        args.jsonl.write_text(
            "\n".join(json.dumps(r, sort_keys=True) for r in rec.rows) + "\n"
        )
    if args.summary_out is not None:
        args.summary_out.write_text(json.dumps(summary, indent=2) + "\n")
    md = render_markdown(per_run, aggregate)
    if args.md_out is not None:
        args.md_out.write_text(md)
    else:
        print(md)

    failures = check_requirements(args.require, aggregate)
    for f in failures:
        print(f"load_harness: GATE FAILED: {f}", file=sys.stderr)
    if not failures and args.require:
        print(f"load_harness: all {len(args.require)} gates passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
