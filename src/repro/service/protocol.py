"""Wire protocol of the kRSP solve service.

One JSON request schema (``krsp-service/1``) covers both kinds of work
the server accepts:

* ``solve`` — a full kRSP instance, inline (:mod:`repro.graph.io` dict
  form) or by the canonical hash of an instance the server has already
  seen, optionally overriding the query fields (``s, t, k,
  delay_bound``) over the stored graph;
* ``resolve`` — an ``instance-delta/1`` churn delta against the online
  session the server keeps per solved instance (docs/ONLINE.md), served
  warm through :func:`repro.online.resolve` when possible.

Every request additionally carries scheduling metadata (``tenant``,
``priority``), an anytime ``deadline_seconds`` that becomes the worker's
:class:`repro.robustness.SolveBudget`, and the polynomial-variant ``eps``.

Canonicalization is the load-bearing part: :func:`canonical_instance`
round-trips the inline instance through the strict
:func:`repro.graph.io` validators and re-serializes it, so two clients
posting the *same logical instance* with different key orders, integer
widths, or float spellings produce byte-identical canonical JSON — and
therefore the same :func:`instance_digest`, which is what in-flight
request deduplication keys on (:func:`request_key`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.errors import InputError
from repro.graph.io import instance_from_dict, instance_to_dict

#: Request schema tag every submission must carry.
REQUEST_SCHEMA = "krsp-service/1"

#: Result schema tag of a completed job's body.
RESULT_SCHEMA = "krsp-service-result/1"

#: Ack schema tag returned for ``wait: false`` submissions.
ACK_SCHEMA = "krsp-service-ack/1"

#: Work kinds the service schedules.
KINDS = ("solve", "resolve")

# -- request/job lifecycle states ----------------------------------------

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_DEGRADED = "degraded"
STATE_FAILED = "failed"

#: States a job can never leave.
TERMINAL_STATES = frozenset({STATE_DONE, STATE_DEGRADED, STATE_FAILED})

#: Full lifecycle, in order of progress.
STATES = (STATE_QUEUED, STATE_RUNNING, STATE_DONE, STATE_DEGRADED,
          STATE_FAILED)

#: Priority band accepted from clients (higher = dispatched earlier
#: within a tenant). Clamped rather than rejected so a misconfigured
#: client degrades to best-effort instead of erroring.
PRIORITY_MIN, PRIORITY_MAX = -2, 2


@dataclass(frozen=True)
class SolveRequest:
    """One parsed, validated, canonicalized service request.

    ``instance`` is always the canonical dict form after
    :func:`parse_request` (for by-hash submissions it is filled in by the
    server from its instance store before scheduling). ``instance_hash``
    is the digest of that canonical form.
    """

    kind: str
    tenant: str
    priority: int
    instance: dict[str, Any] | None
    instance_hash: str | None
    overrides: dict[str, int] | None
    delta: dict[str, Any] | None
    eps: tuple[float, float] | float | None
    deadline_seconds: float | None
    wait: bool = True
    chaos: str | None = None


def canonical_instance(data: dict[str, Any]) -> dict[str, Any]:
    """Validate an inline instance dict and return its canonical form.

    Round-trips through the strict :mod:`repro.graph.io` parser so a
    malformed instance fails here (HTTP 400 territory) instead of inside
    a worker, and so the canonical dict is independent of how the client
    spelled it.
    """
    g, s, t, k, bound = instance_from_dict(data)
    return instance_to_dict(g, s, t, k, bound)


def instance_digest(canonical: dict[str, Any]) -> str:
    """SHA-256 of an instance's canonical JSON (sorted keys, no spaces)."""
    blob = json.dumps(canonical, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def apply_overrides(
    canonical: dict[str, Any], overrides: dict[str, int]
) -> dict[str, Any]:
    """A new canonical instance with query fields replaced.

    ``overrides`` may set any of ``s, t, k, delay_bound`` over the stored
    graph; the result is re-validated (an override pointing ``s`` outside
    the vertex range fails like any bad instance).
    """
    merged = dict(canonical)
    for key, value in overrides.items():
        merged[key] = value
    return canonical_instance(merged)


def _opt_float(data: dict[str, Any], key: str, *, lo: float = 0.0) -> float | None:
    value = data.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InputError(f"request {key} must be a number")
    value = float(value)
    if value < lo:
        raise InputError(f"request {key} must be >= {lo}")
    return value


def parse_request(data: Any, *, allow_chaos: bool = False) -> SolveRequest:
    """Parse and validate one submission body (raises :class:`InputError`).

    ``allow_chaos`` gates the test-only ``chaos`` field (worker fault
    injection); servers started without test hooks strip it.
    """
    if not isinstance(data, dict):
        raise InputError("request body must be a JSON object")
    if data.get("schema") != REQUEST_SCHEMA:
        raise InputError(
            f"unsupported request schema {data.get('schema')!r} "
            f"(expected {REQUEST_SCHEMA!r})"
        )
    kind = data.get("kind", "solve")
    if kind not in KINDS:
        raise InputError(f"unknown request kind {kind!r} (expected {KINDS})")

    tenant = data.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
        raise InputError("tenant must be a nonempty string of <= 64 chars")

    priority = data.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise InputError("priority must be an integer")
    priority = max(PRIORITY_MIN, min(PRIORITY_MAX, priority))

    eps_raw = data.get("eps")
    eps: tuple[float, float] | float | None
    if eps_raw is None:
        eps = None
    elif isinstance(eps_raw, (int, float)) and not isinstance(eps_raw, bool):
        if eps_raw <= 0:
            raise InputError("eps must be positive")
        eps = float(eps_raw)
    elif (isinstance(eps_raw, (list, tuple)) and len(eps_raw) == 2
          and all(isinstance(e, (int, float)) and not isinstance(e, bool)
                  for e in eps_raw)):
        if any(e <= 0 for e in eps_raw):
            raise InputError("eps components must be positive")
        eps = (float(eps_raw[0]), float(eps_raw[1]))
    else:
        raise InputError("eps must be a positive number or a pair")

    deadline = _opt_float(data, "deadline_seconds")
    wait = data.get("wait", True)
    if not isinstance(wait, bool):
        raise InputError("wait must be a boolean")

    instance = data.get("instance")
    instance_hash = data.get("instance_hash")
    if instance is not None and instance_hash is not None:
        raise InputError("give instance or instance_hash, not both")
    if instance is None and instance_hash is None:
        raise InputError("request needs an instance or an instance_hash")
    if instance_hash is not None and (
        not isinstance(instance_hash, str) or len(instance_hash) != 64
    ):
        raise InputError("instance_hash must be a 64-char hex digest")

    overrides_raw = data.get("overrides")
    overrides: dict[str, int] | None = None
    if overrides_raw is not None:
        if not isinstance(overrides_raw, dict):
            raise InputError("overrides must be an object")
        unknown = set(overrides_raw) - {"s", "t", "k", "delay_bound"}
        if unknown:
            raise InputError(f"unknown override fields {sorted(unknown)}")
        overrides = {}
        for key, value in overrides_raw.items():
            if isinstance(value, bool) or not isinstance(value, int):
                raise InputError(f"override {key} must be an integer")
            overrides[key] = value

    delta = data.get("delta")
    if kind == "resolve":
        if instance_hash is None:
            raise InputError("resolve requests address a session by "
                             "instance_hash (solve it first)")
        if not isinstance(delta, dict):
            raise InputError("resolve requests need an instance-delta/1 "
                             "delta object")
        if eps is not None:
            raise InputError("resolve is incompatible with eps (online "
                             "sessions carry the (1, 2) guarantee; see "
                             "docs/ONLINE.md)")
        if overrides is not None:
            raise InputError("resolve does not take overrides (churn the "
                             "session with delta ops instead)")
    elif delta is not None:
        raise InputError("solve requests do not take a delta")

    if instance is not None:
        instance = canonical_instance(instance)
        if overrides:
            instance = apply_overrides(instance, overrides)
            overrides = None
        instance_hash = instance_digest(instance)

    chaos = data.get("chaos") if allow_chaos else None
    if chaos is not None and chaos not in ("exit", "sleep"):
        raise InputError(f"unknown chaos hook {chaos!r}")

    return SolveRequest(
        kind=kind,
        tenant=tenant,
        priority=priority,
        instance=instance,
        instance_hash=instance_hash,
        overrides=overrides,
        delta=delta,
        eps=eps,
        deadline_seconds=deadline,
        wait=wait,
        chaos=chaos,
    )


def request_key(req: SolveRequest, session_version: int = 0) -> str:
    """Dedup key: requests with this key in flight share one execution.

    Everything that can change the *answer* is part of the key (kind,
    canonical instance hash, delta, eps, deadline bucket, session
    version for resolves); scheduling metadata (tenant, priority, wait)
    deliberately is not — two tenants asking the same question share one
    solve, which is the point of dedup.

    Deadlines are bucketed to one decimal second: requests whose budgets
    differ by less than that would produce equivalent results anyway,
    and exact-float keying would make dedup uselessly fragile.
    """
    deadline_bucket = (
        None if req.deadline_seconds is None
        else round(req.deadline_seconds, 1)
    )
    blob = json.dumps(
        {
            "kind": req.kind,
            "instance_hash": req.instance_hash,
            "delta": req.delta,
            "eps": req.eps,
            "deadline": deadline_bucket,
            "session_version": session_version if req.kind == "resolve" else 0,
            "chaos": req.chaos,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()
