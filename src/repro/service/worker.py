"""Worker-process entry point of the solve service.

:func:`run_job` is the single picklable function the server submits to
its (spawn-context) :class:`~concurrent.futures.ProcessPoolExecutor`.
It receives one plain-dict job payload, runs the solve or resolve under
a :class:`repro.robustness.SolveBudget` derived from the request's
*absolute* deadline (queue wait has already been charged against it),
verifies the result against the original instance with
:func:`repro.core.verify.verify_solution`, and returns a plain dict —
nothing crossing the process boundary is a live object.

Lifecycle records go into the job's status journal (the PR 5 CRC-framed
format): the server writes ``queued`` when it accepts the job, the
worker appends ``running`` on pickup and a terminal record on exit, so
``GET /v1/status`` can be answered by tailing the journal even while
the job is deep inside a solve — and a worker that dies mid-job leaves
a journal whose last record is ``running``, which is exactly how the
dispatcher distinguishes a crash from a slow solve.

Outcome taxonomy mirrors the anytime layer: a deadline miss is a
``degraded`` *result* (best valid solution found, certificate attached),
never an exception; only invalid input or an infeasible instance is
``failed``.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro import obs
from repro.core.krsp import solve_krsp
from repro.core.verify import verify_solution
from repro.errors import ReproError
from repro.graph.io import instance_from_dict, instance_to_dict
from repro.online.deltas import delta_from_dict
from repro.online.engine import (
    resolve,
    start_online,
    state_from_dict,
    state_to_dict,
)
from repro.robustness.anytime import STATUS_OK, make_certificate
from repro.robustness.budget import SolveBudget
from repro.robustness.journal import JournalWriter
from repro.service.protocol import (
    STATE_DEGRADED,
    STATE_DONE,
    STATE_FAILED,
    STATE_RUNNING,
)


def warm_probe(seconds: float = 0.0) -> int:
    """No-op task the server fans out at startup to pre-spawn workers."""
    time.sleep(seconds)
    return os.getpid()


def _budget_from_deadline(deadline_ts: float | None) -> SolveBudget | None:
    """Remaining wall budget at pickup time (absolute epoch deadline)."""
    if deadline_ts is None:
        return None
    return SolveBudget(deadline_seconds=max(0.0, deadline_ts - time.time()))


def _solution_payload(sol: Any) -> dict[str, Any]:
    """Wire form of a :class:`~repro.core.krsp.KRSPSolution`."""
    cert = sol.certificate
    if cert is None:
        # Warm resolves and rebuilt sessions may carry a bare solution;
        # the service contract is that every response proves itself.
        cert = make_certificate(
            sol.cost, sol.delay, sol.delay_bound, sol.cost_lower_bound
        )
    return {
        "paths": [[int(e) for e in p] for p in sol.paths],
        "cost": int(sol.cost),
        "delay": int(sol.delay),
        "delay_bound": int(sol.delay_bound),
        "delay_feasible": bool(sol.delay_feasible),
        "status": sol.status,
        "provider": sol.provider,
        "iterations": int(sol.iterations),
        "scaled": bool(sol.scaled),
        "cost_lower_bound": (
            None if sol.cost_lower_bound is None else float(sol.cost_lower_bound)
        ),
        "certificate": cert.as_dict(),
    }


def _verify(instance: dict[str, Any], sol: Any) -> dict[str, Any]:
    """Re-check the solution against the *original* instance dict.

    ``check_bounds=False``: the LP lower bound was already certified
    inside the solve; re-deriving it here would double the service's
    latency for no additional trust. Structural validity and exact
    cost/delay totals are recomputed from scratch.
    """
    g, s, t, k, delay_bound = instance_from_dict(instance)
    report = verify_solution(
        g, s, t, k, delay_bound, sol.paths,
        check_bounds=False,
        claimed_cost=sol.cost,
        claimed_delay=sol.delay,
    )
    # A delay-budget miss the solution *declared* (delay_feasible=False,
    # negative certificate slack) is a degraded answer, not a lie; any
    # other issue — structural, or totals disagreeing with the claim —
    # blocks verification.
    blocking = [
        issue for issue in report.issues
        if not (issue.startswith("delay ") and not sol.delay_feasible)
    ]
    return {
        "valid": bool(report.valid),
        "delay_feasible": bool(report.delay_feasible),
        "cost": None if report.cost is None else int(report.cost),
        "delay": None if report.delay is None else int(report.delay),
        "issues": list(report.issues),
        "verified": bool(report.valid) and not blocking,
    }


def run_job(payload: dict[str, Any]) -> dict[str, Any]:
    """Execute one service job; always returns a result dict.

    ``payload`` keys: ``job_id, kind, instance, state, delta, eps,
    deadline_ts, journal_path, fsync, chaos, chaos_seconds``.
    :class:`~repro.errors.ReproError` maps to a ``failed`` result;
    anything else propagates (the dispatcher treats an escaped exception
    the same way, so a worker bug cannot masquerade as a clean answer).
    """
    journal, _ = JournalWriter.reopen(
        payload["journal_path"], fsync=bool(payload.get("fsync", False))
    )
    started = time.perf_counter()
    try:
        journal.append({"kind": "status", "state": STATE_RUNNING,
                        "pid": os.getpid()})
        chaos = payload.get("chaos")
        if chaos == "exit":
            # Fault injection: die like a seg-faulted worker (no journal
            # terminal record, no Python-level cleanup).
            os._exit(42)
        if chaos == "sleep":
            time.sleep(float(payload.get("chaos_seconds", 1.0)))

        budget = _budget_from_deadline(payload.get("deadline_ts"))
        try:
            result = _run_kind(payload, budget)
        except ReproError as exc:
            result = {
                "state": STATE_FAILED,
                "error": f"{type(exc).__name__}: {exc}",
                "solution": None,
                "verification": None,
                "session_state": None,
                "counters": {},
            }
        result["elapsed_seconds"] = round(time.perf_counter() - started, 6)
        result["worker_pid"] = os.getpid()
        journal.append({
            "kind": "status",
            "state": result["state"],
            "error": result.get("error"),
        })
        return result
    finally:
        journal.close()


def _run_kind(
    payload: dict[str, Any], budget: SolveBudget | None
) -> dict[str, Any]:
    """Dispatch on job kind; shared result assembly."""
    with obs.session(label=f"service-job-{payload.get('job_id', '?')}") as tel:
        if payload["kind"] == "solve":
            instance = payload["instance"]
            g, s, t, k, delay_bound = instance_from_dict(instance)
            eps = payload.get("eps")
            if isinstance(eps, list):
                eps = (float(eps[0]), float(eps[1]))
            if eps is None:
                # Budget-free of eps: open an online session so later
                # resolve requests against this hash start warm.
                state = start_online(
                    g, s, t, k, delay_bound, budget=budget, copy=False
                )
                sol = state.solution
                session_state = state_to_dict(state)
            else:
                sol = solve_krsp(
                    g, s, t, k, delay_bound, eps=eps, budget=budget
                )
                session_state = None
        else:  # resolve
            state = state_from_dict(payload["state"])
            delta = delta_from_dict(payload["delta"])
            sol = resolve(state, delta, budget=budget)
            inst = state.instance
            instance = instance_to_dict(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
            )
            session_state = state_to_dict(state)

        verification = _verify(instance, sol)
        state_name = (
            STATE_DONE
            if sol.status == STATUS_OK and verification["verified"]
            else STATE_DEGRADED
        )
        return {
            "state": state_name,
            "error": None,
            "solution": _solution_payload(sol),
            "verification": verification,
            "session_state": session_state,
            "instance": instance if payload["kind"] == "resolve" else None,
            "counters": dict(tel.counters),
        }
