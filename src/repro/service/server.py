"""kRSP-as-a-service: the asyncio solve server.

One process, three moving parts:

* an ``asyncio.start_server`` HTTP front end (stdlib-only, one request
  per connection) accepting ``POST /v1/solve`` submissions and serving
  ``GET /v1/status|result/<job>``, ``/metrics`` and ``/healthz``;
* an admission pipeline — parse/canonicalize (:mod:`.protocol`), dedup
  identical in-flight work by :func:`~repro.service.protocol.request_key`,
  journal ``queued``, enqueue into the
  :class:`~repro.service.scheduler.WeightedFairQueue`;
* a dispatcher pumping the queue into a **spawn**-context
  :class:`~concurrent.futures.ProcessPoolExecutor` (the server process
  runs threads and holds locks; forking it could deadlock children),
  with online sessions serialized per instance hash through the
  :class:`~repro.service.scheduler.SessionGate`.

Invariants the tests lean on:

* **Dedup is byte-exact.** A job's result body is serialized once;
  every subscriber — original and deduped alike — receives the *same
  bytes object*. Whether a response was deduped is reported out-of-band
  (``X-Krsp-Dedup`` header), never in the body.
* **Deadline misses are results, not errors.** A solve that runs out of
  budget returns HTTP 200 with ``state: degraded`` and a certificate
  explaining itself; HTTP 5xx is reserved for the server being unable
  to answer at all.
* **A dead worker never takes the service down.** ``BrokenProcessPool``
  respawns the pool (generation-guarded, so a crash that breaks many
  in-flight futures respawns once) and retries each affected job once;
  a job that kills its worker twice fails alone.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import multiprocessing
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import InputError
from repro.obs._state import Telemetry
from repro.obs.promtext import render_session
from repro.obs.server import MetricsPublisher, MetricsServer, attach_metrics
from repro.robustness.journal import JournalWriter, read_journal
from repro.service.protocol import (
    ACK_SCHEMA,
    RESULT_SCHEMA,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    TERMINAL_STATES,
    SolveRequest,
    parse_request,
    request_key,
)
from repro.service.scheduler import SessionGate, WeightedFairQueue
from repro.service.worker import run_job, warm_probe

#: Request-body cap (canonical instances of the eval sizes fit easily).
MAX_BODY_BYTES = 32 * 1024 * 1024

_HTTP_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 403: "Forbidden",
    404: "Not Found", 405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    spool_dir: str | Path | None = None
    metrics_port: int | None = None
    default_deadline: float | None = None
    max_queue: int = 256
    max_jobs_kept: int = 1024
    tenant_weights: dict[str, int] = field(default_factory=dict)
    allow_chaos: bool = False
    fsync_journal: bool = False
    warm: bool = True


@dataclass
class Job:
    """One scheduled unit of work (shared by all deduped subscribers)."""

    job_id: str
    request: SolveRequest
    key: str
    journal_path: Path
    deadline_ts: float | None
    submitted: float
    done: asyncio.Event
    state: str = STATE_QUEUED
    result: dict[str, Any] | None = None
    result_bytes: bytes | None = None
    subscribers: int = 1
    retried: bool = False
    queue_wait: float = 0.0


class SolveService:
    """The server object; drive it with :func:`serve` or in tests via
    :class:`ServiceThread`."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self._tel = Telemetry(label="service")
        self._queue = WeightedFairQueue()
        for tenant, weight in config.tenant_weights.items():
            self._queue.set_weight(tenant, weight)
        self._gate = SessionGate()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._instances: dict[str, dict[str, Any]] = {}
        self._sessions: dict[str, dict[str, Any]] = {}
        self._running = 0
        self._draining = False
        self._seq = 0
        self._executor: ProcessPoolExecutor | None = None
        self._executor_gen = 0
        self._server: asyncio.base_events.Server | None = None
        self._publisher: MetricsPublisher | None = None
        self._metrics_server: MetricsServer | None = None
        if config.spool_dir is None:
            self._spool_tmp = tempfile.TemporaryDirectory(prefix="krsp-svc-")
            self.spool = Path(self._spool_tmp.name)
        else:
            self._spool_tmp = None
            self.spool = Path(config.spool_dir)
            self.spool.mkdir(parents=True, exist_ok=True)

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener, spawn + optionally warm the worker pool."""
        self._make_executor()
        if self.config.warm:
            await self._warm_pool()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        if self.config.metrics_port is not None:
            self._publisher, self._metrics_server = attach_metrics(
                self.config.metrics_port, self._tel, "service"
            )

    def _make_executor(self) -> None:
        # spawn, never fork: this process runs the asyncio loop plus
        # publisher threads holding locks — a forked child could inherit
        # a held lock and deadlock on first telemetry flush.
        ctx = multiprocessing.get_context("spawn")
        self._executor = ProcessPoolExecutor(
            max_workers=self.config.workers, mp_context=ctx
        )

    async def _warm_pool(self) -> None:
        """Pay worker spawn cost up front, not on the first request.

        Each probe sleeps briefly so the pool fans the batch out across
        all ``workers`` processes instead of reusing the first one.
        """
        loop = asyncio.get_running_loop()
        probes = [
            loop.run_in_executor(self._executor, warm_probe, 0.05)
            for _ in range(self.config.workers)
        ]
        await asyncio.gather(*probes)

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def begin_drain(self) -> None:
        """Stop admitting: new submissions get 503, queued work finishes."""
        self._draining = True
        self._tel.set_gauge("service.draining", 1.0)

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait for every accepted job to reach a terminal state."""
        self.begin_drain()

        async def _wait() -> None:
            while any(
                j.state not in TERMINAL_STATES for j in self._jobs.values()
            ):
                await asyncio.sleep(0.02)

        try:
            await asyncio.wait_for(_wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def stop(self) -> None:
        """Tear everything down (call after :meth:`drain`)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self._publisher is not None:
            self._publisher.close()
        if self._metrics_server is not None:
            self._metrics_server.close()
        if self._spool_tmp is not None:
            self._spool_tmp.cleanup()

    # -- admission --------------------------------------------------------

    def _next_job_id(self) -> str:
        self._seq += 1
        return f"job-{self._seq:06d}"

    def _submit(self, req: SolveRequest) -> tuple[Job, bool]:
        """Admit a parsed request; returns ``(job, deduped)``.

        Raises :class:`InputError` for addressing errors (unknown hash /
        session) — the HTTP layer maps those to 404.
        """
        if req.instance is None:
            stored = self._instances.get(req.instance_hash or "")
            if req.kind == "solve":
                if stored is None:
                    raise _Unknown(f"unknown instance_hash {req.instance_hash}")
                req = dataclasses.replace(req, instance=stored)
                if req.overrides:
                    from repro.service.protocol import (
                        apply_overrides,
                        instance_digest,
                    )

                    inst = apply_overrides(stored, req.overrides)
                    req = dataclasses.replace(
                        req, instance=inst, overrides=None,
                        instance_hash=instance_digest(inst),
                    )
            elif req.instance_hash not in self._sessions:
                raise _Unknown(
                    f"no online session for {req.instance_hash} "
                    "(solve it first)"
                )
        if req.instance is not None and req.instance_hash is not None:
            self._instances.setdefault(req.instance_hash, req.instance)

        version = 0
        if req.kind == "resolve":
            version = self._sessions[req.instance_hash]["version"]
        key = request_key(req, session_version=version)

        existing = self._inflight.get(key)
        if existing is not None and existing.state not in TERMINAL_STATES:
            existing.subscribers += 1
            self._tel.add_counter("service.dedup.hits", 1)
            return existing, True

        deadline = req.deadline_seconds
        if deadline is None:
            deadline = self.config.default_deadline
        job_id = self._next_job_id()
        job = Job(
            job_id=job_id,
            request=req,
            key=key,
            journal_path=self.spool / f"{job_id}.journal",
            deadline_ts=None if deadline is None else time.time() + deadline,
            submitted=time.perf_counter(),
            done=asyncio.Event(),
        )
        writer = JournalWriter.fresh(
            job.journal_path,
            instance={"instance_hash": req.instance_hash, "kind": req.kind},
            config={"tenant": req.tenant, "priority": req.priority,
                    "deadline_seconds": deadline},
            fsync=self.config.fsync_journal,
        )
        writer.append({"kind": "status", "state": STATE_QUEUED})
        writer.close()
        self._jobs[job.job_id] = job
        self._inflight[key] = job
        self._queue.push(req.tenant, req.priority, job)
        self._tel.set_gauge("service.queue_depth", float(len(self._queue)))
        self._evict_jobs()
        self._pump()
        return job, False

    def _evict_jobs(self) -> None:
        if len(self._jobs) <= self.config.max_jobs_kept:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self.config.max_jobs_kept:
                break
            if self._jobs[job_id].state in TERMINAL_STATES:
                del self._jobs[job_id]

    # -- dispatch ---------------------------------------------------------

    def _gate_key(self, job: Job) -> str | None:
        """Session key a job must hold exclusively while running."""
        req = job.request
        if req.kind == "resolve":
            return req.instance_hash
        if req.eps is None:
            # eps-free solves (re)open the online session for their hash.
            return req.instance_hash
        return None

    def _pump(self) -> None:
        """Move queued jobs onto free workers (event-loop thread only)."""
        while self._running < self.config.workers and len(self._queue):
            job = self._queue.pop()
            if job is None:  # pragma: no cover - len() guard above
                break
            gate_key = self._gate_key(job)
            if gate_key is not None and not self._gate.admit(gate_key, job):
                continue  # parked; released when the session frees up
            self._running += 1
            asyncio.get_running_loop().create_task(self._run_job(job))
        self._tel.set_gauge("service.queue_depth", float(len(self._queue)))
        self._tel.set_gauge("service.inflight", float(self._running))

    async def _run_job(self, job: Job) -> None:
        job.state = STATE_RUNNING
        job.queue_wait = time.perf_counter() - job.submitted
        self._tel.observe_hist("service.queue_wait", job.queue_wait)
        loop = asyncio.get_running_loop()
        payload = self._payload_for(job)
        gen = self._executor_gen
        try:
            result = await loop.run_in_executor(
                self._executor, run_job, payload
            )
        except BrokenProcessPool:
            self._respawn(gen)
            if not job.retried:
                job.retried = True
                self._tel.add_counter("service.worker_retries", 1)
                self._finish_running(job)
                self._requeue(job)
                return
            result = {
                "state": STATE_FAILED,
                "error": "worker process died twice running this job",
                "solution": None, "verification": None,
                "session_state": None, "counters": {},
                "elapsed_seconds": 0.0,
            }
            self._append_terminal(job, result)
        except Exception as exc:  # worker bug: fail the job, not the server
            result = {
                "state": STATE_FAILED,
                "error": f"{type(exc).__name__}: {exc}",
                "solution": None, "verification": None,
                "session_state": None, "counters": {},
                "elapsed_seconds": 0.0,
            }
            self._append_terminal(job, result)
        self._finish_running(job)
        self._finalize(job, result)

    def _finish_running(self, job: Job) -> None:
        self._running -= 1
        gate_key = self._gate_key(job)
        if gate_key is not None:
            for parked in self._gate.release(gate_key):
                self._queue.push(
                    parked.request.tenant, parked.request.priority, parked
                )
        self._pump()

    def _requeue(self, job: Job) -> None:
        job.state = STATE_QUEUED
        self._queue.push(job.request.tenant, job.request.priority, job)
        self._pump()

    def _respawn(self, gen: int) -> None:
        """Replace a broken pool exactly once per breakage."""
        if self._executor_gen != gen:
            return  # a sibling future already respawned this generation
        self._executor_gen += 1
        self._tel.add_counter("service.worker_respawns", 1)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self._make_executor()

    def _append_terminal(self, job: Job, result: dict[str, Any]) -> None:
        """Journal a terminal record the worker could not write itself."""
        writer, _ = JournalWriter.reopen(
            job.journal_path, fsync=self.config.fsync_journal
        )
        try:
            writer.append({
                "kind": "status",
                "state": result["state"],
                "error": result.get("error"),
            })
        finally:
            writer.close()

    def _payload_for(self, job: Job) -> dict[str, Any]:
        req = job.request
        payload: dict[str, Any] = {
            "job_id": job.job_id,
            "kind": req.kind,
            "instance": req.instance,
            "eps": req.eps,
            "deadline_ts": job.deadline_ts,
            "journal_path": str(job.journal_path),
            "fsync": self.config.fsync_journal,
            "chaos": req.chaos,
        }
        if req.kind == "resolve":
            payload["state"] = self._sessions[req.instance_hash]["state"]
            payload["delta"] = req.delta
        return payload

    def _finalize(self, job: Job, result: dict[str, Any]) -> None:
        req = job.request
        job.state = result["state"]
        job.result = result
        self._tel.add_counter(f"service.completed.{job.state}", 1)
        self._tel.add_counter("service.requests_finished", 1)

        sol = result.get("solution")
        cert = (sol or {}).get("certificate") or {}
        if cert.get("exhausted_reason") == "deadline":
            self._tel.add_counter("service.deadline_misses", 1)
        for name, n in (result.get("counters") or {}).items():
            self._tel.add_counter(name, int(n))
        self._tel.observe_hist(
            "service.solve", float(result.get("elapsed_seconds", 0.0))
        )
        self._tel.observe_hist(
            "service.request", time.perf_counter() - job.submitted
        )

        session_state = result.get("session_state")
        if session_state is not None and req.instance_hash is not None:
            prior = self._sessions.get(req.instance_hash)
            self._sessions[req.instance_hash] = {
                "state": session_state,
                "version": (prior["version"] + 1 if prior else 1),
            }
            self._tel.set_gauge("service.sessions", float(len(self._sessions)))

        body = {
            "schema": RESULT_SCHEMA,
            "job_id": job.job_id,
            "kind": req.kind,
            "state": job.state,
            "instance_hash": req.instance_hash,
            "error": result.get("error"),
            "solution": sol,
            "verification": result.get("verification"),
            "elapsed_seconds": result.get("elapsed_seconds"),
            "queue_wait_seconds": round(job.queue_wait, 6),
        }
        # Serialized exactly once: all deduped subscribers get these bytes.
        job.result_bytes = json.dumps(
            body, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        job.done.set()

    # -- HTTP front end ---------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=30.0
                )
            except _HttpError as exc:
                await self._respond(
                    writer, exc.status, {"error": exc.message}
                )
                return
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError):
                return
            await self._route(writer, method, path, body)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            raise _HttpError(400, "malformed request line")
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise _HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: dict[str, Any] | bytes,
        headers: dict[str, str] | None = None,
        content_type: str = "application/json",
    ) -> None:
        if isinstance(body, dict):
            payload = json.dumps(body, sort_keys=True).encode("utf-8")
        else:
            payload = body
        reason = _HTTP_REASONS.get(status, "")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
    ) -> None:
        if method == "GET" and path == "/healthz":
            await self._respond(writer, 200, self._health_body())
            return
        if method == "GET" and path == "/metrics":
            text = render_session(self._tel)
            await self._respond(
                writer, 200, text.encode("utf-8"),
                content_type="text/plain; version=0.0.4",
            )
            return
        if method == "GET" and path.startswith("/v1/status/"):
            await self._get_status(writer, path.rsplit("/", 1)[1])
            return
        if method == "GET" and path.startswith("/v1/result/"):
            await self._get_result(writer, path.rsplit("/", 1)[1])
            return
        if path == "/v1/solve":
            if method != "POST":
                await self._respond(
                    writer, 405, {"error": "POST required"}
                )
                return
            await self._post_solve(writer, body)
            return
        self._tel.add_counter("service.rejected.not_found", 1)
        await self._respond(writer, 404, {"error": f"no route {path}"})

    def _health_body(self) -> dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "workers": self.config.workers,
            "queue_depth": len(self._queue),
            "queue_by_tenant": self._queue.depth_by_tenant(),
            "inflight": self._running,
            "sessions": len(self._sessions),
            "jobs": len(self._jobs),
        }

    async def _post_solve(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        self._tel.add_counter("service.requests", 1)
        if self._draining:
            self._tel.add_counter("service.rejected.draining", 1)
            await self._respond(
                writer, 503, {"error": "server is draining"}
            )
            return
        if len(self._queue) >= self.config.max_queue:
            self._tel.add_counter("service.rejected.queue_full", 1)
            await self._respond(
                writer, 429,
                {"error": f"queue full ({self.config.max_queue})"},
            )
            return
        try:
            data = json.loads(body.decode("utf-8"))
            req = parse_request(data, allow_chaos=self.config.allow_chaos)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._tel.add_counter("service.rejected.bad_request", 1)
            await self._respond(
                writer, 400, {"error": f"body is not JSON: {exc}"}
            )
            return
        except InputError as exc:
            self._tel.add_counter("service.rejected.bad_request", 1)
            await self._respond(writer, 400, {"error": str(exc)})
            return
        try:
            job, deduped = self._submit(req)
        except _Unknown as exc:
            self._tel.add_counter("service.rejected.unknown", 1)
            await self._respond(writer, 404, {"error": str(exc)})
            return
        headers = {
            "X-Krsp-Job": job.job_id,
            "X-Krsp-Dedup": "hit" if deduped else "miss",
        }
        if not req.wait:
            await self._respond(
                writer, 202,
                {
                    "schema": ACK_SCHEMA,
                    "job_id": job.job_id,
                    "state": job.state,
                    "instance_hash": req.instance_hash,
                    "deduped": deduped,
                },
                headers,
            )
            return
        await job.done.wait()
        assert job.result_bytes is not None
        headers["X-Krsp-State"] = job.state
        await self._respond(writer, 200, job.result_bytes, headers)

    async def _get_status(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        job = self._jobs.get(job_id)
        if job is None:
            self._tel.add_counter("service.rejected.unknown", 1)
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        # Tail the status journal: survives even if this process restarts
        # with the same spool, and shows the worker's pid transitions.
        transitions: list[dict[str, Any]] = []
        try:
            doc = read_journal(job.journal_path)
            transitions = [
                {k: v for k, v in rec.items() if k != "kind"}
                for rec in doc.of_kind("status")
            ]
        except (OSError, InputError):  # pragma: no cover - spool raced
            pass
        await self._respond(
            writer, 200,
            {
                "job_id": job_id,
                "state": job.state,
                "subscribers": job.subscribers,
                "transitions": transitions,
            },
        )

    async def _get_result(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        job = self._jobs.get(job_id)
        if job is None:
            self._tel.add_counter("service.rejected.unknown", 1)
            await self._respond(writer, 404, {"error": f"no job {job_id}"})
            return
        if job.state not in TERMINAL_STATES:
            await self._respond(
                writer, 202,
                {"schema": ACK_SCHEMA, "job_id": job_id, "state": job.state},
            )
            return
        assert job.result_bytes is not None
        await self._respond(
            writer, 200, job.result_bytes, {"X-Krsp-State": job.state}
        )


class _Unknown(Exception):
    """Addressing error: unknown instance hash or session (HTTP 404)."""


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


async def serve(config: ServiceConfig, *, ready: "threading.Event | None" = None,
                shutdown: "asyncio.Event | None" = None) -> None:
    """Run a service until ``shutdown`` is set; drains before returning."""
    service = SolveService(config)
    await service.start()
    if ready is not None:
        ready.set()
    if shutdown is None:
        shutdown = asyncio.Event()
    try:
        await shutdown.wait()
        await service.drain(timeout=60.0)
    finally:
        await service.stop()


class ServiceThread:
    """A service on a background thread — the test/harness harness.

    Starts its own event loop, waits until the listener is bound, and
    exposes the service for white-box assertions. ``stop()`` drains and
    joins.
    """

    def __init__(self, config: ServiceConfig | None = None, **kw: Any) -> None:
        self.config = config or ServiceConfig(**kw)
        self.service: SolveService | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._shutdown: asyncio.Event | None = None
        self._thread = threading.Thread(
            target=self._run, name="krsp-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=120.0):
            raise RuntimeError("service failed to start within 120s")

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._shutdown = asyncio.Event()
        self.service = SolveService(self.config)

        async def _main() -> None:
            await self.service.start()
            self._ready.set()
            await self._shutdown.wait()

        try:
            self._loop.run_until_complete(_main())
        finally:
            self._loop.close()

    @property
    def url(self) -> str:
        assert self.service is not None
        return self.service.url

    def call(self, fn: Any, *args: Any) -> Any:
        """Run ``fn(*args)`` on the service loop; returns its result."""
        assert self._loop is not None
        if asyncio.iscoroutine(fn) or asyncio.iscoroutinefunction(fn):
            fut = asyncio.run_coroutine_threadsafe(
                fn(*args) if callable(fn) else fn, self._loop
            )
            return fut.result(timeout=120.0)
        done = threading.Event()
        box: list[Any] = []

        def _invoke() -> None:
            box.append(fn(*args))
            done.set()

        self._loop.call_soon_threadsafe(_invoke)
        done.wait(timeout=120.0)
        return box[0] if box else None

    def begin_drain(self) -> None:
        self.call(self.service.begin_drain)

    def stop(self, drain: bool = True) -> None:
        if self._loop is None or not self._thread.is_alive():
            return
        if drain:
            self.call(self.service.drain, 60.0)
        fut = asyncio.run_coroutine_threadsafe(
            self.service.stop(), self._loop
        )
        fut.result(timeout=30.0)
        self._loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join(timeout=30.0)
