"""Thin stdlib HTTP client for the solve service.

Used by the load harness, the CLI, and the test suite. Deliberately
dumb: every helper is a blocking ``urllib`` round-trip returning
``(status_code, body)`` — concurrency belongs to the caller (the load
harness runs these on a thread pool; tests drive them from plain
threads). Nothing here raises on HTTP error statuses: a 4xx/5xx is a
*response*, and the callers assert on it.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any

from repro.service.protocol import REQUEST_SCHEMA

#: Per-request socket timeout; generous because wait=true submissions
#: hold the connection for the whole solve.
DEFAULT_TIMEOUT = 120.0


def request_json(
    url: str,
    body: dict[str, Any] | None = None,
    *,
    timeout: float = DEFAULT_TIMEOUT,
) -> tuple[int, Any, dict[str, str]]:
    """One HTTP exchange: ``(status, parsed JSON body, headers)``.

    ``body`` present → POST, else GET. A non-2xx status is returned, not
    raised; a body that is not JSON comes back as the raw text.
    """
    data = None
    headers = {}
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            raw = resp.read()
            status = resp.status
            hdrs = {k.lower(): v for k, v in resp.headers.items()}
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        status = exc.code
        hdrs = {k.lower(): v for k, v in exc.headers.items()}
    try:
        parsed = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        parsed = raw.decode("utf-8", "replace")
    return status, parsed, hdrs


def solve_request(
    instance: dict[str, Any] | None = None,
    *,
    kind: str = "solve",
    instance_hash: str | None = None,
    tenant: str = "default",
    priority: int = 0,
    eps: Any = None,
    deadline_seconds: float | None = None,
    delta: dict[str, Any] | None = None,
    wait: bool = True,
    chaos: str | None = None,
) -> dict[str, Any]:
    """Assemble a ``krsp-service/1`` submission body."""
    body: dict[str, Any] = {
        "schema": REQUEST_SCHEMA,
        "kind": kind,
        "tenant": tenant,
        "priority": priority,
        "wait": wait,
    }
    if instance is not None:
        body["instance"] = instance
    if instance_hash is not None:
        body["instance_hash"] = instance_hash
    if eps is not None:
        body["eps"] = eps
    if deadline_seconds is not None:
        body["deadline_seconds"] = deadline_seconds
    if delta is not None:
        body["delta"] = delta
    if chaos is not None:
        body["chaos"] = chaos
    return body


def submit(
    base_url: str, body: dict[str, Any], *, timeout: float = DEFAULT_TIMEOUT
) -> tuple[int, Any, dict[str, str]]:
    """POST a submission body to ``/v1/solve``."""
    return request_json(base_url + "/v1/solve", body, timeout=timeout)


def status(base_url: str, job_id: str) -> tuple[int, Any, dict[str, str]]:
    """GET a job's lifecycle transitions."""
    return request_json(base_url + f"/v1/status/{job_id}")


def result(base_url: str, job_id: str) -> tuple[int, Any, dict[str, str]]:
    """GET a job's result (202 body while still in flight)."""
    return request_json(base_url + f"/v1/result/{job_id}")


def healthz(base_url: str) -> tuple[int, Any, dict[str, str]]:
    """GET the health/queue snapshot."""
    return request_json(base_url + "/healthz")


def scrape_metrics(base_url: str) -> str:
    """GET ``/metrics`` as raw Prometheus text."""
    with urllib.request.urlopen(base_url + "/metrics", timeout=10.0) as resp:
        return resp.read().decode("utf-8")
