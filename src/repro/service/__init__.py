"""kRSP-as-a-service: a multi-tenant async solve server (docs/SERVICE.md).

Turns the library's one-shot :func:`repro.core.krsp.solve_krsp` and the
online :func:`repro.online.resolve` engine into a long-running HTTP
service: requests are canonicalized and deduplicated
(:mod:`.protocol`), scheduled fairly across tenants (:mod:`.scheduler`),
executed on a spawn-context worker pool under per-request anytime
budgets (:mod:`.worker`), and every response carries an independently
verified certificate. :mod:`.server` is the asyncio front end behind
``repro serve``; :mod:`.client` the stdlib client the load harness and
tests use.
"""

from repro.service.client import (
    healthz,
    request_json,
    result,
    scrape_metrics,
    solve_request,
    status,
    submit,
)
from repro.service.protocol import (
    ACK_SCHEMA,
    KINDS,
    PRIORITY_MAX,
    PRIORITY_MIN,
    REQUEST_SCHEMA,
    RESULT_SCHEMA,
    STATES,
    TERMINAL_STATES,
    SolveRequest,
    apply_overrides,
    canonical_instance,
    instance_digest,
    parse_request,
    request_key,
)
from repro.service.scheduler import SessionGate, WeightedFairQueue
from repro.service.server import (
    Job,
    ServiceConfig,
    ServiceThread,
    SolveService,
    serve,
)
from repro.service.worker import run_job

__all__ = [
    "REQUEST_SCHEMA",
    "RESULT_SCHEMA",
    "ACK_SCHEMA",
    "KINDS",
    "STATES",
    "TERMINAL_STATES",
    "PRIORITY_MIN",
    "PRIORITY_MAX",
    "SolveRequest",
    "parse_request",
    "request_key",
    "canonical_instance",
    "instance_digest",
    "apply_overrides",
    "WeightedFairQueue",
    "SessionGate",
    "ServiceConfig",
    "SolveService",
    "ServiceThread",
    "Job",
    "serve",
    "run_job",
    "solve_request",
    "request_json",
    "submit",
    "status",
    "result",
    "healthz",
    "scrape_metrics",
]
