"""Multi-tenant admission queue: weighted round-robin × priority.

The service must stay fair under heavy mixed traffic: one tenant
flooding the queue with ten thousand requests cannot be allowed to
starve everyone else's single urgent solve. The classic answer — the one
interactive-latency schedulers converge on — is two axes:

* **across tenants**: smooth weighted round-robin (the nginx/LVS
  algorithm). Each pop, every tenant with queued work gains its weight
  in credit; the richest tenant is served and pays back the total active
  weight. Over any window, tenant ``a`` with weight 2 gets twice the
  dispatch slots of tenant ``b`` with weight 1 — *regardless of how many
  requests each has queued* — and the interleave is maximally spread
  (a, a, b, a, a, b, ...) rather than bursty.
* **within a tenant**: a priority heap (higher ``priority`` first), FIFO
  inside a priority band via a monotonic sequence number.

The structure is deliberately lock-free and synchronous: the service's
asyncio dispatcher is the only writer, and tests drive it directly. It
is deterministic — same push sequence, same pop sequence — which the
fairness unit tests exploit to assert exact interleavings.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Hashable


class WeightedFairQueue:
    """Per-tenant weighted round-robin over priority-ordered items."""

    def __init__(self, default_weight: int = 1) -> None:
        if default_weight < 1:
            raise ValueError("default_weight must be >= 1")
        self._default_weight = default_weight
        self._weights: dict[str, int] = {}
        self._credit: dict[str, float] = {}
        self._heaps: dict[str, list[tuple[int, int, Any]]] = {}
        self._seq = itertools.count()
        self._len = 0

    # -- configuration ---------------------------------------------------

    def set_weight(self, tenant: str, weight: int) -> None:
        """Give ``tenant`` ``weight`` dispatch shares (default 1)."""
        if weight < 1:
            raise ValueError("tenant weight must be >= 1")
        self._weights[tenant] = int(weight)

    def weight(self, tenant: str) -> int:
        """The dispatch share of ``tenant``."""
        return self._weights.get(tenant, self._default_weight)

    # -- queue discipline ------------------------------------------------

    def push(self, tenant: str, priority: int, item: Any) -> None:
        """Enqueue ``item`` for ``tenant`` (higher priority pops first)."""
        heap = self._heaps.get(tenant)
        if heap is None:
            heap = self._heaps[tenant] = []
            self._credit.setdefault(tenant, 0.0)
        heapq.heappush(heap, (-int(priority), next(self._seq), item))
        self._len += 1

    def pop(self) -> Any | None:
        """Dequeue the next item under the fairness discipline.

        Returns ``None`` when empty. Ties in credit break by tenant name
        so the schedule is a pure function of the push history.
        """
        active = sorted(t for t, h in self._heaps.items() if h)
        if not active:
            return None
        total = sum(self.weight(t) for t in active)
        for t in active:
            self._credit[t] += self.weight(t)
        chosen = min(active, key=lambda t: (-self._credit[t], t))
        self._credit[chosen] -= total
        _, _, item = heapq.heappop(self._heaps[chosen])
        if not self._heaps[chosen]:
            del self._heaps[chosen]
            # Keep the credit entry: a tenant that drains and re-queues
            # continues from its earned position instead of resetting.
        self._len -= 1
        return item

    def __len__(self) -> int:
        return self._len

    def depth_by_tenant(self) -> dict[str, int]:
        """Queued item count per tenant (for the health endpoint)."""
        return {t: len(h) for t, h in sorted(self._heaps.items()) if h}


class SessionGate:
    """Serializes jobs that mutate the same keyed session.

    Online resolves against one instance hash must run one at a time
    (each consumes the previous solution's residual); independent
    sessions run concurrently. The dispatcher asks :meth:`admit` before
    running a job — a busy key parks the job, and :meth:`release` hands
    back anything parked behind it, in arrival order.
    """

    def __init__(self) -> None:
        self._busy: set[Hashable] = set()
        self._parked: dict[Hashable, list[Any]] = {}

    def admit(self, key: Hashable, job: Any) -> bool:
        """True if ``job`` may run now; False if parked behind ``key``."""
        if key in self._busy:
            self._parked.setdefault(key, []).append(job)
            return False
        self._busy.add(key)
        return True

    def release(self, key: Hashable) -> list[Any]:
        """Mark ``key`` idle; return parked jobs to re-enqueue (in order)."""
        self._busy.discard(key)
        return self._parked.pop(key, [])

    @property
    def busy_keys(self) -> set[Hashable]:
        """Keys currently holding a running job."""
        return set(self._busy)

    def parked_count(self) -> int:
        """Total jobs parked behind busy keys."""
        return sum(len(v) for v in self._parked.values())
