"""k edge-disjoint min-sum paths (Suurballe / Suurballe–Tarjan [20, 21]).

The delay-free special case of kRSP: minimize total cost over ``k``
edge-disjoint ``s -> t`` paths, no delay constraint. Polynomially solvable;
the paper uses it both as a cited special case and (implicitly) as the
source of the ``cost <= C_OPT`` starting solutions its analysis leans on.

Implementation is a thin, named wrapper over
:func:`repro.flow.mincost.min_cost_k_flow` (successive shortest paths with
potentials *is* the Suurballe–Tarjan scheme generalized to ``k``), followed
by flow decomposition. Kept as its own module because it is a public
baseline with its own identity in the experiment index (E4, E9).
"""

from __future__ import annotations

import numpy as np

from repro.flow.decompose import decompose_flow
from repro.flow.mincost import min_cost_k_flow
from repro.graph.digraph import DiGraph


def suurballe_k_paths(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    weight: np.ndarray | None = None,
) -> list[list[int]] | None:
    """``k`` edge-disjoint ``s -> t`` paths of minimum total weight.

    Returns the paths as edge-id lists, or ``None`` when fewer than ``k``
    disjoint paths exist. ``weight`` defaults to ``g.cost``; pass
    ``g.delay`` for the min-total-delay variant.

    The decomposition of a min-weight flow contains no cycles when weights
    are strictly positive; with zero-weight edges, zero-weight cycles may
    appear in the flow and are dropped (they cannot change the total).
    """
    res = min_cost_k_flow(g, s, t, k, weight=weight)
    if res is None:
        return None
    paths, cycles = decompose_flow(g, np.nonzero(res.used)[0], s, t)
    # A min-weight flow cannot strictly improve by dropping a cycle, so any
    # cycle present has weight exactly 0 under the optimization weight.
    w = g.cost if weight is None else np.asarray(weight, dtype=np.int64)
    for cyc in cycles:
        assert int(w[np.asarray(cyc, dtype=np.int64)].sum()) == 0, (
            "min-cost flow contained a nonzero-weight cycle"
        )
    return paths
