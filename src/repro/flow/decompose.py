"""Decompose integral unit flows into paths and cycles.

A solution in this library is a set of edge ids whose indicator vector is an
integral ``s``-``t`` flow of value ``k`` (every edge carries 0 or 1 unit).
Such a set decomposes into exactly ``k`` edge-disjoint ``s -> t`` paths plus
a collection of edge-disjoint cycles (flow decomposition theorem). The
kRSP cancellation loop calls this after every ``oplus`` application; because
input graphs have nonnegative cost and delay, stripping the cycles never
increases either criterion (DESIGN.md, "Edge-id flows").
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.validate import degree_imbalance


def decompose_flow(
    g: DiGraph,
    edge_ids,
    s: int,
    t: int,
) -> tuple[list[list[int]], list[list[int]]]:
    """Split a unit-capacity flow edge set into ``(paths, cycles)``.

    ``edge_ids`` must form an integral flow: imbalance ``+k`` at ``s``,
    ``-k`` at ``t`` (``k >= 0``), zero elsewhere; each edge id at most once.

    Paths are peeled greedily from ``s`` (each traversal marks edges
    consumed); whatever remains is perfectly balanced and is peeled into
    cycles. Deterministic: at each vertex the lowest remaining edge id is
    taken, so repeated runs decompose identically.
    """
    materialized = [int(e) for e in edge_ids]
    eids = sorted(set(materialized))
    if len(eids) != len(materialized):
        raise GraphError("flow edge set contains duplicate edge ids")
    bal = degree_imbalance(g, eids)
    k = int(bal[s])
    if s == t:
        if bal.any():
            raise GraphError("s == t requires a perfectly balanced edge set")
        k = 0
    else:
        expect = np.zeros(g.n, dtype=np.int64)
        expect[s] = k
        expect[t] = -k
        if k < 0 or not np.array_equal(bal, expect):
            raise GraphError("edge set is not an integral s-t flow")

    # Outgoing adjacency restricted to the flow edges, as sorted stacks
    # (pop from the end => take the smallest remaining id by reversing).
    # Endpoints are gathered once so the peel loops touch only Python ints.
    eid_arr = np.asarray(eids, dtype=np.int64)
    tails = g.tail[eid_arr].tolist()
    head_of = dict(zip(eids, g.head[eid_arr].tolist()))
    out: dict[int, list[int]] = {}
    for e, u in zip(eids, tails):
        out.setdefault(u, []).append(e)
    for stack in out.values():
        stack.sort(reverse=True)

    remaining = len(eids)

    def walk_from(start: int, stop_at: int | None) -> list[int]:
        """Follow flow edges from ``start`` until ``stop_at`` (or until the
        walk returns to ``start`` when ``stop_at is None``)."""
        nonlocal remaining
        walk: list[int] = []
        cur = start
        while True:
            stack = out.get(cur)
            if not stack:
                raise GraphError("flow conservation violated during peel")
            e = stack.pop()
            walk.append(e)
            remaining -= 1
            cur = head_of[e]
            if stop_at is not None and cur == stop_at:
                return walk
            if stop_at is None and cur == start:
                return walk
            if len(walk) > len(eids):
                raise GraphError("peel did not terminate")

    paths = [walk_from(s, t) for _ in range(k)]

    cycles: list[list[int]] = []
    # Remaining edges are balanced; peel cycles anchored at the smallest
    # remaining tail vertex. Stacks only pop, so that vertex is
    # non-decreasing — an advancing pointer replaces the per-cycle min-scan
    # (which was quadratic in the number of cycles).
    anchors = sorted(out)
    ai = 0
    while remaining:
        while not out[anchors[ai]]:
            ai += 1
        cycles.append(walk_from(anchors[ai], None))
    return paths, cycles


def flow_from_paths(paths: list[list[int]]) -> list[int]:
    """Flatten disjoint paths back into a flow edge set (sorted ids)."""
    eids: list[int] = []
    for p in paths:
        eids.extend(p)
    if len(set(eids)) != len(eids):
        raise GraphError("paths are not edge-disjoint")
    return sorted(eids)


def strip_improving_cycles(
    g: DiGraph,
    paths: list[list[int]],
    cycles: list[list[int]],
) -> list[list[int]]:
    """Sanity layer over decomposition: in a nonnegative-weight graph every
    stripped cycle has ``cost >= 0`` and ``delay >= 0``, so dropping them is
    always safe. Verifies that and returns the paths unchanged.

    Raises :class:`GraphError` when handed a cycle that would have improved
    a criterion — that indicates the caller is stripping cycles from a graph
    with negative weights, which is a logic error.
    """
    for cyc in cycles:
        if g.cost_of(cyc) < 0 or g.delay_of(cyc) < 0:
            raise GraphError(
                "refusing to strip a negative-weight cycle; decompose in the "
                "original (nonnegative) graph only"
            )
    return paths
