"""Flow substrate: max-flow feasibility, min-cost k-flow, Suurballe paths,
flow decomposition."""

from repro.flow.maxflow import has_k_disjoint_paths, max_disjoint_paths, max_flow_value
from repro.flow.mincost import MinCostFlowResult, min_cost_k_flow
from repro.flow.suurballe import suurballe_k_paths
from repro.flow.decompose import decompose_flow, flow_from_paths, strip_improving_cycles
from repro.flow.preflow import preflow_max_flow

__all__ = [
    "has_k_disjoint_paths",
    "max_disjoint_paths",
    "max_flow_value",
    "MinCostFlowResult",
    "min_cost_k_flow",
    "suurballe_k_paths",
    "decompose_flow",
    "flow_from_paths",
    "strip_improving_cycles",
    "preflow_max_flow",
]
