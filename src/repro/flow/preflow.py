"""Push–relabel (preflow) max-flow on unit-capacity graphs.

An independent second opinion for the flow layer: the BFS augmenting-path
solver (:mod:`repro.flow.maxflow`) is simple and fast at this library's
scale, but a reproduction repository benefits from *diverse redundancy* —
two algorithms with disjoint failure modes cross-checked property-style
(see ``tests/test_flow_preflow.py``). FIFO vertex selection with the gap
heuristic; capacities are all one, so flow state is a per-edge direction
bit exactly like the BFS solver's.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro import obs
from repro.errors import GraphError
from repro.graph.digraph import DiGraph


def preflow_max_flow(g: DiGraph, s: int, t: int) -> tuple[int, np.ndarray]:
    """Maximum s-t flow value under unit capacities, via push–relabel.

    Returns ``(value, used)`` where ``used`` is the boolean per-edge flow
    mask (decomposable by :func:`repro.flow.decompose.decompose_flow`).
    """
    if s == t:
        raise GraphError("s and t must differ")
    n, m = g.n, g.m
    used = np.zeros(m, dtype=bool)
    excess = np.zeros(n, dtype=np.int64)
    height = np.zeros(n, dtype=np.int64)
    out_starts, out_eids = g.out_csr()
    in_starts, in_eids = g.in_csr()
    tail, head = g.tail, g.head

    height[s] = n
    active: deque[int] = deque()

    # Saturate all source edges.
    for e in out_eids[out_starts[s] : out_starts[s + 1]]:
        e = int(e)
        v = int(head[e])
        if v == s:
            continue
        used[e] = True
        excess[v] += 1
        excess[s] -= 1
        if v != t and excess[v] == 1:
            active.append(v)

    def residual_neighbors(u: int):
        """Yield (edge, other, is_forward) residual moves from u."""
        for e in out_eids[out_starts[u] : out_starts[u + 1]]:
            e = int(e)
            if not used[e]:
                yield e, int(head[e]), True
        for e in in_eids[in_starts[u] : in_starts[u + 1]]:
            e = int(e)
            if used[e]:
                yield e, int(tail[e]), False

    guard = 0
    guard_limit = 4 * n * n * max(m, 1) + 16
    # Push/relabel work counters accumulate locally and flush once, keeping
    # the telemetry-disabled cost in the hot loop to bare integer adds.
    pushes = 0
    relabels = 0
    try:
        while active:
            guard += 1
            if guard > guard_limit:
                raise GraphError("push-relabel exceeded its operation bound")
            u = active.popleft()
            while excess[u] > 0:
                pushed = False
                for e, v, fwd in residual_neighbors(u):
                    if height[u] == height[v] + 1:
                        used[e] = fwd
                        excess[u] -= 1
                        excess[v] += 1
                        pushes += 1
                        if v not in (s, t) and excess[v] == 1:
                            active.append(v)
                        pushed = True
                        if excess[u] == 0:
                            break
                if excess[u] == 0:
                    break
                if not pushed:
                    # Relabel to one above the lowest residual neighbour. A
                    # vertex holding excess always has a residual edge (the one
                    # the excess arrived on is reversible), and heights stay
                    # below 2n in a correct run — violations are bugs, not
                    # instance properties.
                    floor = None
                    for _, v, _ in residual_neighbors(u):
                        floor = height[v] if floor is None else min(floor, int(height[v]))
                    if floor is None:
                        raise GraphError("excess vertex without residual edge")
                    height[u] = floor + 1
                    relabels += 1
                    if height[u] > 2 * n:
                        raise GraphError("push-relabel height exceeded 2n")
    finally:
        obs.add("preflow.pushes", pushes)
        obs.add("preflow.relabels", relabels)

    value = int(used[np.nonzero(tail == s)[0]].sum()) - int(
        used[np.nonzero(head == s)[0]].sum()
    )
    return value, used
