"""Minimum-cost k-flow with unit capacities via successive shortest paths.

This is the Suurballe–Tarjan scheme generalized to ``k`` paths: augment one
unit at a time along a cheapest residual path, keeping Dijkstra applicable
through Johnson potentials (reduced weights stay nonnegative even though
residual back-edges carry negated weights). ``k`` augmentations yield a
minimum-weight integral ``s``-``t`` flow of value ``k`` — and therefore, after
decomposition, ``k`` edge-disjoint paths of minimum total weight
(the *min-sum disjoint path problem*, polynomially solvable [Suurballe 74;
Suurballe–Tarjan 84], which the paper lists as the delay-free special case
of kRSP).

The weight array is a parameter: the Lagrangian phase-1 provider calls this
with ``den*c + num*d`` blends, the min-sum baseline with ``c`` alone, and the
delay-minimal probe with ``d``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro._util.heap import AddressableHeap
from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.paths.dijkstra import INF


@dataclass
class MinCostFlowResult:
    """Outcome of :func:`min_cost_k_flow`.

    Attributes
    ----------
    used:
        Boolean edge mask forming the integral k-flow.
    weight:
        Total weight of the flow under the weight array supplied.
    potentials:
        Final vertex potentials (exact shortest-path distances in the last
        residual) — reusable by callers chaining further augmentations.
    """

    used: np.ndarray
    weight: int
    potentials: np.ndarray


def min_cost_k_flow(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    weight: np.ndarray | None = None,
) -> MinCostFlowResult | None:
    """Minimum-weight integral ``s -> t`` flow of value exactly ``k``.

    Returns ``None`` when fewer than ``k`` edge-disjoint paths exist.
    ``weight`` defaults to ``g.cost`` and must be nonnegative (potentials
    start at zero; negative input weights would need a Bellman–Ford
    bootstrap, which no caller requires).
    """
    w = g.cost if weight is None else np.asarray(weight, dtype=np.int64)
    if len(w) != g.m:
        raise GraphError("weight array length mismatch")
    if g.m and int(w.min()) < 0:
        raise GraphError("min_cost_k_flow requires nonnegative weights")
    if k < 0:
        raise GraphError("k must be nonnegative")
    if s == t:
        raise GraphError("s and t must differ")

    used = np.zeros(g.m, dtype=bool)
    pi = np.zeros(g.n, dtype=np.int64)
    out_starts, out_eids = g.out_csr()
    in_starts, in_eids = g.in_csr()

    # Work counters accumulate locally; one flush on every exit path keeps
    # the telemetry-disabled cost inside the loops to bare integer adds.
    augmentations = 0
    pops = 0
    try:
        for _ in range(k):
            augmented, round_pops, pi = _augment_once(
                g, s, t, w, used, pi, out_starts, out_eids, in_starts, in_eids
            )
            pops += round_pops
            if not augmented:
                return None  # max flow < k
            augmentations += 1
    finally:
        obs.add("mincost.augmentations", augmentations)
        obs.add("mincost.dijkstra_pops", pops)

    total = int(w[np.nonzero(used)[0]].sum())
    return MinCostFlowResult(used=used, weight=total, potentials=pi)


def _augment_once(
    g: DiGraph,
    s: int,
    t: int,
    w: np.ndarray,
    used: np.ndarray,
    pi: np.ndarray,
    out_starts: np.ndarray,
    out_eids: np.ndarray,
    in_starts: np.ndarray,
    in_eids: np.ndarray,
) -> tuple[bool, int, np.ndarray]:
    """One successive-shortest-path augmentation; mutates ``used`` in place.

    Returns ``(augmented, dijkstra_pops, new_potentials)``; ``augmented`` is
    False when ``t`` is unreachable in the residual (max flow exhausted).
    """
    tail, head = g.tail, g.head
    # Dijkstra on the residual graph under reduced weights.
    dist = np.full(g.n, INF, dtype=np.int64)
    # pred packs (edge, direction): +e+1 forward, -(e+1) backward.
    pred = np.zeros(g.n, dtype=np.int64)
    dist[s] = 0
    heap = AddressableHeap(g.n)
    heap.push(s, 0)
    done = np.zeros(g.n, dtype=bool)
    pops = 0
    while heap:
        u, du = heap.pop()
        pops += 1
        done[u] = True
        for e in out_eids[out_starts[u] : out_starts[u + 1]]:
            e = int(e)
            if used[e]:
                continue
            v = int(head[e])
            if done[v]:
                continue
            red = int(w[e]) + int(pi[u]) - int(pi[v])
            if red < 0:
                raise GraphError("negative reduced weight — potentials corrupt")
            nd = du + red
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = e + 1
                heap.push_or_decrease(v, nd)
        for e in in_eids[in_starts[u] : in_starts[u + 1]]:
            e = int(e)
            if not used[e]:
                continue
            v = int(tail[e])
            if done[v]:
                continue
            red = -int(w[e]) + int(pi[u]) - int(pi[v])
            if red < 0:
                raise GraphError("negative reduced weight — potentials corrupt")
            nd = du + red
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = -(e + 1)
                heap.push_or_decrease(v, nd)
    if dist[t] >= INF:
        return False, pops, pi  # max flow exhausted
    # Update potentials; unreached vertices keep pi via dist capped at
    # dist[t] (standard trick keeps future reduced weights valid).
    dt = int(dist[t])
    pi = pi + np.minimum(dist, dt)
    # Augment along pred.
    v = t
    while v != s:
        p = int(pred[v])
        if p > 0:
            e = p - 1
            used[e] = True
            v = int(tail[e])
        else:
            e = -p - 1
            used[e] = False
            v = int(head[e])
    return True, pops, pi
