"""Unit-capacity max-flow for edge-disjoint path feasibility.

kRSP needs exactly one max-flow question answered: *do k edge-disjoint
``s -> t`` paths exist?* With unit capacities, Ford–Fulkerson with BFS
augmentation finds one augmenting path per round in ``O(m)``, so answering
costs ``O(k * m)`` — asymptotically optimal for the sizes this library
targets and far simpler than a general max-flow.

State is a per-edge direction flag: ``used[e]`` means edge ``e`` carries one
unit ``tail -> head``; the residual then admits traversing ``e`` backwards.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro import obs
from repro.graph.digraph import DiGraph


def max_disjoint_paths(
    g: DiGraph,
    s: int,
    t: int,
    limit: int | None = None,
) -> np.ndarray:
    """Compute a maximum set of edge-disjoint ``s -> t`` paths.

    Parameters
    ----------
    limit:
        Stop once this many paths are found (feasibility checks pass
        ``limit=k`` and avoid computing the full max-flow).

    Returns
    -------
    used:
        Boolean array over edges; the ``True`` edges form an integral
        ``s``-``t`` flow of value = the number of paths found. Decompose
        with :func:`repro.flow.decompose.decompose_flow`.
    """
    used = np.zeros(g.m, dtype=bool)
    if s == t:
        return used
    out_starts, out_eids = g.out_csr()
    in_starts, in_eids = g.in_csr()
    tail, head = g.tail, g.head

    value = 0
    while limit is None or value < limit:
        # BFS in the residual graph: forward along unused edges, backward
        # along used ones. pred[v] = (edge, direction) packed: +e+1 forward,
        # -(e+1) backward.
        pred = np.zeros(g.n, dtype=np.int64)
        pred[s] = np.iinfo(np.int64).max  # mark visited
        q: deque[int] = deque([s])
        found = False
        while q and not found:
            u = q.popleft()
            for e in out_eids[out_starts[u] : out_starts[u + 1]]:
                e = int(e)
                if used[e]:
                    continue
                v = int(head[e])
                if pred[v] == 0 and v != s:
                    pred[v] = e + 1
                    if v == t:
                        found = True
                        break
                    q.append(v)
            if found:
                break
            for e in in_eids[in_starts[u] : in_starts[u + 1]]:
                e = int(e)
                if not used[e]:
                    continue
                v = int(tail[e])
                if pred[v] == 0 and v != s:
                    pred[v] = -(e + 1)
                    if v == t:
                        found = True
                        break
                    q.append(v)
        if not found:
            break
        # Augment: flip the path's edges.
        v = t
        while v != s:
            p = int(pred[v])
            if p > 0:
                e = p - 1
                used[e] = True
                v = int(tail[e])
            else:
                e = -p - 1
                used[e] = False
                v = int(head[e])
        value += 1
    obs.add("maxflow.augmentations", value)
    return used


def max_flow_value(g: DiGraph, s: int, t: int, limit: int | None = None) -> int:
    """Number of edge-disjoint ``s -> t`` paths (capped at ``limit``)."""
    used = max_disjoint_paths(g, s, t, limit=limit)
    if s == t:
        return 0
    # Flow value = net used edges out of s.
    out_used = int(used[np.nonzero(g.tail == s)[0]].sum())
    in_used = int(used[np.nonzero(g.head == s)[0]].sum())
    return out_used - in_used


def has_k_disjoint_paths(g: DiGraph, s: int, t: int, k: int) -> bool:
    """Structural feasibility of kRSP: at least ``k`` edge-disjoint paths."""
    if k <= 0:
        return True
    if s == t:
        return False
    return max_flow_value(g, s, t, limit=k) >= k
