"""Seeded adversarial instance generation for the differential oracle.

Two layers:

* **Substrates** — every random family in :mod:`repro.graph.generators`
  (plus the paper's Figure-1 trap gadget) wrapped as seeded builders that
  attach a weight model and a delay budget. Budgets are drawn from the
  *interesting band* (:func:`repro.eval.workloads.interesting_delay_bound`)
  most of the time, but a deterministic fraction of instances is pushed to
  the feasibility boundary (``D`` = minimum achievable delay, or just below
  it, or ``k`` beyond the edge connectivity) so the feasibility-agreement
  checks get exercised, not just the bound checks.
* **Mutations** — relation-free adversarial surgery from
  :mod:`repro.graph.transform`: edge subdivision with random weight splits,
  parallel-edge injection with jittered weights, budget tightening to the
  exact minimum, and Figure-1 gadget grafting across the terminals.

Everything is a pure function of the seed: the same seed always yields the
same instance stream, which is what makes crashers replayable.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro._util.rng import as_rng
from repro.eval.workloads import interesting_delay_bound
from repro.flow.mincost import min_cost_k_flow
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    gnp_digraph,
    grid_digraph,
    layered_dag,
    parallel_chains,
    ring_of_cliques,
    scale_free_digraph,
    waxman_digraph,
)
from repro.graph.transform import (
    graft_at_terminals,
    inject_parallel_edges,
    subdivide_edges,
)
from repro.graph.weights import (
    anticorrelated_weights,
    correlated_weights,
    euclidean_weights,
    uniform_weights,
)
from repro.oracle.instances import OracleInstance

# ---------------------------------------------------------------------------
# Substrates
# ---------------------------------------------------------------------------


def _weighted(g: DiGraph, gen: np.random.Generator) -> DiGraph:
    """Attach one of the position-free weight models, rotated by the rng."""
    model = int(gen.integers(3))
    if model == 0:
        return uniform_weights(g, rng=gen)
    if model == 1:
        return anticorrelated_weights(g, rng=gen)
    return correlated_weights(g, rng=gen)


def _sub_er(gen: np.random.Generator) -> tuple[DiGraph, int, int]:
    n = int(gen.integers(8, 13))
    p = 0.3 + 0.2 * float(gen.random())
    g = _weighted(gnp_digraph(n, p, rng=gen), gen)
    return g, 0, n - 1


def _sub_grid(gen: np.random.Generator) -> tuple[DiGraph, int, int]:
    rows = int(gen.integers(3, 5))
    cols = int(gen.integers(3, 5))
    g, s, t = grid_digraph(rows, cols)
    return _weighted(g, gen), s, t


def _sub_layered(gen: np.random.Generator) -> tuple[DiGraph, int, int]:
    layers = int(gen.integers(3, 5))
    width = int(gen.integers(2, 4))
    g, s, t = layered_dag(layers, width, rng=gen)
    return _weighted(g, gen), s, t


def _sub_ring(gen: np.random.Generator) -> tuple[DiGraph, int, int]:
    n_cliques = int(gen.integers(3, 5))
    size = int(gen.integers(2, 4))
    g, s, t = ring_of_cliques(n_cliques, size, rng=gen, chords=int(gen.integers(3)))
    return _weighted(g, gen), s, t


def _sub_waxman(gen: np.random.Generator) -> tuple[DiGraph, int, int]:
    n = int(gen.integers(9, 13))
    g, pos = waxman_digraph(n, alpha=0.8, beta=0.5, rng=gen)
    g = euclidean_weights(g, pos, delay_scale=20, cost_scale=20, rng=gen)
    return g, 0, n - 1


def _sub_scale_free(gen: np.random.Generator) -> tuple[DiGraph, int, int]:
    n = int(gen.integers(10, 15))
    g = _weighted(scale_free_digraph(n, 2, rng=gen), gen)
    return g, n - 1, 0


def _sub_chains(gen: np.random.Generator) -> tuple[DiGraph, int, int]:
    k = int(gen.integers(2, 4))
    length = int(gen.integers(2, 5))
    g, s, t = parallel_chains(k, length)
    return _weighted(g, gen), s, t


def _sub_figure1(gen: np.random.Generator) -> tuple[DiGraph, int, int]:
    from repro.eval.experiments import figure1_instance

    D = int(gen.integers(3, 41))
    c_opt = int(gen.integers(4, 16))
    g, ids = figure1_instance(D, c_opt)
    return g, ids["s"], ids["t"]


SUBSTRATES: dict[str, Callable[[np.random.Generator], tuple[DiGraph, int, int]]] = {
    "er": _sub_er,
    "grid": _sub_grid,
    "layered": _sub_layered,
    "ring": _sub_ring,
    "waxman": _sub_waxman,
    "scale_free": _sub_scale_free,
    "chains": _sub_chains,
    "figure1": _sub_figure1,
}
"""Name -> seeded builder returning ``(weighted graph, s, t)``."""


# ---------------------------------------------------------------------------
# Mutations
# ---------------------------------------------------------------------------


def _mut_subdivide(inst: OracleInstance, gen: np.random.Generator) -> OracleInstance:
    m = inst.graph.m
    if m == 0:
        return inst
    count = max(1, m // 4)
    eids = gen.choice(m, size=min(count, m), replace=False)
    g2 = subdivide_edges(inst.graph, eids, rng=gen)
    return inst.derive(graph=g2, mutation="subdivide")


def _mut_parallel(inst: OracleInstance, gen: np.random.Generator) -> OracleInstance:
    m = inst.graph.m
    if m == 0:
        return inst
    count = max(1, m // 5)
    eids = gen.choice(m, size=min(count, m), replace=False)
    g2 = inject_parallel_edges(inst.graph, eids, cost_jitter=3, delay_jitter=3, rng=gen)
    return inst.derive(graph=g2, mutation="parallel")


def _mut_tighten(inst: OracleInstance, gen: np.random.Generator) -> OracleInstance:
    """Pull the budget down to the exact minimum achievable total delay —
    the tightest still-feasible instance this topology admits."""
    flow = min_cost_k_flow(inst.graph, inst.s, inst.t, inst.k, weight=inst.graph.delay)
    if flow is None or flow.weight >= inst.delay_bound:
        return inst
    return inst.derive(delay_bound=int(flow.weight), mutation="tighten")


def _mut_graft(inst: OracleInstance, gen: np.random.Generator) -> OracleInstance:
    from repro.eval.experiments import figure1_instance

    D = max(2, min(int(inst.delay_bound), 40))
    gadget, ids = figure1_instance(D, c_opt=int(gen.integers(4, 16)))
    g2 = graft_at_terminals(inst.graph, inst.s, inst.t, gadget, ids["s"], ids["t"])
    return inst.derive(graph=g2, mutation="graft_figure1")


MUTATIONS: dict[str, Callable[[OracleInstance, np.random.Generator], OracleInstance]] = {
    "subdivide": _mut_subdivide,
    "parallel": _mut_parallel,
    "tighten": _mut_tighten,
    "graft_figure1": _mut_graft,
}
"""Name -> relation-free adversarial mutation operator."""


# ---------------------------------------------------------------------------
# The stream
# ---------------------------------------------------------------------------


def make_base_instance(
    substrate: str,
    seed: int,
    boundary_fraction: float = 0.15,
) -> OracleInstance | None:
    """Build one seeded instance of ``substrate``, or ``None`` when the
    draw has no usable budget band.

    A ``boundary_fraction`` share of draws is deliberately placed at (or
    just past) the feasibility boundary instead of inside the interesting
    band.
    """
    gen = as_rng(seed)
    g, s, t = SUBSTRATES[substrate](gen)
    k = int(gen.choice([1, 2, 2, 3])) if substrate != "figure1" else 2
    boundary = float(gen.random()) < boundary_fraction

    flow = min_cost_k_flow(g, s, t, k, weight=g.delay)
    if flow is None:
        if not boundary:
            return None
        # Structurally infeasible on purpose: every solver must agree.
        bound = max(1, int(g.total_delay()))
    elif boundary:
        d_min = int(flow.weight)
        # Half the boundary draws sit exactly at the minimum (feasible,
        # maximally tight), half just below it (delay-infeasible).
        bound = d_min if int(gen.integers(2)) == 0 else max(0, d_min - 1)
    else:
        tightness = 0.25 + 0.5 * float(gen.random())
        band = interesting_delay_bound(g, s, t, k, tightness=tightness)
        if band is None:
            return None
        bound = band
    return OracleInstance(
        graph=g, s=s, t=t, k=k, delay_bound=bound, substrate=substrate, seed=seed
    ).derive()


def instance_stream(
    seed: int,
    substrates: list[str] | None = None,
    mutation_fraction: float = 0.4,
) -> Iterator[OracleInstance]:
    """Endless deterministic stream of (possibly mutated) base instances.

    Substrates round-robin; a ``mutation_fraction`` share of instances gets
    one rotating mutation applied on top. The caller imposes the stopping
    budget.
    """
    names = list(substrates or SUBSTRATES)
    for name in names:
        if name not in SUBSTRATES:
            raise KeyError(f"unknown substrate {name!r}; choose from {sorted(SUBSTRATES)}")
    mut_names = list(MUTATIONS)
    master = as_rng(seed)
    i = 0
    while True:
        sub_seed = int(master.integers(1 << 31))
        inst = make_base_instance(names[i % len(names)], sub_seed)
        if inst is not None:
            gen = as_rng(sub_seed ^ 0x5EED)
            if float(gen.random()) < mutation_fraction:
                mut = MUTATIONS[mut_names[i % len(mut_names)]]
                inst = mut(inst, gen)
            yield inst
        i += 1
