"""Metamorphic transforms: instance rewrites with *provable* answer relations.

A metamorphic transform maps a kRSP instance to a new instance whose exact
optimum relates to the original's in a way a theorem guarantees — no ground
truth needed beyond the relation itself. The differential runner solves both
sides with the exact MILP oracle and fails on any relation breach; each
transformed instance is then *also* pushed through the full per-instance
differential checks, so one base instance buys two adversarial probes.

Relations implemented (``opt`` denotes the exact optimal cost, ``None``
meaning infeasible):

==================  =====================================================
transform            relation
==================  =====================================================
scale_cost(f)        feasibility unchanged; ``opt' == f * opt``
scale_delay(f)       delays and ``D`` scale together; ``opt' == opt``
subdivide            every edge split in two; ``opt' == opt``
split_vertices       k-gate node splitting; ``opt' == opt``
relax_budget         ``D' > D``; feasible stays feasible, ``opt' <= opt``
tighten_budget       ``D' < D``; if feasible', then feasible and
                     ``opt' >= opt``
swap_cost_delay      dual instance with budget = ``opt``; feasible and
                     ``opt' <=`` the primal optimal solution's delay
add_junk             unreachable component appended; ``opt' == opt``
==================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro._util.rng import as_rng
from repro.graph.digraph import DiGraph
from repro.graph.transform import split_vertices, subdivide_edges
from repro.lp.milp import ExactSolution
from repro.oracle.instances import OracleInstance


@dataclass(frozen=True)
class Metamorphosis:
    """A transformed instance plus the relation its optimum must satisfy.

    ``check(base_opt, trans_opt)`` receives the exact solutions of both
    sides (``None`` = infeasible) and returns human-readable relation
    violations (empty when the relation holds).
    """

    name: str
    instance: OracleInstance
    check: Callable[[ExactSolution | None, ExactSolution | None], list[str]]


def _feasibility_must_match(name: str, base, trans) -> list[str]:
    if (base is None) != (trans is None):
        b = "infeasible" if base is None else "feasible"
        tr = "infeasible" if trans is None else "feasible"
        return [f"{name}: base is {b} but transformed is {tr}"]
    return []


def _scale_cost(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis:
    factor = int(gen.choice([2, 3, 7]))
    g2 = inst.graph.with_weights(inst.graph.cost * factor, inst.graph.delay)
    name = "scale_cost"

    def check(b, tr):
        issues = _feasibility_must_match(name, b, tr)
        if b is not None and tr is not None and tr.cost != factor * b.cost:
            issues.append(
                f"{name}: costs scaled by {factor} but optimum went "
                f"{b.cost} -> {tr.cost} (expected {factor * b.cost})"
            )
        return issues

    return Metamorphosis(name, inst.derive(graph=g2, transform=name), check)


def _scale_delay(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis:
    factor = int(gen.choice([2, 3, 5]))
    g2 = inst.graph.with_weights(inst.graph.cost, inst.graph.delay * factor)
    name = "scale_delay"

    def check(b, tr):
        issues = _feasibility_must_match(name, b, tr)
        if b is not None and tr is not None and tr.cost != b.cost:
            issues.append(
                f"{name}: delays and budget scaled by {factor} but optimum "
                f"changed {b.cost} -> {tr.cost}"
            )
        return issues

    return Metamorphosis(
        name,
        inst.derive(graph=g2, delay_bound=inst.delay_bound * factor, transform=name),
        check,
    )


def _subdivide(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis:
    g2 = subdivide_edges(inst.graph, range(inst.graph.m), rng=gen)
    name = "subdivide"

    def check(b, tr):
        issues = _feasibility_must_match(name, b, tr)
        if b is not None and tr is not None and tr.cost != b.cost:
            issues.append(
                f"{name}: edge subdivision changed the optimum "
                f"{b.cost} -> {tr.cost}"
            )
        return issues

    return Metamorphosis(name, inst.derive(graph=g2, transform=name), check)


def _split_vertices(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis:
    split = split_vertices(inst.graph, inst.s, inst.t, gates=inst.k)
    name = "split_vertices"

    def check(b, tr):
        issues = _feasibility_must_match(name, b, tr)
        if b is not None and tr is not None and tr.cost != b.cost:
            issues.append(
                f"{name}: k-gate vertex splitting changed the optimum "
                f"{b.cost} -> {tr.cost}"
            )
        return issues

    return Metamorphosis(
        name,
        inst.derive(graph=split.graph, s=split.s, t=split.t, transform=name),
        check,
    )


def _relax_budget(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis:
    slack = max(1, inst.delay_bound // 4) + int(gen.integers(3))
    name = "relax_budget"

    def check(b, tr):
        issues = []
        if b is not None and tr is None:
            issues.append(f"{name}: relaxing the budget made the instance infeasible")
        if b is not None and tr is not None and tr.cost > b.cost:
            issues.append(
                f"{name}: budget {inst.delay_bound} -> {inst.delay_bound + slack} "
                f"but optimum rose {b.cost} -> {tr.cost}"
            )
        return issues

    return Metamorphosis(
        name, inst.derive(delay_bound=inst.delay_bound + slack, transform=name), check
    )


def _tighten_budget(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis | None:
    if inst.delay_bound == 0:
        return None
    cut = min(inst.delay_bound, max(1, inst.delay_bound // 8))
    name = "tighten_budget"

    def check(b, tr):
        issues = []
        if tr is not None and b is None:
            issues.append(f"{name}: tightening the budget made the instance feasible")
        if b is not None and tr is not None and tr.cost < b.cost:
            issues.append(
                f"{name}: budget {inst.delay_bound} -> {inst.delay_bound - cut} "
                f"but optimum fell {b.cost} -> {tr.cost}"
            )
        return issues

    return Metamorphosis(
        name, inst.derive(delay_bound=inst.delay_bound - cut, transform=name), check
    )


def _swap_cost_delay(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis | None:
    # The dual asks: minimize total delay subject to total cost <= opt.
    # The primal optimum itself witnesses feasibility with value <= its own
    # delay, so the dual optimum cannot exceed it.
    if base is None:
        return None
    primal_delay = base.delay
    g2 = inst.graph.with_weights(inst.graph.delay, inst.graph.cost)
    name = "swap_cost_delay"

    def check(b, tr):
        issues = []
        if tr is None:
            issues.append(
                f"{name}: dual instance infeasible although the primal optimum "
                f"(cost {base.cost}) witnesses it"
            )
        elif tr.cost > primal_delay:
            issues.append(
                f"{name}: dual optimum {tr.cost} exceeds the primal optimal "
                f"solution's delay {primal_delay}"
            )
        return issues

    return Metamorphosis(
        name, inst.derive(graph=g2, delay_bound=base.cost, transform=name), check
    )


def _add_junk(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis:
    g = inst.graph
    extra = int(gen.integers(2, 5))
    base_n = g.n
    tails = [base_n + int(gen.integers(extra)) for _ in range(extra)]
    heads = [base_n + int(gen.integers(extra)) for _ in range(extra)]
    costs = [int(gen.integers(1, 20)) for _ in range(extra)]
    delays = [int(gen.integers(1, 20)) for _ in range(extra)]
    g2 = DiGraph(
        base_n + extra,
        np.concatenate([g.tail, np.array(tails, dtype=np.int64)]),
        np.concatenate([g.head, np.array(heads, dtype=np.int64)]),
        np.concatenate([g.cost, np.array(costs, dtype=np.int64)]),
        np.concatenate([g.delay, np.array(delays, dtype=np.int64)]),
    )
    name = "add_junk"

    def check(b, tr):
        issues = _feasibility_must_match(name, b, tr)
        if b is not None and tr is not None and tr.cost != b.cost:
            issues.append(
                f"{name}: unreachable junk component changed the optimum "
                f"{b.cost} -> {tr.cost}"
            )
        return issues

    return Metamorphosis(name, inst.derive(graph=g2, transform=name), check)


TRANSFORMS: dict[
    str,
    Callable[
        [OracleInstance, np.random.Generator, ExactSolution | None],
        Metamorphosis | None,
    ],
] = {
    "scale_cost": _scale_cost,
    "scale_delay": _scale_delay,
    "subdivide": _subdivide,
    "split_vertices": _split_vertices,
    "relax_budget": _relax_budget,
    "tighten_budget": _tighten_budget,
    "swap_cost_delay": _swap_cost_delay,
    "add_junk": _add_junk,
}
"""Name -> transform factory. Factories may return ``None`` when the
transform does not apply (e.g. the dual needs a feasible base)."""


def apply_transform(
    name: str,
    inst: OracleInstance,
    rng,
    base_exact: ExactSolution | None,
) -> Metamorphosis | None:
    """Instantiate transform ``name`` on ``inst`` (``None`` if inapplicable).

    ``base_exact`` is the exact solution of ``inst`` (``None`` =
    infeasible); transforms that need ground truth (the cost/delay dual)
    consume it, the rest ignore it.
    """
    return TRANSFORMS[name](inst, as_rng(rng), base_exact)
