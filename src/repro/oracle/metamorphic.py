"""Metamorphic transforms: instance rewrites with *provable* answer relations.

A metamorphic transform maps a kRSP instance to a new instance whose exact
optimum relates to the original's in a way a theorem guarantees — no ground
truth needed beyond the relation itself. The differential runner solves both
sides with the exact MILP oracle and fails on any relation breach; each
transformed instance is then *also* pushed through the full per-instance
differential checks, so one base instance buys two adversarial probes.

Relations implemented (``opt`` denotes the exact optimal cost, ``None``
meaning infeasible):

==================  =====================================================
transform            relation
==================  =====================================================
scale_cost(f)        feasibility unchanged; ``opt' == f * opt``
scale_delay(f)       delays and ``D`` scale together; ``opt' == opt``
subdivide            every edge split in two; ``opt' == opt``
split_vertices       k-gate node splitting; ``opt' == opt``
relax_budget         ``D' > D``; feasible stays feasible, ``opt' <= opt``
tighten_budget       ``D' < D``; if feasible', then feasible and
                     ``opt' >= opt``
swap_cost_delay      dual instance with budget = ``opt``; feasible and
                     ``opt' <=`` the primal optimal solution's delay
add_junk             unreachable component appended; ``opt' == opt``
churn_identity       random instance delta + its exact inverse; the
                     round-trip instance has ``opt' == opt``
delta_vs_scratch     short feasibility-preserving churn replayed warm
                     (:func:`repro.online.resolve`) vs from scratch; the
                     warm result must verify and 2-approximate the
                     churned instance's exact optimum
==================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro._util.rng import as_rng
from repro.graph.digraph import DiGraph
from repro.graph.transform import split_vertices, subdivide_edges
from repro.lp.milp import ExactSolution
from repro.oracle.instances import OracleInstance


@dataclass(frozen=True)
class Metamorphosis:
    """A transformed instance plus the relation its optimum must satisfy.

    ``check(base_opt, trans_opt)`` receives the exact solutions of both
    sides (``None`` = infeasible) and returns human-readable relation
    violations (empty when the relation holds).
    """

    name: str
    instance: OracleInstance
    check: Callable[[ExactSolution | None, ExactSolution | None], list[str]]


def _feasibility_must_match(name: str, base, trans) -> list[str]:
    if (base is None) != (trans is None):
        b = "infeasible" if base is None else "feasible"
        tr = "infeasible" if trans is None else "feasible"
        return [f"{name}: base is {b} but transformed is {tr}"]
    return []


def _scale_cost(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis:
    factor = int(gen.choice([2, 3, 7]))
    g2 = inst.graph.with_weights(inst.graph.cost * factor, inst.graph.delay)
    name = "scale_cost"

    def check(b, tr):
        issues = _feasibility_must_match(name, b, tr)
        if b is not None and tr is not None and tr.cost != factor * b.cost:
            issues.append(
                f"{name}: costs scaled by {factor} but optimum went "
                f"{b.cost} -> {tr.cost} (expected {factor * b.cost})"
            )
        return issues

    return Metamorphosis(name, inst.derive(graph=g2, transform=name), check)


def _scale_delay(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis:
    factor = int(gen.choice([2, 3, 5]))
    g2 = inst.graph.with_weights(inst.graph.cost, inst.graph.delay * factor)
    name = "scale_delay"

    def check(b, tr):
        issues = _feasibility_must_match(name, b, tr)
        if b is not None and tr is not None and tr.cost != b.cost:
            issues.append(
                f"{name}: delays and budget scaled by {factor} but optimum "
                f"changed {b.cost} -> {tr.cost}"
            )
        return issues

    return Metamorphosis(
        name,
        inst.derive(graph=g2, delay_bound=inst.delay_bound * factor, transform=name),
        check,
    )


def _subdivide(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis:
    g2 = subdivide_edges(inst.graph, range(inst.graph.m), rng=gen)
    name = "subdivide"

    def check(b, tr):
        issues = _feasibility_must_match(name, b, tr)
        if b is not None and tr is not None and tr.cost != b.cost:
            issues.append(
                f"{name}: edge subdivision changed the optimum "
                f"{b.cost} -> {tr.cost}"
            )
        return issues

    return Metamorphosis(name, inst.derive(graph=g2, transform=name), check)


def _split_vertices(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis:
    split = split_vertices(inst.graph, inst.s, inst.t, gates=inst.k)
    name = "split_vertices"

    def check(b, tr):
        issues = _feasibility_must_match(name, b, tr)
        if b is not None and tr is not None and tr.cost != b.cost:
            issues.append(
                f"{name}: k-gate vertex splitting changed the optimum "
                f"{b.cost} -> {tr.cost}"
            )
        return issues

    return Metamorphosis(
        name,
        inst.derive(graph=split.graph, s=split.s, t=split.t, transform=name),
        check,
    )


def _relax_budget(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis:
    slack = max(1, inst.delay_bound // 4) + int(gen.integers(3))
    name = "relax_budget"

    def check(b, tr):
        issues = []
        if b is not None and tr is None:
            issues.append(f"{name}: relaxing the budget made the instance infeasible")
        if b is not None and tr is not None and tr.cost > b.cost:
            issues.append(
                f"{name}: budget {inst.delay_bound} -> {inst.delay_bound + slack} "
                f"but optimum rose {b.cost} -> {tr.cost}"
            )
        return issues

    return Metamorphosis(
        name, inst.derive(delay_bound=inst.delay_bound + slack, transform=name), check
    )


def _tighten_budget(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis | None:
    if inst.delay_bound == 0:
        return None
    cut = min(inst.delay_bound, max(1, inst.delay_bound // 8))
    name = "tighten_budget"

    def check(b, tr):
        issues = []
        if tr is not None and b is None:
            issues.append(f"{name}: tightening the budget made the instance feasible")
        if b is not None and tr is not None and tr.cost < b.cost:
            issues.append(
                f"{name}: budget {inst.delay_bound} -> {inst.delay_bound - cut} "
                f"but optimum fell {b.cost} -> {tr.cost}"
            )
        return issues

    return Metamorphosis(
        name, inst.derive(delay_bound=inst.delay_bound - cut, transform=name), check
    )


def _swap_cost_delay(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis | None:
    # The dual asks: minimize total delay subject to total cost <= opt.
    # The primal optimum itself witnesses feasibility with value <= its own
    # delay, so the dual optimum cannot exceed it.
    if base is None:
        return None
    primal_delay = base.delay
    g2 = inst.graph.with_weights(inst.graph.delay, inst.graph.cost)
    name = "swap_cost_delay"

    def check(b, tr):
        issues = []
        if tr is None:
            issues.append(
                f"{name}: dual instance infeasible although the primal optimum "
                f"(cost {base.cost}) witnesses it"
            )
        elif tr.cost > primal_delay:
            issues.append(
                f"{name}: dual optimum {tr.cost} exceeds the primal optimal "
                f"solution's delay {primal_delay}"
            )
        return issues

    return Metamorphosis(
        name, inst.derive(graph=g2, delay_bound=base.cost, transform=name), check
    )


def _add_junk(inst: OracleInstance, gen: np.random.Generator, base) -> Metamorphosis:
    g = inst.graph
    extra = int(gen.integers(2, 5))
    base_n = g.n
    tails = [base_n + int(gen.integers(extra)) for _ in range(extra)]
    heads = [base_n + int(gen.integers(extra)) for _ in range(extra)]
    costs = [int(gen.integers(1, 20)) for _ in range(extra)]
    delays = [int(gen.integers(1, 20)) for _ in range(extra)]
    g2 = DiGraph(
        base_n + extra,
        np.concatenate([g.tail, np.array(tails, dtype=np.int64)]),
        np.concatenate([g.head, np.array(heads, dtype=np.int64)]),
        np.concatenate([g.cost, np.array(costs, dtype=np.int64)]),
        np.concatenate([g.delay, np.array(delays, dtype=np.int64)]),
    )
    name = "add_junk"

    def check(b, tr):
        issues = _feasibility_must_match(name, b, tr)
        if b is not None and tr is not None and tr.cost != b.cost:
            issues.append(
                f"{name}: unreachable junk component changed the optimum "
                f"{b.cost} -> {tr.cost}"
            )
        return issues

    return Metamorphosis(name, inst.derive(graph=g2, transform=name), check)


def _churn_identity(
    inst: OracleInstance, gen: np.random.Generator, base
) -> Metamorphosis | None:
    """Churn round-trip: a random delta composed with its exact inverse.

    The resulting instance is the original up to an edge-id permutation
    (:func:`repro.online.deltas.invert_delta` is a certified inverse), so
    feasibility and the exact optimum must be unchanged — this is the
    relation that locks down the delta apply/invert machinery the online
    layer is built on. Any structural drift detected while building the
    round-trip is reported through ``check`` as well, so a broken inverse
    fails the run even before the MILP sides are compared.
    """
    from repro.online.deltas import (
        DemandMove,
        EdgeAddition,
        EdgeRemoval,
        EdgeReweight,
        InstanceDelta,
        apply_delta,
        graphs_equivalent,
        invert_delta,
    )

    g, s, t, k, bound = inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
    if g.n < 2 or g.m < 2:
        return None
    name = "churn_identity"
    hi_c = max(2, int(g.cost.max()) + 1)
    hi_d = max(2, int(g.delay.max()) + 1)
    ops = []
    cur_m = g.m
    for _ in range(int(gen.integers(2, 5))):
        roll = float(gen.random())
        if roll < 0.40 and cur_m:
            ops.append(
                EdgeReweight(
                    int(gen.integers(cur_m)),
                    int(gen.integers(hi_c)),
                    int(gen.integers(hi_d)),
                )
            )
        elif roll < 0.60 and cur_m > 1:
            ops.append(EdgeRemoval(int(gen.integers(cur_m))))
            cur_m -= 1
        elif roll < 0.85:
            tail = int(gen.integers(g.n))
            head = int(gen.integers(g.n))
            if tail == head:
                head = (head + 1) % g.n
            ops.append(
                EdgeAddition(
                    tail, head, int(gen.integers(hi_c)), int(gen.integers(hi_d))
                )
            )
            cur_m += 1
        else:
            ops.append(DemandMove(delay_bound=bound + int(gen.integers(1, 10))))
    delta = InstanceDelta(ops=tuple(ops), label=name)
    g1, s1, t1, k1, d1 = apply_delta(g, s, t, k, bound, delta)
    inverse = invert_delta(g, s, t, k, bound, delta)
    g2, s2, t2, k2, d2 = apply_delta(g1, s1, t1, k1, d1, inverse)

    structural: list[str] = []
    if not graphs_equivalent(g2, g):
        structural.append(
            f"{name}: delta + inverse did not restore the graph "
            f"(m {g.m} -> {g2.m})"
        )
    if (s2, t2, k2, d2) != (s, t, k, bound):
        structural.append(
            f"{name}: delta + inverse did not restore the demand "
            f"({s, t, k, bound} -> {s2, t2, k2, d2})"
        )

    def check(b, tr):
        issues = list(structural)
        issues.extend(_feasibility_must_match(name, b, tr))
        if b is not None and tr is not None and tr.cost != b.cost:
            issues.append(
                f"{name}: churn round-trip changed the optimum "
                f"{b.cost} -> {tr.cost}"
            )
        return issues

    return Metamorphosis(
        name,
        inst.derive(graph=g2, s=s2, t=t2, k=k2, delay_bound=d2, transform=name),
        check,
    )


def _delta_vs_scratch(
    inst: OracleInstance, gen: np.random.Generator, base
) -> Metamorphosis | None:
    """Warm resolve vs scratch solve on one churned instance.

    Draws a short feasibility-preserving churn prefix, replays it through
    an online session (:func:`repro.online.resolve`), and emits the final
    churned instance as the transformed side — whose exact optimum the
    warm path's result must 2-approximate. The warm-vs-scratch agreement
    itself (instance sync, guarantee, feasibility) is asserted eagerly via
    :func:`repro.oracle.differential.run_online_differential`; any failure
    there surfaces through ``check`` alongside the MILP relation.
    """
    from repro.oracle.churn import generate_churn_trace
    from repro.oracle.differential import run_online_differential

    if inst.graph.n < 2 or inst.graph.m < 2:
        return None
    name = "delta_vs_scratch"
    trace = generate_churn_trace(
        inst, int(gen.integers(1, 4)), rng=int(gen.integers(1 << 31))
    )
    if not trace.deltas:
        return None
    diff = run_online_differential(trace)
    online_failures = [f"{name}: [{f.kind}/{f.solver}] {f.message}" for f in diff.failures]
    final = diff.final_instance if diff.final_instance is not None else inst
    warm = diff.final_solution

    def check(b, tr):
        issues = list(online_failures)
        # Churn kept the instance feasible by construction; the exact
        # oracle on the churned side must agree.
        if tr is None:
            issues.append(
                f"{name}: feasibility-preserving churn produced an "
                f"exactly-infeasible instance"
            )
        elif warm is not None:
            # The registered guarantee against the churned optimum: the
            # warm resolve is feasible (so OPT' cannot exceed it) and
            # 2-approximate (Lemma 3), exactly like a cold solve.
            if tr.cost > warm.cost:
                issues.append(
                    f"{name}: churned optimum {tr.cost} exceeds the warm "
                    f"resolve's verified cost {warm.cost}"
                )
            if warm.status == "ok" and warm.cost > 2 * tr.cost:
                issues.append(
                    f"{name}: warm resolve cost {warm.cost} breaks the "
                    f"2-approximation against churned optimum {tr.cost}"
                )
        return issues

    return Metamorphosis(name, final.derive(transform=name), check)


TRANSFORMS: dict[
    str,
    Callable[
        [OracleInstance, np.random.Generator, ExactSolution | None],
        Metamorphosis | None,
    ],
] = {
    "scale_cost": _scale_cost,
    "scale_delay": _scale_delay,
    "subdivide": _subdivide,
    "split_vertices": _split_vertices,
    "relax_budget": _relax_budget,
    "tighten_budget": _tighten_budget,
    "swap_cost_delay": _swap_cost_delay,
    "add_junk": _add_junk,
    "churn_identity": _churn_identity,
    "delta_vs_scratch": _delta_vs_scratch,
}
"""Name -> transform factory. Factories may return ``None`` when the
transform does not apply (e.g. the dual needs a feasible base)."""


def apply_transform(
    name: str,
    inst: OracleInstance,
    rng,
    base_exact: ExactSolution | None,
) -> Metamorphosis | None:
    """Instantiate transform ``name`` on ``inst`` (``None`` if inapplicable).

    ``base_exact`` is the exact solution of ``inst`` (``None`` =
    infeasible); transforms that need ground truth (the cost/delay dual)
    consume it, the rest ignore it.
    """
    return TRANSFORMS[name](inst, as_rng(rng), base_exact)
