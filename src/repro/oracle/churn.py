"""Seeded churn-trace generation for the online re-solving layer.

A *churn trace* is a base kRSP instance plus an ordered sequence of
:class:`~repro.online.deltas.InstanceDelta` batches — the oracle-side twin
of a production edge-churn feed. Traces are pure functions of the seed, so
a red differential run replays forever, and they are biased toward staying
feasible: the generator simulates every candidate op on a private mirror
and rewrites ops that would disconnect the demand (a removal that kills the
last ``k``-th disjoint path becomes a cost drift; a delay-bound jitter never
drops below the minimum achievable total delay) unless ``keep_feasible`` is
switched off. Terminal/k moves are the most disruptive churn class — every
one forces a cold fallback — so they stay behind ``allow_terminal_moves``.

Wire format (``churn-trace/1``)::

    {"schema": "churn-trace/1", "label": ..., "seed": ...,
     "instance": <oracle-instance dict>, "deltas": [<instance-delta/1>, ...]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro._util.atomicio import atomic_write_json
from repro._util.rng import as_rng
from repro.errors import InputError
from repro.flow.mincost import min_cost_k_flow
from repro.graph.digraph import DiGraph
from repro.online.deltas import (
    DeltaOp,
    DemandMove,
    EdgeAddition,
    EdgeRemoval,
    EdgeReweight,
    InstanceDelta,
    apply_delta,
    delta_from_dict,
    delta_to_dict,
)
from repro.oracle.instances import (
    OracleInstance,
    oracle_instance_from_dict,
    oracle_instance_to_dict,
)

CHURN_SCHEMA = "churn-trace/1"


@dataclass(frozen=True)
class ChurnTrace:
    """One base instance plus an ordered delta sequence.

    ``instance`` is the state *before* ``deltas[0]``; each delta addresses
    the edge-id space produced by its predecessors (the
    :func:`~repro.online.deltas.apply_delta` convention).
    """

    instance: OracleInstance
    deltas: tuple[InstanceDelta, ...]
    label: str = ""
    seed: int = 0

    def __len__(self) -> int:
        return len(self.deltas)


def replay_instances(
    trace: ChurnTrace,
) -> Iterator[tuple[int, InstanceDelta, DiGraph, int, int, int, int]]:
    """Yield ``(step, delta, g, s, t, k, D)`` for each post-delta state.

    The scratch-solve side of the churn differential: state ``i`` is the
    base instance with ``deltas[: i + 1]`` applied.
    """
    inst = trace.instance
    g, s, t, k, delay_bound = (
        inst.graph,
        inst.s,
        inst.t,
        inst.k,
        inst.delay_bound,
    )
    for step, delta in enumerate(trace.deltas):
        g, s, t, k, delay_bound = apply_delta(g, s, t, k, delay_bound, delta)
        yield step, delta, g, s, t, k, delay_bound


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


def _feasible(g: DiGraph, s: int, t: int, k: int, delay_bound: int) -> bool:
    flow = min_cost_k_flow(g, s, t, k, weight=g.delay)
    return flow is not None and int(flow.weight) <= delay_bound


def _jitter(gen: np.random.Generator, value: int, scale: int) -> int:
    """``value`` drifted by up to ±``scale`` (clamped nonnegative)."""
    return max(0, value + int(gen.integers(-scale, scale + 1)))


def _draw_reweight(
    gen: np.random.Generator, g: DiGraph
) -> EdgeReweight | None:
    if g.m == 0:
        return None
    eid = int(gen.integers(g.m))
    scale_c = max(1, int(g.cost.max()) // 3)
    scale_d = max(1, int(g.delay.max()) // 3)
    return EdgeReweight(
        edge_id=eid,
        cost=_jitter(gen, int(g.cost[eid]), scale_c),
        delay=_jitter(gen, int(g.delay[eid]), scale_d),
    )


def _draw_addition(gen: np.random.Generator, g: DiGraph) -> EdgeAddition | None:
    if g.n < 2:
        return None
    tail = int(gen.integers(g.n))
    head = int(gen.integers(g.n))
    if tail == head:
        head = (head + 1) % g.n
    hi_c = max(2, int(g.cost.max()) + 1) if g.m else 10
    hi_d = max(2, int(g.delay.max()) + 1) if g.m else 10
    return EdgeAddition(
        tail=tail,
        head=head,
        cost=int(gen.integers(hi_c)),
        delay=int(gen.integers(hi_d)),
    )


def _draw_demand_move(
    gen: np.random.Generator,
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    *,
    keep_feasible: bool,
    allow_terminal_moves: bool,
) -> DemandMove | None:
    if allow_terminal_moves and gen.random() < 0.3:
        # The disruptive class: move a terminal or resize the demand.
        if gen.random() < 0.5 and g.n > 2:
            new_t = int(gen.integers(g.n))
            if new_t == s:
                new_t = (new_t + 1) % g.n
            move = DemandMove(t=new_t)
            if not keep_feasible or _feasible(g, s, new_t, k, delay_bound):
                return move
            return None
        new_k = k + (1 if gen.random() < 0.5 else -1)
        if new_k < 1:
            new_k = k + 1
        move = DemandMove(k=new_k)
        if not keep_feasible or _feasible(g, s, t, new_k, delay_bound):
            return move
        return None
    # Default demand churn: jitter the delay budget.
    scale = max(1, delay_bound // 4)
    new_bound = _jitter(gen, delay_bound, scale)
    if keep_feasible:
        flow = min_cost_k_flow(g, s, t, k, weight=g.delay)
        if flow is None:
            return None
        new_bound = max(new_bound, int(flow.weight))
    if new_bound == delay_bound:
        return None
    return DemandMove(delay_bound=new_bound)


def _draw_op(
    gen: np.random.Generator,
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    *,
    keep_feasible: bool,
    allow_terminal_moves: bool,
) -> DeltaOp | None:
    roll = float(gen.random())
    if roll < 0.45:
        op: DeltaOp | None = _draw_reweight(gen, g)
    elif roll < 0.65:
        op = _draw_addition(gen, g)
    elif roll < 0.85:
        if g.m <= k:
            op = _draw_reweight(gen, g)
        else:
            op = EdgeRemoval(edge_id=int(gen.integers(g.m)))
    else:
        return _draw_demand_move(
            gen,
            g,
            s,
            t,
            k,
            delay_bound,
            keep_feasible=keep_feasible,
            allow_terminal_moves=allow_terminal_moves,
        )
    if op is None:
        return None
    if keep_feasible:
        g2, s2, t2, k2, d2 = apply_delta(
            g, s, t, k, delay_bound, InstanceDelta(ops=(op,))
        )
        if not _feasible(g2, s2, t2, k2, d2):
            if isinstance(op, EdgeRemoval):
                # Keep the churn pressure but not the disconnection: the
                # doomed edge gets a cost spike instead of deletion. The
                # spike leaves delays alone, so it is only emitted when the
                # current state is itself feasible (boundary-infeasible
                # bases must not leak "feasibility-preserving" ops).
                eid = op.edge_id
                spike = EdgeReweight(
                    edge_id=eid,
                    cost=int(g.cost[eid]) + max(1, int(g.cost.max())),
                    delay=int(g.delay[eid]),
                )
                return spike if _feasible(g, s, t, k, delay_bound) else None
            if isinstance(op, EdgeReweight):
                # Delay drift broke the budget; keep the cost drift only.
                fallback = EdgeReweight(
                    edge_id=op.edge_id,
                    cost=op.cost,
                    delay=int(g.delay[op.edge_id]),
                )
                g2, s2, t2, k2, d2 = apply_delta(
                    g, s, t, k, delay_bound, InstanceDelta(ops=(fallback,))
                )
                return fallback if _feasible(g2, s2, t2, k2, d2) else None
            return None
    return op


def generate_churn_trace(
    inst: OracleInstance,
    steps: int,
    *,
    rng: int | np.random.Generator | None = None,
    max_ops_per_delta: int = 3,
    keep_feasible: bool = True,
    allow_terminal_moves: bool = False,
) -> ChurnTrace:
    """A seeded delta sequence over ``inst``.

    Each of the ``steps`` deltas batches 1..``max_ops_per_delta`` ops drawn
    from the churn mix (~45% weight drift, ~20% addition, ~20% removal,
    ~15% demand move). With ``keep_feasible`` (the default) every emitted
    delta provably preserves feasibility — infeasible-by-construction
    traces (for exercising the infeasible->recover cycle) come from
    switching it off.
    """
    if steps < 0:
        raise InputError("steps must be nonnegative")
    if max_ops_per_delta < 1:
        raise InputError("max_ops_per_delta must be positive")
    gen = as_rng(rng)
    seed = int(rng) if isinstance(rng, (int, np.integer)) else 0
    g, s, t, k, delay_bound = (
        inst.graph,
        inst.s,
        inst.t,
        inst.k,
        inst.delay_bound,
    )
    deltas: list[InstanceDelta] = []
    for step in range(steps):
        ops: list[DeltaOp] = []
        for _ in range(int(gen.integers(1, max_ops_per_delta + 1))):
            op = _draw_op(
                gen,
                g,
                s,
                t,
                k,
                delay_bound,
                keep_feasible=keep_feasible,
                allow_terminal_moves=allow_terminal_moves,
            )
            if op is None:
                continue
            g, s, t, k, delay_bound = apply_delta(
                g, s, t, k, delay_bound, InstanceDelta(ops=(op,))
            )
            ops.append(op)
        if ops:
            deltas.append(
                InstanceDelta(ops=tuple(ops), label=f"{inst.label}@step{step}")
            )
    return ChurnTrace(
        instance=inst,
        deltas=tuple(deltas),
        label=inst.label or "churn",
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


def churn_trace_to_dict(trace: ChurnTrace) -> dict:
    """JSON-ready form of ``trace`` (schema ``churn-trace/1``)."""
    return {
        "schema": CHURN_SCHEMA,
        "label": trace.label,
        "seed": int(trace.seed),
        "instance": oracle_instance_to_dict(trace.instance),
        "deltas": [delta_to_dict(d) for d in trace.deltas],
    }


def churn_trace_from_dict(data: dict) -> ChurnTrace:
    """Inverse of :func:`churn_trace_to_dict`; :class:`InputError` on junk."""
    if not isinstance(data, dict):
        raise InputError("churn trace payload must be an object")
    if data.get("schema") != CHURN_SCHEMA:
        raise InputError(
            f"unsupported churn trace schema {data.get('schema')!r} "
            f"(expected {CHURN_SCHEMA!r})"
        )
    try:
        instance = oracle_instance_from_dict(data["instance"])
        deltas = tuple(delta_from_dict(d) for d in data["deltas"])
        label = str(data.get("label", ""))
        seed = int(data.get("seed", 0))
    except (KeyError, TypeError, ValueError) as exc:
        raise InputError(f"malformed churn trace payload: {exc}") from exc
    return ChurnTrace(instance=instance, deltas=deltas, label=label, seed=seed)


def save_trace(path: str | Path, trace: ChurnTrace) -> None:
    """Atomically write ``trace`` as JSON."""
    atomic_write_json(Path(path), churn_trace_to_dict(trace), indent=2)


def load_trace(path: str | Path) -> ChurnTrace:
    """Load a trace written by :func:`save_trace`."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise InputError(f"cannot read churn trace {path}: {exc}") from exc
    return churn_trace_from_dict(data)
