"""Deterministic fault injection for robustness testing.

The fault-tolerant harness (:func:`repro.eval.parallel.run_trials_parallel`)
and the fallback chain (:func:`repro.robustness.solve_with_fallback`) both
claim to survive misbehaving workers. Those claims are only testable if the
misbehavior is reproducible, so this module provides *plans*: a mapping from
instance seed to a :class:`FaultSpec` that fires deterministically inside
the worker (or at a fallback-tier attempt point).

Fault kinds:

``"raise"``
    Raise :class:`InjectedFault` (deliberately **not** a
    :class:`~repro.errors.ReproError` — it exercises the catch-everything
    paths, not the tidy error taxonomy).
``"iteration_limit"``
    Raise :class:`~repro.errors.IterationLimitError`, the pre-anytime
    failure mode the robustness layer was built to absorb.
``"sleep"``
    Block for ``seconds`` before the solve starts (drives per-trial
    timeout handling without needing a genuinely hard instance).
``"kill"``
    ``SIGKILL`` the current process — from a pool worker this breaks the
    whole :class:`~concurrent.futures.ProcessPoolExecutor`, which is
    exactly the crash-loss scenario of the pool.map bugfix.

Plans are plain data (``to_dict``/``from_dict``) so they can ride inside
pickled worker payloads. ``FaultSpec.attempts`` restricts firing to given
retry attempts (e.g. ``(1,)`` = fail once, succeed on the respawned pool's
retry), which is how tests distinguish *transient* from *persistent* faults
across processes that share no state.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import IterationLimitError

#: Recognized fault kinds.
FAULT_KINDS = ("raise", "iteration_limit", "sleep", "kill")


class InjectedFault(RuntimeError):
    """A deliberately foreign exception (not in the ReproError hierarchy)."""


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    seconds:
        Sleep duration for ``"sleep"`` faults.
    at:
        Injection-point prefix filter (``None`` = fire at any point). The
        parallel harness injects at ``"worker"``; the fallback chain calls
        its hook with ``"{tier}.attempt{i}"``.
    attempts:
        Retry attempts on which to fire (``None`` = every attempt). The
        harness numbers pool rounds starting at 1, so ``attempts=(1,)``
        models a transient crash that a respawned pool's retry survives.
    message:
        Text carried by raised exceptions.
    """

    kind: str
    seconds: float = 0.0
    at: str | None = None
    attempts: tuple[int, ...] | None = None
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.seconds < 0:
            raise ValueError("fault sleep seconds must be >= 0")

    def fires(self, point: str, attempt: int = 1) -> bool:
        """Whether this spec fires at ``point`` on retry ``attempt``."""
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return self.at is None or point.startswith(self.at)

    def fire(self) -> None:
        """Inject the fault (``"kill"`` does not return)."""
        if self.kind == "sleep":
            time.sleep(self.seconds)
        elif self.kind == "raise":
            raise InjectedFault(self.message)
        elif self.kind == "iteration_limit":
            raise IterationLimitError(self.message)
        elif self.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "seconds": self.seconds,
            "at": self.at,
            "attempts": list(self.attempts) if self.attempts is not None else None,
            "message": self.message,
        }


def fault_spec_from_dict(data: Mapping[str, Any]) -> FaultSpec:
    """Inverse of :meth:`FaultSpec.to_dict`."""
    attempts = data.get("attempts")
    return FaultSpec(
        kind=data["kind"],
        seconds=float(data.get("seconds", 0.0)),
        at=data.get("at"),
        attempts=tuple(attempts) if attempts is not None else None,
        message=data.get("message", "injected fault"),
    )


@dataclass(frozen=True)
class FaultPlan:
    """Faults keyed by instance seed (the stable trial identity)."""

    by_seed: Mapping[int, FaultSpec]

    def spec_for(self, seed: int) -> FaultSpec | None:
        return self.by_seed.get(seed)

    def inject(self, seed: int, point: str, attempt: int = 1) -> None:
        """Fire the fault for ``seed`` if one is planned at this point."""
        spec = self.by_seed.get(seed)
        if spec is not None and spec.fires(point, attempt):
            spec.fire()

    def hook(self, seed: int) -> Callable[[str], None]:
        """A ``fault_hook`` for :func:`repro.robustness.solve_with_fallback`.

        The fallback chain calls it with ``"{tier}.attempt{i}"``; the
        spec's ``at`` prefix picks the tier, and the trailing attempt
        number is parsed so ``attempts`` filters retries too.
        """

        def _hook(point: str) -> None:
            attempt = 1
            _, sep, tail = point.rpartition(".attempt")
            if sep and tail.isdigit():
                attempt = int(tail)
            self.inject(seed, point, attempt)

        return _hook

    def to_dict(self) -> dict[str, Any]:
        return {str(seed): spec.to_dict() for seed, spec in self.by_seed.items()}


def fault_plan_from_dict(data: Mapping[str, Any] | None) -> FaultPlan:
    """Inverse of :meth:`FaultPlan.to_dict` (``None`` → empty plan)."""
    if not data:
        return FaultPlan(by_seed={})
    return FaultPlan(
        by_seed={int(seed): fault_spec_from_dict(d) for seed, d in data.items()}
    )
