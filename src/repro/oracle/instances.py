"""Provenance-carrying kRSP instances for the oracle subsystem.

:class:`OracleInstance` is the unit of work every oracle component passes
around: a full kRSP problem plus where it came from (substrate, seed,
mutation, metamorphic transform). Provenance is what turns a red fuzz run
into a reproducible bug report — serialize with :func:`oracle_instance_to_dict`
and the exact failing instance replays forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.graph.digraph import DiGraph
from repro.graph.io import graph_from_dict, graph_to_dict

ORACLE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class OracleInstance:
    """One kRSP problem with full generation provenance.

    ``label`` is a short human-readable identity (substrate plus applied
    operators); ``seed`` the substrate seed; ``substrate`` / ``mutation`` /
    ``transform`` the pipeline stages that produced it (empty string when a
    stage did not apply).
    """

    graph: DiGraph
    s: int
    t: int
    k: int
    delay_bound: int
    label: str = ""
    substrate: str = ""
    seed: int = 0
    mutation: str = ""
    transform: str = ""

    def derive(self, **changes: Any) -> "OracleInstance":
        """A copy with ``changes`` applied and the label re-derived."""
        inst = replace(self, **changes)
        parts = [inst.substrate or "instance"]
        if inst.mutation:
            parts.append(f"+{inst.mutation}")
        if inst.transform:
            parts.append(f"~{inst.transform}")
        return replace(inst, label="".join(parts))


def oracle_instance_to_dict(inst: OracleInstance) -> dict[str, Any]:
    """JSON-ready form (graph schema of :mod:`repro.graph.io` plus
    provenance)."""
    return {
        "schema": ORACLE_SCHEMA_VERSION,
        "graph": graph_to_dict(inst.graph),
        "s": int(inst.s),
        "t": int(inst.t),
        "k": int(inst.k),
        "delay_bound": int(inst.delay_bound),
        "label": inst.label,
        "substrate": inst.substrate,
        "seed": int(inst.seed),
        "mutation": inst.mutation,
        "transform": inst.transform,
    }


def oracle_instance_from_dict(data: dict[str, Any]) -> OracleInstance:
    """Inverse of :func:`oracle_instance_to_dict` (tolerates missing
    provenance fields so plain :func:`repro.graph.io.instance_to_dict`
    payloads load too)."""
    return OracleInstance(
        graph=graph_from_dict(data["graph"]),
        s=int(data["s"]),
        t=int(data["t"]),
        k=int(data["k"]),
        delay_bound=int(data["delay_bound"]),
        label=str(data.get("label", "")),
        substrate=str(data.get("substrate", "")),
        seed=int(data.get("seed", 0)),
        mutation=str(data.get("mutation", "")),
        transform=str(data.get("transform", "")),
    )
