"""Correctness oracle subsystem: differential fuzzing + metamorphic testing.

The paper is theory-only, so the implementation's trustworthiness rests on
being driven adversarially against its own ground-truth anchors (the exact
MILP oracle and the independent auditor). This package industrializes that:

* :mod:`repro.oracle.fuzzer` — seeded adversarial instance generation over
  every substrate, plus relation-free mutations;
* :mod:`repro.oracle.metamorphic` — instance rewrites with provable answer
  relations;
* :mod:`repro.oracle.differential` — every solver vs the exact oracle on
  one instance, all outputs independently re-audited;
* :mod:`repro.oracle.shrinker` — greedy reproducer minimization;
* :mod:`repro.oracle.corpus` — the persistent regression corpus
  (``tests/corpus/``);
* :mod:`repro.oracle.driver` — the budgeted session behind ``repro fuzz``;
* :mod:`repro.oracle.faults` — deterministic fault injection (raises,
  sleeps, worker kills keyed by instance seed) for the robustness layer's
  crash-recovery and degradation tests.

Typical entry points::

    from repro.oracle import FuzzConfig, run_fuzz
    report = run_fuzz(FuzzConfig(seed=0, budget_seconds=30))
    assert report.clean
"""

from repro.oracle.churn import (
    CHURN_SCHEMA,
    ChurnTrace,
    churn_trace_from_dict,
    churn_trace_to_dict,
    generate_churn_trace,
    load_trace,
    replay_instances,
    save_trace,
)
from repro.oracle.corpus import (
    CorpusEntry,
    entry_from_dict,
    entry_to_dict,
    load_corpus,
    save_entry,
)
from repro.oracle.differential import (
    DiffReport,
    Failure,
    OnlineDiffReport,
    run_differential,
    run_online_differential,
)
from repro.oracle.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    fault_plan_from_dict,
    fault_spec_from_dict,
)
from repro.oracle.driver import (
    FailureRecord,
    FuzzConfig,
    FuzzReport,
    run_fuzz,
    write_report,
)
from repro.oracle.fuzzer import (
    MUTATIONS,
    SUBSTRATES,
    instance_stream,
    make_base_instance,
)
from repro.oracle.instances import (
    OracleInstance,
    oracle_instance_from_dict,
    oracle_instance_to_dict,
)
from repro.oracle.metamorphic import TRANSFORMS, Metamorphosis, apply_transform
from repro.oracle.shrinker import ShrinkResult, shrink

__all__ = [
    "CHURN_SCHEMA",
    "ChurnTrace",
    "CorpusEntry",
    "DiffReport",
    "FAULT_KINDS",
    "Failure",
    "FailureRecord",
    "FaultPlan",
    "FaultSpec",
    "FuzzConfig",
    "FuzzReport",
    "InjectedFault",
    "Metamorphosis",
    "OnlineDiffReport",
    "MUTATIONS",
    "OracleInstance",
    "SUBSTRATES",
    "ShrinkResult",
    "TRANSFORMS",
    "apply_transform",
    "churn_trace_from_dict",
    "churn_trace_to_dict",
    "entry_from_dict",
    "entry_to_dict",
    "fault_plan_from_dict",
    "fault_spec_from_dict",
    "generate_churn_trace",
    "instance_stream",
    "load_corpus",
    "load_trace",
    "make_base_instance",
    "oracle_instance_from_dict",
    "oracle_instance_to_dict",
    "replay_instances",
    "run_differential",
    "run_online_differential",
    "run_fuzz",
    "save_entry",
    "save_trace",
    "shrink",
    "write_report",
]
