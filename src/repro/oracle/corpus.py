"""The regression corpus: every crasher, minimized, replayed forever.

A corpus is a directory of one-instance JSON files. Seed entries are
sentinels (the Figure-1 gadget and one instance per substrate); new
entries are minimized reproducers written by the fuzz driver whenever a
differential failure survives shrinking. `repro fuzz` and
``tests/test_fuzz_corpus.py`` both replay the whole directory through the
differential runner on every run, so a fixed bug can never silently
regress.

File schema (``corpus-v1``)::

    {
      "schema": 1,
      "kind": "corpus-entry",
      "instance": { <oracle-instance dict> },
      "meta": {
        "origin": "seed" | "fuzz",
        "failure_kind": "",          # what it once broke ("" for seeds)
        "failure_solver": "",
        "note": "human-readable context",
        "created": "YYYY-MM-DD"
      }
    }
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ReproError
from repro.oracle.instances import (
    OracleInstance,
    oracle_instance_from_dict,
    oracle_instance_to_dict,
)

CORPUS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus instance plus its bookkeeping metadata."""

    instance: OracleInstance
    meta: dict[str, Any] = field(default_factory=dict)
    path: Path | None = None

    @property
    def name(self) -> str:
        return self.path.stem if self.path else (self.instance.label or "corpus-entry")


def entry_to_dict(entry: CorpusEntry) -> dict[str, Any]:
    """JSON-ready ``corpus-v1`` form of ``entry``."""
    return {
        "schema": CORPUS_SCHEMA_VERSION,
        "kind": "corpus-entry",
        "instance": oracle_instance_to_dict(entry.instance),
        "meta": dict(entry.meta),
    }


def entry_from_dict(data: dict[str, Any], path: Path | None = None) -> CorpusEntry:
    """Inverse of :func:`entry_to_dict`; rejects foreign payloads."""
    if data.get("schema") != CORPUS_SCHEMA_VERSION or data.get("kind") != "corpus-entry":
        raise ReproError(
            f"not a corpus-v{CORPUS_SCHEMA_VERSION} entry: "
            f"schema={data.get('schema')!r} kind={data.get('kind')!r}"
        )
    return CorpusEntry(
        instance=oracle_instance_from_dict(data["instance"]),
        meta=dict(data.get("meta", {})),
        path=path,
    )


def load_corpus(directory: str | Path) -> Iterator[CorpusEntry]:
    """Yield every corpus entry under ``directory``, sorted by filename
    (deterministic replay order). A missing directory yields nothing."""
    root = Path(directory)
    if not root.is_dir():
        return
    for path in sorted(root.glob("*.json")):
        yield entry_from_dict(json.loads(path.read_text()), path=path)


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_") or "entry"


def save_entry(
    directory: str | Path,
    entry: CorpusEntry,
    stem: str | None = None,
) -> Path:
    """Write ``entry`` under ``directory`` (created if absent), avoiding
    filename collisions, and return the path."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    base = _slug(stem or entry.name)
    path = root / f"{base}.json"
    i = 2
    while path.exists():
        path = root / f"{base}_{i}.json"
        i += 1
    # Atomic: a crasher caught seconds before the process dies must land
    # whole — a half-written reproducer would poison every future replay.
    from repro._util.atomicio import atomic_write_json

    atomic_write_json(path, entry_to_dict(entry), indent=1, sort_keys=True)
    return path
