"""Greedy reproducer minimization for differential failures.

Given a failing instance, the shrinker searches for the smallest instance
that still exhibits a failure of the *same kind from the same solver* (the
``kind``/``solver`` pair keyes the bug; matching on the message would pin
incidental numbers). Passes, applied to a fixpoint under a global predicate
-evaluation budget:

1. **edge chunk removal** — ddmin-style: drop halves, then quarters, ...
   down to single edges;
2. **vertex pruning** — drop vertices that ended up isolated, compressing
   labels;
3. **weight shrinking** — per edge, try zeroing then halving cost and
   delay;
4. **budget shrinking** — try 0 and successive halvings of ``D``.

Every accepted step strictly reduces ``(m, n, total weight, D)``
lexicographically-ish, so termination is structural; the evaluation budget
just caps worst-case wall clock on stubborn reproducers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph
from repro.oracle.differential import DiffReport, run_differential
from repro.oracle.instances import OracleInstance


@dataclass
class ShrinkResult:
    """Outcome of a shrink run."""

    instance: OracleInstance
    failure_kind: str
    failure_solver: str
    evaluations: int
    shrunk: bool  # did we reduce anything at all?


def _matches(report: DiffReport, kind: str, solver: str) -> bool:
    return any(f.kind == kind and f.solver == solver for f in report.failures)


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _still_fails(
    inst: OracleInstance, kind: str, solver: str, budget: _Budget, milp_time_limit: float
) -> bool:
    if not budget.spend():
        return False
    try:
        report = run_differential(inst, milp_time_limit=milp_time_limit)
    except Exception:
        # A malformed shrink candidate (e.g. terminals disconnected in a
        # way a constructor rejects) is simply not a reproducer.
        return False
    return _matches(report, kind, solver)


def _drop_edges(g: DiGraph, keep_mask: np.ndarray) -> DiGraph:
    eids = np.nonzero(keep_mask)[0]
    return DiGraph(g.n, g.tail[eids], g.head[eids], g.cost[eids], g.delay[eids])


def _prune_isolated(inst: OracleInstance) -> OracleInstance | None:
    """Relabel away vertices with no incident edges (terminals survive)."""
    g = inst.graph
    used = np.zeros(g.n, dtype=bool)
    used[g.tail] = True
    used[g.head] = True
    used[inst.s] = True
    used[inst.t] = True
    if used.all():
        return None
    relabel = np.cumsum(used) - 1
    return inst.derive(
        graph=DiGraph(
            int(used.sum()),
            relabel[g.tail],
            relabel[g.head],
            # Only endpoints change: weights are shared (copy-on-write).
            g.cost,
            g.delay,
        ),
        s=int(relabel[inst.s]),
        t=int(relabel[inst.t]),
    )


def shrink(
    inst: OracleInstance,
    kind: str,
    solver: str,
    max_evaluations: int = 300,
    milp_time_limit: float = 10.0,
) -> ShrinkResult:
    """Minimize ``inst`` while a ``(kind, solver)`` failure reproduces.

    Returns the smallest reproducer found within the evaluation budget
    (possibly the input itself when nothing could be removed).
    """
    budget = _Budget(max_evaluations)
    current = inst
    shrunk = False

    def fails(cand: OracleInstance) -> bool:
        return _still_fails(cand, kind, solver, budget, milp_time_limit)

    # Pass 1: ddmin over edges.
    progress = True
    while progress and budget.used < budget.limit:
        progress = False
        m = current.graph.m
        chunk = max(1, m // 2)
        while chunk >= 1 and budget.used < budget.limit:
            start = 0
            while start < current.graph.m:
                m = current.graph.m
                keep = np.ones(m, dtype=bool)
                keep[start : start + chunk] = False
                if keep.all() or not keep.any():
                    start += chunk
                    continue
                cand = current.derive(graph=_drop_edges(current.graph, keep))
                if fails(cand):
                    current = cand
                    shrunk = True
                    progress = True
                    # Do not advance: the window now covers new edges.
                else:
                    start += chunk
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)

    # Pass 2: prune isolated vertices (no predicate needed beyond one
    # confirmation — relabeling cannot change solver behaviour, but we
    # re-check to stay honest).
    pruned = _prune_isolated(current)
    if pruned is not None and fails(pruned):
        current = pruned
        shrunk = True

    # Pass 3: weight shrinking.
    for attr in ("cost", "delay"):
        e = 0
        while e < current.graph.m and budget.used < budget.limit:
            w = getattr(current.graph, attr)
            val = int(w[e])
            if val > 0:
                for new_val in (0, val // 2):
                    if new_val == val:
                        continue
                    w2 = w.copy()
                    w2[e] = new_val
                    g2 = (
                        current.graph.with_weights(w2, current.graph.delay)
                        if attr == "cost"
                        else current.graph.with_weights(current.graph.cost, w2)
                    )
                    cand = current.derive(graph=g2)
                    if fails(cand):
                        current = cand
                        shrunk = True
                        break
            e += 1

    # Pass 4: budget shrinking.
    for new_d in (0, current.delay_bound // 2, current.delay_bound - 1):
        if 0 <= new_d < current.delay_bound and budget.used < budget.limit:
            cand = current.derive(delay_bound=int(new_d))
            if fails(cand):
                current = cand
                shrunk = True
                break

    return ShrinkResult(
        instance=current,
        failure_kind=kind,
        failure_solver=solver,
        evaluations=budget.used,
        shrunk=shrunk,
    )
