"""The fuzz session driver: budgets, corpus replay, shrinking, reporting.

:func:`run_fuzz` is the engine behind ``repro fuzz``:

1. **replay** every corpus entry through the differential runner (a
   regression must fail the run);
2. **stream** seeded instances from the fuzzer, round-robin over
   substrates, a deterministic share mutated;
3. for each base instance, solve the exact oracle once, run the
   differential checks, then apply rotating **metamorphic transforms** and
   check both the answer relations and the transformed instances;
4. on any failure, **shrink** the reproducer and persist it into the
   corpus directory;
5. emit a machine-readable **JSON report** (instances, substrate/transform
   coverage, failures, reproducer paths) for CI.

The stream is a pure function of the seed; the time budget only decides
how far down the stream the session gets.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import obs
from repro._util.rng import as_rng
from repro.errors import ReproError
from repro.lp.milp import solve_krsp_milp
from repro.oracle.corpus import CorpusEntry, load_corpus, save_entry
from repro.oracle.differential import DiffReport, Failure, run_differential
from repro.oracle.fuzzer import SUBSTRATES, instance_stream
from repro.oracle.instances import OracleInstance
from repro.oracle.metamorphic import TRANSFORMS, apply_transform
from repro.oracle.shrinker import shrink

FUZZ_REPORT_SCHEMA = 1


@dataclass
class FuzzConfig:
    """Knobs for one fuzz session (all deterministic except the time
    budget's cut-off point)."""

    seed: int = 0
    budget_seconds: float = 30.0
    max_instances: int | None = None
    substrates: list[str] | None = None
    transforms_per_instance: int = 2
    scaled_every: int = 7  # run the Theorem-4 mode on every Nth base
    corpus_dir: str | Path | None = None
    replay_corpus: bool = True
    shrink_failures: bool = True
    shrink_evaluations: int = 200
    milp_time_limit: float = 20.0
    save_crashers: bool = True
    max_saved_crashers: int = 20


@dataclass
class FailureRecord:
    """One failure as it lands in the report."""

    kind: str
    solver: str
    message: str
    label: str
    origin: str  # "corpus" | "fuzz"
    reproducer: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "solver": self.solver,
            "message": self.message,
            "instance": self.label,
            "origin": self.origin,
            "reproducer": self.reproducer,
        }


@dataclass
class FuzzReport:
    """Everything a CI job needs to gate on."""

    config: FuzzConfig
    elapsed_seconds: float = 0.0
    instances_checked: int = 0
    base_instances: int = 0
    transformed_instances: int = 0
    corpus_replayed: int = 0
    per_substrate: dict[str, int] = field(default_factory=dict)
    per_transform: dict[str, int] = field(default_factory=dict)
    failures: list[FailureRecord] = field(default_factory=list)
    telemetry: dict[str, Any] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": FUZZ_REPORT_SCHEMA,
            "seed": self.config.seed,
            "budget_seconds": self.config.budget_seconds,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "instances_checked": self.instances_checked,
            "base_instances": self.base_instances,
            "transformed_instances": self.transformed_instances,
            "corpus_replayed": self.corpus_replayed,
            "per_substrate": dict(sorted(self.per_substrate.items())),
            "per_transform": dict(sorted(self.per_transform.items())),
            "failures": [f.as_dict() for f in self.failures],
            "clean": self.clean,
            "telemetry": self.telemetry,
        }


class _Session:
    def __init__(self, config: FuzzConfig):
        self.config = config
        self.report = FuzzReport(config=config)
        self.saved = 0

    def _persist(self, inst: OracleInstance, failure: Failure, origin: str) -> str | None:
        cfg = self.config
        if failure.kind in ("bifactor", "invariant", "beats_optimum", "feasibility") and cfg.shrink_failures:
            result = shrink(
                inst,
                failure.kind,
                failure.solver,
                max_evaluations=cfg.shrink_evaluations,
                milp_time_limit=cfg.milp_time_limit,
            )
            inst = result.instance
        if not (cfg.save_crashers and cfg.corpus_dir and self.saved < cfg.max_saved_crashers):
            return None
        entry = CorpusEntry(
            instance=inst,
            meta={
                "origin": "fuzz",
                "failure_kind": failure.kind,
                "failure_solver": failure.solver,
                "note": failure.message,
            },
        )
        stem = f"crash_{failure.kind}_{failure.solver}_{inst.seed}"
        path = save_entry(cfg.corpus_dir, entry, stem=stem)
        self.saved += 1
        return str(path)

    def record(self, diff: DiffReport, origin: str, extra_failures: list[Failure] = ()) -> None:
        for failure in list(diff.failures) + list(extra_failures):
            reproducer = None
            if origin == "fuzz":
                reproducer = self._persist(diff.instance, failure, origin)
            self.report.failures.append(
                FailureRecord(
                    kind=failure.kind,
                    solver=failure.solver,
                    message=failure.message,
                    label=diff.instance.label or diff.instance.substrate,
                    origin=origin,
                    reproducer=reproducer,
                )
            )


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run one budgeted fuzz session; see the module docstring.

    The whole session runs inside an :func:`repro.obs.session`, so the
    report's ``telemetry`` block always carries solver-work counters
    (Dijkstra pops, LP solves, cancellation iterations, ...) aggregated
    over every instance checked — the CI-facing summary of how much work
    the oracle actually exercised.
    """
    with obs.session(label="fuzz") as tel:
        report = _run_fuzz_impl(config)
    report.telemetry = tel.as_dict()
    return report


def _run_fuzz_impl(config: FuzzConfig) -> FuzzReport:
    """Session body of :func:`run_fuzz` (telemetry-agnostic)."""
    session = _Session(config)
    report = session.report
    start = time.monotonic()

    def out_of_budget() -> bool:
        if time.monotonic() - start >= config.budget_seconds:
            return True
        return (
            config.max_instances is not None
            and report.instances_checked >= config.max_instances
        )

    # -- phase 1: corpus replay --------------------------------------------
    if config.replay_corpus and config.corpus_dir:
        for entry in load_corpus(config.corpus_dir):
            diff = run_differential(
                entry.instance, milp_time_limit=config.milp_time_limit
            )
            report.corpus_replayed += 1
            report.instances_checked += 1
            session.record(diff, origin="corpus")

    # -- phase 2: the fuzz stream ------------------------------------------
    substrate_names = list(config.substrates or SUBSTRATES)
    transform_names = list(TRANSFORMS)
    stream = instance_stream(config.seed, substrates=substrate_names)
    master = as_rng(config.seed ^ 0xFE1D)
    iteration = 0
    while not out_of_budget():
        base = next(stream)
        try:
            base_exact = solve_krsp_milp(
                base.graph, base.s, base.t, base.k, base.delay_bound,
                time_limit=config.milp_time_limit,
            )
        except ReproError as exc:
            diff = DiffReport(instance=base)
            diff.failures.append(Failure("crash", "milp", f"{type(exc).__name__}: {exc}"))
            session.record(diff, origin="fuzz")
            report.instances_checked += 1
            report.base_instances += 1
            iteration += 1
            continue

        run_scaled = iteration % config.scaled_every == 0
        diff = run_differential(
            base,
            exact=base_exact,
            milp_time_limit=config.milp_time_limit,
            run_scaled=run_scaled,
        )
        report.instances_checked += 1
        report.base_instances += 1
        report.per_substrate[base.substrate] = report.per_substrate.get(base.substrate, 0) + 1
        session.record(diff, origin="fuzz")

        for j in range(config.transforms_per_instance):
            if out_of_budget():
                break
            name = transform_names[(iteration * config.transforms_per_instance + j) % len(transform_names)]
            meta = apply_transform(
                name, base, int(master.integers(1 << 31)), base_exact
            )
            if meta is None:
                continue
            tinst = meta.instance
            try:
                trans_exact = solve_krsp_milp(
                    tinst.graph, tinst.s, tinst.t, tinst.k, tinst.delay_bound,
                    time_limit=config.milp_time_limit,
                )
            except ReproError as exc:
                tdiff = DiffReport(instance=tinst)
                tdiff.failures.append(
                    Failure("crash", "milp", f"{type(exc).__name__}: {exc}")
                )
                session.record(tdiff, origin="fuzz")
                report.instances_checked += 1
                report.transformed_instances += 1
                continue
            relation_failures = [
                Failure("metamorphic", "milp", msg)
                for msg in meta.check(base_exact, trans_exact)
            ]
            tdiff = run_differential(
                tinst, exact=trans_exact, milp_time_limit=config.milp_time_limit
            )
            report.instances_checked += 1
            report.transformed_instances += 1
            report.per_transform[name] = report.per_transform.get(name, 0) + 1
            session.record(tdiff, origin="fuzz", extra_failures=relation_failures)

        iteration += 1

    report.elapsed_seconds = time.monotonic() - start
    return report


def write_report(report: FuzzReport, path: str | Path) -> None:
    """Serialize ``report`` as JSON to ``path`` (atomic — CI reads this
    file even when the fuzz process is later killed)."""
    from repro._util.atomicio import atomic_write_json

    atomic_write_json(path, report.as_dict(), indent=1)
