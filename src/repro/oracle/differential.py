"""Differential execution of every solver against the exact oracle.

One instance goes through:

* the exact MILP oracle (ground truth — feasibility and the optimal cost);
* :func:`repro.core.solve_krsp` in pseudo-polynomial mode (Lemma 3:
  ``delay <= D`` and ``cost <= 2 * OPT``), and periodically the Theorem-4
  scaled mode (``delay <= (1+eps) D``, ``cost <= (2+eps) OPT``);
* every registered baseline (:data:`repro.baselines.BASELINES`), each held
  to exactly what :data:`repro.baselines.GUARANTEES` says it promises —
  Lemma 5 (``delay/D + cost/OPT <= 2``) for LP rounding, the cost-anchor
  laws for min-sum (cost lower-bounds everything; budget-feasible implies
  optimal), budget compliance for Orda–Sprintson, and structural validity
  for the no-guarantee heuristics.

Every returned path set is re-audited from scratch by
:func:`repro.core.verify.verify_solution`, including the claimed-totals
cross-check. Anything that disagrees — feasibility verdicts, bound
violations, invariant breaks, unexplained crashes — becomes a typed
:class:`Failure` the driver can shrink and persist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.baselines import BASELINES, GUARANTEES
from repro.core.krsp import solve_krsp
from repro.core.verify import verify_solution
from repro.errors import InfeasibleInstanceError, ReproError
from repro.lp.milp import ExactSolution, solve_krsp_milp
from repro.oracle.instances import OracleInstance, oracle_instance_to_dict

DEFAULT_SCALED_EPS = 0.5


@dataclass(frozen=True)
class Failure:
    """One confirmed discrepancy on one instance.

    ``kind`` is a stable machine-readable category (used by the shrinker to
    decide whether a smaller instance still reproduces *this* bug):

    ``feasibility``      solver and exact oracle disagree on solvability
    ``bifactor``         a guaranteed bound (Lemma 3 / 5, Theorem 4) broke
    ``invariant``        structural audit or claimed-totals mismatch
    ``beats_optimum``    a feasible solution cheaper than the proven optimum
    ``metamorphic``      a transform's answer relation broke
    ``crash``            unexpected exception out of a solver
    """

    kind: str
    solver: str
    message: str

    def as_dict(self) -> dict[str, str]:
        return {"kind": self.kind, "solver": self.solver, "message": self.message}


@dataclass
class DiffReport:
    """All findings from one differential run over one instance."""

    instance: OracleInstance
    opt_cost: int | None = None
    solvers_run: list[str] = field(default_factory=list)
    failures: list[Failure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict[str, Any]:
        return {
            "instance": oracle_instance_to_dict(self.instance),
            "opt_cost": self.opt_cost,
            "solvers_run": list(self.solvers_run),
            "failures": [f.as_dict() for f in self.failures],
        }


def _audit_paths(
    inst: OracleInstance,
    solver: str,
    paths: list[list[int]],
    claimed_cost: int | None,
    claimed_delay: int | None,
    failures: list[Failure],
    require_budget: bool,
) -> tuple[int, int] | None:
    """Independent structural audit; returns recomputed ``(cost, delay)``
    or ``None`` when the paths are not even structurally valid."""
    report = verify_solution(
        inst.graph,
        inst.s,
        inst.t,
        inst.k,
        inst.delay_bound,
        paths,
        check_bounds=False,
        claimed_cost=claimed_cost,
        claimed_delay=claimed_delay,
    )
    if not report.valid:
        failures.append(Failure("invariant", solver, "; ".join(report.issues)))
        return None
    for issue in report.issues:
        if issue.startswith("claimed"):
            failures.append(Failure("invariant", solver, issue))
        elif issue.startswith("delay") and require_budget:
            failures.append(Failure("bifactor", solver, issue))
    assert report.cost is not None and report.delay is not None
    return report.cost, report.delay


def run_differential(
    inst: OracleInstance,
    exact: ExactSolution | None | str = "compute",
    milp_time_limit: float | None = 30.0,
    run_scaled: bool = False,
    scaled_eps: float = DEFAULT_SCALED_EPS,
) -> DiffReport:
    """Differentially check one instance against the exact oracle.

    ``exact`` may be a precomputed :class:`ExactSolution`, ``None`` (known
    infeasible), or the sentinel ``"compute"`` to solve it here.
    """
    report = DiffReport(instance=inst)
    g, s, t, k, D = inst.graph, inst.s, inst.t, inst.k, inst.delay_bound

    if isinstance(exact, str):
        try:
            exact = solve_krsp_milp(g, s, t, k, D, time_limit=milp_time_limit)
        except ReproError as exc:
            report.failures.append(Failure("crash", "milp", f"{type(exc).__name__}: {exc}"))
            return report
    report.opt_cost = None if exact is None else exact.cost
    opt = report.opt_cost

    # -- the paper's algorithm, pseudo-polynomial (1, 2) mode ---------------
    report.solvers_run.append("solve_krsp")
    try:
        sol = solve_krsp(g, s, t, k, D)
    except InfeasibleInstanceError:
        sol = None
        if exact is not None:
            report.failures.append(
                Failure(
                    "feasibility",
                    "solve_krsp",
                    f"solver says infeasible; exact optimum is {exact.cost}",
                )
            )
    except ReproError as exc:
        sol = None
        report.failures.append(
            Failure("crash", "solve_krsp", f"{type(exc).__name__}: {exc}")
        )
    if sol is not None:
        if exact is None:
            report.failures.append(
                Failure(
                    "feasibility",
                    "solve_krsp",
                    f"solver returned cost {sol.cost} on an exactly-infeasible instance",
                )
            )
        else:
            totals = _audit_paths(
                inst, "solve_krsp", sol.paths, sol.cost, sol.delay,
                report.failures, require_budget=True,
            )
            if totals is not None:
                cost, delay = totals
                if cost > 2 * exact.cost:
                    report.failures.append(
                        Failure(
                            "bifactor",
                            "solve_krsp",
                            f"cost {cost} exceeds 2 * OPT = {2 * exact.cost} (Lemma 3)",
                        )
                    )
                if delay <= D and cost < exact.cost:
                    report.failures.append(
                        Failure(
                            "beats_optimum",
                            "solve_krsp",
                            f"feasible cost {cost} beats the proven optimum {exact.cost}",
                        )
                    )
                if sol.cost_lower_bound is not None and float(sol.cost_lower_bound) > exact.cost + 1e-9:
                    report.failures.append(
                        Failure(
                            "invariant",
                            "solve_krsp",
                            f"certified lower bound {float(sol.cost_lower_bound):.6f} "
                            f"exceeds the true optimum {exact.cost}",
                        )
                    )

    # -- Theorem-4 scaled mode (periodically; it is the slow path) ----------
    if run_scaled and exact is not None:
        report.solvers_run.append("solve_krsp_scaled")
        try:
            ssol = solve_krsp(g, s, t, k, D, eps=scaled_eps)
        except InfeasibleInstanceError:
            ssol = None
            report.failures.append(
                Failure(
                    "feasibility",
                    "solve_krsp_scaled",
                    f"scaled solver says infeasible; exact optimum is {exact.cost}",
                )
            )
        except ReproError as exc:
            ssol = None
            report.failures.append(
                Failure("crash", "solve_krsp_scaled", f"{type(exc).__name__}: {exc}")
            )
        if ssol is not None:
            totals = _audit_paths(
                inst, "solve_krsp_scaled", ssol.paths, ssol.cost, ssol.delay,
                report.failures, require_budget=False,
            )
            if totals is not None:
                cost, delay = totals
                if delay > (1 + scaled_eps) * D + 1e-9:
                    report.failures.append(
                        Failure(
                            "bifactor",
                            "solve_krsp_scaled",
                            f"delay {delay} exceeds (1 + {scaled_eps}) * D = "
                            f"{(1 + scaled_eps) * D} (Theorem 4)",
                        )
                    )
                if cost > (2 + scaled_eps) * exact.cost + 1e-9:
                    report.failures.append(
                        Failure(
                            "bifactor",
                            "solve_krsp_scaled",
                            f"cost {cost} exceeds (2 + {scaled_eps}) * OPT = "
                            f"{(2 + scaled_eps) * exact.cost} (Theorem 4)",
                        )
                    )

    # -- the baseline cast, each held to its registered guarantee -----------
    for name, baseline in BASELINES.items():
        guarantee = GUARANTEES[name]
        report.solvers_run.append(name)
        try:
            res = baseline(g, s, t, k, D)
        except InfeasibleInstanceError as exc:
            # Only the baselines whose infeasibility verdict is exact get
            # cross-examined; heuristics may legitimately give up.
            if exact is not None and guarantee in ("cost_anchor", "lemma5"):
                report.failures.append(
                    Failure(
                        "feasibility",
                        name,
                        f"baseline says infeasible ({exc}); exact optimum is "
                        f"{exact.cost}",
                    )
                )
            continue
        except ReproError as exc:
            report.failures.append(Failure("crash", name, f"{type(exc).__name__}: {exc}"))
            continue
        totals = _audit_paths(
            inst, name, res.paths, res.cost, res.delay,
            report.failures, require_budget=(guarantee == "budget"),
        )
        if totals is None:
            continue
        cost, delay = totals
        if exact is None:
            if delay <= D:
                # k disjoint paths within budget are a feasibility witness —
                # this contradicts the MILP's infeasibility verdict.
                report.failures.append(
                    Failure(
                        "feasibility",
                        name,
                        f"budget-feasible solution (cost {cost}, delay {delay}) "
                        f"on an exactly-infeasible instance",
                    )
                )
            continue
        if delay <= D and cost < exact.cost:
            report.failures.append(
                Failure(
                    "beats_optimum",
                    name,
                    f"feasible cost {cost} beats the proven optimum {exact.cost}",
                )
            )
        if guarantee == "lemma5" and exact.cost > 0 and D > 0:
            if delay / D + cost / exact.cost > 2.0 + 1e-9:
                report.failures.append(
                    Failure(
                        "bifactor",
                        name,
                        f"delay/D + cost/OPT = {delay / D + cost / exact.cost:.6f} "
                        f"> 2 (Lemma 5)",
                    )
                )
        elif guarantee == "cost_anchor" and cost > exact.cost:
            # (Budget-feasible min-sum cheaper than OPT is caught by the
            # universal beats_optimum check; together they force equality.)
            report.failures.append(
                Failure(
                    "invariant",
                    name,
                    f"delay-oblivious min-sum cost {cost} exceeds the "
                    f"delay-constrained optimum {exact.cost}",
                )
            )

    return report


# ---------------------------------------------------------------------------
# Online churn differential
# ---------------------------------------------------------------------------


@dataclass
class OnlineDiffReport(DiffReport):
    """A :class:`DiffReport` over a whole churn trace.

    ``instance`` is the trace's base instance; ``final_instance`` the state
    after the last delta (what ``delta_vs_scratch`` hands to the MILP) and
    ``final_solution`` the warm session's result on it (``None`` when the
    final state was infeasible).
    """

    final_instance: OracleInstance | None = None
    final_solution: object | None = None
    steps_checked: int = 0


def run_online_differential(
    trace,
    *,
    milp_time_limit: float | None = 30.0,
    exact_every: int = 1,
) -> OnlineDiffReport:
    """Replay a churn trace warm and from scratch; fail on any divergence.

    Per delta the trace's instance is advanced two independent ways —
    :func:`repro.online.resolve` on a live session (warm when the delta
    allows it) and :func:`repro.online.deltas.apply_delta` on a scratch
    copy — and the checks are:

    * **instance sync** — the session's patched instance must be
      array-identical to the scratch one (the delta-vs-scratch contract);
    * **feasibility agreement** — resolve, a scratch
      :func:`repro.core.solve_krsp`, and the exact MILP must agree on
      solvability;
    * **guarantee** — both path sets are independently re-audited and held
      to ``delay <= D`` and ``cost <= 2 * OPT`` (Lemma 3; warm results
      carry the same registered guarantee as cold ones).

    ``exact_every`` thins the MILP (the expensive side) to every Nth step;
    audit and sync checks still run on every step.
    """
    import numpy as np

    from repro.core.instance import KRSPInstance
    from repro.errors import InfeasibleInstanceError as _Infeasible
    from repro.online import OnlineState, resolve
    from repro.oracle.churn import replay_instances

    base = trace.instance
    report = OnlineDiffReport(instance=base)
    report.solvers_run = ["online_resolve", "solve_krsp", "milp"]

    state = OnlineState(
        instance=KRSPInstance(
            graph=base.graph.copy(),
            s=base.s,
            t=base.t,
            k=base.k,
            delay_bound=base.delay_bound,
        ),
        solution=None,
        lower_bound=None,
    )
    for step, delta, g, s, t, k, bound in replay_instances(trace):
        label = f"{trace.label or 'churn'}#{step}"
        report.steps_checked += 1
        step_inst = OracleInstance(
            graph=g, s=s, t=t, k=k, delay_bound=bound, label=label,
            substrate=base.substrate, seed=base.seed,
        )
        report.final_instance = step_inst

        online_sol = None
        try:
            online_sol = resolve(state, delta)
        except _Infeasible:
            pass
        except ReproError as exc:
            report.failures.append(
                Failure(
                    "crash", "online_resolve",
                    f"{label}: {type(exc).__name__}: {exc}",
                )
            )
            return report
        report.final_solution = online_sol

        sg = state.instance.graph
        synced = (
            (state.instance.s, state.instance.t, state.instance.k,
             state.instance.delay_bound) == (s, t, k, bound)
            and sg.n == g.n
            and np.array_equal(sg.tail, g.tail)
            and np.array_equal(sg.head, g.head)
            and np.array_equal(sg.cost, g.cost)
            and np.array_equal(sg.delay, g.delay)
        )
        if not synced:
            report.failures.append(
                Failure(
                    "invariant", "online_resolve",
                    f"{label}: session instance diverged from apply_delta "
                    f"(delta-vs-scratch sync contract)",
                )
            )
            return report

        scratch_sol = None
        try:
            scratch_sol = solve_krsp(g, s, t, k, bound)
        except InfeasibleInstanceError:
            pass
        except ReproError as exc:
            report.failures.append(
                Failure(
                    "crash", "solve_krsp",
                    f"{label}: {type(exc).__name__}: {exc}",
                )
            )
            return report

        if (online_sol is None) != (scratch_sol is None):
            o = "infeasible" if online_sol is None else f"cost {online_sol.cost}"
            c = "infeasible" if scratch_sol is None else f"cost {scratch_sol.cost}"
            report.failures.append(
                Failure(
                    "feasibility", "online_resolve",
                    f"{label}: warm resolve says {o} but scratch solve says {c}",
                )
            )
            continue

        exact: ExactSolution | None | str = "skipped"
        if step % max(1, exact_every) == 0:
            try:
                exact = solve_krsp_milp(
                    g, s, t, k, bound, time_limit=milp_time_limit
                )
            except ReproError as exc:
                report.failures.append(
                    Failure("crash", "milp", f"{label}: {type(exc).__name__}: {exc}")
                )
                return report
            report.opt_cost = None if exact is None else exact.cost
            if (exact is None) != (online_sol is None):
                o = "infeasible" if online_sol is None else f"cost {online_sol.cost}"
                e = "infeasible" if exact is None else f"optimum {exact.cost}"
                report.failures.append(
                    Failure(
                        "feasibility", "online_resolve",
                        f"{label}: warm resolve says {o} but the exact "
                        f"oracle says {e}",
                    )
                )
                continue

        for solver, sol in (
            ("online_resolve", online_sol),
            ("solve_krsp", scratch_sol),
        ):
            if sol is None:
                continue
            totals = _audit_paths(
                step_inst, solver, sol.paths, sol.cost, sol.delay,
                report.failures, require_budget=(sol.status == "ok"),
            )
            if totals is None or not isinstance(exact, ExactSolution):
                continue
            cost, delay = totals
            if sol.status == "ok" and cost > 2 * exact.cost:
                report.failures.append(
                    Failure(
                        "bifactor", solver,
                        f"{label}: cost {cost} exceeds 2 * OPT = "
                        f"{2 * exact.cost} (Lemma 3)",
                    )
                )
            if delay <= bound and cost < exact.cost:
                report.failures.append(
                    Failure(
                        "beats_optimum", solver,
                        f"{label}: feasible cost {cost} beats the proven "
                        f"optimum {exact.cost}",
                    )
                )
            if (
                sol.cost_lower_bound is not None
                and float(sol.cost_lower_bound) > exact.cost + 1e-9
            ):
                report.failures.append(
                    Failure(
                        "invariant", solver,
                        f"{label}: certified lower bound "
                        f"{float(sol.cost_lower_bound):.6f} exceeds the "
                        f"true optimum {exact.cost}",
                    )
                )
    return report
