"""Trace diffing: attribute a perf regression to the counters that moved.

Wall clock says *that* two runs differ; the deterministic counters say
*why*. :func:`diff_traces` compares two telemetry traces (same seed +
instance ⇒ identical counters, so any drift is a behavioural change, not
noise) on three axes:

* **counter drift**, ranked by contribution — each counter's share of
  the total absolute drift, so the top rows name the work that appeared
  or vanished (``lp.pivots`` exploding, ``search.aux_cache.hit``
  collapsing, ...);
* **phase shares** — root-span time distribution of each run, so a
  shifted bottleneck is visible even when total wall time moved;
* **wall clock** — reported, never ranked (it is not deterministic).

:func:`rank_counter_drift` is the reusable core: it also powers the
attribution block ``scripts/bench_gate.py`` prints when a pinned kernel
regresses past tolerance, turning "the gate is red" into "these counters
moved".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.obs.report import Trace, phase_breakdown


@dataclass(frozen=True)
class CounterDrift:
    """One counter's movement between run A and run B."""

    name: str
    a: int
    b: int
    #: ``b - a``.
    delta: int
    #: Relative change vs A (``None`` when the counter is new, i.e. a=0).
    rel: float | None
    #: ``|delta|`` as a share of the total absolute drift across all
    #: counters — the ranking key ("this counter explains 62% of what
    #: changed").
    share: float


def rank_counter_drift(
    a: Mapping[str, int], b: Mapping[str, int]
) -> list[CounterDrift]:
    """Counters that differ between two snapshots, largest contribution
    first. An empty list means the snapshots agree exactly."""
    deltas: list[tuple[str, int, int, int]] = []
    for name in sorted(set(a) | set(b)):
        va, vb = int(a.get(name, 0)), int(b.get(name, 0))
        if va != vb:
            deltas.append((name, va, vb, vb - va))
    total_abs = sum(abs(d) for _, _, _, d in deltas)
    drifts = [
        CounterDrift(
            name=name,
            a=va,
            b=vb,
            delta=d,
            rel=(d / va) if va else None,
            share=abs(d) / total_abs,
        )
        for name, va, vb, d in deltas
    ]
    drifts.sort(key=lambda c: (-c.share, c.name))
    return drifts


@dataclass(frozen=True)
class PhaseShareDiff:
    """One root-span phase's time share in each run."""

    name: str
    seconds_a: float
    seconds_b: float
    share_a: float
    share_b: float

    @property
    def share_delta(self) -> float:
        return self.share_b - self.share_a


@dataclass
class TraceDiff:
    """Everything :func:`diff_traces` computed (render with
    :func:`render_diff` / :func:`diff_json`)."""

    label_a: str
    label_b: str
    wall_a: float
    wall_b: float
    counters: list[CounterDrift]
    phases: list[PhaseShareDiff]

    @property
    def counters_identical(self) -> bool:
        """True when the deterministic side of the two runs is identical."""
        return not self.counters


def diff_traces(a: Trace, b: Trace) -> TraceDiff:
    """Compare two traces; see the module docstring for the axes."""
    pa = {name: (tot, share) for name, tot, _, share in phase_breakdown(a)}
    pb = {name: (tot, share) for name, tot, _, share in phase_breakdown(b)}
    phases = [
        PhaseShareDiff(
            name=name,
            seconds_a=pa.get(name, (0.0, 0.0))[0],
            seconds_b=pb.get(name, (0.0, 0.0))[0],
            share_a=pa.get(name, (0.0, 0.0))[1],
            share_b=pb.get(name, (0.0, 0.0))[1],
        )
        for name in sorted(set(pa) | set(pb))
    ]
    phases.sort(key=lambda p: -abs(p.share_delta))
    return TraceDiff(
        label_a=a.header.get("label") or "(unlabeled)",
        label_b=b.header.get("label") or "(unlabeled)",
        wall_a=a.wall_seconds,
        wall_b=b.wall_seconds,
        counters=rank_counter_drift(a.counters, b.counters),
        phases=phases,
    )


def format_drift_block(
    drifts: list[CounterDrift], top: int = 8, indent: str = "  "
) -> list[str]:
    """The counter-drift attribution block as printable lines (shared by
    ``repro trace --diff`` and the bench-gate failure report)."""
    if not drifts:
        return [f"{indent}(counters identical)"]
    lines = []
    for c in drifts[:top]:
        rel = f"{c.rel:+.1%}" if c.rel is not None else "new"
        lines.append(
            f"{indent}{c.name:<42} {c.a:>12} -> {c.b:>12}  "
            f"({c.delta:+d}, {rel}, {c.share:.0%} of drift)"
        )
    if len(drifts) > top:
        lines.append(f"{indent}... and {len(drifts) - top} more counters moved")
    return lines


def render_diff(d: TraceDiff, top: int = 8) -> str:
    """Human-readable diff report (``repro trace --diff``)."""
    parts = [
        f"trace diff: A={d.label_a}  B={d.label_b}",
        f"wall: A={d.wall_a:.4f}s  B={d.wall_b:.4f}s  "
        f"({_rel(d.wall_a, d.wall_b)}; wall clock is informational, "
        "counters are the deterministic signal)",
        "",
        f"counter drift, ranked by contribution "
        f"({len(d.counters)} counters moved):",
    ]
    parts.extend(format_drift_block(d.counters, top=top))
    parts.append("")
    parts.append("phase shares (root spans):")
    moved = [p for p in d.phases if p.seconds_a or p.seconds_b]
    if not moved:
        parts.append("  (no root spans in either trace)")
    for p in moved[:top]:
        parts.append(
            f"  {p.name:<30} {p.share_a:6.1%} -> {p.share_b:6.1%}  "
            f"({p.seconds_a:.4f}s -> {p.seconds_b:.4f}s)"
        )
    if d.counters_identical:
        parts.append("")
        parts.append(
            "runs are behaviourally identical (no deterministic counter drift)"
        )
    return "\n".join(parts)


def diff_json(d: TraceDiff) -> dict[str, Any]:
    """Machine-readable version of :func:`render_diff`."""
    return {
        "label_a": d.label_a,
        "label_b": d.label_b,
        "wall_a": d.wall_a,
        "wall_b": d.wall_b,
        "counters_identical": d.counters_identical,
        "counter_drift": [
            {
                "name": c.name,
                "a": c.a,
                "b": c.b,
                "delta": c.delta,
                "rel": c.rel,
                "share": c.share,
            }
            for c in d.counters
        ],
        "phase_shares": [
            {
                "name": p.name,
                "seconds_a": p.seconds_a,
                "seconds_b": p.seconds_b,
                "share_a": p.share_a,
                "share_b": p.share_b,
                "share_delta": p.share_delta,
            }
            for p in d.phases
        ],
    }


def _rel(a: float, b: float) -> str:
    if a <= 0:
        return "n/a"
    return f"{(b - a) / a:+.1%}"
