"""Prometheus text-format 0.0.4 exposition of a telemetry session.

:func:`render_prometheus` turns the counters / gauges / histograms of a
:class:`repro.obs.Telemetry` session (or plain dicts in the same shape)
into the exposition format every Prometheus-compatible scraper speaks:

* counters → ``# TYPE ... counter`` with the conventional ``_total``
  suffix;
* gauges → ``# TYPE ... gauge``;
* histograms → ``# TYPE ... histogram`` with cumulative ``_bucket``
  series (``le`` upper bounds from the fixed ladder
  :data:`repro.obs.hist.BUCKET_BOUNDS`, plus ``+Inf``), ``_sum`` and
  ``_count``.

Dotted telemetry names are mapped to the metric namespace by replacing
every non-``[a-zA-Z0-9_]`` character with ``_`` and prefixing ``repro_``
(``search.aux_cache.hit`` → ``repro_search_aux_cache_hit_total``);
duration histograms additionally get a ``_seconds`` unit suffix.

:func:`parse_prometheus` is the inverse — a strict parser used by the
round-trip tests, ``repro metrics check``, and the CI metrics smoke job
to prove the endpoint emits valid 0.0.4 output.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import InputError
from repro.obs.hist import BUCKET_BOUNDS, Histogram

#: Prefix of every exported metric name.
NAMESPACE = "repro"

_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def metric_name(name: str, *, suffix: str = "") -> str:
    """Map a dotted telemetry name onto the Prometheus namespace."""
    return f"{NAMESPACE}_{_SANITIZE.sub('_', name)}{suffix}"


def _fmt_value(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if isinstance(v, int) or (isinstance(v, float) and v.is_integer()):
        return str(int(v))
    return repr(float(v))


def _fmt_le(bound: float) -> str:
    """Stable ``le`` label value for a bucket bound."""
    return _fmt_value(bound)


def render_prometheus(
    counters: Mapping[str, int] | None = None,
    gauges: Mapping[str, float] | None = None,
    histograms: Mapping[str, Any] | None = None,
    *,
    extra_lines: Iterable[str] = (),
) -> str:
    """Render one exposition-format page (text-format 0.0.4).

    ``histograms`` values may be :class:`~repro.obs.hist.Histogram`
    objects or their ``as_dict()`` form. ``extra_lines`` (already-valid
    exposition lines, e.g. the server's own meta-metrics) are appended
    verbatim before the terminating newline.
    """
    out: list[str] = []
    for name, value in sorted((counters or {}).items()):
        m = metric_name(name, suffix="_total")
        out.append(f"# HELP {m} repro counter {name}")
        out.append(f"# TYPE {m} counter")
        out.append(f"{m} {_fmt_value(value)}")
    for name, value in sorted((gauges or {}).items()):
        m = metric_name(name)
        out.append(f"# HELP {m} repro gauge {name}")
        out.append(f"# TYPE {m} gauge")
        out.append(f"{m} {_fmt_value(float(value))}")
    for name, h in sorted((histograms or {}).items()):
        if isinstance(h, dict):
            h = Histogram.from_dict(h)
        m = metric_name(name, suffix="_seconds")
        out.append(f"# HELP {m} repro duration histogram {name}")
        out.append(f"# TYPE {m} histogram")
        cum = 0
        for bound, count in zip(BUCKET_BOUNDS, h.counts):
            cum += count
            out.append(f'{m}_bucket{{le="{_fmt_le(bound)}"}} {cum}')
        out.append(f'{m}_bucket{{le="+Inf"}} {h.count}')
        out.append(f"{m}_sum {_fmt_value(h.sum)}")
        out.append(f"{m}_count {h.count}")
    out.extend(extra_lines)
    return "\n".join(out) + "\n"


def render_session(tel: Any, *, extra_lines: Iterable[str] = ()) -> str:
    """Render a live :class:`repro.obs.Telemetry` (or any object with
    ``counters``/``gauges``/``histograms`` attributes)."""
    return render_prometheus(
        dict(tel.counters),
        dict(tel.gauges),
        {k: v for k, v in tel.histograms.items()},
        extra_lines=extra_lines,
    )


@dataclass
class MetricFamily:
    """One parsed metric family: declared type plus its samples."""

    name: str
    type: str = "untyped"
    #: (sample name, labels dict, float value) triples, document order.
    samples: list[tuple[str, dict[str, str], float]] = field(default_factory=list)


def _parse_labels(body: str, lineno: int) -> dict[str, str]:
    """Parse a ``{...}`` label body strictly (escapes per the 0.0.4 spec)."""
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(body):
        m = _LABEL_RE.match(body, pos)
        if m is None:
            raise InputError(f"line {lineno}: malformed labels {body!r}")
        value = (
            m.group(2)
            .replace(r"\n", "\n")
            .replace(r"\"", '"')
            .replace("\\\\", "\\")
        )
        labels[m.group(1)] = value
        pos = m.end()
        if pos < len(body):
            if body[pos] != ",":
                raise InputError(f"line {lineno}: malformed labels {body!r}")
            pos += 1
    return labels


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    try:
        return float(raw)
    except ValueError as exc:
        raise InputError(f"bad sample value {raw!r}") from exc


def parse_prometheus(text: str) -> dict[str, MetricFamily]:
    """Strict text-format 0.0.4 parser: family name → :class:`MetricFamily`.

    Raises :class:`repro.errors.InputError` on malformed lines, samples
    whose family was ``# TYPE``-declared after first use, histogram
    ``_bucket`` series that are not cumulative, or histograms missing
    ``_sum``/``_count``/``+Inf``. Built for validation, not speed.
    """
    families: dict[str, MetricFamily] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4 or not _NAME_RE.fullmatch(parts[2]):
                raise InputError(f"line {lineno}: malformed TYPE line {line!r}")
            name, mtype = parts[2], parts[3].strip()
            if mtype not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise InputError(f"line {lineno}: unknown metric type {mtype!r}")
            if name in families and families[name].samples:
                raise InputError(
                    f"line {lineno}: TYPE for {name!r} declared after samples"
                )
            families.setdefault(name, MetricFamily(name)).type = mtype
            continue
        if line.startswith("#"):
            continue  # HELP and comments
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise InputError(f"line {lineno}: malformed sample line {line!r}")
        sample_name = m.group("name")
        labels = _parse_labels(m.group("labels") or "", lineno)
        family_name = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and base in families and families[base].type == "histogram":
                family_name = base
                break
        fam = families.setdefault(family_name, MetricFamily(family_name))
        fam.samples.append((sample_name, labels, _parse_value(m.group("value"))))
    for fam in families.values():
        if fam.type == "histogram":
            _check_histogram_family(fam)
    return families


def _check_histogram_family(fam: MetricFamily) -> None:
    buckets = [(ls, v) for n, ls, v in fam.samples if n == f"{fam.name}_bucket"]
    if not buckets:
        raise InputError(f"histogram {fam.name!r} has no _bucket samples")
    if buckets[-1][0].get("le") != "+Inf":
        raise InputError(f"histogram {fam.name!r} missing the le=\"+Inf\" bucket")
    cum = [v for _, v in buckets]
    if any(prev > nxt for prev, nxt in zip(cum, cum[1:])):
        raise InputError(f"histogram {fam.name!r} buckets are not cumulative")
    counts = [v for n, _, v in fam.samples if n == f"{fam.name}_count"]
    sums = [v for n, _, v in fam.samples if n == f"{fam.name}_sum"]
    if len(counts) != 1 or len(sums) != 1:
        raise InputError(f"histogram {fam.name!r} needs exactly one _sum and _count")
    if counts[0] != cum[-1]:
        raise InputError(
            f"histogram {fam.name!r}: _count {counts[0]} != +Inf bucket {cum[-1]}"
        )
