"""The `/metrics` endpoint: a stdlib push-aggregating exposition server.

Production shape: one long-lived aggregator per host (``repro metrics
serve --port P``) publishes a *shared session* — every solver process
that was started with ``--metrics-port P`` attaches to it and pushes its
live counters / gauges / histograms over loopback HTTP, pushgateway
style. A Prometheus-compatible scraper then polls one stable address
regardless of how many solves, sweeps, or online sessions come and go.

Three moving parts, all stdlib:

* :class:`MetricsServer` — ``ThreadingHTTPServer`` with three routes:
  ``GET /metrics`` (exposition text 0.0.4, all sources merged),
  ``GET /healthz`` (liveness JSON: source count, staleness), and
  ``POST /push`` (one JSON snapshot of a session, keyed by its label).
* :class:`MetricsPublisher` — a daemon thread owned by the *solver*
  process: every ``interval`` seconds it snapshots the attached
  :class:`repro.obs.Telemetry` session, POSTs it, and emits a
  ``metrics.heartbeat`` event into the session — so a stalled solve is
  visible both in the trace (heartbeats keep arriving, counters do not
  move) and on the endpoint (``repro_push_age_seconds`` stays fresh
  while work gauges freeze).
* :func:`attach_metrics` — the CLI glue: reuse an aggregator already
  listening on the port, or start an in-process one so a single
  ``repro solve --metrics-port P`` works with no prior setup.

Counters from *distinct* source labels are summed at render time;
histograms are merged bucket-wise (the fixed ladder makes this exact);
gauges last-write-win per source and are exported with a ``source``
label when more than one source is live.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs import _state
from repro.obs.hist import Histogram, validate_histogram
from repro.obs.promtext import metric_name, render_prometheus

#: Snapshot wire format version accepted by ``POST /push``.
PUSH_SCHEMA = 1

#: Default heartbeat/push cadence of a :class:`MetricsPublisher`.
DEFAULT_PUSH_INTERVAL = 1.0

#: Largest body ``POST /push`` accepts. A legitimate snapshot is a few KiB
#: of counters; anything near this cap is either a bug or an attack, and
#: reading an unbounded ``Content-Length`` into memory must not be the
#: failure mode either way.
MAX_PUSH_BYTES = 8 * 1024 * 1024


def _is_loopback(ip: str) -> bool:
    """True for IPv4/IPv6 loopback peers (optionally v4-mapped)."""
    if ip.startswith("::ffff:"):
        ip = ip[len("::ffff:"):]
    return ip == "::1" or ip.startswith("127.")


@dataclass
class _Source:
    """Latest snapshot pushed by one session label."""

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[str, Any]] = field(default_factory=dict)
    pushes: int = 0
    last_push: float = field(default_factory=time.monotonic)


class _Registry:
    """Thread-safe label → :class:`_Source` store behind the server."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sources: dict[str, _Source] = {}
        self.started = time.monotonic()

    def push(self, label: str, snap: dict[str, Any]) -> None:
        counters = snap.get("counters", {})
        gauges = snap.get("gauges", {})
        histograms = snap.get("histograms", {})
        if not isinstance(counters, dict) or not isinstance(gauges, dict) \
                or not isinstance(histograms, dict):
            raise ValueError("counters/gauges/histograms must be objects")
        for name, h in histograms.items():
            problems = validate_histogram(name, h)
            if problems:
                raise ValueError("; ".join(problems))
        with self._lock:
            src = self._sources.setdefault(label, _Source())
            src.counters = {str(k): int(v) for k, v in counters.items()}
            src.gauges = {str(k): float(v) for k, v in gauges.items()}
            src.histograms = histograms
            src.pushes += 1
            src.last_push = time.monotonic()

    def render(self) -> str:
        """Merge every source and render one exposition page."""
        with self._lock:
            sources = {label: src for label, src in self._sources.items()}
        counters: dict[str, int] = {}
        histograms: dict[str, Histogram] = {}
        gauges: dict[str, float] = {}
        multi = len(sources) > 1
        extra: list[str] = []
        now = time.monotonic()
        m_sources = metric_name("metrics.sources")
        extra.append(f"# TYPE {m_sources} gauge")
        extra.append(f"{m_sources} {len(sources)}")
        m_up = metric_name("metrics.uptime_seconds")
        extra.append(f"# TYPE {m_up} gauge")
        extra.append(f"{m_up} {now - self.started:.3f}")
        m_pushes = metric_name("metrics.pushes", suffix="_total")
        m_age = metric_name("metrics.push_age_seconds")
        if sources:
            extra.append(f"# TYPE {m_pushes} counter")
            extra.append(f"# TYPE {m_age} gauge")
        for label, src in sorted(sources.items()):
            esc = label.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
            extra.append(f'{m_pushes}{{source="{esc}"}} {src.pushes}')
            extra.append(f'{m_age}{{source="{esc}"}} {now - src.last_push:.3f}')
            for name, v in src.counters.items():
                counters[name] = counters.get(name, 0) + v
            for name, h in src.histograms.items():
                histograms.setdefault(name, Histogram()).merge(h)
            for name, v in src.gauges.items():
                if multi:
                    mg = metric_name(name)
                    extra.append(f'{mg}{{source="{esc}"}} {v}')
                else:
                    gauges[name] = v
        return render_prometheus(counters, gauges, histograms, extra_lines=extra)

    def health(self) -> dict[str, Any]:
        with self._lock:
            now = time.monotonic()
            return {
                "status": "ok",
                "sources": len(self._sources),
                "uptime_seconds": round(now - self.started, 3),
                "push_age_seconds": {
                    label: round(now - src.last_push, 3)
                    for label, src in sorted(self._sources.items())
                },
            }


class _Handler(BaseHTTPRequestHandler):
    """Routes; the registry is attached to the server object."""

    server_version = "repro-metrics/1"

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        registry: _Registry = self.server.registry  # type: ignore[attr-defined]
        if self.path.split("?", 1)[0] == "/metrics":
            body = registry.render().encode("utf-8")
            self._send(200, body, "text/plain; version=0.0.4; charset=utf-8")
        elif self.path.split("?", 1)[0] == "/healthz":
            body = (json.dumps(registry.health()) + "\n").encode("utf-8")
            self._send(200, body, "application/json")
        else:
            self._send(404, b"not found\n", "text/plain")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        registry: _Registry = self.server.registry  # type: ignore[attr-defined]
        if self.path.split("?", 1)[0] != "/push":
            self._send(404, b"not found\n", "text/plain")
            return
        allow_remote = getattr(self.server, "allow_remote_push", False)
        if not allow_remote and not _is_loopback(str(self.client_address[0])):
            self._send(403, b"push forbidden: loopback peers only\n",
                       "text/plain")
            return
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            self._send(400, f"bad push: missing or malformed Content-Length "
                            f"{raw_length!r}\n".encode(), "text/plain")
            return
        if length < 0:
            self._send(400, b"bad push: negative Content-Length\n",
                       "text/plain")
            return
        if length > MAX_PUSH_BYTES:
            self._send(413, f"push too large: {length} bytes exceeds the "
                            f"{MAX_PUSH_BYTES}-byte cap\n".encode(),
                       "text/plain")
            return
        try:
            snap = json.loads(self.rfile.read(length).decode("utf-8"))
            if not isinstance(snap, dict) or snap.get("schema") != PUSH_SCHEMA:
                raise ValueError(f"expected a push-snapshot/{PUSH_SCHEMA} object")
            label = str(snap.get("label") or "unlabeled")
            registry.push(label, snap)
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            self._send(400, f"bad push: {exc}\n".encode(), "text/plain")
            return
        self._send(200, b"ok\n", "text/plain")

    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: D102
        pass  # scrapes every few seconds would spam stderr


class MetricsServer:
    """A running `/metrics` aggregator (daemon-threaded ``serve_forever``)."""

    def __init__(
        self,
        port: int,
        host: str = "127.0.0.1",
        allow_remote_push: bool = False,
    ) -> None:
        self.registry = _Registry()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.registry = self.registry  # type: ignore[attr-defined]
        # ``POST /push`` mutates the registry, so by default only loopback
        # peers may call it (scraping GETs stay open — they are read-only).
        self._httpd.allow_remote_push = allow_remote_push  # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the port."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)


def snapshot_session(tel: Any, label: str) -> dict[str, Any]:
    """One JSON-ready push snapshot of a live session.

    The copy is taken under the session's ``lock`` (see
    :class:`repro.obs.Telemetry`), so a solver thread inserting a *new*
    counter/histogram key mid-snapshot can neither raise ``RuntimeError:
    dictionary changed size during iteration`` nor tear a histogram's
    ``counts``/``sum``/``count`` triple across an in-flight ``observe``.
    Duck-typed sessions without a ``lock`` attribute are copied bare (only
    safe when nothing records concurrently).
    """
    lock = getattr(tel, "lock", None)
    with lock if lock is not None else contextlib.nullcontext():
        return {
            "schema": PUSH_SCHEMA,
            "label": label,
            "counters": dict(tel.counters),
            "gauges": dict(tel.gauges),
            "histograms": {
                name: h.as_dict() for name, h in tel.histograms.items()
            },
        }


def push_snapshot(url: str, snap: dict[str, Any], timeout: float = 2.0) -> None:
    """POST one snapshot to ``url``'s ``/push`` route (raises on refusal)."""
    req = urllib.request.Request(
        url.rstrip("/") + "/push",
        data=json.dumps(snap).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=timeout):
        pass


class MetricsPublisher:
    """Periodic snapshot pusher + heartbeat emitter for one session.

    Owns a daemon thread; every ``interval`` seconds it pushes the
    session's current state to the aggregator and emits a
    ``metrics.heartbeat`` event (plus a ``metrics.heartbeats`` counter)
    into the session so mid-solve stalls leave a visible trail in both
    the endpoint and the trace. :meth:`close` performs one final push so
    the endpoint always ends up consistent with the finished session.
    """

    def __init__(
        self,
        url: str,
        tel: Any,
        label: str,
        interval: float = DEFAULT_PUSH_INTERVAL,
    ) -> None:
        self.url = url
        self.tel = tel
        self.label = label
        self.interval = interval
        self.pushes = 0
        self.errors = 0
        self._started = time.monotonic()
        self._stop = threading.Event()
        # Serializes pushes across threads: the publisher thread and a
        # closing caller must never interleave two POSTs (double-counted
        # ``pushes`` at the aggregator, final snapshot overwritten by a
        # stale in-flight one).
        self._push_lock = threading.Lock()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-publisher", daemon=True
        )
        self._thread.start()

    def _heartbeat(self) -> None:
        if self.tel not in _state._SESSIONS:
            return  # session already sealed; nothing to mark
        # Scoped to the attached session only (unlike obs.emit, which
        # would fan out to every active session, e.g. nested per-solve
        # ones whose event trails must stay deterministic).
        self.tel.events.append(
            {
                "kind": "metrics.heartbeat",
                "seq": _state.next_seq(),
                "elapsed_seconds": round(time.monotonic() - self._started, 3),
                "pushes": self.pushes,
                "push_errors": self.errors,
            }
        )
        self.tel.add_counter("metrics.heartbeats", 1)

    def _push_once(self) -> None:
        with self._push_lock:
            try:
                push_snapshot(self.url, snapshot_session(self.tel, self.label))
                self.pushes += 1
            except (OSError, urllib.error.URLError):
                self.errors += 1  # endpoint gone mid-run: solve goes on
            # Anything else (e.g. a snapshot bug) propagates: a silently
            # dropped push looks exactly like a healthy idle endpoint, and
            # that is how the snapshot race hid for a whole PR.

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._heartbeat()
            self._push_once()

    def close(self) -> None:
        """Stop the thread and push the final session state.

        Idempotent: a second ``close`` returns immediately. The final
        push happens on the caller thread only when the publisher thread
        is confirmed dead — if the join timed out with a push still in
        flight, that thread keeps ownership of the last POST (the push
        lock already prevents interleaving, and skipping the caller-side
        push prevents a stale in-flight snapshot landing *after* the
        final one at the aggregator).
        """
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        self._thread.join(timeout=max(5.0, 2 * self.interval))
        if self._thread.is_alive():  # pragma: no cover - stuck push
            return
        self._push_once()


def attach_metrics(
    port: int,
    tel: Any,
    label: str,
    interval: float = DEFAULT_PUSH_INTERVAL,
) -> tuple[MetricsPublisher, MetricsServer | None]:
    """Attach a session to the shared `/metrics` endpoint on ``port``.

    If an aggregator is already listening there (``repro metrics serve``,
    or another solve that got there first), reuse it; otherwise start an
    in-process :class:`MetricsServer` so a lone ``repro solve
    --metrics-port P`` still exposes metrics. Returns the publisher and
    the server iff this process owns it (close both when done).
    """
    url = f"http://127.0.0.1:{port}"
    server: MetricsServer | None = None
    try:
        with urllib.request.urlopen(url + "/healthz", timeout=2.0):
            pass
    except (OSError, urllib.error.URLError):
        server = MetricsServer(port)
        url = server.url
    return MetricsPublisher(url, tel, label, interval=interval), server
