"""Cheap named counters and gauges with a no-op fast path.

Counters measure solver *work* in units the paper's analysis talks about
(Dijkstra pops, Bellman–Ford rounds, bicameral cycles found, cancellation
iterations, LP solves/pivots, residual rebuilds — full glossary in
docs/OBSERVABILITY.md). Unlike wall time they are **deterministic**: the
same seed and instance must produce identical counter values, which makes
them the auditable side of every quantitative claim.

Hot loops should accumulate into a local int and flush once per call::

    pops += 1            # inside the loop
    ...
    add("dijkstra.pops", pops)   # once, on the way out

so the disabled cost is literally zero function calls per loop iteration,
and the enabled cost is one dict update per instrumented call.
"""

from __future__ import annotations

from repro.obs import _state


def add(name: str, n: int = 1) -> None:
    """Accumulate ``n`` into counter ``name`` on every active session.

    No-op (and near-free) when tracing is disabled; silently drops
    ``n == 0`` to keep flush sites unconditional.
    """
    sessions = _state._SESSIONS
    if not sessions or n == 0:
        return
    n = int(n)
    for tel in sessions:
        tel.add_counter(name, n)


def inc(name: str) -> None:
    """Shorthand for ``add(name, 1)``."""
    sessions = _state._SESSIONS
    if not sessions:
        return
    for tel in sessions:
        tel.add_counter(name, 1)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (last write wins per session)."""
    sessions = _state._SESSIONS
    if not sessions:
        return
    value = float(value)
    for tel in sessions:
        tel.set_gauge(name, value)


def snapshot() -> dict[str, int]:
    """Copy of the innermost session's counters (``{}`` when disabled)."""
    tel = _state.current()
    return dict(tel.counters) if tel is not None else {}
