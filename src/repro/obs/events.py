"""Structured event sink: the JSONL-ready audit trail of a run.

An *event* is one structured fact about solver progress — most
importantly ``cancel.iteration``, the per-iteration cancellation state
(cycle cost/delay and type, the oplus result, current totals, the
Lemma 12 rate) that supersedes the ad-hoc in-memory ``IterationRecord``
list as the trace-level source of truth. Events carry only JSON-safe
payloads (ints, floats, strings, bools, ``None``) so the trace file is
schema-stable; exact rationals are serialized as ``"num/den"`` strings.

Event kinds in use (schema in docs/OBSERVABILITY.md):

``cancel.iteration``
    One cycle-cancellation step (Algorithm 1 step 2).
``cancel.done``
    Terminal state of the cancellation loop.
``solve.result``
    Final totals of one ``solve_krsp`` call.
"""

from __future__ import annotations

from typing import Any

from repro.obs import _state

_JSON_SAFE = (int, float, str, bool, type(None))


def emit(kind: str, **fields: Any) -> None:
    """Record event ``kind`` with ``fields`` on every active session.

    No-op when tracing is disabled. Non-JSON-safe field values are
    stringified so a trace file can always be written.
    """
    sessions = _state._SESSIONS
    if not sessions:
        return
    payload: dict[str, Any] = {"kind": kind, "seq": _state.next_seq()}
    for key, value in fields.items():
        payload[key] = value if isinstance(value, _JSON_SAFE) else str(value)
    for tel in sessions:
        tel.events.append(payload)


def events(kind: str | None = None) -> list[dict[str, Any]]:
    """Events recorded so far on the innermost session (optionally
    filtered by ``kind``); ``[]`` when tracing is disabled."""
    tel = _state.current()
    if tel is None:
        return []
    if kind is None:
        return list(tel.events)
    return [ev for ev in tel.events if ev.get("kind") == kind]
