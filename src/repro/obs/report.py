"""Render a run's telemetry: phase table, hot-span tree, JSON, validation.

Consumes either a live :class:`repro.obs.Telemetry` session or a JSONL
trace file written by it (``repro solve --trace out.jsonl``), and backs
the ``repro trace`` CLI command:

* **phase-time breakdown** — root spans aggregated by name with share of
  wall time (where did the solve go: feasibility, phase 1, LP bounds,
  the cancellation loop?);
* **hot-span tree** — the span call tree aggregated by name-path, child
  time nested under parents, top-N nodes by total time;
* **counter glossary dump** — every counter with its value;
* **machine-readable JSON** — the same content for dashboards/CI;
* **schema validation** — structural checks plus the cross-check that
  the ``cancellation.iterations`` counter equals the number of
  ``cancel.iteration`` events (the Lemma 12 audit invariant).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import InputError
from repro.obs._state import SUPPORTED_SCHEMAS, TRACE_SCHEMA, Telemetry
from repro.obs.hist import validate_histogram

#: Line types a valid trace may contain.
KNOWN_TYPES = {
    "header", "span", "event", "counters", "gauges", "histograms", "summary",
}


@dataclass
class Trace:
    """A parsed telemetry trace (from a file or a live session)."""

    header: dict[str, Any] = field(default_factory=dict)
    spans: list[dict[str, Any]] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[str, Any]] = field(default_factory=dict)
    summary: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_lines(cls, lines: list[dict[str, Any]]) -> "Trace":
        """Assemble a trace from JSONL-decoded dicts (unvalidated)."""
        trace = cls()
        for line in lines:
            kind = line.get("type")
            if kind == "header":
                trace.header = line
            elif kind == "span":
                trace.spans.append(line)
            elif kind == "event":
                trace.events.append(line)
            elif kind == "counters":
                trace.counters = dict(line.get("values", {}))
            elif kind == "gauges":
                trace.gauges = dict(line.get("values", {}))
            elif kind == "histograms":
                trace.histograms = dict(line.get("values", {}))
            elif kind == "summary":
                trace.summary = line
        return trace

    @classmethod
    def from_session(cls, tel: Telemetry) -> "Trace":
        """Snapshot a live session into the same shape a file loads to."""
        return cls.from_lines(tel.trace_lines())

    @property
    def wall_seconds(self) -> float:
        return float(self.summary.get("wall_seconds", 0.0))


def load_trace(path: str | Path) -> Trace:
    """Parse a JSONL trace file; raises :class:`repro.errors.InputError`
    on anything that is not a well-formed trace.

    Untrusted-input discipline (mirrors :mod:`repro.graph.io`): an empty
    file, a binary blob, mid-file garbage, or a torn tail all raise a
    typed :class:`InputError` with a one-line diagnosis — never a raw
    traceback. Torn *tails* are identified with the same semantics as
    :func:`repro._util.atomicio.repair_jsonl_tail` (an unterminated or
    JSON-invalid final line is crash debris), but the file is left
    untouched and the load is refused: a trace missing its ``summary``
    seal is incomplete, and reports over it would silently lie.
    """
    p = Path(path)
    try:
        raw = p.read_bytes()
    except OSError as exc:
        raise InputError(f"cannot read trace file: {exc}") from exc
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise InputError(
            f"not a JSONL trace (binary data at byte {exc.start})"
        ) from exc
    if not text.strip():
        raise InputError("empty trace file (no records)")
    if not text.endswith("\n"):
        raise InputError(
            "torn trailing record (file does not end in a newline) — "
            "the writer died mid-append; re-record the trace"
        )
    lines: list[dict[str, Any]] = []
    raw_lines = text.splitlines()
    last_content = max(i for i, r in enumerate(raw_lines) if r.strip())
    for i, raw_line in enumerate(raw_lines):
        if not raw_line.strip():
            continue
        try:
            line = json.loads(raw_line)
            if not isinstance(line, dict):
                raise ValueError("expected a JSON object")
        except ValueError as exc:
            if i == last_content:
                raise InputError(
                    f"torn trailing record at line {i + 1} "
                    f"({len(raw_line)} bytes of crash debris) — "
                    "the writer died mid-append; re-record the trace"
                ) from exc
            raise InputError(f"line {i + 1}: not valid JSON ({exc})") from exc
        lines.append(line)
    return Trace.from_lines(lines)


def validate_trace(trace: Trace) -> list[str]:
    """Structural + cross-check validation; returns problem strings.

    An empty list means the trace is schema-valid. Checks:

    1. header present with the supported schema version;
    2. every span has id/name/seq and a resolvable parent;
    3. counters are nonnegative integers;
    4. summary counts match the body;
    5. the ``cancellation.iterations`` counter equals the number of
       ``cancel.iteration`` events (when either is present);
    6. the incremental-search counters are internally consistent:
       ``search.aux_cache.evict <= search.aux_cache.miss`` (only built
       entries can be evicted), ``search.aux_cache.delta_refresh <=
       search.aux_cache.hit`` (a delta refresh is a stale hit), and
       ``search.anchors.probes == search.anchors.dirty +
       search.anchors.skipped`` (every anchor is classified exactly once);
    7. LP-engine accounting: ``lp.pivots_unreported`` cannot exceed the
       total LP solve count (``lp.flow_lp.solves + lp.ratio_lp.solves +
       lp.lp6.solves``) — each solve reports its pivots at most once, to
       exactly one of the two pivot counters — and the per-backend totals
       balance: ``lp.warm_start.hit + lp.warm_start.miss ==
       lp.backend.highspy.solves`` (warm accounting exists only on the
       highspy path, one hit-or-miss per solve).
    """
    problems: list[str] = []
    if not trace.header:
        problems.append("missing header line")
    elif trace.header.get("schema") not in SUPPORTED_SCHEMAS:
        problems.append(
            f"unsupported schema {trace.header.get('schema')!r} "
            f"(supported: {sorted(SUPPORTED_SCHEMAS)})"
        )

    span_ids = set()
    for s in trace.spans:
        if not all(k in s for k in ("id", "name", "seq", "start", "dur")):
            problems.append(f"span missing required keys: {s}")
            continue
        span_ids.add(s["id"])
    for s in trace.spans:
        parent = s.get("parent")
        if parent is not None and parent not in span_ids:
            problems.append(
                f"span {s.get('id')} ({s.get('name')}) has unknown parent {parent}"
            )

    for name, value in trace.counters.items():
        if not isinstance(value, int) or value < 0:
            problems.append(f"counter {name!r} is not a nonnegative int: {value!r}")

    span_counts: dict[str, int] = {}
    for s in trace.spans:
        if "name" in s:
            span_counts[s["name"]] = span_counts.get(s["name"], 0) + 1
    for name, h in trace.histograms.items():
        problems.extend(validate_histogram(name, h))
        # Every span close observes its duration, so a span name's
        # histogram count must equal its span count in the same trace.
        if name in span_counts and isinstance(h, dict):
            if h.get("count") != span_counts[name]:
                problems.append(
                    f"histogram {name!r} count ({h.get('count')}) != "
                    f"span count ({span_counts[name]})"
                )

    prev_seq = 0
    for ev in trace.events:
        if "kind" not in ev or "seq" not in ev:
            problems.append(f"event missing kind/seq: {ev}")
            continue
        if ev["seq"] <= prev_seq:
            problems.append(f"event seq not increasing at {ev['kind']} #{ev['seq']}")
        prev_seq = ev["seq"]

    if trace.summary:
        if trace.summary.get("spans") != len(trace.spans):
            problems.append(
                f"summary says {trace.summary.get('spans')} spans, "
                f"trace has {len(trace.spans)}"
            )
        if trace.summary.get("events") != len(trace.events):
            problems.append(
                f"summary says {trace.summary.get('events')} events, "
                f"trace has {len(trace.events)}"
            )
    else:
        problems.append("missing summary line")

    cancel_events = sum(1 for ev in trace.events if ev.get("kind") == "cancel.iteration")
    cancel_counter = trace.counters.get("cancellation.iterations")
    if cancel_counter is not None or cancel_events:
        if (cancel_counter or 0) != cancel_events:
            problems.append(
                f"cancellation.iterations counter ({cancel_counter}) != "
                f"cancel.iteration event count ({cancel_events})"
            )

    c = trace.counters
    if c.get("search.aux_cache.evict", 0) > c.get("search.aux_cache.miss", 0):
        problems.append(
            f"search.aux_cache.evict ({c.get('search.aux_cache.evict')}) > "
            f"search.aux_cache.miss ({c.get('search.aux_cache.miss', 0)}) — "
            "evicted entries that were never built"
        )
    if c.get("search.aux_cache.delta_refresh", 0) > c.get("search.aux_cache.hit", 0):
        problems.append(
            f"search.aux_cache.delta_refresh ({c.get('search.aux_cache.delta_refresh')}) "
            f"> search.aux_cache.hit ({c.get('search.aux_cache.hit', 0)}) — "
            "a delta refresh must be a (stale) cache hit"
        )
    if "search.anchors.probes" in c or "search.anchors.dirty" in c:
        probes = c.get("search.anchors.probes", 0)
        classified = c.get("search.anchors.dirty", 0) + c.get("search.anchors.skipped", 0)
        if probes != classified:
            problems.append(
                f"search.anchors.probes ({probes}) != dirty + skipped ({classified})"
            )
    lp_solves = (
        c.get("lp.flow_lp.solves", 0)
        + c.get("lp.ratio_lp.solves", 0)
        + c.get("lp.lp6.solves", 0)
    )
    if c.get("lp.pivots_unreported", 0) > lp_solves:
        problems.append(
            f"lp.pivots_unreported ({c.get('lp.pivots_unreported')}) > "
            f"total LP solves ({lp_solves}) — a solve can fail to report "
            "its pivot count at most once"
        )
    if "lp.warm_start.hit" in c or "lp.warm_start.miss" in c:
        warm_total = c.get("lp.warm_start.hit", 0) + c.get("lp.warm_start.miss", 0)
        highs_solves = c.get("lp.backend.highspy.solves", 0)
        if warm_total != highs_solves:
            problems.append(
                f"lp.warm_start.hit + lp.warm_start.miss ({warm_total}) != "
                f"lp.backend.highspy.solves ({highs_solves}) — every highspy "
                "solve is exactly one warm hit or miss"
            )
    return problems


def validate_file(path: str | Path) -> list[str]:
    """Like :func:`validate_trace` but also catches parse errors."""
    try:
        trace = load_trace(path)
    except (OSError, ValueError, InputError) as exc:
        return [str(exc)]
    return validate_trace(trace)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _fmt_table(headers: list[str], rows: list[list[Any]]) -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    out = []
    for r_i, row in enumerate(cells):
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if r_i == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def phase_breakdown(trace: Trace) -> list[tuple[str, float, int, float]]:
    """Root spans aggregated by name: (name, seconds, count, share).

    ``share`` is the fraction of total root-span time (not wall time, so
    the table is meaningful even for partial traces).
    """
    agg: dict[str, tuple[float, int]] = {}
    for s in trace.spans:
        if s.get("parent") is not None:
            continue
        tot, cnt = agg.get(s["name"], (0.0, 0))
        agg[s["name"]] = (tot + float(s["dur"]), cnt + 1)
    grand = sum(tot for tot, _ in agg.values()) or 1.0
    rows = [
        (name, tot, cnt, tot / grand)
        for name, (tot, cnt) in sorted(agg.items(), key=lambda kv: -kv[1][0])
    ]
    return rows


def hot_span_nodes(trace: Trace) -> list[tuple[tuple[str, ...], float, float, int]]:
    """Aggregate spans by name-path: (path, total, self, count).

    The *path* is the chain of span names from the root, so identically
    named spans under different parents stay distinct; *self* time is
    total minus the time of direct children.
    """
    by_id = {s["id"]: s for s in trace.spans}

    def path_of(s: dict[str, Any]) -> tuple[str, ...]:
        names: list[str] = []
        cur: dict[str, Any] | None = s
        guard = 0
        while cur is not None:
            names.append(cur["name"])
            parent = cur.get("parent")
            cur = by_id.get(parent) if parent is not None else None
            guard += 1
            if guard > len(trace.spans) + 1:  # corrupt parent chain
                break
        return tuple(reversed(names))

    totals: dict[tuple[str, ...], tuple[float, int]] = {}
    child_time: dict[tuple[str, ...], float] = {}
    for s in trace.spans:
        path = path_of(s)
        tot, cnt = totals.get(path, (0.0, 0))
        totals[path] = (tot + float(s["dur"]), cnt + 1)
        if len(path) > 1:
            parent_path = path[:-1]
            child_time[parent_path] = child_time.get(parent_path, 0.0) + float(s["dur"])
    return [
        (path, tot, tot - child_time.get(path, 0.0), cnt)
        for path, (tot, cnt) in totals.items()
    ]


def render_hot_tree(trace: Trace, top: int = 10) -> str:
    """Indented top-N hot-span tree, hottest subtrees first."""
    nodes = hot_span_nodes(trace)
    if not nodes:
        return "(no spans recorded)"
    keep = {n[0] for n in sorted(nodes, key=lambda n: -n[1])[:top]}
    # Keep ancestors of kept nodes so the tree stays connected.
    for path in list(keep):
        for i in range(1, len(path)):
            keep.add(path[:i])
    by_path = {n[0]: n for n in nodes}
    lines = []

    def emit_subtree(prefix: tuple[str, ...], depth: int) -> None:
        children = sorted(
            (n for n in nodes if n[0][:-1] == prefix and n[0] in keep),
            key=lambda n: -n[1],
        )
        for path, tot, self_t, cnt in children:
            lines.append(
                f"{'  ' * depth}{path[-1]:<{max(4, 40 - 2 * depth)}} "
                f"{tot:9.4f}s  self {self_t:9.4f}s  x{cnt}"
            )
            emit_subtree(path, depth + 1)

    emit_subtree((), 0)
    # by_path retained for future drill-down helpers; silence linters.
    _ = by_path
    return "\n".join(lines)


def latency_quantiles(trace: Trace) -> list[tuple[str, int, float, float, float, float]]:
    """Per-histogram latency summary: (name, count, p50, p90, p99, sum).

    Quantiles are bucket-interpolated estimates over the fixed log-spaced
    ladder (:data:`repro.obs.hist.BUCKET_BOUNDS`); rows are sorted by
    total observed time, descending.
    """
    from repro.obs.hist import Histogram

    rows = []
    for name, d in trace.histograms.items():
        try:
            h = Histogram.from_dict(d)
        except (KeyError, TypeError, ValueError):
            continue  # malformed entries are reported by validate_trace
        rows.append(
            (name, h.count, h.percentile(0.50), h.percentile(0.90),
             h.percentile(0.99), h.sum)
        )
    rows.sort(key=lambda r: -r[5])
    return rows


def _fmt_lat(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_report(trace: Trace, top: int = 10) -> str:
    """Human-readable telemetry report (the ``repro trace`` output)."""
    parts: list[str] = []
    label = trace.header.get("label") or "(unlabeled)"
    parts.append(
        f"telemetry trace: {label}  wall={trace.wall_seconds:.4f}s  "
        f"spans={len(trace.spans)} events={len(trace.events)}"
    )
    parts.append("")
    parts.append("phase-time breakdown (root spans):")
    rows = [
        [name, f"{tot:.4f}", cnt, f"{100 * share:5.1f}%"]
        for name, tot, cnt, share in phase_breakdown(trace)
    ]
    parts.append(
        _fmt_table(["phase", "seconds", "count", "share"], rows)
        if rows
        else "(no root spans)"
    )
    parts.append("")
    parts.append(f"hot spans (top {top} by total time):")
    parts.append(render_hot_tree(trace, top=top))
    lat_rows = latency_quantiles(trace)
    if lat_rows:
        parts.append("")
        parts.append("latency histograms (bucket-interpolated quantiles):")
        parts.append(
            _fmt_table(
                ["name", "count", "p50", "p90", "p99", "total"],
                [
                    [name, cnt, _fmt_lat(p50), _fmt_lat(p90), _fmt_lat(p99),
                     _fmt_lat(tot)]
                    for name, cnt, p50, p90, p99, tot in lat_rows
                ],
            )
        )
    parts.append("")
    parts.append("counters:")
    counter_rows = [[k, v] for k, v in sorted(trace.counters.items())]
    parts.append(
        _fmt_table(["counter", "value"], counter_rows)
        if counter_rows
        else "(no counters recorded)"
    )
    if trace.gauges:
        parts.append("")
        parts.append("gauges:")
        parts.append(
            _fmt_table(
                ["gauge", "value"], [[k, v] for k, v in sorted(trace.gauges.items())]
            )
        )
    cancel = [ev for ev in trace.events if ev.get("kind") == "cancel.iteration"]
    if cancel:
        parts.append("")
        parts.append(f"cancellation iterations ({len(cancel)}):")
        iter_rows = [
            [
                ev.get("iteration"),
                ev.get("cycle_type"),
                ev.get("cycle_cost"),
                ev.get("cycle_delay"),
                ev.get("cost_after"),
                ev.get("delay_after"),
                ev.get("r_value"),
            ]
            for ev in cancel
        ]
        parts.append(
            _fmt_table(
                ["iter", "type", "c(O)", "d(O)", "cost", "delay", "r"], iter_rows
            )
        )
    return "\n".join(parts)


def report_json(trace: Trace, top: int = 10) -> dict[str, Any]:
    """Machine-readable version of :func:`render_report`."""
    return {
        "schema": TRACE_SCHEMA,
        "label": trace.header.get("label"),
        "wall_seconds": trace.wall_seconds,
        "phases": [
            {"name": name, "seconds": tot, "count": cnt, "share": share}
            for name, tot, cnt, share in phase_breakdown(trace)
        ],
        "hot_spans": [
            {
                "path": list(path),
                "seconds": tot,
                "self_seconds": self_t,
                "count": cnt,
            }
            for path, tot, self_t, cnt in sorted(
                hot_span_nodes(trace), key=lambda n: -n[1]
            )[:top]
        ],
        "counters": dict(sorted(trace.counters.items())),
        "gauges": dict(sorted(trace.gauges.items())),
        "histograms": {
            name: {
                "count": cnt,
                "p50": p50,
                "p90": p90,
                "p99": p99,
                "sum": tot,
            }
            for name, cnt, p50, p90, p99, tot in latency_quantiles(trace)
        },
        # The incremental-search engine's health at a glance (PR 4); the
        # same keys also appear in "counters"/"gauges" above.
        "search_cache": {
            k: v
            for k, v in sorted({**trace.counters, **trace.gauges}.items())
            if k.startswith(("search.aux_cache.", "search.anchors.", "residual."))
            or k == "search.rebuild_bytes"
        },
        "events": len(trace.events),
        "cancel_iterations": [
            ev for ev in trace.events if ev.get("kind") == "cancel.iteration"
        ],
    }
