"""Nestable named spans: wall time, monotonic order, parent links.

A *span* is one timed region of solver work. Spans nest: a thread-local
stack links each span to its enclosing one, so a trace reconstructs the
call-tree shape of a run (phase-1 LP inside the solve, ratio-LP solves
inside the bicameral sweep, ...). Usable both ways::

    with span("krsp.phase1"):
        ...

    @span("search.bicameral")
    def find_bicameral_cycle(...):
        ...

When no telemetry session is active (:func:`repro.obs.session`), entering
a span records nothing and costs one attribute read — instrumentation
left in hot paths is free while tracing is disabled.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs import _state


@dataclass(frozen=True)
class SpanRecord:
    """One closed span.

    Attributes
    ----------
    name:
        Dotted span name (taxonomy in docs/OBSERVABILITY.md).
    span_id:
        Process-global id (also a valid sequence number).
    parent_id:
        Enclosing span's id, or ``None`` for a root span.
    seq:
        Monotonic open-order sequence number (equal to ``span_id``).
    start:
        ``time.perf_counter()`` at open (session-relative on serialization).
    duration:
        Wall seconds between open and close.
    """

    name: str
    span_id: int
    parent_id: int | None
    seq: int
    start: float
    duration: float


class span:
    """Context manager *and* decorator marking one named timed region.

    Re-entrant and reusable: each ``with`` entry opens a fresh span, and
    decorating a function opens one per call.
    """

    __slots__ = ("name", "_open")

    def __init__(self, name: str) -> None:
        self.name = name
        self._open: tuple[int, int | None, float] | None = None

    def __enter__(self) -> "span":
        if not _state._SESSIONS:  # fast path: tracing disabled
            self._open = None
            return self
        sid = _state.next_seq()
        stack = _state.SPAN_STACK.open
        parent = stack[-1] if stack else None
        stack.append(sid)
        self._open = (sid, parent, time.perf_counter())
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._open is None:
            return False
        sid, parent, start = self._open
        self._open = None
        duration = time.perf_counter() - start
        stack = _state.SPAN_STACK.open
        if stack and stack[-1] == sid:
            stack.pop()
        elif sid in stack:  # pragma: no cover - misnested close
            stack.remove(sid)
        record = SpanRecord(
            name=self.name,
            span_id=sid,
            parent_id=parent,
            seq=sid,
            start=start,
            duration=duration,
        )
        for tel in _state._SESSIONS:
            tel.spans.append(record)
            tel.observe_hist(self.name, duration)
        return False

    def __call__(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(self.name):
                return fn(*args, **kwargs)

        return wrapper


def current_span_id() -> int | None:
    """Id of the innermost open span on this thread (``None`` outside)."""
    stack = _state.SPAN_STACK.open
    return stack[-1] if stack else None
