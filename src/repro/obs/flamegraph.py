"""Collapsed-stack (flamegraph) export of a span trace.

Folds the span tree of a telemetry trace into the collapsed-stack text
format consumed by ``flamegraph.pl``, speedscope, and most profiler UIs:
one line per distinct span-name path, ``root;child;leaf <self-time>``,
values in integer **nanoseconds** of self time.

The fold carries an exact accounting invariant — the sum of all emitted
self-time values equals the total root-span time of the trace
(:attr:`FoldedStacks.total_ns` ``==`` :attr:`FoldedStacks.root_total_ns`)
— so a flamegraph never invents or loses time relative to the phase
table ``repro trace`` prints. It holds *by construction*: durations are
fixed to integer nanoseconds up front (the trace serializes them at 9
decimal places, so nothing real is lost), and each child's contribution
is capped at its parent's remaining budget before self time is computed,
which makes the per-node ``self = effective - Σ effective children``
telescope exactly. Any capping (possible only through rounding jitter of
sibling durations, single nanoseconds in practice) is reported in
:attr:`FoldedStacks.capped_ns` rather than silently folded away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.report import Trace


@dataclass
class FoldedStacks:
    """The result of :func:`fold_trace`.

    ``lines`` are collapsed-stack records sorted by path;
    ``total_ns == root_total_ns`` is the self-time invariant.
    """

    #: ``"a;b;c 1234"`` collapsed-stack lines (self time, nanoseconds).
    lines: list[str]
    #: Sum of all emitted self-time values.
    total_ns: int
    #: Sum of root-span durations (the time the fold must account for).
    root_total_ns: int
    #: Nanoseconds of child duration capped at parent budgets (rounding
    #: jitter only; 0 on every trace whose spans nest properly).
    capped_ns: int
    #: Spans folded.
    span_count: int

    def text(self) -> str:
        """The collapsed file body (trailing newline included)."""
        return "\n".join(self.lines) + ("\n" if self.lines else "")


def fold_trace(trace: Trace) -> FoldedStacks:
    """Fold a trace's span tree into collapsed stacks (see module doc)."""
    spans = [s for s in trace.spans if "id" in s and "name" in s]
    by_id = {s["id"]: s for s in spans}
    children: dict[Any, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for s in spans:
        parent = s.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(s)
        else:
            roots.append(s)
    for kids in children.values():
        kids.sort(key=lambda s: s.get("seq", 0))

    ns_of = {s["id"]: max(0, round(float(s.get("dur", 0.0)) * 1e9)) for s in spans}

    self_ns: dict[tuple[str, ...], int] = {}
    capped = 0

    # Iterative DFS; each frame carries the span's *effective* duration
    # (capped at the parent's remaining budget at visit time).
    stack: list[tuple[dict[str, Any], tuple[str, ...], int]] = []
    for root in sorted(roots, key=lambda s: s.get("seq", 0)):
        stack.append((root, (root["name"],), ns_of[root["id"]]))
        while stack:
            span, path, effective = stack.pop()
            remaining = effective
            kids_effective: list[tuple[dict[str, Any], int]] = []
            for kid in children.get(span["id"], ()):
                want = ns_of[kid["id"]]
                give = min(want, remaining)
                capped += want - give
                remaining -= give
                kids_effective.append((kid, give))
            self_ns[path] = self_ns.get(path, 0) + remaining
            for kid, give in kids_effective:
                stack.append((kid, path + (kid["name"],), give))

    lines = [
        f"{';'.join(path)} {ns}"
        for path, ns in sorted(self_ns.items())
        if ns > 0
    ]
    total = sum(ns for ns in self_ns.values())
    root_total = sum(ns_of[r["id"]] for r in roots)
    assert total == root_total, (
        f"flamegraph fold lost time: folded {total}ns != roots {root_total}ns"
    )
    return FoldedStacks(
        lines=lines,
        total_ns=total,
        root_total_ns=root_total,
        capped_ns=capped,
        span_count=len(spans),
    )
