"""Solver-wide telemetry: spans, counters, structured event traces.

A zero-dependency observability layer that makes the paper's quantitative
claims auditable on every run. The solver core, path algorithms, flow
layer, and LPs are instrumented with:

* **spans** (:mod:`repro.obs.spans`) — nestable named timed regions;
* **counters/gauges** (:mod:`repro.obs.counters`) — deterministic work
  measures (Dijkstra pops, Bellman–Ford rounds, bicameral cycles,
  cancellation iterations, LP solves/pivots, residual rebuilds);
* **histograms** (:mod:`repro.obs.hist`) — fixed log-bucket latency
  histograms per span name (mergeable across sessions and processes;
  p50/p90/p99 in ``repro trace``);
* **events** (:mod:`repro.obs.events`) — a structured per-iteration audit
  trail of the cancellation loop;
* **reports** (:mod:`repro.obs.report`) — phase tables, hot-span trees,
  JSON output, and trace-schema validation behind ``repro trace``;
* **export** (:mod:`repro.obs.promtext`, :mod:`repro.obs.server`,
  :mod:`repro.obs.flamegraph`, :mod:`repro.obs.diff`) — Prometheus
  text-format exposition with a push-aggregating ``/metrics`` server
  (``repro metrics serve``), collapsed-stack flamegraph export, and
  counter-drift trace diffing (``repro trace --diff``).

Nothing records until a session is opened, so instrumentation is free in
production paths::

    from repro import obs

    with obs.session(trace_path="out.jsonl") as tel:
        sol = solve_krsp(g, s, t, k, D)
    print(tel.counters["cancellation.iterations"])

Sessions nest; every record reaches all active sessions, so an outer
session (e.g. a fuzz run) aggregates across the per-solve sessions inside
it. See docs/OBSERVABILITY.md for the span taxonomy, counter glossary,
and trace file schema.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.obs import _state
from repro.obs._state import TRACE_SCHEMA, Telemetry
from repro.obs.counters import add, gauge, inc, snapshot
from repro.obs.events import emit, events
from repro.obs.hist import BUCKET_BOUNDS, Histogram, observe
from repro.obs.spans import SpanRecord, current_span_id, span


def enabled() -> bool:
    """True when at least one telemetry session is collecting."""
    return bool(_state._SESSIONS)


def current() -> Telemetry | None:
    """The innermost active session, or ``None``."""
    return _state.current()


@contextmanager
def session(
    trace_path: str | Path | None = None, label: str | None = None
) -> Iterator[Telemetry]:
    """Open a telemetry capture session.

    Everything recorded while the session is active (spans, counters,
    gauges, events) lands on the yielded :class:`Telemetry`; if
    ``trace_path`` is given, the session is serialized there as a JSONL
    trace on exit (even when the body raises — a failed run's trace is
    the one you want most).
    """
    tel = Telemetry(trace_path=trace_path, label=label)
    _state.push(tel)
    try:
        yield tel
    finally:
        _state.pop(tel)
        tel.finish()


__all__ = [
    "TRACE_SCHEMA",
    "Telemetry",
    "SpanRecord",
    "session",
    "enabled",
    "current",
    "span",
    "current_span_id",
    "add",
    "inc",
    "gauge",
    "snapshot",
    "observe",
    "Histogram",
    "BUCKET_BOUNDS",
    "emit",
    "events",
]
