"""Fixed log-spaced-bucket duration histograms.

Every span close and the solve-level latency probe feed a
:class:`Histogram` per name on each active session, alongside the
counters (:mod:`repro.obs.counters`) and with the same
zero-cost-when-disabled guarantee: :func:`observe` returns immediately
when no session is collecting.

One **fixed, global** bucket ladder (:data:`BUCKET_BOUNDS`) covers every
histogram: 25 log-spaced upper bounds from 1µs to 100s (a factor of
``10^(1/3) ≈ 2.15`` per step) plus an overflow bucket. Fixed buckets keep
histograms mergeable across sessions and processes — the metrics server
sums them sample-free — and map directly onto Prometheus's cumulative
``le`` encoding (:mod:`repro.obs.promtext`).

Percentiles (:meth:`Histogram.percentile`) are the standard
bucket-interpolated estimates (what ``histogram_quantile`` computes):
exact to within one bucket's width, deterministic given the counts.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any

#: Upper bounds (seconds, inclusive) of the fixed bucket ladder:
#: ``10^(e/3)`` for ``e`` in ``-18 .. 6``, i.e. 1µs → 100s. Values above
#: the last bound land in the overflow bucket.
BUCKET_BOUNDS: tuple[float, ...] = tuple(10.0 ** (e / 3.0) for e in range(-18, 7))

#: Number of counts a histogram stores: one per bound plus overflow.
N_BUCKETS = len(BUCKET_BOUNDS) + 1


class Histogram:
    """Counts per fixed bucket plus exact ``sum``/``count`` accumulators.

    ``counts[i]`` is the number of observations ``v`` with
    ``BUCKET_BOUNDS[i-1] < v <= BUCKET_BOUNDS[i]`` (non-cumulative);
    ``counts[-1]`` is the overflow bucket. ``sum`` and ``count`` are exact
    (not bucket-derived), matching Prometheus ``_sum``/``_count``.
    """

    __slots__ = ("counts", "sum", "count")

    def __init__(self) -> None:
        self.counts: list[int] = [0] * N_BUCKETS
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (seconds)."""
        self.counts[bisect_left(BUCKET_BOUNDS, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "Histogram | dict[str, Any]") -> None:
        """Fold another histogram (or its :meth:`as_dict` form) into this one."""
        if isinstance(other, dict):
            counts, hsum, count = other["counts"], other["sum"], other["count"]
        else:
            counts, hsum, count = other.counts, other.sum, other.count
        for i, c in enumerate(counts):
            self.counts[i] += int(c)
        self.sum += float(hsum)
        self.count += int(count)

    def percentile(self, q: float) -> float:
        """Bucket-interpolated ``q``-quantile (``0 < q <= 1``), 0.0 if empty.

        Linear interpolation inside the target bucket; the overflow bucket
        reports its lower bound (the largest statement the data supports).
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            cum += c
            if cum >= rank:
                if i >= len(BUCKET_BOUNDS):
                    return BUCKET_BOUNDS[-1]
                lo = BUCKET_BOUNDS[i - 1] if i > 0 else 0.0
                hi = BUCKET_BOUNDS[i]
                return lo + (hi - lo) * (rank - (cum - c)) / c
        return BUCKET_BOUNDS[-1]  # pragma: no cover - rank <= count always hits

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form: non-cumulative counts, exact sum/count."""
        return {"counts": list(self.counts), "sum": self.sum, "count": self.count}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Histogram":
        """Inverse of :meth:`as_dict` (validated leniently)."""
        h = cls()
        h.merge(d)
        return h


def observe(name: str, value: float) -> None:
    """Record ``value`` (seconds) into histogram ``name`` on every active
    session. No-op when tracing is disabled."""
    from repro.obs import _state

    sessions = _state._SESSIONS
    if not sessions:
        return
    for tel in sessions:
        tel.observe_hist(name, value)


def validate_histogram(name: str, d: Any) -> list[str]:
    """Structural checks for one serialized histogram; returns problems."""
    problems: list[str] = []
    if not isinstance(d, dict):
        return [f"histogram {name!r} is not an object: {d!r}"]
    counts = d.get("counts")
    if not isinstance(counts, list) or len(counts) != N_BUCKETS:
        problems.append(
            f"histogram {name!r} has {len(counts) if isinstance(counts, list) else 'no'} "
            f"buckets (expected {N_BUCKETS})"
        )
        return problems
    if any(not isinstance(c, int) or c < 0 for c in counts):
        problems.append(f"histogram {name!r} has non-nonnegative-int bucket counts")
        return problems
    if d.get("count") != sum(counts):
        problems.append(
            f"histogram {name!r}: count {d.get('count')} != bucket total {sum(counts)}"
        )
    return problems
