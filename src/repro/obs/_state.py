"""Shared session state for the telemetry layer (internal).

One module owns all mutable state so :mod:`repro.obs.spans`,
:mod:`repro.obs.counters`, and :mod:`repro.obs.events` can stay
import-cycle free. The design is a *stack of sessions*:

* ``repro.obs.session(...)`` pushes a :class:`Telemetry` collector;
  nested sessions stack (e.g. the CLI's trace session around the
  solver's per-solve session), and every record is delivered to **all**
  active collectors, so an outer session always sees the union of the
  work done under it.
* When the stack is empty, every recording entry point returns
  immediately — the no-op fast path that keeps the instrumented hot
  paths free when tracing is disabled.

Sequence numbers are process-global and monotonic, which gives spans and
events a total order that survives interleaving across nested sessions.
Wall-clock values are never part of the determinism contract; counters
and event payloads are (same seed + instance ⇒ identical values).

Everything here is stdlib-only by design.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from pathlib import Path
from typing import Any

from repro.obs.hist import BUCKET_BOUNDS, Histogram

#: Version of the JSONL trace schema written by :meth:`Telemetry.write_trace`
#: and checked by :func:`repro.obs.report.validate_trace`. Version 2 added
#: the ``histograms`` line (PR 7); version-1 traces (no histograms) are
#: still accepted by the validator.
TRACE_SCHEMA = 2

#: Schema versions :func:`repro.obs.report.validate_trace` accepts.
SUPPORTED_SCHEMAS = frozenset({1, 2})

_SEQ = itertools.count(1)
_LOCK = threading.Lock()

#: Active collectors, innermost last. Read without the lock on the hot
#: path (list reads are atomic under the GIL); mutated under the lock.
_SESSIONS: list["Telemetry"] = []


class _SpanStack(threading.local):
    """Per-thread stack of currently open span ids (parent linkage)."""

    def __init__(self) -> None:
        self.open: list[int] = []


SPAN_STACK = _SpanStack()


def next_seq() -> int:
    """Next process-global monotonic sequence number."""
    return next(_SEQ)


def enabled() -> bool:
    """True when at least one telemetry session is collecting."""
    return bool(_SESSIONS)


def current() -> "Telemetry | None":
    """The innermost active session, or ``None``."""
    return _SESSIONS[-1] if _SESSIONS else None


def push(tel: "Telemetry") -> None:
    with _LOCK:
        _SESSIONS.append(tel)


def pop(tel: "Telemetry") -> None:
    with _LOCK:
        try:
            _SESSIONS.remove(tel)
        except ValueError:  # pragma: no cover - misnested teardown
            pass


class Telemetry:
    """One capture session: counters, gauges, closed spans, events.

    Obtained from :func:`repro.obs.session`; read after (or during) the
    ``with`` block. All attributes are plain data:

    ``counters``
        name -> accumulated int (deterministic for a fixed workload).
    ``gauges``
        name -> last value set (floats; last-write-wins).
    ``spans``
        closed :class:`repro.obs.spans.SpanRecord` objects, close order.
    ``events``
        structured event dicts (``kind``, ``seq``, payload fields).
    ``histograms``
        name -> :class:`repro.obs.hist.Histogram` of observed durations
        (every closed span feeds its name's histogram, plus explicit
        :func:`repro.obs.observe` calls such as the solve-level latency).
    ``lock``
        guards the dict-shaped state (``counters``/``gauges``/
        ``histograms``) against concurrent snapshot readers: a
        :class:`MetricsPublisher <repro.obs.server.MetricsPublisher>`
        thread copying the session mid-solve must see internally
        consistent dicts and histogram ``sum``/``count`` pairs. The lists
        (``spans``, ``events``) are append-only and copy safely without
        it. Recording pays one uncontended acquire per *flush* (hot loops
        already accumulate locally and flush once), which keeps the
        overhead guard honest.
    """

    def __init__(
        self, trace_path: str | Path | None = None, label: str | None = None
    ) -> None:
        self.label = label
        self.trace_path = Path(trace_path) if trace_path is not None else None
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.spans: list[Any] = []
        self.events: list[dict[str, Any]] = []
        self.histograms: dict[str, Any] = {}
        self.lock = threading.Lock()
        self.started = time.perf_counter()
        self.wall_seconds = 0.0

    # -- recording (called by the obs.* helper functions) -----------------

    def add_counter(self, name: str, n: int) -> None:
        with self.lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        with self.lock:
            self.gauges[name] = value

    def observe_hist(self, name: str, value: float) -> None:
        with self.lock:
            h = self.histograms.get(name)
            if h is None:
                h = self.histograms[name] = Histogram()
            h.observe(value)

    # -- aggregation ------------------------------------------------------

    def span_totals(self) -> dict[str, tuple[float, int]]:
        """Aggregate closed spans: name -> (total seconds, count)."""
        out: dict[str, tuple[float, int]] = {}
        for s in self.spans:
            tot, cnt = out.get(s.name, (0.0, 0))
            out[s.name] = (tot + s.duration, cnt + 1)
        return out

    def phase_times(self, prefix: str = "") -> dict[str, float]:
        """Total seconds per span name, optionally filtered by ``prefix``
        (which is stripped from the returned keys)."""
        out: dict[str, float] = {}
        for name, (tot, _) in self.span_totals().items():
            if name.startswith(prefix):
                key = name[len(prefix):]
                out[key] = out.get(key, 0.0) + tot
        return out

    def finish(self) -> None:
        """Seal the session: fix wall time and flush the trace file."""
        self.wall_seconds = time.perf_counter() - self.started
        if self.trace_path is not None:
            self.write_trace(self.trace_path)

    def as_dict(self) -> dict[str, Any]:
        """Machine-readable summary (the fuzz report's telemetry block)."""
        return {
            "schema": TRACE_SCHEMA,
            "label": self.label,
            "wall_seconds": round(self.wall_seconds, 6),
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "span_seconds": {
                name: round(tot, 6)
                for name, (tot, _) in sorted(self.span_totals().items())
            },
            "span_counts": {
                name: cnt for name, (_, cnt) in sorted(self.span_totals().items())
            },
            "latency_quantiles": {
                name: {
                    "count": h.count,
                    "p50": round(h.percentile(0.50), 9),
                    "p90": round(h.percentile(0.90), 9),
                    "p99": round(h.percentile(0.99), 9),
                }
                for name, h in sorted(self.histograms.items())
            },
            "events": len(self.events),
        }

    # -- trace serialization ----------------------------------------------

    def trace_lines(self) -> list[dict[str, Any]]:
        """The session as JSONL-ready dicts (see docs/OBSERVABILITY.md)."""
        lines: list[dict[str, Any]] = [
            {
                "type": "header",
                "schema": TRACE_SCHEMA,
                "tool": "repro-obs",
                "label": self.label,
            }
        ]
        for s in sorted(self.spans, key=lambda s: s.seq):
            lines.append(
                {
                    "type": "span",
                    "id": s.span_id,
                    "parent": s.parent_id,
                    "seq": s.seq,
                    "name": s.name,
                    "start": round(s.start - self.started, 9),
                    "dur": round(s.duration, 9),
                }
            )
        # Sorted by seq: a background publisher thread (metrics heartbeats)
        # may append out of order relative to the main thread.
        for ev in sorted(self.events, key=lambda ev: ev.get("seq", 0)):
            lines.append({"type": "event", **ev})
        lines.append(
            {"type": "counters", "values": dict(sorted(self.counters.items()))}
        )
        lines.append({"type": "gauges", "values": dict(sorted(self.gauges.items()))})
        if self.histograms:
            lines.append(
                {
                    "type": "histograms",
                    "bounds": list(BUCKET_BOUNDS),
                    "values": {
                        name: h.as_dict()
                        for name, h in sorted(self.histograms.items())
                    },
                }
            )
        lines.append(
            {
                "type": "summary",
                "wall_seconds": round(
                    self.wall_seconds
                    or (time.perf_counter() - self.started),
                    9,
                ),
                "spans": len(self.spans),
                "events": len(self.events),
            }
        )
        return lines

    def write_trace(self, path: str | Path) -> None:
        """Serialize the session as one JSON object per line."""
        text = "\n".join(json.dumps(line) for line in self.trace_lines())
        Path(path).write_text(text + "\n")
