"""Online repair: restore a kRSP solution after link failures.

The fault-tolerance story of the paper's introduction continues past
provisioning: when links die, an SDN controller wants to *repair* the
tunnel set, not recompute it from scratch — surviving paths should keep
carrying traffic (no reconfiguration), and only the broken ones re-route
within whatever delay budget remains.

:func:`repair_solution` implements that policy exactly:

1. paths untouched by the failures are pinned;
2. their edges (and the dead links) are removed from the graph;
3. a fresh kRSP instance routes the ``k_broken`` replacement paths under
   the leftover budget ``D - delay(pinned)``;
4. the merged path set is returned with full bookkeeping.

Guarantee inherited from the solver: the replacement paths' total cost is
within factor 2 of the *optimal repair under the pinning policy* (pinning
itself is a policy choice, not cost-optimal in general — re-solving from
scratch is the alternative, also offered for comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.krsp import KRSPSolution, solve_krsp
from repro.errors import InfeasibleInstanceError
from repro.graph.digraph import DiGraph


@dataclass
class RepairResult:
    """Outcome of :func:`repair_solution`.

    Attributes
    ----------
    paths:
        The full repaired set: pinned survivors + replacements
        (original-graph edge ids).
    cost, delay:
        Totals of the repaired set.
    pinned:
        How many provisioned paths survived untouched.
    rerouted:
        How many were re-provisioned.
    replacement:
        The inner solver's result for the replacements (``None`` when
        nothing needed rerouting).
    """

    paths: list[list[int]]
    cost: int
    delay: int
    pinned: int
    rerouted: int
    replacement: KRSPSolution | None


def repair_solution(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    paths: list[list[int]],
    dead_edges,
    **solver_kwargs,
) -> RepairResult:
    """Repair ``paths`` after ``dead_edges`` failed, pinning survivors.

    Raises :class:`InfeasibleInstanceError` when no pinning-respecting
    repair exists (callers can then fall back to a full re-solve on the
    surviving graph — which this function does *not* do implicitly, so the
    policy stays explicit).
    """
    dead = set(int(e) for e in dead_edges)
    pinned = [list(p) for p in paths if not dead.intersection(p)]
    broken = len(paths) - len(pinned)
    if broken == 0:
        flat = [e for p in pinned for e in p]
        return RepairResult(
            paths=pinned,
            cost=g.cost_of(flat),
            delay=g.delay_of(flat),
            pinned=len(pinned),
            rerouted=0,
            replacement=None,
        )

    pinned_flat = [e for p in pinned for e in p]
    pinned_delay = g.delay_of(pinned_flat)
    remaining_budget = delay_bound - pinned_delay
    if remaining_budget < 0:
        raise InfeasibleInstanceError(
            "pinned survivors alone exceed the delay budget — the original "
            "solution must have been budget-infeasible"
        )

    # Survivor edges and dead links leave the graph; ids are preserved via
    # the keep-mask indirection.
    blocked = dead.union(pinned_flat)
    keep = np.array(
        [e for e in range(g.m) if e not in blocked], dtype=np.int64
    )
    sub = g.subgraph_edges(keep)
    try:
        sol = solve_krsp(sub, s, t, broken, remaining_budget, **solver_kwargs)
    except InfeasibleInstanceError as exc:
        raise InfeasibleInstanceError(
            f"no pinning-respecting repair for {broken} broken path(s): {exc}"
        ) from exc
    replacements = [[int(keep[e]) for e in p] for p in sol.paths]

    all_paths = pinned + replacements
    flat = [e for p in all_paths for e in p]
    return RepairResult(
        paths=all_paths,
        cost=g.cost_of(flat),
        delay=g.delay_of(flat),
        pinned=len(pinned),
        rerouted=broken,
        replacement=sol,
    )
