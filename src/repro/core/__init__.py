"""Core package: the paper's kRSP bifactor approximation algorithm.

Public surface re-exported here; the usual entry point is
:func:`repro.core.solve_krsp`.
"""

from repro.core.instance import KRSPInstance, PathSet
from repro.core.residual import (
    ResidualGraph,
    apply_residual_cycles,
    build_residual,
    residual_weight_of,
)
from repro.core.cycle_decompose import decompose_into_cycles, split_closed_walk
from repro.core.bicameral import (
    CandidateCycle,
    CycleType,
    classify,
    select_candidate,
)
from repro.core.auxgraph import AuxGraph, build_aux_paper, build_aux_shifted
from repro.core.auxlp import (
    candidates_from_circulation,
    peel_fractional_cycles,
    solve_ratio_lp,
)
from repro.core.search import (
    SearchStats,
    find_bicameral_candidates,
    find_bicameral_candidates_paper,
    find_bicameral_cycle,
    reversed_edge_anchors,
)
from repro.core.phase1 import (
    PROVIDERS,
    Phase1Result,
    phase1_lagrangian,
    phase1_lp_rounding,
    phase1_minsum,
)
from repro.core.cancellation import (
    CancellationResult,
    IterationRecord,
    cancel_to_feasibility,
)
from repro.core.scaling import ScaledInstance, mapped_back_delay_bound, scale_instance
from repro.core.krsp import KRSPSolution, solve_krsp
from repro.core.verify import VerificationReport, verify_solution
from repro.core.repair import RepairResult, repair_solution
from repro.core.kbcp import KBCPSolution, solve_kbcp
from repro.core.special_cases import (
    LengthBoundedResult,
    LengthBoundedStatus,
    MinMaxResult,
    length_bounded_paths,
    min_max_disjoint_paths,
)

__all__ = [
    "KRSPInstance",
    "PathSet",
    "ResidualGraph",
    "apply_residual_cycles",
    "build_residual",
    "residual_weight_of",
    "decompose_into_cycles",
    "split_closed_walk",
    "CandidateCycle",
    "CycleType",
    "classify",
    "select_candidate",
    "AuxGraph",
    "build_aux_paper",
    "build_aux_shifted",
    "candidates_from_circulation",
    "peel_fractional_cycles",
    "solve_ratio_lp",
    "SearchStats",
    "find_bicameral_candidates",
    "find_bicameral_cycle",
    "find_bicameral_candidates_paper",
    "reversed_edge_anchors",
    "PROVIDERS",
    "Phase1Result",
    "phase1_lagrangian",
    "phase1_lp_rounding",
    "phase1_minsum",
    "CancellationResult",
    "IterationRecord",
    "cancel_to_feasibility",
    "ScaledInstance",
    "mapped_back_delay_bound",
    "scale_instance",
    "KRSPSolution",
    "solve_krsp",
    "VerificationReport",
    "verify_solution",
    "RepairResult",
    "repair_solution",
    "KBCPSolution",
    "solve_kbcp",
    "LengthBoundedResult",
    "LengthBoundedStatus",
    "MinMaxResult",
    "length_bounded_paths",
    "min_max_disjoint_paths",
]
