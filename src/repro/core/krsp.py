"""Top-level kRSP solver facade.

:func:`solve_krsp` wires the whole pipeline together:

1. structural feasibility (``k`` disjoint paths at all?) via max-flow;
2. optional Theorem-4 epsilon-scaling (polynomial mode);
3. a phase-1 provider (LP rounding by default — the paper's Algorithm 1
   step 1);
4. the bicameral cycle-cancellation loop (Algorithm 1 step 2).

The returned :class:`KRSPSolution` carries the paths, exact totals, the
certified cost lower bound, and full per-iteration instrumentation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from repro import obs
from repro._util.timer import Timer
from repro.core.cancellation import (
    DEFAULT_MAX_ITERATIONS,
    CancellationResult,
    IterationRecord,
    cancel_to_feasibility,
)
from repro.core.instance import KRSPInstance, PathSet
from repro.core.phase1 import PROVIDERS, Phase1Result
from repro.core.scaling import scale_instance
from repro.errors import BudgetExhaustedError, GraphError, InfeasibleInstanceError
from repro.flow.maxflow import has_k_disjoint_paths
from repro.lp.flow_lp import solve_flow_lp
from repro.flow.mincost import min_cost_k_flow
from repro.flow.decompose import decompose_flow, strip_improving_cycles
from repro.graph.digraph import DiGraph
from repro.robustness.anytime import (
    STATUS_BUDGET_EXHAUSTED,
    STATUS_DEGRADED,
    STATUS_OK,
    Certificate,
    make_certificate,
)
from repro.robustness.budget import BudgetMeter, SolveBudget, metered


@dataclass
class KRSPSolution:
    """Everything :func:`solve_krsp` learned.

    Attributes
    ----------
    paths:
        ``k`` edge-disjoint s-t paths (edge-id lists, valid in the original
        graph even when epsilon-scaling ran).
    cost, delay:
        Exact totals in *original* units.
    delay_bound:
        The instance's budget ``D`` (for convenience).
    delay_feasible:
        ``delay <= D``. Always true without scaling; with scaling the
        guarantee is ``delay <= (1 + eps1) * D``.
    cost_lower_bound:
        Certified ``<= C_OPT`` — the max of the phase-1 bound and the
        flow-LP optimum (``None`` only after scaling, where scaled-unit
        bounds do not map back).
    iterations:
        Cancellation steps taken.
    records:
        Per-iteration audit trail (Lemma 12 instrumentation).
    provider:
        Phase-1 provider name.
    scaled:
        Whether Theorem-4 scaling was applied.
    timings:
        Wall-clock seconds per phase.
    counters:
        Telemetry counter snapshot for this solve (Dijkstra pops, LP
        solves, cancellation iterations, ... — see docs/OBSERVABILITY.md).
        Populated only when a :func:`repro.obs.session` is active; empty
        otherwise (the disabled fast path records nothing).
    status:
        ``"ok"`` — the full pipeline finished (bit-identical to an
        unbudgeted solve); ``"budget_exhausted"`` — a
        :class:`~repro.robustness.SolveBudget` tripped and ``paths`` is
        the best valid solution seen; ``"degraded"`` — the cancellation
        loop stalled (state repetition under estimated bounds) while
        holding a valid solution. See docs/ROBUSTNESS.md.
    certificate:
        Machine-checkable quality residue (delay slack, cost-bound gap,
        budget odometer). Always populated; most useful when
        ``status != "ok"``.
    """

    paths: list[list[int]]
    cost: int
    delay: int
    delay_bound: int
    delay_feasible: bool
    cost_lower_bound: Fraction | None
    iterations: int
    records: list[IterationRecord] = field(default_factory=list)
    provider: str = ""
    scaled: bool = False
    timings: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    status: str = STATUS_OK
    certificate: Certificate | None = None


def _cost_cap_upper_bound(
    inst: KRSPInstance,
) -> tuple[int, list[list[int]]] | None:
    """Cheapest delay-feasible flow: a certified C_OPT upper bound.

    Found by minimizing delay (cost tie-broken); if even that flow misses
    the budget the instance is infeasible and the caller will discover it,
    so return ``None`` (cap disabled). Returns ``(cost, paths)`` — the
    witnessing paths double as the anytime layer's preferred degraded
    answer (delay-feasible by construction).
    """
    g = inst.graph
    big = g.total_cost() + 1
    res = min_cost_k_flow(
        g, inst.s, inst.t, inst.k, weight=g.delay * big + g.cost
    )
    if res is None:
        return None
    eids = np.nonzero(res.used)[0]
    paths, _ = decompose_flow(g, eids, inst.s, inst.t)
    flat = [e for p in paths for e in p]
    if g.delay_of(flat) > inst.delay_bound:
        return None
    return g.cost_of(flat), paths


def solve_krsp(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    phase1: str = "lp_rounding",
    eps: tuple[float, float] | float | None = None,
    b_max: int | None = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    opt_cost: int | None = None,
    strict_monitor: bool = False,
    finder: str = "production",
    budget: SolveBudget | None = None,
    incremental: bool | None = None,
    checkpoint_hook=None,
) -> KRSPSolution:
    """Solve kRSP with the paper's bifactor algorithm.

    Parameters
    ----------
    g, s, t, k, delay_bound:
        The instance (Definition 2).
    phase1:
        Provider name: ``"lp_rounding"`` (paper default), ``"lagrangian"``,
        or ``"minsum"``.
    eps:
        ``None`` runs the pseudo-polynomial Lemma-3 algorithm (bifactor
        ``(1, 2)``); a float or ``(eps1, eps2)`` pair runs the Theorem-4
        polynomial variant (bifactor ``(1 + eps1, 2 + eps2)``).
    b_max, max_iterations:
        Search radius / iteration caps (see
        :mod:`repro.core.cancellation`).
    opt_cost, strict_monitor, finder:
        Instrumentation / fidelity knobs — see
        :func:`cancel_to_feasibility`.
    incremental:
        Incremental search engine toggle (:mod:`repro.perf`); ``None``
        auto-enables it for the production finder, where it is
        bit-identical to the from-scratch path — see
        :func:`cancel_to_feasibility`.
    budget:
        Cooperative :class:`repro.robustness.SolveBudget` enabling
        **anytime** semantics: on exhaustion (wall-clock deadline,
        iteration cap, search-node cap — even a zero deadline) the solver
        returns the best valid ``k``-disjoint-paths solution it holds,
        with ``status != "ok"`` and a quality :class:`Certificate`,
        instead of raising. Structural/budget infeasibility still raises
        (there is no valid answer to degrade to). The feasibility gate is
        mandatory work, so a budgeted solve always has at least the
        minimum-delay flow to fall back on.
    checkpoint_hook:
        Crash-safety seam
        (:class:`repro.robustness.checkpointing.CheckpointHook`): writes
        the write-ahead journal prelude after the LP phases and hands the
        per-iteration/snapshot hooks to the cancellation loop. Use
        :func:`repro.robustness.checkpointing.solve_checkpointed` rather
        than constructing one by hand.

    Raises
    ------
    InfeasibleInstanceError
        When no ``k`` disjoint delay-feasible paths exist.
    """
    # Arm the deadline clock before any work so "deadline" means
    # end-to-end wall clock, not just the cancellation phase.
    meter = budget.start() if budget is not None else None
    if obs.enabled():
        # Nest a per-solve session under whatever is tracing (CLI trace,
        # fuzz run, eval harness) so each solution carries its own counter
        # snapshot while outer sessions still see the aggregate.
        start = time.perf_counter()
        with obs.session(label="solve_krsp") as tel:
            sol = _solve_krsp_impl(
                g, s, t, k, delay_bound, phase1, eps, b_max,
                max_iterations, opt_cost, strict_monitor, finder, meter,
                incremental, checkpoint_hook,
            )
        # End-to-end solve latency, observed into every enclosing session's
        # "krsp.solve" histogram (the nested per-solve session just closed,
        # so only aggregating outer sessions record it).
        obs.observe("krsp.solve", time.perf_counter() - start)
        sol.counters = dict(tel.counters)
        return sol
    return _solve_krsp_impl(
        g, s, t, k, delay_bound, phase1, eps, b_max,
        max_iterations, opt_cost, strict_monitor, finder, meter,
        incremental, checkpoint_hook,
    )


def _solve_krsp_impl(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    phase1: str,
    eps: tuple[float, float] | float | None,
    b_max: int | None,
    max_iterations: int,
    opt_cost: int | None,
    strict_monitor: bool,
    finder: str,
    meter: BudgetMeter | None = None,
    incremental: bool | None = None,
    checkpoint_hook=None,
) -> KRSPSolution:
    """The pipeline body of :func:`solve_krsp` (telemetry-agnostic)."""
    timer = Timer(span_prefix="krsp")
    inst = KRSPInstance(graph=g, s=s, t=t, k=k, delay_bound=delay_bound)

    with timer.section("feasibility"):
        if not has_k_disjoint_paths(g, s, t, k):
            raise InfeasibleInstanceError(
                f"graph admits fewer than k={k} edge-disjoint s-t paths"
            )
        # Exact feasibility oracle: the minimum total delay over k disjoint
        # paths is a plain min-cost-flow problem under the delay weight; if
        # even that exceeds D, no solution exists and the cancellation loop
        # must never start.
        min_delay_flow = min_cost_k_flow(g, s, t, k, weight=g.delay)
        if min_delay_flow is not None and min_delay_flow.weight > delay_bound:
            raise InfeasibleInstanceError(
                f"minimum achievable total delay {min_delay_flow.weight} "
                f"exceeds the budget {delay_bound}"
            )

    work_inst = inst
    scaled = False
    theta = None
    lower_bound: Fraction | None = None
    p1: Phase1Result | None = None
    cap_paths: list[list[int]] | None = None
    result: CancellationResult | None = None
    exhausted: str | None = None

    # Everything past the feasibility gate runs under the (possibly absent)
    # budget meter; a trip anywhere degrades to the best valid solution held
    # at that point instead of surfacing the control-flow exception.
    with metered(meter):
        try:
            if eps is not None:
                eps1, eps2 = (eps, eps) if isinstance(eps, (int, float)) else eps
                with timer.section("scaling"):
                    # Cost-grid estimate C_hat: the min-sum (delay-oblivious)
                    # cost, a certified lower bound on C_OPT as Theorem 4's
                    # guarantee wants.
                    from repro.flow.suurballe import suurballe_k_paths

                    base_paths = suurballe_k_paths(g, s, t, k)
                    if base_paths is None:
                        raise InfeasibleInstanceError("k disjoint paths vanished")
                    c_hat = max(1, sum(g.cost_of(p) for p in base_paths))
                    theta = scale_instance(inst, eps1, eps2, c_hat)
                    work_inst = theta.instance
                    scaled = True

            with timer.section("phase1"):
                provider = PROVIDERS[phase1]
                p1 = provider(work_inst)

            with timer.section("lower_bound"):
                # The flow-LP optimum is usually the tightest certified lower
                # bound and is cheap next to one auxiliary-graph solve; the
                # tighter the bound, the earlier the bicameral sweep can stop
                # (rate tests certify sooner). Combine it with whatever
                # phase 1 learned.
                lower_bound = p1.cost_lower_bound
                lp = solve_flow_lp(
                    work_inst.graph,
                    work_inst.s,
                    work_inst.t,
                    work_inst.k,
                    work_inst.delay_bound,
                )
                if lp is None:
                    raise InfeasibleInstanceError(
                        "delay-budgeted flow LP infeasible"
                    )
                # Shave solver tolerance so float noise can never push the
                # "certified" bound above the true optimum.
                lp_bound = Fraction(max(0.0, lp.cost - 1e-6)).limit_denominator(10**9)
                lower_bound = (
                    lp_bound if lower_bound is None else max(lower_bound, lp_bound)
                )

            with timer.section("cost_cap"):
                cap_res = _cost_cap_upper_bound(work_inst)
                cap = cap_paths = None
                if cap_res is not None:
                    cap, cap_paths = cap_res

            if checkpoint_hook is not None:
                # Durable prelude: everything the loop needs that the LP
                # phases computed, so a resume never re-runs them.
                checkpoint_hook.write_prelude(
                    provider=p1.provider,
                    p1_solution=p1.solution,
                    lower_bound=lower_bound,
                    cost_cap=cap,
                    cap_paths=cap_paths,
                    min_delay_flow=min_delay_flow,
                )

            with timer.section("cancel"):
                result = cancel_to_feasibility(
                    work_inst,
                    p1.solution,
                    cost_lower_bound=lower_bound,
                    opt_cost=opt_cost if not scaled else None,
                    cost_cap=cap,
                    b_max=b_max,
                    max_iterations=max_iterations,
                    strict_monitor=strict_monitor and not scaled,
                    finder=finder,
                    incremental=incremental,
                    journal=checkpoint_hook,
                )
            exhausted = result.exhausted
        except BudgetExhaustedError as exc:
            exhausted = exc.reason

    if exhausted is None:
        assert result is not None
        final_paths = [list(p) for p in result.solution.paths]
    else:
        final_paths = _best_degraded_paths(
            g, s, t, delay_bound, min_delay_flow, p1, cap_paths, result
        )

    lb = lower_bound
    if scaled and lb is not None and theta is not None:
        # Scaled-units bound maps back conservatively: c'(OPT) >= lb implies
        # C_OPT >= theta_c * lb is NOT valid (floors shrink); only the
        # unscaled-provider bound survives, so drop it.
        lb = None

    return assemble_solution(
        g,
        delay_bound,
        final_paths=final_paths,
        result=result,
        exhausted=exhausted,
        lower_bound=lb,
        provider_name=p1.provider if p1 is not None else "",
        scaled=scaled,
        timings=timer.as_dict(),
        meter=meter,
    )


def assemble_solution(
    g: DiGraph,
    delay_bound: int,
    *,
    final_paths: list[list[int]],
    result: CancellationResult | None,
    exhausted: str | None,
    lower_bound: Fraction | None,
    provider_name: str,
    scaled: bool,
    timings: dict[str, float],
    meter: BudgetMeter | None,
) -> KRSPSolution:
    """Assemble the :class:`KRSPSolution` (status, certificate, telemetry).

    Shared between the live pipeline and
    :func:`repro.robustness.checkpointing.resume_krsp`, so a resumed solve
    reports through exactly the same taxonomy and emits the same terminal
    events as an uninterrupted one.
    """
    flat = [e for p in final_paths for e in p]
    cost = g.cost_of(flat)
    delay = g.delay_of(flat)

    if exhausted is None:
        status = STATUS_OK
    elif exhausted == "stalled":
        status = STATUS_DEGRADED
    else:
        status = STATUS_BUDGET_EXHAUSTED
    certificate = make_certificate(
        cost,
        delay,
        delay_bound,
        lower_bound,
        exhausted_reason=exhausted,
        usage=meter.usage() if meter is not None else None,
    )

    iterations = result.iterations if result is not None else 0
    records = result.records if result is not None else []

    obs.inc("krsp.solves")
    obs.gauge("krsp.cost", cost)
    obs.gauge("krsp.delay", delay)
    if exhausted is not None:
        obs.inc("budget.exhausted")
        obs.emit(
            "budget.exhausted",
            reason=exhausted,
            status=status,
            elapsed_seconds=meter.elapsed_seconds() if meter is not None else None,
            iterations_used=meter.iterations_used if meter is not None else iterations,
            search_nodes_used=meter.search_nodes_used if meter is not None else 0,
        )
    obs.emit(
        "solve.result",
        cost=cost,
        delay=delay,
        delay_bound=delay_bound,
        feasible=delay <= delay_bound,
        iterations=iterations,
        provider=provider_name,
        scaled=scaled,
        status=status,
    )
    return KRSPSolution(
        paths=final_paths,
        cost=cost,
        delay=delay,
        delay_bound=delay_bound,
        delay_feasible=delay <= delay_bound,
        cost_lower_bound=lower_bound,
        iterations=iterations,
        records=records,
        provider=provider_name,
        scaled=scaled,
        timings=timings,
        status=status,
        certificate=certificate,
    )


def _best_degraded_paths(
    g: DiGraph,
    s: int,
    t: int,
    delay_bound: int,
    min_delay_flow,
    p1: Phase1Result | None,
    cap_paths: list[list[int]] | None,
    result: CancellationResult | None,
) -> list[list[int]]:
    """Pick the best valid solution available when the budget ran out.

    Candidates, all ``k`` edge-disjoint ``s``-``t`` path sets over the
    original graph: the cancellation loop's best-so-far, phase 1's start,
    the cheapest delay-feasible flow (cost-cap witness), and — always
    available because the feasibility gate is mandatory work — the
    minimum-delay flow. Ranked by least delay overshoot first (a feasible
    answer beats any infeasible one), then cost, then delay.
    """
    pool: list[list[list[int]]] = []
    if result is not None:
        pool.append([list(p) for p in result.solution.paths])
    elif p1 is not None:
        pool.append([list(p) for p in p1.solution.paths])
    if cap_paths is not None:
        pool.append(cap_paths)
    else:
        # The min-delay flow is delay-feasible (the feasibility gate checked
        # exactly that) — the floor every budgeted solve can stand on.
        eids = np.nonzero(min_delay_flow.used)[0]
        paths, cycles = decompose_flow(g, eids, s, t)
        strip_improving_cycles(g, paths, cycles)
        pool.append(paths)

    def rank(paths: list[list[int]]) -> tuple[int, int, int]:
        flat = [e for p in paths for e in p]
        c, d = g.cost_of(flat), g.delay_of(flat)
        return (max(0, d - delay_bound), c, d)

    return min(pool, key=rank)
