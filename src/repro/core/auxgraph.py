"""Layered auxiliary graphs for bicameral-cycle search (Algorithm 2).

The trick of the paper's Section 4: cycles of the residual graph mix
negative costs and negative delays, so no single-criterion negative-cycle
oracle applies. The auxiliary graph makes *cost structural*: vertex
``(u, l)`` means "at ``u`` having accumulated cost ``l`` since the cycle
started", so edges of ``H`` carry only delay, and delay-based machinery
(LPs, Bellman–Ford) becomes available.

Two constructions:

* :func:`build_aux_paper` — the literal Algorithm 2: layers ``0..B``, wrap
  edges anchored at one chosen vertex ``v`` (``H_v^+(B)`` closes cycles of
  cost ``+i`` via ``v^i -> v^0``; ``H_v^-(B)`` closes cost ``-(B-i)`` via
  ``v^i -> v^B``). Faithful, used by the Figure-2 reproduction and the
  Lemma 15 tests.
* :func:`build_aux_shifted` — the production variant (DESIGN.md
  "Substitutions"): layers ``-B..B`` stored at offset ``B``, wrap edges at
  *every* vertex and for *both* cost signs. Any residual cycle whose
  running-cost spread is at most ``B`` is representable from any starting
  vertex, so one graph per ``B`` serves the whole search instead of one
  per ``(v, B)`` pair.

Both return an :class:`AuxGraph` carrying the maps back to residual edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class AuxGraph:
    """A layered auxiliary graph with residual-edge bookkeeping.

    Attributes
    ----------
    graph:
        The auxiliary :class:`DiGraph` ``H``. Edge delays are meaningful;
        edge costs are informational (copied residual cost, 0 on wraps) —
        searches over ``H`` must weight by delay only.
    n_base:
        Vertex count of the underlying residual graph.
    B:
        The cost radius.
    offset:
        Layer index representing accumulated cost 0.
    n_layers:
        Total layers (``B+1`` for the paper variant, ``2B+1`` shifted).
    orig_eid:
        Per-H-edge: the residual edge id, or -1 for wrap edges.
    wrap_cost:
        Per-H-edge: the cycle cost a wrap edge certifies (0 elsewhere).
    warm:
        Optional warm-start handle (:class:`repro.perf.auxcache.WarmHandle`)
        attached by :class:`~repro.perf.auxcache.AuxCache` so the LP engine
        can identify this graph's warm family and fetch the flip deltas it
        missed. ``None`` on from-scratch builds — those always solve cold.
        Excluded from equality/repr: it is transport, not graph content.
    """

    graph: DiGraph
    n_base: int
    B: int
    offset: int
    n_layers: int
    orig_eid: np.ndarray
    wrap_cost: np.ndarray
    warm: object | None = field(default=None, compare=False, repr=False)

    def node(self, base_vertex: int, cost_level: int) -> int:
        """H node id for ``base_vertex`` at accumulated cost ``cost_level``."""
        layer = cost_level + self.offset
        if not 0 <= layer < self.n_layers:
            raise GraphError(f"cost level {cost_level} outside radius {self.B}")
        return base_vertex * self.n_layers + layer

    def is_wrap(self) -> np.ndarray:
        """Boolean mask of wrap edges."""
        return self.orig_eid < 0

    def to_residual_walk(self, h_edges: list[int]) -> list[int]:
        """Project a closed H-walk to the residual graph, dropping wraps.

        Wrap edges connect two layers of the same base vertex, so dropping
        them keeps the projected walk contiguous.
        """
        return [int(self.orig_eid[e]) for e in h_edges if self.orig_eid[e] >= 0]


def layer_window_counts(cost: np.ndarray, B: int) -> np.ndarray:
    """Per-edge copy count in the shifted graph of radius ``B``.

    Equals ``max(0, 2B + 1 - |c|)`` — symmetric in the sign of ``c``, which
    is what lets :class:`repro.perf.auxcache.AuxCache` patch a cancelled
    cycle's copies *in place*: negating an edge's cost never changes how
    many layer copies it owns, only which layers they sit on.
    """
    return np.maximum(2 * B + 1 - np.abs(np.asarray(cost, dtype=np.int64)), 0)


def _layered_edges(
    g: DiGraph,
    n_layers: int,
    lo_layer_by_edge: np.ndarray,
    hi_layer_by_edge: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Replicate every residual edge across its admissible layer window.

    Returns parallel int64 arrays (tails, heads, costs, delays, orig_eids)
    in H node ids. Fully vectorized: one ``repeat`` to fan edges out over
    their windows and one ramp subtraction to produce per-copy layers — the
    construction is called once per sweep level, so this is the hot path
    of the bicameral search after the LPs themselves.
    """
    lo = np.asarray(lo_layer_by_edge, dtype=np.int64)
    hi = np.asarray(hi_layer_by_edge, dtype=np.int64)
    counts = np.maximum(hi - lo + 1, 0)
    total = int(counts.sum())
    z = np.zeros(0, dtype=np.int64)
    if total == 0:
        return z, z, z, z, z
    eids = np.repeat(np.arange(g.m, dtype=np.int64), counts)
    # Per-copy layer: a global ramp minus each edge's segment start offset.
    starts = np.zeros(g.m, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    ramp = np.arange(total, dtype=np.int64)
    layers = lo[eids] + (ramp - starts[eids])
    tails = g.tail[eids] * n_layers + layers
    heads = g.head[eids] * n_layers + layers + g.cost[eids]
    return tails, heads, g.cost[eids], g.delay[eids], eids


def shifted_wrap_arrays(
    n: int, B: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Wrap edges of the shifted graph, vectorized: (tails, heads, costs).

    Ordering is vertex-major with ``c0 = 1..B`` inner and the ``(+c0,
    -c0)`` pair innermost — the enumeration order the original Python loop
    produced, kept bit-identical so cached and from-scratch constructions
    agree edge for edge. Wraps depend only on ``(n, B)`` (never on the
    residual weights), which is what makes them shareable across
    cancellation iterations.
    """
    n_layers = 2 * B + 1
    base = np.arange(n, dtype=np.int64) * n_layers + B  # (v, cost 0) node
    c0 = np.arange(1, B + 1, dtype=np.int64)
    # Shape (n, B, 2): [..., 0] is the +c0 wrap, [..., 1] the -c0 wrap.
    tails = np.stack(
        [base[:, None] + c0[None, :], base[:, None] - c0[None, :]], axis=2
    ).reshape(-1)
    heads = np.repeat(base, 2 * B)
    wrap_cost = np.broadcast_to(
        np.stack([c0, -c0], axis=1)[None, :, :], (n, B, 2)
    ).reshape(-1)
    return tails, heads, wrap_cost.astype(np.int64, copy=True)


def build_aux_shifted(res: DiGraph, B: int) -> AuxGraph:
    """Shifted auxiliary graph: layers ``-B..B``, wraps everywhere/both signs.

    Wrap edges: for every base vertex ``v`` and every ``c0`` in ``1..B``,

    * ``(v, +c0) -> (v, 0)`` certifying a cycle of cost ``+c0``, and
    * ``(v, -c0) -> (v, 0)`` certifying a cycle of cost ``-c0``.

    All wraps carry delay 0 and ``wrap_cost = +/-c0``.
    """
    if B < 1:
        raise GraphError("B must be >= 1")
    n_layers = 2 * B + 1
    offset = B
    # Edge (u,l) -> (v, l + c) valid when both layers lie in [0, n_layers).
    c = res.cost
    lo = np.maximum(0, -c)
    hi = np.minimum(n_layers - 1, n_layers - 1 - c)
    tails, heads, costs, delays, origs = _layered_edges(res, n_layers, lo, hi)
    w_tails, w_heads, w_costs = shifted_wrap_arrays(res.n, B)

    n_wraps = len(w_tails)
    zeros = np.zeros(n_wraps, dtype=np.int64)
    graph = DiGraph(
        res.n * n_layers,
        np.concatenate([tails, w_tails]),
        np.concatenate([heads, w_heads]),
        np.concatenate([costs, zeros]),
        np.concatenate([delays, zeros]),
    )
    orig_eid = np.concatenate([origs, np.full(n_wraps, -1, dtype=np.int64)])
    wrap_cost = np.concatenate([np.zeros(len(tails), dtype=np.int64), w_costs])
    return AuxGraph(
        graph=graph,
        n_base=res.n,
        B=B,
        offset=offset,
        n_layers=n_layers,
        orig_eid=orig_eid,
        wrap_cost=wrap_cost,
    )


def build_aux_paper(res: DiGraph, v: int, B: int, sign: int) -> AuxGraph:
    """Literal Algorithm 2: ``H_v^+(B)`` (``sign=+1``) or ``H_v^-(B)``.

    Layers ``0..B``; residual edges replicated wherever both endpoints'
    layers stay in range; wrap edges only at the anchor ``v``:

    * ``sign=+1``: ``v^i -> v^0`` for ``i = 1..B`` (cycle cost ``+i``);
    * ``sign=-1``: ``v^i -> v^B`` for ``i = 0..B-1`` (cycle cost ``i - B``).
    """
    if B < 1:
        raise GraphError("B must be >= 1")
    if sign not in (+1, -1):
        raise GraphError("sign must be +1 or -1")
    n_layers = B + 1
    c = res.cost
    lo = np.maximum(0, -c)
    hi = np.minimum(n_layers - 1, n_layers - 1 - c)
    tails, heads, costs, delays, origs = _layered_edges(res, n_layers, lo, hi)

    base = v * n_layers
    if sign > 0:
        # v^i -> v^0 for i = 1..B, certifying cycle cost +i.
        w_tails = base + np.arange(1, B + 1, dtype=np.int64)
        w_heads = np.full(B, base, dtype=np.int64)
        w_costs = np.arange(1, B + 1, dtype=np.int64)
    else:
        # v^i -> v^B for i = 0..B-1, certifying cycle cost i - B.
        w_tails = base + np.arange(0, B, dtype=np.int64)
        w_heads = np.full(B, base + B, dtype=np.int64)
        w_costs = np.arange(0, B, dtype=np.int64) - B

    zeros = np.zeros(B, dtype=np.int64)
    graph = DiGraph(
        res.n * n_layers,
        np.concatenate([tails, w_tails]),
        np.concatenate([heads, w_heads]),
        np.concatenate([costs, zeros]),
        np.concatenate([delays, zeros]),
    )
    orig_eid = np.concatenate([origs, np.full(B, -1, dtype=np.int64)])
    wrap_cost = np.concatenate([np.zeros(len(tails), dtype=np.int64), w_costs])
    # offset: in H^+, cycles start at layer 0 (cost level 0 == layer 0);
    # in H^-, cycles start at layer B. Encode via offset so node() maps
    # cost-level 0 to the start layer.
    offset = 0 if sign > 0 else B
    return AuxGraph(
        graph=graph,
        n_base=res.n,
        B=B,
        offset=offset,
        n_layers=n_layers,
        orig_eid=orig_eid,
        wrap_cost=wrap_cost,
    )
