"""kBCP: k disjoint bi-constrained paths, solved through the kRSP engine.

Section 1.2 of the paper defines the *k disjoint bi-constrained path
problem* (kBCP): find ``k`` edge-disjoint ``s -> t`` paths with **both**
``sum c(P_i) <= C`` and ``sum d(P_i) <= D`` — no objective, two budgets —
and observes that "kBCP is a weaker version of kRSP, and hence all
approximations of kRSP can be adopted to solve kBCP, but not the other way
around".

This module is that adoption, made concrete: run the kRSP
``(1 + eps1, 2 + eps2)`` algorithm with the delay budget; its output
violates the cost budget by at most the kRSP cost factor whenever the kBCP
instance is feasible (any feasible kBCP solution is a delay-feasible kRSP
solution of cost ``<= C``, so ``C_OPT <= C``). The result is a bifactor
kBCP approximation: delay within ``(1 + eps1) * D``, cost within
``(2 + eps2) * C``. For comparison, [12] achieves
``(1 + beta, max(2, 1 + ln(1/beta)))`` — the kRSP route matches its cost
factor at ``beta = 1`` while keeping the delay factor arbitrarily close
to 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.krsp import KRSPSolution, solve_krsp
from repro.errors import InfeasibleInstanceError
from repro.graph.digraph import DiGraph


@dataclass
class KBCPSolution:
    """Outcome of :func:`solve_kbcp`.

    Attributes
    ----------
    paths, cost, delay:
        As in :class:`~repro.core.krsp.KRSPSolution`.
    cost_bound, delay_bound:
        The instance's two budgets.
    cost_within_factor:
        ``cost / C`` — guaranteed ``<= 2 + eps2`` when the instance is
        feasible.
    delay_within_factor:
        ``delay / D`` — guaranteed ``<= 1 + eps1``.
    krsp:
        The underlying kRSP solution (full instrumentation).
    """

    paths: list[list[int]]
    cost: int
    delay: int
    cost_bound: int
    delay_bound: int
    cost_within_factor: float
    delay_within_factor: float
    krsp: KRSPSolution


def solve_kbcp(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    cost_bound: int,
    delay_bound: int,
    eps: tuple[float, float] | float | None = None,
    phase1: str = "lp_rounding",
) -> KBCPSolution:
    """Approximate kBCP via the kRSP engine.

    Guarantee: when ``k`` disjoint paths with ``cost <= C`` and
    ``delay <= D`` exist, the returned paths satisfy
    ``delay <= (1 + eps1) * D`` and ``cost <= (2 + eps2) * C``
    (``eps = None`` gives the pseudo-polynomial exact-budget variant with
    ``delay <= D`` and ``cost <= 2 * C``).

    Raises
    ------
    InfeasibleInstanceError
        When no ``k`` disjoint paths meet the delay budget at all, or when
        the kRSP output exceeds the certified kBCP cost factor — which
        certifies that no solution within both budgets exists (the kRSP
        cost is at most factor * C_OPT <= factor * C for feasible
        instances).
    """
    if cost_bound < 0 or delay_bound < 0:
        raise InfeasibleInstanceError("budgets must be nonnegative")
    sol = solve_krsp(g, s, t, k, delay_bound, phase1=phase1, eps=eps)
    if isinstance(eps, tuple):
        eps2 = eps[1]
    elif eps is None:
        eps2 = 0.0
    else:
        eps2 = float(eps)
    factor = 2.0 + eps2
    if sol.cost > factor * cost_bound:
        # kRSP returned cost > factor * C. For a feasible kBCP instance the
        # kRSP optimum is <= C, so the algorithm's cost would have been
        # <= factor * C — contradiction. Infeasibility is certified.
        raise InfeasibleInstanceError(
            f"no k disjoint paths with cost <= {cost_bound} and delay <= "
            f"{delay_bound}: the kRSP relaxation already costs {sol.cost} "
            f"(> {factor:g} * C)"
        )
    return KBCPSolution(
        paths=sol.paths,
        cost=sol.cost,
        delay=sol.delay,
        cost_bound=cost_bound,
        delay_bound=delay_bound,
        cost_within_factor=sol.cost / cost_bound if cost_bound else float("inf"),
        delay_within_factor=sol.delay / delay_bound if delay_bound else float("inf"),
        krsp=sol,
    )
