"""Epsilon-scaling of kRSP instances (Theorem 4, Lorenz–Raz style [7, 17]).

The pseudo-polynomial Algorithm 1 costs time polynomial in the numeric
magnitudes (Lemma 13 / Theorem 17). Theorem 4 makes it polynomial by
coarsening the weights:

    d'(e) = floor( d(e) / theta_d ),   theta_d = eps1 * D / E
    c'(e) = floor( c(e) / theta_c ),   theta_c = eps2 * C_hat / E

where ``E = k * (n - 1)`` bounds the number of edges in any solution (each
of the ``k`` paths is simple). The paper divides by ``n``; using the exact
solution-size bound ``E`` is what makes the mapped-back guarantees come out
to exactly ``(1 + eps1, 2 + eps2)``:

* any original-feasible solution stays feasible scaled (floors only shrink),
  so scaled-OPT <= scaled(original OPT);
* a scaled solution with ``d'(S) <= D' = floor(D / theta_d)`` maps back to
  ``d(S) < theta_d * (d'(S) + E) <= D + eps1 * D``;
* a scaled solution with ``c'(S) <= 2 * C'_OPT`` maps back to
  ``c(S) < 2 * C_OPT + eps2 * C_hat <= (2 + eps2) * C_OPT`` whenever the
  estimate ``C_hat <= C_OPT`` (use a certified lower bound).

All scale arithmetic is exact (Fractions / integer cross-multiplication).
Degenerate budgets (``theta <= 1``) skip scaling for that criterion — the
instance is already small.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.core.instance import KRSPInstance
from repro.errors import GraphError


@dataclass(frozen=True)
class ScaledInstance:
    """A scaled instance plus the factors needed to interpret results.

    ``instance`` shares topology (and therefore edge ids) with
    ``original`` — paths found on the scaled instance are directly valid
    on the original graph.
    """

    instance: KRSPInstance
    original: KRSPInstance
    theta_d: Fraction  # 1 when delay scaling was skipped
    theta_c: Fraction  # 1 when cost scaling was skipped

    @property
    def solution_size_bound(self) -> int:
        return self.original.k * (self.original.graph.n - 1)


def _floor_scale(values: np.ndarray, theta: Fraction) -> np.ndarray:
    """Exact ``floor(v / theta)`` elementwise for positive rational theta."""
    num, den = theta.numerator, theta.denominator
    return (values * den) // num


def scale_instance(
    inst: KRSPInstance,
    eps1: float | Fraction,
    eps2: float | Fraction,
    cost_estimate: int | Fraction,
) -> ScaledInstance:
    """Build the Theorem 4 scaled instance.

    Parameters
    ----------
    eps1, eps2:
        The delay / cost relaxations (positive).
    cost_estimate:
        ``C_hat`` — ideally a certified lower bound on ``C_OPT`` (the
        mapped-back cost guarantee degrades linearly in any overshoot).
    """
    f1 = Fraction(eps1).limit_denominator(10**6)
    f2 = Fraction(eps2).limit_denominator(10**6)
    if f1 <= 0 or f2 <= 0:
        raise GraphError("eps1 and eps2 must be positive")
    g = inst.graph
    E = inst.k * (g.n - 1)
    if E <= 0:
        raise GraphError("degenerate instance: no room for any path")

    theta_d = f1 * inst.delay_bound / E
    theta_c = Fraction(cost_estimate) * f2 / E

    if theta_d > 1:
        delay = _floor_scale(g.delay, theta_d)
        new_bound = (inst.delay_bound * theta_d.denominator) // theta_d.numerator
    else:
        theta_d = Fraction(1)
        delay = g.delay  # unscaled: share the parent array (copy-on-write)
        new_bound = inst.delay_bound

    if theta_c > 1:
        cost = _floor_scale(g.cost, theta_c)
    else:
        theta_c = Fraction(1)
        cost = g.cost  # unscaled: share the parent array (copy-on-write)

    scaled = KRSPInstance(
        graph=g.with_weights(cost, delay),
        s=inst.s,
        t=inst.t,
        k=inst.k,
        delay_bound=new_bound,
    )
    return ScaledInstance(
        instance=scaled, original=inst, theta_d=theta_d, theta_c=theta_c
    )


def mapped_back_delay_bound(scaled: ScaledInstance) -> Fraction:
    """The guaranteed original-units delay of any scaled-feasible solution:
    ``theta_d * (D' + E)`` — at most ``(1 + eps1) * D``."""
    return scaled.theta_d * (scaled.instance.delay_bound + scaled.solution_size_bound)
