"""Algorithm 1: the cycle-cancellation loop with the Lemma 12 monitor.

Starting from phase-1 paths, repeat while the delay budget is violated:

1. build the residual graph (both weights negated on reversed edges);
2. collect bicameral candidates (:mod:`repro.core.search`);
3. select one (type-0 first, then rate-certified type-1/2, then the
   Algorithm 3 step-3 comparative fallback);
4. ``oplus`` it into the solution, re-decompose, strip nonnegative cycles.

Instrumentation records, per iteration, the cycle used and the evolving
``r_i = DeltaD_i / DeltaC_i`` of Lemma 12, so experiment E5 can check the
lemma's invariant (``r`` non-decreasing; ``DeltaD`` strictly shrinking on
ties) directly against measured traces.

``C_OPT`` handling: the exact value exists only in tests (via the MILP
oracle). Production runs pass a certified *lower bound* (flow LP /
Lagrangian dual), which makes the type-1 rate test stricter (safe) and the
type-2 test looser (may accept a marginal cycle; convergence is then
protected by the state-repetition guard and the iteration cap). The
``|c(O)| <= C_OPT`` cap is replaced by a certified *upper* bound — the cost
of the cheapest delay-feasible flow — which can only widen the cap and
therefore never rejects the cycle Theorem 16 guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro import obs
from repro.core.bicameral import CycleType, select_candidate
from repro.core.instance import KRSPInstance, PathSet
from repro.core.residual import apply_residual_cycles, build_residual
from repro.core.search import (
    SearchStats,
    find_bicameral_candidates_paper,
    find_bicameral_cycle,
)
from repro.errors import (
    BudgetExhaustedError,
    InfeasibleInstanceError,
    InvariantError,
    IterationLimitError,
)
from repro.flow.decompose import decompose_flow, strip_improving_cycles
from repro.robustness.budget import BudgetMeter

#: Default hard cap on cancellation iterations. The theoretical bound is
#: ``D * sum(c) * sum(d)`` (Lemma 13) — astronomically loose; measured
#: iteration counts (experiment E5) are tiny, so this cap flags bugs, not
#: hard instances.
DEFAULT_MAX_ITERATIONS = 10_000


@dataclass(frozen=True)
class IterationRecord:
    """One cancellation step, for E5's Lemma 12 audit.

    The in-memory compat view; under an active :func:`repro.obs.session`
    the same state is emitted as a ``cancel.iteration`` event, which is
    the trace-level source of truth (``repro trace`` renders it)."""

    iteration: int
    cycle_type: CycleType
    cycle_cost: int
    cycle_delay: int
    cost_after: int
    delay_after: int
    r_value: Fraction | None  # DeltaD/DeltaC before the step (None w/o bound)


@dataclass
class ResumeState:
    """Mid-loop cancellation state restored from a checkpoint journal.

    Built by :func:`repro.robustness.checkpointing.resume_krsp` out of the
    last durable snapshot plus tail replay; handing it to
    :func:`cancel_to_feasibility` makes the loop continue exactly where
    the crashed process stopped — same solution, same repetition-guard
    memory, same best-so-far, same (delta-advanced) residual engine — so
    the continuation is bit-identical to the uninterrupted run.
    """

    solution: PathSet
    records: list[IterationRecord]
    seen_states: set[tuple[int, ...]]
    best: PathSet
    engine: object | None = None  # repro.perf.IncrementalSearch, pre-advanced


@dataclass
class CancellationResult:
    """Outcome of the cancellation phase.

    ``exhausted`` is ``None`` on a normal finish; under a cooperative
    budget (``meter`` passed) it records why the loop stopped early
    (``"deadline" | "iterations" | "search_nodes" | "stalled"``) and
    ``solution`` is then the best valid solution seen — smallest delay,
    cost as tie-break — rather than a delay-feasible one.
    """

    solution: PathSet
    records: list[IterationRecord] = field(default_factory=list)
    search_stats: SearchStats = field(default_factory=SearchStats)
    exhausted: str | None = None

    @property
    def iterations(self) -> int:
        return len(self.records)


def _r_value(
    delay_bound: int,
    cost_bound: Fraction | None,
    sol: PathSet,
) -> Fraction | None:
    if cost_bound is None:
        return None
    delta_c = cost_bound - sol.cost
    if delta_c <= 0:
        return None
    return Fraction(delay_bound - sol.delay) / delta_c


def cancel_to_feasibility(
    inst: KRSPInstance,
    start: PathSet,
    cost_lower_bound: Fraction | None = None,
    opt_cost: int | None = None,
    cost_cap: int | None = None,
    b_max: int | None = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    strict_monitor: bool = False,
    finder: str = "production",
    meter: BudgetMeter | None = None,
    incremental: bool | None = None,
    anchor_workers: int | None = None,
    journal: "object | None" = None,
    resume_state: ResumeState | None = None,
) -> CancellationResult:
    """Drive ``start`` to delay feasibility via bicameral cancellation.

    Parameters
    ----------
    journal:
        Checkpoint hook (duck-typed — see
        :class:`repro.robustness.checkpointing.CheckpointHook`). Per
        iteration the hook durably records the step *before* it is
        committed in memory (write-ahead discipline), periodically
        snapshots the full loop state, and exposes a cooperative
        shutdown poll: a pending SIGINT/SIGTERM flushes a snapshot and
        raises :class:`~repro.errors.SolveInterrupted`.
    resume_state:
        Restored mid-loop state from a journal
        (:class:`ResumeState`); ``start`` is then ignored as the
        starting point and the loop continues from the restored
        solution with its full repetition-guard history.
    incremental:
        Use the :mod:`repro.perf` incremental search engine: the residual
        graph is kept alive across iterations and advanced by in-place
        edge flips, and auxiliary graphs come from a version-keyed cache.
        For the production finder this is **bit-identical** to the
        from-scratch path (differentially tested) and is the default
        (``None`` resolves to ``finder == "production"``). For
        ``paper_literal`` it additionally enables dirty-anchor replay —
        a documented heuristic (see :mod:`repro.perf.anchors`) — so it
        stays opt-in there.
    anchor_workers:
        With the incremental paper-literal finder, fan dirty anchors out
        over this many pool workers (``None``/``1`` = in-process).
    meter:
        Armed :class:`repro.robustness.BudgetMeter` for **anytime**
        semantics: every stopping rule (deadline, iteration caps, search
        node cap, state repetition) then returns the best valid solution
        seen with :attr:`CancellationResult.exhausted` set, instead of
        raising. Without a meter the legacy raising behavior is kept.
    finder:
        ``"production"`` (shifted auxiliary graphs, early-exit sweep) or
        ``"paper_literal"`` (per-anchor ``H_v^{+/-}(B)`` with LP (6) —
        Algorithm 3 exactly as printed; much slower, kept for fidelity).
    cost_lower_bound:
        Certified ``<= C_OPT`` estimate feeding the Definition-10 rate
        tests (see module docstring). Ignored when ``opt_cost`` is given.
    opt_cost:
        The exact optimum (tests only): enables the paper's literal
        Definition 10 and the strict Lemma 12 monitor.
    cost_cap:
        Upper bound standing in for the ``|c(O)| <= C_OPT`` cap; ``None``
        disables the cap (never rejects anything). With ``opt_cost`` given
        the cap defaults to it.
    strict_monitor:
        Raise :class:`InvariantError` when a step violates Lemma 12 —
        meaningful only with ``opt_cost`` (the lemma is stated against the
        true ``DeltaC``).

    Raises
    ------
    InfeasibleInstanceError
        Algorithm 1 step 2(a): delay-infeasible with no bicameral cycle.
    IterationLimitError
        Iteration cap exceeded or a solution state repeated.
    """
    g = inst.graph
    D = inst.delay_bound
    sol = start
    result = CancellationResult(solution=sol)

    if opt_cost is not None:
        cost_bound: Fraction | None = Fraction(opt_cost)
        if cost_cap is None:
            cost_cap = opt_cost
    else:
        cost_bound = cost_lower_bound

    seen_states: set[tuple[int, ...]] = {tuple(sorted(sol.edge_ids))}
    # Best valid solution seen so far (smallest delay, cost tie-break) —
    # what an exhausted budget hands back instead of raising.
    best = sol

    use_incremental = (
        incremental if incremental is not None else finder == "production"
    )
    engine = None
    if resume_state is not None:
        sol = resume_state.solution
        result.solution = sol
        result.records = list(resume_state.records)
        seen_states = set(resume_state.seen_states)
        best = resume_state.best
        engine = resume_state.engine if use_incremental else None
    if use_incremental and engine is None:
        from repro.perf import IncrementalSearch

        engine = IncrementalSearch(g)

    def _checkpoint_state() -> dict:
        # Read at call time, so one closure serves every snapshot point.
        return {
            "solution": sol,
            "best": best,
            "seen_states": seen_states,
            "records": result.records,
            "residual": engine.residual if engine is not None else None,
            "meter": meter,
        }

    while sol.delay > D:
        if journal is not None:
            journal.poll_shutdown(_checkpoint_state)
        if result.iterations >= max_iterations:
            if meter is not None:
                result.exhausted = "iterations"
                break
            raise IterationLimitError(
                f"no feasibility after {max_iterations} cancellations "
                f"(delay {sol.delay} > {D})"
            )
        if meter is not None:
            try:
                meter.check("cancel.loop")
            except BudgetExhaustedError as exc:
                result.exhausted = exc.reason
                break
        r_before = _r_value(D, cost_bound, sol)

        residual = (
            engine.residual_for(sol.edge_ids)
            if engine is not None
            else build_residual(g, sol.edge_ids)
        )
        delta_d = D - sol.delay  # < 0 here
        delta_c_int: int | None = None
        if cost_bound is not None:
            # Flooring a positive Fraction bound only tightens the type-1
            # rate test (smaller positive DeltaC) — safe direction.
            delta_c_int = int(cost_bound) - sol.cost
            if delta_c_int <= 0:
                delta_c_int = None
        delta_c_soft: int | None = None
        if cost_cap is not None and cost_cap - sol.cost > 0:
            delta_c_soft = cost_cap - sol.cost
        try:
            if finder == "paper_literal":
                if engine is not None:
                    from repro.perf import find_bicameral_candidates_paper_tracked

                    candidates = find_bicameral_candidates_paper_tracked(
                        residual,
                        delta_d,
                        engine.tracker,
                        stats=result.search_stats,
                        meter=meter,
                        max_workers=anchor_workers,
                    )
                else:
                    candidates = find_bicameral_candidates_paper(
                        residual, delta_d, stats=result.search_stats, meter=meter
                    )
                picked = select_candidate(
                    candidates,
                    delta_d,
                    delta_c_int,
                    cost_cap,
                    type2_only_if_no_type1=opt_cost is None,
                )
                if picked is None and delta_c_soft is not None:
                    picked = select_candidate(
                        candidates,
                        delta_d,
                        delta_c_soft,
                        cost_cap,
                        type2_only_if_no_type1=opt_cost is None,
                    )
            else:
                picked = find_bicameral_cycle(
                    residual,
                    delta_d,
                    delta_c_int,
                    cost_cap,
                    b_max=b_max,
                    stats=result.search_stats,
                    delta_c_soft=delta_c_soft,
                    # With estimated bounds a "certified" type-2 can spuriously
                    # undo the previous type-1 step; rank it behind type-1 then.
                    type2_only_if_no_type1=opt_cost is None,
                    meter=meter,
                    aux_provider=engine.aux_provider if engine is not None else None,
                )
        except BudgetExhaustedError as exc:
            # A budget can only trip here when a meter was passed; the
            # partially-searched iteration is abandoned and the best valid
            # solution so far becomes the answer.
            result.exhausted = exc.reason
            break
        if picked is None:
            obs.inc("cancellation.no_cycle_infeasible")
            raise InfeasibleInstanceError(
                "delay bound violated but the residual graph contains no "
                "bicameral cycle (Algorithm 1 step 2(a))"
            )
        cycle, ctype = picked

        new_edges = apply_residual_cycles(sol.edge_ids, residual, [list(cycle.edges)])
        paths, cycles_left = decompose_flow(g, new_edges, inst.s, inst.t)
        strip_improving_cycles(g, paths, cycles_left)
        new_sol = inst.path_set(paths)

        state = tuple(sorted(new_sol.edge_ids))
        if state in seen_states:
            if meter is not None:
                result.exhausted = "stalled"
                break
            raise IterationLimitError(
                "cancellation revisited a previous solution state — "
                "rate estimates too loose to guarantee progress"
            )
        seen_states.add(state)

        if journal is not None:
            # Write-ahead: the step is durable before the in-memory commit
            # below. A crash in between replays this record on resume,
            # which lands in exactly the state the commit would have.
            journal.record_iteration(
                iteration=result.iterations + 1,
                ctype=ctype,
                cycle=cycle,
                prev_edge_ids=sol.edge_ids,
                new_sol=new_sol,
                r_before=r_before,
                residual_version=residual.version if engine is not None else None,
                meter=meter,
            )

        result.records.append(
            IterationRecord(
                iteration=result.iterations + 1,
                cycle_type=ctype,
                cycle_cost=cycle.cost,
                cycle_delay=cycle.delay,
                cost_after=new_sol.cost,
                delay_after=new_sol.delay,
                r_value=r_before,
            )
        )
        obs.inc("cancellation.iterations")
        obs.inc(f"cancellation.applied.{ctype.name.lower()}")
        obs.emit(
            "cancel.iteration",
            iteration=result.iterations,
            cycle_type=ctype.name,
            cycle_cost=cycle.cost,
            cycle_delay=cycle.delay,
            cycle_edges=len(cycle.edges),
            solution_edges=len(new_sol.edge_ids),
            cost_after=new_sol.cost,
            delay_after=new_sol.delay,
            delay_bound=D,
            r_value=None if r_before is None else str(r_before),
        )

        if strict_monitor and r_before is not None:
            r_after = _r_value(D, cost_bound, new_sol)
            still_infeasible = new_sol.delay > D
            if still_infeasible and r_after is not None:
                delta_d_after = D - new_sol.delay
                if r_after < r_before or (
                    r_after == r_before and not delta_d_after > delta_d
                ):
                    raise InvariantError(
                        f"Lemma 12 violated at iteration {result.iterations}: "
                        f"r {r_before} -> {r_after}, "
                        f"DeltaD {delta_d} -> {delta_d_after}"
                    )

        sol = new_sol
        result.solution = sol
        if (sol.delay, sol.cost) < (best.delay, best.cost):
            best = sol
        if meter is not None:
            meter.iterations_used += 1
        if journal is not None:
            journal.maybe_snapshot(result.iterations, _checkpoint_state)

    if result.exhausted is not None:
        # Hand back the closest-to-feasible valid solution, not the
        # half-applied last state.
        sol = best
    result.solution = sol
    obs.emit(
        "cancel.done",
        iterations=result.iterations,
        cost=sol.cost,
        delay=sol.delay,
        delay_bound=D,
        exhausted=result.exhausted,
    )
    return result
