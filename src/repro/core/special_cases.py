"""Polynomial special cases of kRSP catalogued in the paper's Section 1.2.

The paper situates kRSP among its special cases:

* **Min-sum disjoint paths** — delay constraint removed: polynomially
  solvable (Suurballe [20, 21]); exposed as
  :func:`repro.flow.suurballe.suurballe_k_paths` and re-exported here for
  completeness.
* **Min-Max disjoint paths** — zero costs, minimize the *longer* path's
  delay: NP-complete with best possible approximation factor 2 in digraphs
  [16], achieved by the min-sum algorithm [20, 21].
  :func:`min_max_disjoint_paths` implements that classical reduction.
* **Length-bounded disjoint paths** — zero costs, a per-path delay bound:
  NP-complete [16]; :func:`length_bounded_paths` gives the tri-state
  answer the min-sum relaxation supports (solved / certified infeasible /
  undecided-with-witness).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import InfeasibleInstanceError
from repro.flow.suurballe import suurballe_k_paths
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class MinMaxResult:
    """Result of the min-sum-based Min-Max approximation.

    Attributes
    ----------
    paths:
        ``k`` disjoint paths of minimum *total* delay.
    max_delay:
        The longest path's delay — at most ``factor * OPT_minmax``.
    factor:
        The proven approximation factor: 2 for ``k = 2`` (tight, [16]),
        ``k`` in general (the longer path is at most the total, which is
        at most ``k`` times the optimal maximum).
    lower_bound:
        ``ceil(total / k)`` — a certified lower bound on ``OPT_minmax``.
    """

    paths: list[list[int]]
    max_delay: int
    factor: int
    lower_bound: int


def min_max_disjoint_paths(g: DiGraph, s: int, t: int, k: int) -> MinMaxResult:
    """Approximate Min-Max disjoint paths via the min-sum algorithm.

    The classical argument: the min-sum solution's total delay is at most
    the total of the optimal Min-Max solution, which is at most
    ``k * OPT_minmax``; hence its longest path is within factor ``k``
    (factor 2 when ``k = 2`` — the best possible in digraphs unless P=NP).
    """
    paths = suurballe_k_paths(g, s, t, k, weight=g.delay)
    if paths is None:
        raise InfeasibleInstanceError(f"fewer than k={k} disjoint paths exist")
    delays = [g.delay_of(p) for p in paths]
    total = sum(delays)
    return MinMaxResult(
        paths=paths,
        max_delay=max(delays) if delays else 0,
        factor=2 if k == 2 else max(2, k),
        lower_bound=-(-total // k) if k else 0,
    )


class LengthBoundedStatus(Enum):
    """Tri-state outcome of the length-bounded relaxation."""

    SOLVED = "solved"  # every returned path meets the per-path bound
    INFEASIBLE = "infeasible"  # certified: even the total is too large
    UNDECIDED = "undecided"  # NP-hard territory: relaxation can't tell


@dataclass(frozen=True)
class LengthBoundedResult:
    status: LengthBoundedStatus
    paths: list[list[int]] | None
    max_delay: int | None


def length_bounded_paths(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    per_path_bound: int,
) -> LengthBoundedResult:
    """Decide the length-bounded disjoint path problem as far as the
    polynomial min-sum relaxation allows.

    * If the min-total-delay solution already keeps every path within the
      bound: **solved** (it is a witness).
    * If even the minimum *total* exceeds ``k * bound``: **infeasible**
      (any per-path-feasible solution would have total <= k * bound).
    * Otherwise: **undecided** — the underlying decision problem is
      NP-complete [16], and this relaxation returns its best witness.
    """
    res = min_max_disjoint_paths(g, s, t, k)
    if res.max_delay <= per_path_bound:
        return LengthBoundedResult(
            status=LengthBoundedStatus.SOLVED, paths=res.paths, max_delay=res.max_delay
        )
    total = sum(g.delay_of(p) for p in res.paths)
    if total > k * per_path_bound:
        return LengthBoundedResult(
            status=LengthBoundedStatus.INFEASIBLE, paths=None, max_delay=None
        )
    return LengthBoundedResult(
        status=LengthBoundedStatus.UNDECIDED, paths=res.paths, max_delay=res.max_delay
    )
