"""Independent solution verification and certification.

An approximation solver should be auditable without trusting it:
:func:`verify_solution` re-derives everything about a claimed solution
from scratch — structural validity, exact totals, budget feasibility, and
(optionally) certified quality bounds via the flow LP and, on small
instances, the exact MILP. The solver's own outputs are *not* consulted.

The returned :class:`VerificationReport` is plain data, printable, and
safe to persist next to results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.validate import check_disjoint_paths


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_solution`.

    Attributes
    ----------
    valid:
        Paths are structurally well-formed (k disjoint s-t paths).
    delay_feasible:
        Totals respect the delay budget.
    cost, delay:
        Exact recomputed totals (present whenever ``valid``).
    cost_lower_bound:
        Flow-LP lower bound on the optimal cost (``None`` if skipped or
        infeasible LP — which itself would contradict validity).
    approximation_ratio_upper_bound:
        ``cost / cost_lower_bound`` — an upper bound on the true ratio.
    opt_cost:
        Exact optimum when the MILP oracle ran (``None`` otherwise).
    exact_ratio:
        ``cost / opt_cost`` when the optimum is known.
    issues:
        Human-readable problems found (empty for a clean pass).
    """

    valid: bool
    delay_feasible: bool
    cost: int | None = None
    delay: int | None = None
    cost_lower_bound: float | None = None
    approximation_ratio_upper_bound: float | None = None
    opt_cost: int | None = None
    exact_ratio: float | None = None
    issues: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Structurally valid, budget-feasible, and issue-free."""
        return self.valid and self.delay_feasible and not self.issues


def verify_solution(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    paths: list[list[int]],
    check_bounds: bool = True,
    use_milp: bool = False,
    milp_time_limit: float | None = 30.0,
    claimed_cost: int | None = None,
    claimed_delay: int | None = None,
) -> VerificationReport:
    """Audit a claimed kRSP solution from first principles.

    Parameters
    ----------
    paths:
        The claimed ``k`` disjoint paths (edge-id lists).
    check_bounds:
        Solve the flow LP for a certified quality denominator.
    use_milp:
        Additionally compute the exact optimum (small instances only).
    claimed_cost, claimed_delay:
        Totals the solver *reported* alongside the paths. When given they
        are cross-checked against the recomputed totals; a mismatch is a
        tampered-totals issue (the paths and the report disagree).

    Never raises for a *bad solution* — problems land in
    ``report.issues``; raises only for malformed inputs (e.g. a graph
    with negative weights, which voids the problem statement itself).
    """
    g.require_nonnegative()
    issues: list[str] = []
    try:
        check_disjoint_paths(g, [list(p) for p in paths], s, t, k=k)
        valid = True
    except GraphError as exc:
        issues.append(f"structural: {exc}")
        valid = False
    if not valid:
        return VerificationReport(valid=False, delay_feasible=False, issues=issues)

    flat = [e for p in paths for e in p]
    cost = g.cost_of(flat)
    delay = g.delay_of(flat)
    feasible = delay <= delay_bound
    if not feasible:
        issues.append(f"delay {delay} exceeds budget {delay_bound}")
    if claimed_cost is not None and claimed_cost != cost:
        issues.append(
            f"claimed cost {claimed_cost} does not match recomputed cost {cost}"
        )
    if claimed_delay is not None and claimed_delay != delay:
        issues.append(
            f"claimed delay {claimed_delay} does not match recomputed delay {delay}"
        )

    lb = None
    ratio_ub = None
    opt_cost = None
    exact_ratio = None
    if check_bounds:
        from repro.lp.flow_lp import solve_flow_lp

        lp = solve_flow_lp(g, s, t, k, delay_bound)
        if lp is None:
            issues.append(
                "flow LP infeasible although a solution was presented — "
                "inconsistent instance data"
            )
        else:
            lb = lp.cost
            if lb > 0:
                ratio_ub = cost / lb
                if ratio_ub < 1.0 - 1e-6:
                    issues.append(
                        "claimed cost beats the LP lower bound — "
                        "inconsistent instance data"
                    )
    if use_milp:
        from repro.lp.milp import solve_krsp_milp

        exact = solve_krsp_milp(g, s, t, k, delay_bound, time_limit=milp_time_limit)
        if exact is None:
            issues.append(
                "MILP reports infeasible although a solution was presented"
            )
        else:
            opt_cost = exact.cost
            if opt_cost > 0:
                exact_ratio = cost / opt_cost
            if cost < opt_cost:
                issues.append("claimed cost beats the proven optimum")

    return VerificationReport(
        valid=True,
        delay_feasible=feasible,
        cost=cost,
        delay=delay,
        cost_lower_bound=lb,
        approximation_ratio_upper_bound=ratio_ub,
        opt_cost=opt_cost,
        exact_ratio=exact_ratio,
        issues=issues,
    )
