"""Problem and solution types for kRSP.

:class:`KRSPInstance` is the immutable problem statement (Definition 2 of
the paper); :class:`PathSet` is a candidate solution — ``k`` edge-disjoint
``s -> t`` paths — with exact integer totals. Both validate eagerly so that
algorithm code can assume well-formed inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.validate import check_disjoint_paths


@dataclass(frozen=True)
class KRSPInstance:
    """A kRSP problem: graph, terminals, path count, delay budget.

    Attributes mirror Definition 2: digraph ``G`` with nonnegative integral
    cost/delay, distinct ``s, t``, ``k >= 1`` edge-disjoint paths wanted,
    total delay budget ``delay_bound`` (the paper's ``D``).
    """

    graph: DiGraph
    s: int
    t: int
    k: int
    delay_bound: int

    def __post_init__(self) -> None:
        g = self.graph
        g.require_nonnegative()
        if not (0 <= self.s < g.n and 0 <= self.t < g.n):
            raise GraphError("terminals outside vertex range")
        if self.s == self.t:
            raise GraphError("s and t must be distinct (Definition 2)")
        if self.k < 1:
            raise GraphError("k must be at least 1")
        if self.delay_bound < 0:
            raise GraphError("delay bound must be nonnegative")

    def path_set(self, paths: list[list[int]]) -> "PathSet":
        """Wrap raw edge-id paths into a validated :class:`PathSet`."""
        return PathSet.from_paths(self.graph, self.s, self.t, self.k, paths)


@dataclass(frozen=True)
class PathSet:
    """``k`` edge-disjoint ``s -> t`` paths with exact totals.

    Construct via :meth:`from_paths` (validates) — the raw constructor is
    for internal use where validation already happened.
    """

    paths: tuple[tuple[int, ...], ...]
    cost: int
    delay: int

    @classmethod
    def from_paths(
        cls,
        g: DiGraph,
        s: int,
        t: int,
        k: int,
        paths: list[list[int]],
    ) -> "PathSet":
        check_disjoint_paths(g, [list(p) for p in paths], s, t, k=k)
        flat = [e for p in paths for e in p]
        return cls(
            paths=tuple(tuple(p) for p in paths),
            cost=g.cost_of(flat),
            delay=g.delay_of(flat),
        )

    @property
    def edge_ids(self) -> list[int]:
        """All edge ids across the paths (disjoint, so no duplicates)."""
        return [e for p in self.paths for e in p]

    def is_delay_feasible(self, delay_bound: int) -> bool:
        """Does the solution respect the delay budget?"""
        return self.delay <= delay_bound

    def bifactor(self, delay_bound: int, opt_cost: int) -> tuple[float, float]:
        """Measured bifactor ``(alpha, beta)`` against a known optimum.

        ``alpha = delay / D`` and ``beta = cost / C_OPT`` with the
        conventions 0/0 = 0 and x/0 = inf for x > 0 (degenerate instances
        with zero budget or zero optimal cost appear in tests).
        """

        def div(a: int, b: int) -> float:
            if b == 0:
                return 0.0 if a == 0 else float("inf")
            return a / b

        return div(self.delay, delay_bound), div(self.cost, opt_cost)
