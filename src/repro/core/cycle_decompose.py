"""Decomposing balanced edge sets and closed walks into simple cycles.

Two decomposition duties in the cancellation machinery:

* **Proposition 8**: the symmetric difference of two k-path systems (one
  reversed) is a perfectly balanced residual edge set, hence a disjoint
  union of cycles. :func:`decompose_into_cycles` peels them.
* **Candidate extraction**: the auxiliary-graph searches return closed
  walks / fractional circulations over the residual graph; a closed walk
  through repeated vertices splits into simple cycles whose cost/delay sums
  telescope. :func:`split_closed_walk` performs the split.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.validate import degree_imbalance


def decompose_into_cycles(g: DiGraph, edge_ids) -> list[list[int]]:
    """Peel a perfectly balanced edge set into edge-disjoint cycles.

    Deterministic (lowest edge id first). Raises when the set is not
    balanced at every vertex.
    """
    eids = sorted(int(e) for e in edge_ids)
    if len(set(eids)) != len(eids):
        raise GraphError("cycle decomposition input has duplicate edges")
    if degree_imbalance(g, eids).any():
        raise GraphError("edge set is not balanced — not a union of cycles")
    eid_arr = np.asarray(eids, dtype=np.int64)
    tails = g.tail[eid_arr].tolist()
    head_of = dict(zip(eids, g.head[eid_arr].tolist()))
    out: dict[int, list[int]] = {}
    for e, u in zip(eids, tails):
        out.setdefault(u, []).append(e)
    for stack in out.values():
        stack.sort(reverse=True)
    remaining = len(eids)
    cycles: list[list[int]] = []
    # Stacks only ever pop, so the smallest vertex with a nonempty stack is
    # non-decreasing over the peel — an advancing pointer over the sorted
    # tail vertices replaces a full min-scan per cycle (which was quadratic
    # in the number of peeled cycles).
    anchors = sorted(out)
    ai = 0
    while remaining:
        while not out[anchors[ai]]:
            ai += 1
        anchor = anchors[ai]
        walk: list[int] = []
        cur = anchor
        while True:
            stack = out.get(cur)
            if not stack:
                raise GraphError("peel stuck — imbalance slipped through")
            e = stack.pop()
            walk.append(e)
            remaining -= 1
            cur = head_of[e]
            if cur == anchor:
                break
            if len(walk) > len(eids):
                raise GraphError("peel did not terminate")
        # The anchored walk may itself revisit vertices; split it fully.
        cycles.extend(split_closed_walk(g, walk))
    return cycles


def split_closed_walk(g: DiGraph, walk: list[int]) -> list[list[int]]:
    """Split a closed walk into simple cycles (each visits a vertex once).

    Standard stack algorithm: push edges, and whenever the walk returns to
    a vertex already on the stack, pop the loop just closed as one cycle.
    The edge multiset is preserved exactly, so cost/delay sums over the
    output equal those of the input walk.
    """
    if not walk:
        return []
    # One vectorized gather of walk endpoints up front; the per-edge loop
    # then works on plain Python ints (no numpy scalar extraction per step).
    walk_arr = np.asarray(walk, dtype=np.int64)
    tails = g.tail[walk_arr].tolist()
    heads = g.head[walk_arr].tolist()
    start = tails[0]
    # Verify closedness.
    cur = start
    for i in range(len(walk)):
        if tails[i] != cur:
            raise GraphError("not a contiguous walk")
        cur = heads[i]
    if cur != start:
        raise GraphError("walk is not closed")

    cycles: list[list[int]] = []
    stack: list[int] = []  # indices into walk
    on_stack_pos: dict[int, int] = {start: 0}  # vertex -> stack depth
    for i in range(len(walk)):
        stack.append(i)
        v = heads[i]
        if v in on_stack_pos:
            depth = on_stack_pos[v]
            cyc_idx = stack[depth:]
            del stack[depth:]
            # Remove vertices of the popped cycle from the position map
            # (they are no longer on the open walk), except v itself.
            for j in cyc_idx:
                u2 = tails[j]
                if u2 != v:
                    on_stack_pos.pop(u2, None)
            cycles.append([walk[j] for j in cyc_idx])
        else:
            on_stack_pos[v] = len(stack)
    if stack:
        raise GraphError("walk did not fully decompose — internal error")
    return cycles
