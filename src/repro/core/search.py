"""Bicameral-cycle search driver (Algorithm 3).

Combines the cheap single-criterion probes with the layered-LP machinery:

1. **Fast probes** — Bellman–Ford negative-cycle detection on the residual
   graph under delay alone and under cost alone. Each hit is split into
   simple cycles and classified; a type-0 hit short-circuits everything
   (no LP is ever built).
2. **Layered sweep** — for ``B`` doubling up to ``sum |c(e)|`` (the largest
   possible running-cost spread of any simple residual cycle), build the
   shifted auxiliary graph and solve the min-ratio circulation LP for both
   cost signs, accumulating candidates. The sweep stops early once a
   type-0 candidate appears; otherwise all candidates are returned for
   rate-based selection by the cancellation loop.

Correctness: every residual cycle has running-cost spread at most
``sum |c|``, so it is representable in the final sweep step; Theorem 16
then guarantees a bicameral cycle is among the released candidates whenever
one exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.core.auxgraph import AuxGraph, build_aux_shifted
from repro.core.auxlp import candidates_from_circulation, solve_ratio_lp
from repro.core.bicameral import CandidateCycle, CycleType, classify
from repro.core.cycle_decompose import split_closed_walk
from repro.core.residual import ResidualGraph
from repro.paths.bellman_ford import find_negative_cycle
from repro.robustness.budget import BudgetMeter

#: Auxiliary-graph construction hook: ``(residual DiGraph, B) -> AuxGraph``,
#: signature-compatible with :func:`build_aux_shifted`. The incremental
#: engine (:mod:`repro.perf`) plugs its cache in here; any provider must
#: return graphs bit-identical to a fresh build for the search to stay
#: equivalent to the from-scratch path.
AuxProvider = Callable[..., AuxGraph]


@dataclass
class SearchStats:
    """Instrumentation of one candidate search (feeds experiment E6)."""

    bf_probes: int = 0
    lp_solves: int = 0
    aux_nodes_built: int = 0
    aux_edges_built: int = 0
    b_values: list[int] = field(default_factory=list)
    candidates: int = 0
    short_circuited_type0: bool = False

    def _snapshot(self) -> tuple[int, int, int, int, int]:
        """Cumulative fields, for delta-flushing into obs counters (the
        same stats object is shared across cancellation iterations)."""
        return (
            self.bf_probes,
            self.lp_solves,
            self.aux_nodes_built,
            self.aux_edges_built,
            len(self.b_values),
        )

    def _flush_delta(self, before: tuple[int, int, int, int, int]) -> None:
        """Emit the change since ``before`` as search.* counters."""
        after = self._snapshot()
        for name, b, a in zip(
            (
                "search.bf_probes",
                "search.lp_solves",
                "search.aux_nodes",
                "search.aux_edges",
                "search.sweep_levels",
            ),
            before,
            after,
        ):
            obs.add(name, a - b)
        obs.add("bicameral.cycles_found", self.candidates)
        if self.short_circuited_type0:
            obs.inc("search.type0_short_circuits")


def _probe_candidates(residual: ResidualGraph, stats: SearchStats) -> list[CandidateCycle]:
    """Single-criterion Bellman–Ford probes for negative cycles."""
    g = residual.graph
    out: list[CandidateCycle] = []
    for weight in (g.delay, g.cost):
        stats.bf_probes += 1
        cyc = find_negative_cycle(g, weight=weight)
        if cyc is None:
            continue
        for simple in split_closed_walk(g, _rotate_closed(g, cyc)):
            out.append(
                CandidateCycle(
                    edges=tuple(simple),
                    cost=g.cost_of(simple),
                    delay=g.delay_of(simple),
                )
            )
    return out


def _rotate_closed(g, cyc: list[int]) -> list[int]:
    """Bellman–Ford returns cycles already contiguous and closed; keep as-is.

    Kept as a named hook so the contract is explicit at the call site.
    """
    return cyc


def _has_type0(candidates: list[CandidateCycle]) -> bool:
    return any(
        classify(c.cost, c.delay, -1, None, None) is CycleType.TYPE0 for c in candidates
    )


def find_bicameral_cycle(
    residual: ResidualGraph,
    delta_d: int,
    delta_c_estimate: int | None,
    cost_cap: int | None,
    b_max: int | None = None,
    stats: SearchStats | None = None,
    fallback: str = "type1_first",
    delta_c_soft: int | None = None,
    type2_only_if_no_type1: bool = False,
    meter: BudgetMeter | None = None,
    aux_provider: "AuxProvider | None" = None,
) -> tuple[CandidateCycle, CycleType] | None:
    """Search-and-select with early stopping (the production path).

    ``aux_provider`` (signature-compatible with
    :func:`~repro.core.auxgraph.build_aux_shifted`) swaps in a cached
    construction — :meth:`repro.perf.IncrementalSearch.aux_provider` —
    whose outputs are bit-identical to a fresh build, so the sweep's
    control flow and every LP input are unchanged.

    Telemetry: runs under a ``search.bicameral`` span and flushes the
    per-call work (probes, LP solves, aux-graph sizes, candidates found)
    into ``search.*`` / ``bicameral.*`` counters on exit. Documented in
    detail on :func:`_find_bicameral_cycle_impl`. With a ``meter``, the
    sweep charges auxiliary-graph nodes against the budget's node cap and
    checks the deadline between LP solves; a trip raises
    :class:`~repro.errors.BudgetExhaustedError` (counters still flush).
    """
    stats = stats if stats is not None else SearchStats()
    stats.short_circuited_type0 = False
    before = stats._snapshot()
    with obs.span("search.bicameral"):
        try:
            return _find_bicameral_cycle_impl(
                residual,
                delta_d,
                delta_c_estimate,
                cost_cap,
                b_max=b_max,
                stats=stats,
                fallback=fallback,
                delta_c_soft=delta_c_soft,
                type2_only_if_no_type1=type2_only_if_no_type1,
                meter=meter,
                aux_provider=aux_provider,
            )
        finally:
            stats._flush_delta(before)


def _find_bicameral_cycle_impl(
    residual: ResidualGraph,
    delta_d: int,
    delta_c_estimate: int | None,
    cost_cap: int | None,
    b_max: int | None = None,
    stats: SearchStats | None = None,
    fallback: str = "type1_first",
    delta_c_soft: int | None = None,
    type2_only_if_no_type1: bool = False,
    meter: BudgetMeter | None = None,
    aux_provider: "AuxProvider | None" = None,
) -> tuple[CandidateCycle, CycleType] | None:
    """Search-and-select with early stopping (the production path).

    Runs the probes, then the doubling sweep, consulting
    :func:`repro.core.bicameral.select_candidate` after every level and
    returning as soon as a usable cycle appears; most iterations never
    build the larger auxiliary graphs. Certification tiers:

    * **strict** — Definition 10 against ``delta_c_estimate`` (a *lower*
      bound on ``C_OPT - C_i``): passing cycles provably maintain the
      Lemma 11 induction against the true optimum.
    * **soft** — the same test against ``delta_c_soft = U - C_i`` where
      ``U >= C_OPT`` is the cheapest-feasible-flow upper bound. A true
      type-1 cycle always passes (the threshold is looser), and the
      Lemma 11 telescoping still holds with ``U`` in place of ``C_OPT``,
      yielding cost ``< 2 * U`` no matter which soft cycles get applied.
      A soft candidate seen early (e.g. straight from a Bellman–Ford
      probe) may still be a Figure-1-style trap that a later sweep level
      would beat, so soft acceptance additionally waits until the sweep
      radius reaches **twice the candidate's own |cost|** — by which point
      any cheaper better-ratio competitor of comparable scale is already
      among the candidates and outranks the trap. This keeps typical
      iterations at small radii (fast) without giving up the 2U floor.

    Falls back to soft-certified, then uncertified selection, after the
    sweep is exhausted.
    """
    from repro.core.bicameral import select_candidate

    stats = stats if stats is not None else SearchStats()
    g = residual.graph
    candidates = _probe_candidates(residual, stats)

    def certified_pick():
        picked = select_candidate(
            candidates,
            delta_d,
            delta_c_estimate,
            cost_cap,
            fallback=fallback,
            type2_only_if_no_type1=type2_only_if_no_type1,
        )
        if picked is None:
            return None
        if picked[1] is CycleType.TYPE0:
            return picked
        cand, ctype = picked
        if (
            classify(cand.cost, cand.delay, delta_d, delta_c_estimate, cost_cap)
            is ctype
        ):
            return picked
        return None

    pick = certified_pick()
    if pick is not None:
        stats.short_circuited_type0 = pick[1] is CycleType.TYPE0
        stats.candidates = len(candidates)
        return pick

    nonzero = np.abs(g.cost[g.cost != 0])
    total_abs_cost = int(np.abs(g.cost).sum())
    if b_max is None:
        b_max = max(1, total_abs_cost)
    b_max = max(1, min(b_max, max(1, total_abs_cost)))
    # No cycle uses a nonzero-cost edge at radius below that edge's |c|, and
    # all-zero-cost cycles are already covered by the Bellman-Ford probes.
    b = max(1, int(nonzero.min())) if len(nonzero) else 1
    b = min(b, b_max)

    def soft_pick_if_scale_covered(radius: int):
        """Soft-certified pick, accepted only once the sweep radius covers
        twice the pick's own |cost| (the anti-trap rule)."""
        if delta_c_soft is None:
            return None
        picked = select_candidate(
            candidates,
            delta_d,
            delta_c_soft,
            cost_cap,
            fallback=fallback,
            type2_only_if_no_type1=type2_only_if_no_type1,
        )
        if picked is None:
            return None
        cand, ctype = picked
        if ctype is not CycleType.TYPE0 and (
            classify(cand.cost, cand.delay, delta_d, delta_c_soft, cost_cap)
            is not ctype
        ):
            return None
        if radius < 2 * abs(cand.cost):
            return None
        return picked

    build = aux_provider if aux_provider is not None else build_aux_shifted
    seen: set[tuple[int, ...]] = set(tuple(sorted(c.edges)) for c in candidates)
    while True:
        aux = build(g, b)
        stats.aux_nodes_built += aux.graph.n
        stats.aux_edges_built += aux.graph.m
        stats.b_values.append(b)
        if meter is not None:
            meter.charge_search_nodes(aux.graph.n, "search.sweep")
        # Positive-cost cycles (type-1 material) are what a delay-infeasible
        # iteration almost always needs; solve the negative sign only when
        # the positive one did not already yield an accepted pick.
        for sign in (+1, -1):
            if meter is not None:
                meter.check("search.ratio_lp")
            x = solve_ratio_lp(aux, sign)
            stats.lp_solves += 1
            if x is not None:
                for cand in candidates_from_circulation(aux, g, x):
                    key = tuple(sorted(cand.edges))
                    if key not in seen:
                        seen.add(key)
                        candidates.append(cand)
            pick = certified_pick() or soft_pick_if_scale_covered(b)
            if pick is not None:
                stats.short_circuited_type0 = pick[1] is CycleType.TYPE0
                stats.candidates = len(candidates)
                return pick
        if b >= b_max:
            break
        b = min(b * 2, b_max)

    stats.candidates = len(candidates)
    # Sweep exhausted with nothing strictly certified: prefer a soft-
    # certified pick (cost stays < 2 * U by the Lemma 11 telescoping with U
    # in place of C_OPT), then the uncertified fallback.
    if delta_c_soft is not None:
        soft = select_candidate(
            candidates,
            delta_d,
            delta_c_soft,
            cost_cap,
            fallback=fallback,
            type2_only_if_no_type1=type2_only_if_no_type1,
        )
        if soft is not None:
            return soft
    return select_candidate(
        candidates,
        delta_d,
        delta_c_estimate,
        cost_cap,
        fallback=fallback,
        type2_only_if_no_type1=type2_only_if_no_type1,
    )


def find_bicameral_candidates(
    residual: ResidualGraph,
    b_max: int | None = None,
    stats: SearchStats | None = None,
    meter: BudgetMeter | None = None,
    aux_provider: "AuxProvider | None" = None,
) -> list[CandidateCycle]:
    """Collect candidate cycles for bicameral selection.

    Parameters
    ----------
    residual:
        Residual graph of the current solution.
    b_max:
        Cost-radius ceiling for the layered sweep; defaults to
        ``sum |c(e)|`` (complete). Benchmarks pass smaller values to study
        the trade-off (experiment E6).
    stats:
        Optional instrumentation sink.
    meter:
        Optional armed budget; the sweep charges auxiliary-graph nodes
        and checks the deadline between LP solves (a trip raises
        :class:`~repro.errors.BudgetExhaustedError`).

    Returns a deduplicated candidate list; possibly empty (no bicameral
    cycle — Algorithm 1 step 2(a) declares the instance infeasible).
    """
    stats = stats if stats is not None else SearchStats()
    stats.short_circuited_type0 = False
    before = stats._snapshot()
    with obs.span("search.candidates_full"):
        try:
            return _find_bicameral_candidates_impl(
                residual, b_max, stats, meter, aux_provider
            )
        finally:
            stats._flush_delta(before)


def _find_bicameral_candidates_impl(
    residual: ResidualGraph,
    b_max: int | None,
    stats: SearchStats,
    meter: BudgetMeter | None = None,
    aux_provider: "AuxProvider | None" = None,
) -> list[CandidateCycle]:
    """Body of :func:`find_bicameral_candidates` (telemetry-agnostic)."""
    g = residual.graph
    candidates = _probe_candidates(residual, stats)
    if _has_type0(candidates):
        stats.short_circuited_type0 = True
        stats.candidates = len(candidates)
        return candidates

    total_abs_cost = int(np.abs(g.cost).sum())
    if b_max is None:
        b_max = max(1, total_abs_cost)
    b_max = max(1, min(b_max, max(1, total_abs_cost)))

    build = aux_provider if aux_provider is not None else build_aux_shifted
    seen: set[tuple[int, ...]] = set(tuple(sorted(c.edges)) for c in candidates)
    b = 1
    while True:
        aux = build(g, b)
        stats.aux_nodes_built += aux.graph.n
        stats.aux_edges_built += aux.graph.m
        stats.b_values.append(b)
        if meter is not None:
            meter.charge_search_nodes(aux.graph.n, "search.candidates_full")
        for sign in (+1, -1):
            if meter is not None:
                meter.check("search.candidates_full.lp")
            x = solve_ratio_lp(aux, sign)
            stats.lp_solves += 1
            if x is None:
                continue
            for cand in candidates_from_circulation(aux, g, x):
                key = tuple(sorted(cand.edges))
                if key not in seen:
                    seen.add(key)
                    candidates.append(cand)
        if _has_type0(candidates):
            stats.short_circuited_type0 = True
            break
        if b >= b_max:
            break
        b = min(b * 2, b_max)
    stats.candidates = len(candidates)
    return candidates


def reversed_edge_anchors(residual: ResidualGraph) -> list[int]:
    """Anchor vertices for the literal per-vertex search: heads of reversed
    edges. Every cycle with negative delay (or negative cost) contains a
    reversed edge — all input-graph weights are nonnegative — so anchoring
    at their heads loses nothing."""
    g = residual.graph
    rev = np.nonzero(residual.reversed_mask)[0]
    return sorted(set(int(g.head[e]) for e in rev) | set(int(g.tail[e]) for e in rev))


def find_bicameral_candidates_paper(
    residual: ResidualGraph,
    delta_d: int,
    b_values: list[int] | None = None,
    anchors: list[int] | None = None,
    stats: SearchStats | None = None,
    meter: BudgetMeter | None = None,
) -> list[CandidateCycle]:
    """Algorithm 3, literally: per-anchor ``H_v^+(B)`` / ``H_v^-(B)``
    graphs (layers 0..B, wraps only at ``v``), the paper's LP (6) on each,
    and the released support cycles as candidates.

    Exponentially more LP solves than the production shifted-graph search
    (one per (v, B, sign) instead of one per (B, sign)); exists for
    fidelity testing and the A3 ablation. ``b_values`` defaults to the
    doubling sweep up to ``sum |c|``; ``anchors`` defaults to
    :func:`reversed_edge_anchors`.
    """
    stats = stats if stats is not None else SearchStats()
    stats.short_circuited_type0 = False
    before = stats._snapshot()
    with obs.span("search.paper_literal"):
        try:
            return _find_bicameral_candidates_paper_impl(
                residual, delta_d, b_values, anchors, stats, meter
            )
        finally:
            stats._flush_delta(before)


def _find_bicameral_candidates_paper_impl(
    residual: ResidualGraph,
    delta_d: int,
    b_values: list[int] | None,
    anchors: list[int] | None,
    stats: SearchStats,
    meter: BudgetMeter | None = None,
) -> list[CandidateCycle]:
    """Body of :func:`find_bicameral_candidates_paper`."""
    from repro.core.auxgraph import build_aux_paper
    from repro.core.auxlp import solve_lp6

    g = residual.graph
    if anchors is None:
        anchors = reversed_edge_anchors(residual)
    if b_values is None:
        total = max(1, int(np.abs(g.cost).sum()))
        b_values = []
        b = 1
        while True:
            b_values.append(b)
            if b >= total:
                break
            b = min(b * 2, total)

    candidates: list[CandidateCycle] = []
    seen: set[tuple[int, ...]] = set()
    for b in b_values:
        for v in anchors:
            for sign in (+1, -1):
                aux = build_aux_paper(g, v, b, sign)
                stats.aux_nodes_built += aux.graph.n
                stats.aux_edges_built += aux.graph.m
                if meter is not None:
                    meter.charge_search_nodes(aux.graph.n, "search.paper_literal")
                x = solve_lp6(aux, delta_d)
                stats.lp_solves += 1
                if x is None:
                    continue
                for cand in candidates_from_circulation(aux, g, x):
                    key = tuple(sorted(cand.edges))
                    if key not in seen:
                        seen.add(key)
                        candidates.append(cand)
        stats.b_values.append(b)
    stats.candidates = len(candidates)
    return candidates
