"""Bicameral cycle classification (Definition 10) and candidate selection.

A residual cycle ``O`` with totals ``(c, d)`` is, relative to the current
solution's gaps ``DeltaD = D - sum d(P_i)`` (negative while infeasible) and
``DeltaC = C_OPT - sum c(P_i)`` (positive under the Lemma 11 invariant):

* **type-0** — ``d < 0, c <= 0`` or ``d <= 0, c < 0``: improves at least one
  criterion for free; always usable.
* **type-1** — ``d < 0, 0 < c <= C_OPT`` and ``d/c <= DeltaD/DeltaC``:
  buys delay with cost at a good enough exchange rate.
* **type-2** — ``d >= 0, -C_OPT <= c < 0`` and ``d/c >= DeltaD/DeltaC``:
  sells delay for cost without wrecking the rate.

``C_OPT`` is unknown at run time; the solver substitutes a lower bound
(the flow-LP optimum), which only makes the type-1/2 tests stricter — see
DESIGN.md "Substitutions". All ratio tests are exact integer comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro import obs
from repro._util.intmath import ratio_cmp


class CycleType(Enum):
    """Bicameral classes of Definition 10 (NONE = not bicameral)."""

    TYPE0 = 0
    TYPE1 = 1
    TYPE2 = 2
    NONE = -1


@dataclass(frozen=True)
class CandidateCycle:
    """A residual cycle plus its exact signed totals.

    ``edges`` are residual edge ids (== original edge ids, see
    :mod:`repro.core.residual`).
    """

    edges: tuple[int, ...]
    cost: int
    delay: int

    def ratio_key(self) -> float:
        """d/c as a float for *display only* — selection never uses this."""
        return self.delay / self.cost if self.cost else float("inf")


def classify(
    cost: int,
    delay: int,
    delta_d: int,
    delta_c: int | None,
    cost_cap: int | None,
) -> CycleType:
    """Classify a cycle's totals per Definition 10.

    Parameters
    ----------
    delta_d:
        ``D - current delay`` (negative while infeasible).
    delta_c:
        ``C_OPT_estimate - current cost``; ``None`` disables the rate tests
        (then only type-0 can be certified).
    cost_cap:
        The ``|c(O)| <= C_OPT`` cap; ``None`` disables the cap test.
    """
    if (delay < 0 and cost <= 0) or (delay <= 0 and cost < 0):
        return CycleType.TYPE0
    if delta_c is None or delta_c <= 0:
        return CycleType.NONE
    if delay < 0 and cost > 0:
        if cost_cap is not None and cost > cost_cap:
            return CycleType.NONE
        # d/c <= delta_d/delta_c, both denominators positive here.
        if ratio_cmp(delay, cost, delta_d, delta_c) <= 0:
            return CycleType.TYPE1
        return CycleType.NONE
    if delay >= 0 and cost < 0:
        if cost_cap is not None and -cost > cost_cap:
            return CycleType.NONE
        if ratio_cmp(delay, cost, delta_d, delta_c) >= 0:
            return CycleType.TYPE2
        return CycleType.NONE
    return CycleType.NONE


def better_type1(a: CandidateCycle, b: CandidateCycle) -> CandidateCycle:
    """Prefer the more negative delay/cost ratio (most delay bought per unit
    cost); ties break toward smaller cost, then lexicographic edges for
    determinism. Both args must have d<0, c>0."""
    cmp = ratio_cmp(a.delay, a.cost, b.delay, b.cost)
    if cmp != 0:
        return a if cmp < 0 else b
    if a.cost != b.cost:
        return a if a.cost < b.cost else b
    return a if a.edges <= b.edges else b


def better_type2(a: CandidateCycle, b: CandidateCycle) -> CandidateCycle:
    """Prefer the larger (closer to zero) delay/cost ratio — the least delay
    conceded per unit of cost recovered. Both args must have d>=0, c<0."""
    cmp = ratio_cmp(a.delay, a.cost, b.delay, b.cost)
    if cmp != 0:
        return a if cmp > 0 else b
    if a.cost != b.cost:
        return a if a.cost < b.cost else b  # more cost recovered
    return a if a.edges <= b.edges else b


def select_candidate(
    candidates: list[CandidateCycle],
    delta_d: int,
    delta_c_estimate: int | None,
    cost_cap: int | None,
    fallback: str = "type1_first",
    type2_only_if_no_type1: bool = False,
) -> tuple[CandidateCycle, CycleType] | None:
    """Pick the cycle to cancel next, mirroring Algorithm 3's endgame.

    Order of preference:

    1. any type-0 cycle (free improvement; smallest delay first);
    2. a cycle passing the *strict* Definition-10 test against the
       ``DeltaC`` estimate — best type-1 first, then best type-2;
    3. an uncertified fallback, controlled by ``fallback``:

       * ``"type1_first"`` (default): the best type-1-shaped candidate
         (delay strictly decreases every step), resorting to type-2 only
         when no type-1-shaped cycle exists at all. This is the
         convergence-friendly reading; the state-repetition guard in the
         cancellation loop backstops it.
       * ``"paper_step3"``: the literal comparative rule of Algorithm 3
         step 3 — return whichever of the best type-1/type-2 candidates
         has the smaller absolute ratio ``|d/c|``, type-1 on ties. Kept
         for fidelity experiments; the brief announcement's step 3 is
         internally inconsistent (see DESIGN.md), so production code
         defaults to ``"type1_first"``.

    ``type2_only_if_no_type1`` suppresses type-2 certification whenever any
    type-1-shaped candidate exists. With *estimated* ``DeltaC`` a certified
    type-2 can be spurious and exactly undo the previous type-1 step
    (oscillation); with the exact optimum (tests) the paper's Lemma 12
    argument makes type-2 genuinely productive, so callers pass ``False``
    there.

    Returns ``None`` when no candidate moves any criterion in a useful
    direction (i.e. no bicameral cycle exists among the candidates).
    """
    type0 = [c for c in candidates if classify(c.cost, c.delay, delta_d, None, None) is CycleType.TYPE0]
    if type0:
        best = min(type0, key=lambda c: (c.delay, c.cost, c.edges))
        return best, CycleType.TYPE0

    t1_shaped = [c for c in candidates if c.delay < 0 and c.cost > 0]
    t2_shaped = [c for c in candidates if c.delay >= 0 and c.cost < 0]
    if cost_cap is not None:
        shaped = len(t1_shaped) + len(t2_shaped)
        t1_shaped = [c for c in t1_shaped if c.cost <= cost_cap]
        t2_shaped = [c for c in t2_shaped if -c.cost <= cost_cap]
        obs.add(
            "bicameral.rejected_by_cost_cap",
            shaped - len(t1_shaped) - len(t2_shaped),
        )

    best1 = None
    for c in t1_shaped:
        best1 = c if best1 is None else better_type1(best1, c)
    best2 = None
    for c in t2_shaped:
        best2 = c if best2 is None else better_type2(best2, c)

    # Strict certification against the DeltaC estimate.
    if best1 is not None and classify(
        best1.cost, best1.delay, delta_d, delta_c_estimate, cost_cap
    ) is CycleType.TYPE1:
        return best1, CycleType.TYPE1
    type2_allowed = best1 is None or not type2_only_if_no_type1
    if (
        type2_allowed
        and best2 is not None
        and classify(best2.cost, best2.delay, delta_d, delta_c_estimate, cost_cap)
        is CycleType.TYPE2
    ):
        return best2, CycleType.TYPE2

    if fallback == "paper_step3":
        # Comparative fallback: |d1/c1| vs |d2/c2| exactly.
        if best1 is not None and best2 is not None:
            cmp = ratio_cmp(abs(best1.delay), best1.cost, abs(best2.delay), -best2.cost)
            return (best1, CycleType.TYPE1) if cmp <= 0 else (best2, CycleType.TYPE2)
    if best1 is not None:
        return best1, CycleType.TYPE1
    if best2 is not None:
        return best2, CycleType.TYPE2
    return None
