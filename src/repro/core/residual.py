"""Residual graphs with respect to a set of disjoint paths (Definition 6).

Given the input graph ``G`` and a current solution occupying edge set
``S`` (an integral unit k-flow), the residual graph ``G~`` keeps every edge
of ``G \\ S`` as-is and replaces every ``e in S`` by its reversal with
*both* cost and delay negated:

    c(e') = -c(e),   d(e') = -d(e)        [the paper's key deviation from
                                           [12, 18], which negate only one]

Representation: residual edge ``i`` corresponds one-to-one to original edge
``i`` — same id, flipped endpoints and negated weights exactly when
``i in S``. This makes the ``oplus`` application trivially expressible on
original edge ids and keeps the residual a plain :class:`DiGraph` (it is a
multigraph in general, which :class:`DiGraph` natively supports).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import GraphError
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class ResidualGraph:
    """The residual multigraph plus the reversal bookkeeping.

    Attributes
    ----------
    graph:
        The residual :class:`DiGraph`; edge ``i`` here corresponds to edge
        ``i`` of the original graph.
    reversed_mask:
        Boolean array: ``reversed_mask[i]`` iff original edge ``i`` is in
        the solution and therefore appears reversed/negated.
    version:
        Edge-set version, bumped by every :meth:`apply_flip`. Cache keys in
        :mod:`repro.perf` are ``(id(residual), version, B)`` — any in-place
        delta invalidates everything keyed on the old version.
    """

    graph: DiGraph
    reversed_mask: np.ndarray
    version: int = 0

    @property
    def m(self) -> int:
        return self.graph.m

    def apply_flip(self, edge_ids) -> np.ndarray:
        """Flip ``edge_ids`` in place (Def. 6 reversal toggle); bump version.

        The incremental counterpart of calling :func:`build_residual` with
        the next solution: flipping edge ``i`` swaps its endpoints and
        negates both weights via :meth:`DiGraph.flip_edges` (CSR indices
        patched, not rebuilt) and toggles ``reversed_mask[i]``. Passing the
        symmetric difference ``old_solution ^ new_solution`` makes this
        graph bit-identical to ``build_residual(g, new_solution).graph``.

        Returns the flipped ids (unique, sorted).
        """
        eids = np.unique(np.asarray(list(edge_ids), dtype=np.int64))
        self.graph.flip_edges(eids)
        self.reversed_mask[eids] = ~self.reversed_mask[eids]
        object.__setattr__(self, "version", self.version + 1)
        obs.inc("residual.delta_applies")
        obs.add("residual.delta_edges_flipped", len(eids))
        return eids

    def reweight_edges(self, edge_ids, cost, delay) -> np.ndarray:
        """Set new *original-orientation* weights in place; bump version.

        ``cost``/``delay`` are the new nonnegative input-graph weights,
        aligned with ``edge_ids``; reversed residual edges store them
        negated (Definition 6). Edge ids must be unique. Endpoints and
        therefore CSR indices are untouched, but any cache keyed on the
        old version (:class:`repro.perf.AuxCache`) must be told via its
        reweight hook — weight changes are not flips, so the parity-folded
        flip log cannot express them.

        Returns the touched ids (sorted).
        """
        eids = np.asarray(list(edge_ids), dtype=np.int64)
        if len(eids) == 0:
            return eids
        if len(np.unique(eids)) != len(eids):
            raise GraphError("reweight_edges: duplicate edge ids")
        if eids.min() < 0 or eids.max() >= self.m:
            raise GraphError("reweight_edges: edge id out of range")
        cost = np.asarray(list(cost), dtype=np.int64)
        delay = np.asarray(list(delay), dtype=np.int64)
        if not (len(cost) == len(delay) == len(eids)):
            raise GraphError("reweight_edges: arrays must share one length")
        if (cost.min() if len(cost) else 0) < 0 or (delay.min() if len(delay) else 0) < 0:
            raise GraphError("reweight_edges: input weights must be nonnegative")
        sign = np.where(self.reversed_mask[eids], -1, 1).astype(np.int64)
        self.graph.cost[eids] = cost * sign
        self.graph.delay[eids] = delay * sign
        object.__setattr__(self, "version", self.version + 1)
        obs.inc("residual.reweights")
        obs.add("residual.reweight_edges_touched", len(eids))
        order = np.argsort(eids)
        return eids[order]

    def remove_edges(self, edge_ids) -> np.ndarray:
        """Delete edges in place (id-compacting); returns the old->new map.

        Refuses to remove a *reversed* edge: it carries solution flow, and
        deleting it would silently break the current k-flow — callers must
        treat that delta as a warm-start precondition failure and re-solve
        cold instead. The ``reversed_mask`` is compacted alongside the
        graph arrays so residual edge ``i`` keeps matching original edge
        ``i`` under the new numbering.
        """
        eids = np.unique(np.asarray(list(edge_ids), dtype=np.int64))
        if len(eids) == 0:
            return np.arange(self.m, dtype=np.int64)
        if eids[0] < 0 or eids[-1] >= self.m:
            raise GraphError("remove_edges: edge id out of range")
        if bool(self.reversed_mask[eids].any()):
            raise GraphError(
                "remove_edges: cannot remove a residual edge carrying solution flow"
            )
        id_map = self.graph.remove_edges(eids)
        object.__setattr__(self, "reversed_mask", self.reversed_mask[id_map >= 0])
        object.__setattr__(self, "version", self.version + 1)
        obs.inc("residual.structural_removes")
        obs.add("residual.structural_edges_removed", len(eids))
        return id_map

    def add_edges(self, tail, head, cost, delay) -> np.ndarray:
        """Append forward (non-reversed) edges in place; returns new ids.

        New edges enter with their input-graph orientation and nonnegative
        weights — an edge can only become reversed by later cancellation
        flips. Existing edge ids are stable.
        """
        cost = np.atleast_1d(np.asarray(cost, dtype=np.int64))
        delay = np.atleast_1d(np.asarray(delay, dtype=np.int64))
        if len(cost) and (cost.min() < 0 or delay.min() < 0):
            raise GraphError("add_edges: input weights must be nonnegative")
        new_ids = self.graph.add_edges(tail, head, cost, delay)
        object.__setattr__(
            self,
            "reversed_mask",
            np.concatenate([self.reversed_mask, np.zeros(len(new_ids), dtype=bool)]),
        )
        object.__setattr__(self, "version", self.version + 1)
        obs.inc("residual.structural_adds")
        obs.add("residual.structural_edges_added", len(new_ids))
        return new_ids

    def to_state(self) -> dict:
        """Serializable snapshot (graph arrays + CSR + mask + version).

        The checkpoint journal's full-snapshot records carry this so a
        resume restores the incremental engine's residual bit-identically
        without replaying the whole flip history (resume cost stays
        ``O(journal tail)``).
        """
        from repro.graph.digraph import encode_array

        return {
            "graph": self.graph.to_state(),
            "reversed_mask": encode_array(self.reversed_mask),
            "version": self.version,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ResidualGraph":
        """Inverse of :meth:`to_state`."""
        from repro.graph.digraph import decode_array

        mask = decode_array(state["reversed_mask"])
        if mask.dtype != np.bool_:
            mask = mask.astype(bool)
        return cls(
            graph=DiGraph.from_state(state["graph"]),
            reversed_mask=mask,
            version=int(state["version"]),
        )

    def apply_cycle(self, old_solution_edges, cycles: list[list[int]]) -> list[int]:
        """Apply ``oplus`` *and* update this residual in place.

        Computes the new solution via :func:`apply_residual_cycles`, then
        flips exactly the edges whose membership changed (the symmetric
        difference, which covers both the cancelled cycles and any edges
        the caller's cycle set touches twice would have rejected anyway).
        Returns the new solution edge ids, sorted.
        """
        new_solution = apply_residual_cycles(old_solution_edges, self, cycles)
        diff = set(int(e) for e in old_solution_edges) ^ set(new_solution)
        self.apply_flip(sorted(diff))
        return new_solution


def build_residual(g: DiGraph, solution_edges) -> ResidualGraph:
    """Residual graph of ``g`` with respect to solution edge set (Def. 6)."""
    obs.inc("residual.rebuilds")
    mask = np.zeros(g.m, dtype=bool)
    idx = np.asarray(list(solution_edges), dtype=np.int64)
    if len(idx):
        if idx.min() < 0 or idx.max() >= g.m:
            raise GraphError("solution edge id out of range")
        mask[idx] = True
        if int(mask.sum()) != len(idx):
            raise GraphError("solution edge set contains duplicates")

    # Every array here is freshly allocated (np.where / elementwise product),
    # so the residual exclusively owns them — the precondition for the
    # in-place apply_flip delta path.
    tail = np.where(mask, g.head, g.tail)
    head = np.where(mask, g.tail, g.head)
    sign = np.where(mask, -1, 1).astype(np.int64)
    res = DiGraph(g.n, tail, head, g.cost * sign, g.delay * sign)
    return ResidualGraph(graph=res, reversed_mask=mask)


def apply_residual_cycles(
    solution_edges,
    residual: ResidualGraph,
    cycles: list[list[int]],
) -> list[int]:
    """Apply the paper's ``oplus`` with one or more residual cycles.

    For each residual edge on a cycle: a *forward* edge (not reversed)
    enters the solution; a *reversed* edge removes its original from the
    solution. Cycles must be edge-disjoint among themselves (Proposition 7's
    hypothesis); the same residual edge appearing twice is rejected.

    Returns the new solution edge set (sorted original edge ids). By
    Proposition 7 the result is again an integral k-flow — callers verify by
    decomposing (:func:`repro.flow.decompose.decompose_flow`).
    """
    current = set(int(e) for e in solution_edges)
    seen: set[int] = set()
    for cycle in cycles:
        for e in cycle:
            e = int(e)
            if e in seen:
                raise GraphError("cycles are not edge-disjoint in the residual")
            seen.add(e)
            if residual.reversed_mask[e]:
                if e not in current:
                    raise GraphError("reversed residual edge not in solution")
                current.remove(e)
            else:
                if e in current:
                    raise GraphError("forward residual edge already in solution")
                current.add(e)
    return sorted(current)


def residual_weight_of(residual: ResidualGraph, edge_ids) -> tuple[int, int]:
    """(cost, delay) of a residual edge set under the signed weights."""
    g = residual.graph
    return g.cost_of(edge_ids), g.delay_of(edge_ids)
