"""Phase-1 providers: initial k disjoint paths for Algorithm 1.

The cancellation phase (phase 2) starts from *some* k disjoint paths and
repairs the delay overshoot. The paper's Algorithm 1 step 1 uses the
LP-rounding algorithm of [9] (Lemma 5); this module offers that plus two
alternatives with different invariants, selectable by name:

``"lp_rounding"`` (default, the paper's choice)
    Solve the delay-budgeted flow LP, round score-monotonically
    (:mod:`repro.lp.basis`). Guarantee: ``delay/D + cost/C_LP <= 2``
    — exactly Lemma 5's ``(alpha, 2 - alpha)`` trade-off. Also certifies
    fractional infeasibility and yields the ``C_LP`` lower bound reused by
    the bicameral rate tests.

``"lagrangian"``
    LARAC lifted to k-flows: binary-search the multiplier ``lambda`` over
    exact min-cost k-flows under the blended weight ``c + lambda*d``.
    Returns the *cheap-but-slow* crossing flow, which satisfies
    ``cost <= C_OPT`` outright (the invariant Lemma 11's induction wants),
    or the feasible optimum when one of the extremes already fits.

``"minsum"``
    Suurballe by cost, ignoring delay entirely: ``cost <= C_OPT``
    trivially; the delay overshoot can be anything. The baseline starting
    point that stresses phase 2 hardest.

All providers raise :class:`InfeasibleInstanceError` when fewer than ``k``
disjoint paths exist, and return a :class:`Phase1Result`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro import obs
from repro.core.instance import KRSPInstance, PathSet
from repro.errors import InfeasibleInstanceError, SolverError
from repro.flow.decompose import decompose_flow, strip_improving_cycles
from repro.flow.mincost import min_cost_k_flow
from repro.graph.digraph import DiGraph
from repro.lp.basis import round_flow_score_monotone
from repro.lp.flow_lp import solve_flow_lp
from repro.robustness.budget import checkpoint


@dataclass
class Phase1Result:
    """Initial solution plus the bounds phase 1 learned along the way.

    Attributes
    ----------
    solution:
        The starting k disjoint paths.
    cost_lower_bound:
        Certified lower bound on ``C_OPT`` (exact Fraction; from the flow
        LP or the Lagrangian dual). ``None`` when the provider has none.
    provider:
        Name of the provider that produced this result.
    """

    solution: PathSet
    cost_lower_bound: Fraction | None
    provider: str


def _paths_from_mask(inst: KRSPInstance, mask: np.ndarray) -> PathSet:
    g = inst.graph
    paths, cycles = decompose_flow(g, np.nonzero(mask)[0], inst.s, inst.t)
    strip_improving_cycles(g, paths, cycles)
    return inst.path_set(paths)


@obs.span("phase1.minsum")
def phase1_minsum(inst: KRSPInstance) -> Phase1Result:
    """Min-cost k disjoint paths, delay-oblivious (cost <= C_OPT)."""
    res = min_cost_k_flow(inst.graph, inst.s, inst.t, inst.k, weight=inst.graph.cost)
    if res is None:
        raise InfeasibleInstanceError(
            f"fewer than k={inst.k} edge-disjoint s-t paths exist"
        )
    sol = _paths_from_mask(inst, res.used)
    # The delay-oblivious minimum is itself a certified C_OPT lower bound.
    return Phase1Result(
        solution=sol, cost_lower_bound=Fraction(sol.cost), provider="minsum"
    )


@obs.span("phase1.lp_rounding")
def phase1_lp_rounding(inst: KRSPInstance) -> Phase1Result:
    """The paper's phase 1 ([9], Lemma 5): LP + score-monotone rounding."""
    g = inst.graph
    lp = solve_flow_lp(g, inst.s, inst.t, inst.k, inst.delay_bound)
    if lp is None:
        raise InfeasibleInstanceError(
            "delay-budgeted flow LP infeasible — no fractional k-flow fits "
            f"the delay bound {inst.delay_bound}"
        )
    cost_norm = max(lp.cost, 0.0)
    mask = round_flow_score_monotone(g, lp.x, cost_norm, float(inst.delay_bound))
    sol = _paths_from_mask(inst, mask)
    # C_LP as an exact-ish Fraction (float from HiGHS; round to 1e-9 grid —
    # used only as a lower-bound estimate, never for feasibility logic).
    lb = Fraction(lp.cost).limit_denominator(10**9)
    return Phase1Result(solution=sol, cost_lower_bound=lb, provider="lp_rounding")


@obs.span("phase1.lagrangian")
def phase1_lagrangian(inst: KRSPInstance, max_iterations: int = 60) -> Phase1Result:
    """LARAC over k-flows: returns the cheap crossing flow (cost <= C_OPT).

    If the min-cost extreme is already delay-feasible it is optimal and
    returned directly; if even the min-delay extreme violates the budget,
    phase 2 still gets the best available starting point (the min-delay
    flow) — Algorithm 1 will then hunt for bicameral cycles or certify
    infeasibility.
    """
    g, s, t, k, D = inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
    by_cost = min_cost_k_flow(g, s, t, k, weight=g.cost)
    if by_cost is None:
        raise InfeasibleInstanceError(
            f"fewer than k={inst.k} edge-disjoint s-t paths exist"
        )
    sol_c = _paths_from_mask(inst, by_cost.used)
    if sol_c.delay <= D:
        return Phase1Result(
            solution=sol_c, cost_lower_bound=Fraction(sol_c.cost), provider="lagrangian"
        )

    # Min-delay extreme with cost tie-break.
    big = g.total_cost() + 1
    by_delay = min_cost_k_flow(g, s, t, k, weight=g.delay * big + g.cost)
    sol_d = _paths_from_mask(inst, by_delay.used)

    cheap = sol_c  # infeasible delay, cost <= C_OPT
    fast = sol_d  # smallest possible delay
    best_bound = Fraction(sol_c.cost)
    lam = Fraction(0)
    for _ in range(max_iterations):
        # Each step is a full min-cost-flow solve; honor an ambient solve
        # budget between steps (no-op unless a meter is armed).
        checkpoint("phase1.lagrangian")
        if cheap.delay == fast.delay:
            break
        lam = Fraction(fast.cost - cheap.cost, cheap.delay - fast.delay)
        if lam <= 0:
            break
        w = lam.denominator * g.cost + lam.numerator * g.delay
        mid = min_cost_k_flow(g, s, t, k, weight=w)
        if mid is None:  # cannot happen once by_cost succeeded
            raise SolverError("k-flow vanished during Lagrangian search")
        sol_m = _paths_from_mask(inst, mid.used)
        blended = lam.denominator * sol_m.cost + lam.numerator * sol_m.delay
        best_bound = max(best_bound, Fraction(blended, lam.denominator) - lam * D)
        blended_cheap = lam.denominator * cheap.cost + lam.numerator * cheap.delay
        if blended == blended_cheap:
            break  # multiplier converged
        if sol_m.delay <= D:
            fast = sol_m
        else:
            cheap = sol_m

    # Return the cheap crossing flow: its `cost <= C_OPT` invariant is what
    # Lemma 11's induction leans on; phase 2 repairs the delay overshoot.
    # Both `best_bound` (Lagrangian dual values) and `cheap.cost` (a
    # delay-infeasible flow's cost never exceeds the feasible optimum's)
    # lower-bound C_OPT; keep the tighter.
    return Phase1Result(
        solution=cheap,
        cost_lower_bound=max(best_bound, Fraction(cheap.cost)),
        provider="lagrangian",
    )


PROVIDERS = {
    "lp_rounding": phase1_lp_rounding,
    "lagrangian": phase1_lagrangian,
    "minsum": phase1_minsum,
}
"""Name registry used by :func:`repro.core.krsp.solve_krsp`."""
