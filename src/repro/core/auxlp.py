"""LP (6) over auxiliary graphs and extraction of candidate cycles.

The paper solves a linear program over circulations of the auxiliary graph
and releases the cycles in its support (Algorithm 3 steps 1(a)ii–iii,
Theorem 16). We implement the search as a *minimum-ratio circulation* LP —
the Charnes–Cooper normalization of ``min d(O)/c(O)``:

    minimize    sum_{e in H} d(e) x_e
    subject to  x is a circulation in H        (conservation everywhere)
                sum_{wraps of chosen sign} |wrap_cost| * x = 1
                x >= 0, other-sign wraps fixed to 0

Because wrap edges are the only way to shift accumulated cost back to zero,
the normalization pins one unit of |cycle cost| mass of the chosen sign; the
optimum is then exactly ``min d(O)/|c(O)|`` over representable residual
cycles with that cost sign (and mixtures thereof, which decompose into
cycles at least one of which attains the optimum). Fractional optima are
peeled into H-cycles, projected to residual closed walks, split into simple
residual cycles, and returned with *exact integer* totals.

Boundedness: cost-zero cycles use no wraps, so a negative-delay wrap-free
circulation would drive an uncapped LP to ``-inf``. Variables are therefore
capped at :data:`MASS_CAP`; such circulations then surface as cost-0
negative-delay cycles in the peel — type-0 candidates, exactly what the
search wants most.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.auxgraph import AuxGraph
from repro.core.bicameral import CandidateCycle
from repro.core.cycle_decompose import split_closed_walk
from repro.errors import BudgetExhaustedError, SolverError
from repro.graph.digraph import DiGraph
from repro.lp.engine import get_engine
from repro.lp.flow_lp import lp_time_limit_options

#: Mass below this is treated as zero when peeling fractional circulations.
PEEL_TOL = 1e-7

#: Per-edge mass cap in the ratio LP; see the boundedness note in
#: :func:`solve_ratio_lp`.
MASS_CAP = 1e6


def solve_ratio_lp(aux: AuxGraph, cost_sign: int) -> np.ndarray | None:
    """Solve the normalized min-ratio circulation LP on ``aux``.

    ``cost_sign`` selects which wrap family is normalized (+1: cycles of
    positive cost; -1: negative cost). Returns the fractional edge vector,
    or ``None`` when no circulation of that sign exists within radius B.

    Raises :class:`SolverError` on an unbounded LP (negative-delay zero-cost
    circulation — callers should have eliminated these first).
    """
    wraps = aux.wrap_cost
    chosen = (wraps * cost_sign) > 0
    if not chosen.any():
        return None

    # An LP solve is the largest indivisible unit of work in the pipeline;
    # under an ambient deadline, cap HiGHS's own runtime at the remaining
    # budget so a single big solve cannot blow past the deadline. Assembly
    # (incl. the MASS_CAP boundedness trick — see the module docstring) and
    # warm-start bookkeeping live in repro.lp.engine.
    options, deadline_capped = lp_time_limit_options()
    res = get_engine().solve_ratio(aux, cost_sign, options=options)
    obs.inc("lp.ratio_lp.solves")
    if res.status == 2:
        return None
    if res.status == 1 and deadline_capped:
        raise BudgetExhaustedError("deadline", "auxlp.ratio_lp")
    if not res.success:
        raise SolverError(f"ratio LP failed: status={res.status} {res.message}")
    return np.maximum(res.x, 0.0)


def peel_fractional_cycles(
    g: DiGraph,
    x: np.ndarray,
    tol: float = PEEL_TOL,
) -> list[list[int]]:
    """Decompose a fractional circulation into cycles (edge-id lists).

    Greedy peel: walk along edges with remaining mass, following the
    largest-mass out-edge; on revisiting a vertex, subtract the cycle's
    bottleneck mass. Terminates because every peel removes at least one
    edge from the support. Tiny conservation noise from the LP is absorbed
    by ``tol``.
    """
    x = np.asarray(x, dtype=np.float64).copy()
    out: dict[int, list[int]] = {}
    for e in np.nonzero(x > tol)[0]:
        out.setdefault(int(g.tail[e]), []).append(int(e))

    cycles: list[list[int]] = []
    for _ in range(g.m + len(x) + 1):
        support = np.nonzero(x > tol)[0]
        if len(support) == 0:
            break
        start_edge = int(support[np.argmax(x[support])])
        walk: list[int] = []
        pos: dict[int, int] = {}
        cur = int(g.tail[start_edge])
        pos[cur] = 0
        while True:
            cand = [e for e in out.get(cur, ()) if x[e] > tol]
            if not cand:
                # Conservation noise stranded this walk — drop its mass.
                for e in walk:
                    x[e] = 0.0
                walk = []
                break
            e = max(cand, key=lambda ee: x[ee])
            walk.append(e)
            cur = int(g.head[e])
            if cur in pos:
                cycle = walk[pos[cur] :]
                bottleneck = min(x[e2] for e2 in cycle)
                for e2 in cycle:
                    x[e2] -= bottleneck
                cycles.append(cycle)
                break
            pos[cur] = len(walk)
            if len(walk) > g.m + 1:
                raise SolverError("fractional peel did not terminate")
    else:
        raise SolverError("fractional peel exceeded iteration budget")
    return cycles


def candidates_from_circulation(
    aux: AuxGraph,
    residual: DiGraph,
    x: np.ndarray,
) -> list[CandidateCycle]:
    """Project a fractional H-circulation to exact residual cycle candidates.

    Every peeled H-cycle maps (wraps dropped) to a closed residual walk,
    which splits into simple residual cycles; totals are recomputed from
    the residual integer weights, so LP float noise cannot leak into
    classification.
    """
    h_cycles = peel_fractional_cycles(aux.graph, x)
    seen: set[tuple[int, ...]] = set()
    out: list[CandidateCycle] = []
    for h_cycle in h_cycles:
        walk = aux.to_residual_walk(h_cycle)
        if not walk:
            continue
        for cyc in split_closed_walk(residual, walk):
            key = tuple(sorted(cyc))
            if key in seen:
                continue
            seen.add(key)
            out.append(
                CandidateCycle(
                    edges=tuple(cyc),
                    cost=residual.cost_of(cyc),
                    delay=residual.delay_of(cyc),
                )
            )
    return out


def solve_lp6(aux: AuxGraph, delta_d: int) -> np.ndarray | None:
    """The paper's LP (6), literally: minimum-cost circulation in ``H``
    whose total delay is at most ``DeltaD``.

    ``DeltaD = D - sum d(P_i)`` is *negative* while the solution is
    delay-infeasible, so ``x = 0`` is infeasible and the budget row forces
    the circulation to buy at least ``|DeltaD|`` of delay reduction; the
    objective then finds the cheapest way to buy it. (The paper notes
    ``0 <= x <= 1`` "is not necessary"; we cap at :data:`MASS_CAP` for the
    same boundedness reason as :func:`solve_ratio_lp`.)

    Returns the fractional circulation or ``None`` when no circulation in
    ``H`` reaches the required delay reduction (then a larger ``B`` or a
    different anchor is needed — Algorithm 3's outer loops).
    """
    res = get_engine().solve_lp6(aux, delta_d)
    obs.inc("lp.lp6.solves")
    if res.status == 2:
        return None
    if not res.success:
        raise SolverError(f"LP (6) failed: status={res.status} {res.message}")
    return np.maximum(res.x, 0.0)
