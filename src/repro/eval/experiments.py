"""Experiment definitions E1–E9 plus the Figure 1 / Figure 2 artefacts.

Each ``run_*`` function is self-contained: it generates its workload,
executes the solvers, and returns ``(headers, rows)`` ready for
:func:`repro.eval.reporting.format_table`. The benchmark files under
``benchmarks/`` are thin wrappers that time these and print the tables;
EXPERIMENTS.md records representative output.

The paper prints no empirical numbers (brief announcement), so "paper vs
measured" here means *theoretical bound vs measured value* — each
experiment's docstring states the bound it checks.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Iterable

import numpy as np

from repro.baselines import BASELINES
from repro.core import (
    CycleType,
    build_residual,
    cancel_to_feasibility,
    find_bicameral_candidates,
    solve_krsp,
)
from repro.core.auxgraph import build_aux_paper, build_aux_shifted
from repro.core.instance import KRSPInstance
from repro.core.residual import apply_residual_cycles
from repro.core.phase1 import phase1_lp_rounding, phase1_minsum
from repro.errors import ReproError
from repro.eval.metrics import summarize
from repro.eval.workloads import (
    WORKLOADS,
    WorkloadInstance,
    er_anticorrelated,
    grid_anticorrelated,
    layered_anticorrelated,
    waxman_euclidean,
)
from repro.flow.decompose import decompose_flow, strip_improving_cycles
from repro.flow.suurballe import suurballe_k_paths
from repro.graph import from_edges
from repro.graph.digraph import DiGraph
from repro.lp.flow_lp import solve_flow_lp
from repro.lp.milp import solve_krsp_milp

# ---------------------------------------------------------------------------
# Figure 1 — the cost-cap gadget
# ---------------------------------------------------------------------------


def figure1_instance(D: int, c_opt: int = 10) -> tuple[DiGraph, dict]:
    """The 5-vertex gadget of Figure 1, parameterized by the budget ``D``.

    The figure's exact edge weights are not recoverable from the brief
    announcement (the image is not in the text), so this is a documented
    reconstruction with the caption's stated behaviour:

    * optimal solution ``{s-a-b-t, s-t}``: cost ``c_opt``, delay ``D``;
    * the cheap initial solution ``{s-a-b-c-t, s-t}``: cost 0, delay
      ``2D + 1``;
    * a trap route ``{s-a-t, s-t}``: delay 0 but cost
      ``c_opt * (D + 1) - 1`` — exactly the caption's
      ``C_OPT * (D+1) - eps``. A *delay-greedy* canceller (no cost cap, no
      rate test) takes the big trap cycle; the bicameral rules take the
      small one.
    """
    if D < 2:
        raise ValueError("gadget needs D >= 2")
    half = (D + 1) // 2
    g, ids = from_edges(
        [
            ("s", "a", 0, 0),
            ("a", "b", 0, half),
            ("b", "c", 0, D + 1 - half),  # sabct totals exactly 2D + 1
            ("c", "t", 0, D),
            ("b", "t", c_opt, D - half),
            ("a", "t", c_opt * (D + 1) - 1, 0),
            ("s", "t", 0, 0),
        ]
    )
    return g, ids


def run_figure1(d_values: Iterable[int] = (4, 8, 16, 32), c_opt: int = 10):
    """F1: capped bicameral cancellation vs naive delay-greedy cancellation.

    Bound checked: the capped algorithm's cost stays <= 2 * C_OPT for
    every D; the naive variant's cost grows ~ (D+1) * C_OPT.
    """
    headers = [
        "D",
        "opt_cost",
        "bicameral_cost",
        "bicameral/opt",
        "naive_cost",
        "naive/opt",
    ]
    rows = []
    for D in d_values:
        g, ids = figure1_instance(D, c_opt)
        s, t = ids["s"], ids["t"]
        exact = solve_krsp_milp(g, s, t, 2, D)
        assert exact is not None
        sol = solve_krsp(g, s, t, 2, D, phase1="minsum")
        naive_cost = _naive_delay_greedy_cost(g, s, t, 2, D)
        rows.append(
            [
                D,
                exact.cost,
                sol.cost,
                sol.cost / exact.cost,
                naive_cost,
                naive_cost / exact.cost,
            ]
        )
    return headers, rows


def _naive_delay_greedy_cost(g: DiGraph, s: int, t: int, k: int, D: int) -> int:
    """The Figure-1 strawman: repeatedly apply the candidate cycle with the
    most negative delay, ignoring cost entirely (no cap, no rate test)."""
    inst = KRSPInstance(graph=g, s=s, t=t, k=k, delay_bound=D)
    paths = suurballe_k_paths(g, s, t, k)
    assert paths is not None
    sol = inst.path_set(paths)
    guard = 0
    while sol.delay > D:
        residual = build_residual(g, sol.edge_ids)
        candidates = find_bicameral_candidates(residual)
        usable = [c for c in candidates if c.delay < 0]
        if not usable:
            raise ReproError("naive canceller found no negative-delay cycle")
        worst = min(usable, key=lambda c: (c.delay, c.cost))
        new_edges = apply_residual_cycles(sol.edge_ids, residual, [list(worst.edges)])
        p2, cyc2 = decompose_flow(g, new_edges, s, t)
        strip_improving_cycles(g, p2, cyc2)
        sol = inst.path_set(p2)
        guard += 1
        if guard > 10_000:
            raise ReproError("naive canceller did not terminate")
    return sol.cost


# ---------------------------------------------------------------------------
# Figure 2 — the auxiliary-graph construction example
# ---------------------------------------------------------------------------


def figure2_instance() -> tuple[DiGraph, dict, list[int]]:
    """The Figure 2 example: 5 vertices s,x,y,z,t; residual taken wrt the
    path ``s-x-y-z-t``; auxiliary graph built with B = 6.

    Weights are a documented reconstruction (the figure image is not in
    the text): the chain carries small costs so that B = 6 covers every
    cycle, and two chords create cycles of positive and negative cost in
    the residual graph.
    """
    g, ids = from_edges(
        [
            ("s", "x", 1, 1),  # 0 (path)
            ("x", "y", 2, 1),  # 1 (path)
            ("y", "z", 1, 2),  # 2 (path)
            ("z", "t", 2, 1),  # 3 (path)
            ("s", "y", 2, 4),  # 4 chord
            ("y", "t", 4, 1),  # 5 chord
            ("x", "z", 3, 1),  # 6 chord
        ]
    )
    path = [0, 1, 2, 3]
    return g, ids, path


def run_figure2(B: int = 6):
    """F2: sizes and Lemma 15 cycle-correspondence counts for H_v^+(B).

    Bound checked: |V(H)| = n * (B + 1), and every residual cycle through
    the anchor with in-range cost prefix maps to a cycle in H (verified
    exhaustively by the test suite; here we report the counts).
    """
    g, ids, path = figure2_instance()
    residual = build_residual(g, path)
    headers = ["anchor", "B", "H_nodes", "H_edges", "wraps", "residual_cycles_found"]
    rows = []
    for name in ("s", "x", "y", "z", "t"):
        v = ids[name]
        aux = build_aux_paper(residual.graph, v, B, +1)
        wraps = int(aux.is_wrap().sum())
        n_cycles = _count_simple_cycles_through(residual.graph, v, B)
        rows.append([name, B, aux.graph.n, aux.graph.m, wraps, n_cycles])
    return headers, rows


def _count_simple_cycles_through(res: DiGraph, v: int, B: int) -> int:
    """Count simple residual cycles through ``v`` with cost in [0, B] and
    nonnegative running prefix (the Lemma 15 representable set)."""
    import networkx as nx

    from repro.graph.builders import to_networkx

    nxg = to_networkx(res)
    count = 0
    for cyc in nx.simple_cycles(nxg):
        if v not in cyc:
            continue
        i = cyc.index(v)
        order = cyc[i:] + cyc[:i]
        eids = []
        ok = True
        for a, b in zip(order, order[1:] + [order[0]]):
            datas = list(nxg[a][b].values()) if nxg.has_edge(a, b) else []
            if not datas:
                ok = False
                break
            eids.append(datas[0]["eid"])
        if not ok:
            continue
        prefix = 0
        valid = True
        for e in eids:
            prefix += int(res.cost[e])
            if prefix < 0 or prefix > B:
                valid = False
                break
        if valid and 0 <= prefix <= B:
            count += 1
    return count


# ---------------------------------------------------------------------------
# E1 — Lemma 11 / Lemma 3 ratio audit
# ---------------------------------------------------------------------------


def run_e1(n_instances: int = 6):
    """E1: measured (alpha, beta) of the full algorithm vs the (1, 2) bound,
    normalized by the exact MILP optimum."""
    headers = ["workload", "solved", "alpha_max", "beta_mean", "beta_max", "iters_mean"]
    rows = []
    suites = [
        er_anticorrelated(n=11, n_instances=n_instances, seed=101),
        waxman_euclidean(n=12, n_instances=n_instances, seed=102),
        grid_anticorrelated(rows=3, cols=4, n_instances=n_instances, seed=103),
    ]
    for suite in suites:
        alphas, betas, iters = [], [], []
        name = "?"
        for inst in suite:
            name = inst.name
            exact = solve_krsp_milp(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
            )
            if exact is None or exact.cost == 0:
                continue
            sol = solve_krsp(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound, phase1="minsum"
            )
            alphas.append(sol.delay / inst.delay_bound)
            betas.append(sol.cost / exact.cost)
            iters.append(sol.iterations)
        if not alphas:
            continue
        rows.append(
            [
                name,
                len(alphas),
                max(alphas),
                summarize(betas)["mean"],
                max(betas),
                summarize([float(i) for i in iters])["mean"],
            ]
        )
    return headers, rows


# ---------------------------------------------------------------------------
# E2 — Lemma 5 phase-1 trade-off
# ---------------------------------------------------------------------------


def run_e2(n_instances: int = 8):
    """E2: phase-1 LP rounding satisfies delay/D + cost/C_LP <= 2, across
    budget tightness settings."""
    headers = ["tightness", "instances", "score_mean", "score_max", "alpha_mean"]
    rows = []
    for tightness in (0.25, 0.5, 0.75, 0.9):
        scores, alphas = [], []
        for inst in er_anticorrelated(
            n=11, n_instances=n_instances, tightness=tightness, seed=210
        ):
            lp = solve_flow_lp(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
            if lp is None or lp.cost <= 0:
                continue
            res = phase1_lp_rounding(
                KRSPInstance(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
            )
            sol = res.solution
            score = sol.delay / inst.delay_bound + sol.cost / lp.cost
            scores.append(score)
            alphas.append(sol.delay / inst.delay_bound)
        if scores:
            rows.append(
                [
                    tightness,
                    len(scores),
                    summarize(scores)["mean"],
                    max(scores),
                    summarize(alphas)["mean"],
                ]
            )
    return headers, rows


# ---------------------------------------------------------------------------
# E3 — Theorem 4 epsilon sweep
# ---------------------------------------------------------------------------


def _heavy_weight_instances(n_instances: int, seed: int = 311):
    """Instances with large weight magnitudes so Theorem-4 scaling actually
    coarsens the grids (small weights make theta <= 1 and scaling a no-op)."""
    from repro._util.rng import spawn_rng
    from repro.eval.workloads import WorkloadInstance, interesting_delay_bound
    from repro.graph.generators import gnp_digraph
    from repro.graph.weights import anticorrelated_weights

    out = []
    for child in spawn_rng(seed, n_instances):
        sub = int(child.integers(1 << 31))
        g = anticorrelated_weights(
            gnp_digraph(12, 0.35, rng=sub), total=400, noise=30, rng=sub + 1
        )
        bound = interesting_delay_bound(g, 0, 11, 2, tightness=0.6)
        if bound is None:
            continue
        out.append(
            WorkloadInstance(
                name="er12_heavy", graph=g, s=0, t=11, k=2, delay_bound=bound, seed=sub
            )
        )
    return out


def run_e3(n_instances: int = 6):
    """E3: quality/runtime trade-off of the scaled (1+eps, 2+eps) variant."""
    headers = ["eps", "solved", "alpha_max", "beta_max", "seconds_mean"]
    rows = []
    instances = _heavy_weight_instances(n_instances)
    for eps in (None, 1.0, 0.5, 0.25):
        alphas, betas, secs = [], [], []
        for inst in instances:
            exact = solve_krsp_milp(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
            )
            if exact is None or exact.cost == 0:
                continue
            start = time.perf_counter()
            sol = solve_krsp(
                inst.graph,
                inst.s,
                inst.t,
                inst.k,
                inst.delay_bound,
                phase1="minsum",
                eps=eps,
            )
            secs.append(time.perf_counter() - start)
            alphas.append(sol.delay / inst.delay_bound)
            betas.append(sol.cost / exact.cost)
        if alphas:
            rows.append(
                [
                    "exact" if eps is None else eps,
                    len(alphas),
                    max(alphas),
                    max(betas),
                    summarize(secs)["mean"],
                ]
            )
    return headers, rows


# ---------------------------------------------------------------------------
# E4 — baselines head-to-head
# ---------------------------------------------------------------------------


def run_e4(n_instances: int = 6):
    """E4: cost at delay feasibility — this paper vs [9], [18]-style,
    min-sum, and greedy."""
    headers = [
        "solver",
        "solved",
        "feasible_frac",
        "beta_mean",
        "beta_max",
        "alpha_max",
    ]
    instances = list(
        er_anticorrelated(
            n=12, p=0.45, n_instances=n_instances, seed=410, tightness=0.7
        )
    )
    solvers: dict[str, object] = {"bicameral(this paper)": None}
    rows = []
    for name in ["bicameral(this paper)", *BASELINES]:
        betas, alphas, feas, solved = [], [], 0, 0
        for inst in instances:
            exact = solve_krsp_milp(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
            )
            if exact is None or exact.cost == 0:
                continue
            try:
                if name == "bicameral(this paper)":
                    sol = solve_krsp(
                        inst.graph,
                        inst.s,
                        inst.t,
                        inst.k,
                        inst.delay_bound,
                        phase1="lp_rounding",
                    )
                    cost, delay = sol.cost, sol.delay
                else:
                    res = BASELINES[name](
                        inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
                    )
                    cost, delay = res.cost, res.delay
            except ReproError:
                continue
            solved += 1
            betas.append(cost / exact.cost)
            alphas.append(delay / inst.delay_bound)
            feas += int(delay <= inst.delay_bound)
        if solved:
            rows.append(
                [
                    name,
                    solved,
                    feas / solved,
                    summarize(betas)["mean"],
                    max(betas),
                    max(alphas),
                ]
            )
    return headers, rows


# ---------------------------------------------------------------------------
# E5 — Lemma 12 iteration audit
# ---------------------------------------------------------------------------


def run_e5(n_instances: int = 8):
    """E5: per-iteration r monotonicity (Lemma 12, against exact C_OPT) and
    measured iteration counts vs the pseudo-polynomial bound."""
    headers = [
        "instances",
        "iters_total",
        "iters_max",
        "r_violations",
        "bound_ratio_max",
    ]
    total_iters, max_iters, violations = 0, 0, 0
    bound_ratios = []
    count = 0
    for inst in er_anticorrelated(
        n=11, n_instances=n_instances, seed=510, tightness=0.7
    ):
        exact = solve_krsp_milp(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
        if exact is None:
            continue
        problem = KRSPInstance(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
        start = phase1_minsum(problem).solution
        if start.delay <= inst.delay_bound:
            continue
        result = cancel_to_feasibility(
            problem, start, opt_cost=exact.cost, strict_monitor=False
        )
        count += 1
        total_iters += result.iterations
        max_iters = max(max_iters, result.iterations)
        # Audit Lemma 12 on the recorded trace.
        rs = [rec.r_value for rec in result.records if rec.r_value is not None]
        for a, b in zip(rs, rs[1:]):
            if b < a:
                violations += 1
        g = inst.graph
        theory = inst.delay_bound * g.total_cost() * g.total_delay()
        if theory:
            bound_ratios.append(result.iterations / theory)
    rows = [
        [
            count,
            total_iters,
            max_iters,
            violations,
            max(bound_ratios) if bound_ratios else 0.0,
        ]
    ]
    return headers, rows


# ---------------------------------------------------------------------------
# E6 — bicameral finder anatomy
# ---------------------------------------------------------------------------


def run_e6(n_instances: int = 6):
    """E6: search cost anatomy — Bellman-Ford probes vs LP solves vs aux
    graph sizes, and the type-0 short-circuit rate (Theorem 17 territory)."""
    headers = [
        "instances",
        "bf_probes",
        "lp_solves",
        "aux_nodes_mean",
        "type0_rate",
        "candidates_mean",
    ]
    from repro.core.search import SearchStats

    probes = lps = 0
    nodes, cands, t0 = [], [], 0
    searches = 0
    for inst in er_anticorrelated(n=11, n_instances=n_instances, seed=610):
        problem = KRSPInstance(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
        try:
            start = phase1_minsum(problem).solution
        except ReproError:
            continue
        if start.delay <= inst.delay_bound:
            continue
        residual = build_residual(inst.graph, start.edge_ids)
        stats = SearchStats()
        candidates = find_bicameral_candidates(residual, stats=stats)
        searches += 1
        probes += stats.bf_probes
        lps += stats.lp_solves
        nodes.append(stats.aux_nodes_built)
        cands.append(len(candidates))
        t0 += int(stats.short_circuited_type0)
    rows = [
        [
            searches,
            probes,
            lps,
            summarize([float(x) for x in nodes])["mean"] if nodes else 0.0,
            t0 / searches if searches else 0.0,
            summarize([float(x) for x in cands])["mean"] if cands else 0.0,
        ]
    ]
    return headers, rows


# ---------------------------------------------------------------------------
# E7 — runtime scaling
# ---------------------------------------------------------------------------


def run_e7(sizes: Iterable[int] = (8, 10, 12, 14), n_instances: int = 3):
    """E7: wall-clock growth of the full solver with n (ER family)."""
    headers = ["n", "instances", "seconds_mean", "seconds_max", "iters_mean"]
    rows = []
    for n in sizes:
        secs, iters = [], []
        for inst in er_anticorrelated(n=n, n_instances=n_instances, seed=700 + n):
            start = time.perf_counter()
            try:
                sol = solve_krsp(
                    inst.graph,
                    inst.s,
                    inst.t,
                    inst.k,
                    inst.delay_bound,
                    phase1="minsum",
                )
            except ReproError:
                continue
            secs.append(time.perf_counter() - start)
            iters.append(float(sol.iterations))
        if secs:
            rows.append(
                [
                    n,
                    len(secs),
                    summarize(secs)["mean"],
                    max(secs),
                    summarize(iters)["mean"],
                ]
            )
    return headers, rows


# ---------------------------------------------------------------------------
# E8 — k sweep
# ---------------------------------------------------------------------------


def run_e8(k_values: Iterable[int] = (1, 2, 3), n_instances: int = 4):
    """E8: quality across k; k=1 cross-checked against the exact RSP DP."""
    from repro.paths.rsp_exact import rsp_exact

    headers = ["k", "solved", "beta_mean", "beta_max", "k1_dp_agreement"]
    rows = []
    for k in k_values:
        betas = []
        agree = dp_checked = 0
        for inst in er_anticorrelated(
            n=11, p=0.45, k=k, n_instances=n_instances, seed=800 + k
        ):
            exact = solve_krsp_milp(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
            )
            if exact is None or exact.cost == 0:
                continue
            sol = solve_krsp(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound, phase1="minsum"
            )
            betas.append(sol.cost / exact.cost)
            if k == 1:
                dp = rsp_exact(inst.graph, inst.s, inst.t, inst.delay_bound)
                dp_checked += 1
                agree += int(dp is not None and dp[0] == exact.cost)
        if betas:
            rows.append(
                [
                    k,
                    len(betas),
                    summarize(betas)["mean"],
                    max(betas),
                    f"{agree}/{dp_checked}" if k == 1 else "n/a",
                ]
            )
    return headers, rows


# ---------------------------------------------------------------------------
# E9 — substrate validation
# ---------------------------------------------------------------------------


def run_e9(n_instances: int = 25):
    """E9: substrates vs oracles — Suurballe total cost == MILP min-sum,
    flow-LP lower bound <= MILP optimum."""
    headers = ["check", "instances", "agreements", "max_gap"]
    suurballe_total = suurballe_ok = 0
    lp_total = lp_ok = 0
    max_gap = 0.0
    for inst in er_anticorrelated(n=10, p=0.45, n_instances=n_instances, seed=910):
        g, s, t, k = inst.graph, inst.s, inst.t, inst.k
        paths = suurballe_k_paths(g, s, t, k)
        huge = int(g.delay.sum()) * k + 1
        milp_minsum = solve_krsp_milp(g, s, t, k, huge)
        if paths is not None and milp_minsum is not None:
            suurballe_total += 1
            cost = sum(g.cost_of(p) for p in paths)
            suurballe_ok += int(cost == milp_minsum.cost)
        exact = solve_krsp_milp(g, s, t, k, inst.delay_bound)
        lp = solve_flow_lp(g, s, t, k, inst.delay_bound)
        if exact is not None and lp is not None:
            lp_total += 1
            lp_ok += int(lp.cost <= exact.cost + 1e-6)
            if exact.cost:
                max_gap = max(max_gap, (exact.cost - lp.cost) / exact.cost)
    rows = [
        ["suurballe==milp_minsum", suurballe_total, suurballe_ok, "n/a"],
        ["lp<=opt", lp_total, lp_ok, max_gap],
    ]
    return headers, rows


EXPERIMENTS = {
    "f1": run_figure1,
    "f2": run_figure2,
    "e1": run_e1,
    "e2": run_e2,
    "e3": run_e3,
    "e4": run_e4,
    "e5": run_e5,
    "e6": run_e6,
    "e7": run_e7,
    "e8": run_e8,
    "e9": run_e9,
}
"""Registry: experiment id -> runner returning (headers, rows)."""


# ---------------------------------------------------------------------------
# A1/A2 — ablations of design choices (DESIGN.md section 5)
# ---------------------------------------------------------------------------


def run_a1_phase1_ablation(n_instances: int = 8):
    """A1: how much does the phase-1 provider matter?

    Same cancellation phase, three different starting points. Expected
    shape: lp_rounding starts closest to feasible (fewest iterations);
    minsum starts cheapest (most iterations, same final guarantee).
    """
    headers = ["provider", "solved", "beta_mean", "beta_max", "iters_mean", "sec_mean"]
    instances = list(
        er_anticorrelated(n=11, n_instances=n_instances, seed=1010, tightness=0.7)
    )
    rows = []
    for provider in ("lp_rounding", "lagrangian", "minsum"):
        betas, iters, secs = [], [], []
        for inst in instances:
            exact = solve_krsp_milp(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
            )
            if exact is None or exact.cost == 0:
                continue
            start = time.perf_counter()
            sol = solve_krsp(
                inst.graph,
                inst.s,
                inst.t,
                inst.k,
                inst.delay_bound,
                phase1=provider,
            )
            secs.append(time.perf_counter() - start)
            betas.append(sol.cost / exact.cost)
            iters.append(float(sol.iterations))
        if betas:
            rows.append(
                [
                    provider,
                    len(betas),
                    summarize(betas)["mean"],
                    max(betas),
                    summarize(iters)["mean"],
                    summarize(secs)["mean"],
                ]
            )
    return headers, rows


def run_a2_selection_ablation(n_instances: int = 8):
    """A2: production selection rule vs the paper's literal step 3.

    Runs the cancellation loop with ``fallback='type1_first'`` (default)
    and ``fallback='paper_step3'`` via a custom driver; reports quality and
    failure modes (the literal rule can oscillate; failures are counted,
    not raised).
    """
    from repro.core.phase1 import phase1_minsum as _p1
    from repro.core.residual import build_residual as _br
    from repro.core.search import find_bicameral_cycle as _find
    from repro.core.residual import apply_residual_cycles as _apply

    headers = ["rule", "solved", "failed", "beta_mean", "beta_max"]
    instances = list(
        er_anticorrelated(n=11, n_instances=n_instances, seed=1020, tightness=0.7)
    )
    rows = []
    for rule in ("type1_first", "paper_step3"):
        betas, failed = [], 0
        for inst in instances:
            exact = solve_krsp_milp(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
            )
            if exact is None or exact.cost == 0:
                continue
            problem = KRSPInstance(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
            )
            try:
                sol = _p1(problem).solution
                seen = {tuple(sorted(sol.edge_ids))}
                guard = 0
                while sol.delay > inst.delay_bound:
                    residual = _br(inst.graph, sol.edge_ids)
                    picked = _find(
                        residual,
                        inst.delay_bound - sol.delay,
                        None,
                        None,
                        fallback=rule,
                        delta_c_soft=None,
                    )
                    if picked is None:
                        raise ReproError("no cycle")
                    new_edges = _apply(
                        sol.edge_ids, residual, [list(picked[0].edges)]
                    )
                    p2, cyc2 = decompose_flow(
                        inst.graph, new_edges, inst.s, inst.t
                    )
                    strip_improving_cycles(inst.graph, p2, cyc2)
                    sol = problem.path_set(p2)
                    state = tuple(sorted(sol.edge_ids))
                    guard += 1
                    if state in seen or guard > 200:
                        raise ReproError("oscillation")
                    seen.add(state)
                betas.append(sol.cost / exact.cost)
            except ReproError:
                failed += 1
        rows.append(
            [
                rule,
                len(betas),
                failed,
                summarize(betas)["mean"] if betas else float("nan"),
                max(betas) if betas else float("nan"),
            ]
        )
    return headers, rows


EXPERIMENTS["a1"] = run_a1_phase1_ablation
EXPERIMENTS["a2"] = run_a2_selection_ablation


def run_a3_finder_ablation(n_instances: int = 6):
    """A3: production shifted-graph finder vs the literal Algorithm 3
    per-anchor finder — LP solves and auxiliary-graph volume per search.

    Quantifies the paper's own remark that "construction of auxiliary
    graphs for all B ... is not necessary" and our further consolidation
    of the per-vertex graphs into one shifted graph per radius.
    """
    from repro.core.search import (
        SearchStats,
        find_bicameral_candidates,
        find_bicameral_candidates_paper,
    )
    from repro.core.phase1 import phase1_minsum as _p1
    from repro.core.residual import build_residual as _br

    headers = ["finder", "searches", "lp_solves", "aux_nodes", "candidates"]
    rows = []
    cases = []
    for inst in er_anticorrelated(
        n=10, n_instances=n_instances, seed=1030, tightness=0.7
    ):
        problem = KRSPInstance(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
        try:
            start = _p1(problem).solution
        except ReproError:
            continue
        if start.delay <= inst.delay_bound:
            continue
        cases.append((inst, start))

    for name in ("production", "paper_literal"):
        lps = nodes = cands = 0
        for inst, start in cases:
            residual = _br(inst.graph, start.edge_ids)
            stats = SearchStats()
            if name == "production":
                got = find_bicameral_candidates(residual, stats=stats)
            else:
                got = find_bicameral_candidates_paper(
                    residual, inst.delay_bound - start.delay, stats=stats
                )
            lps += stats.lp_solves
            nodes += stats.aux_nodes_built
            cands += len(got)
        rows.append([name, len(cases), lps, nodes, cands])
    return headers, rows


EXPERIMENTS["a3"] = run_a3_finder_ablation


def run_e10_stress(sizes: Iterable[int] = (20, 30, 40), n_instances: int = 3):
    """E10: laptop-scale stress — larger instances where the MILP oracle is
    retired and costs are normalized by the flow-LP lower bound (so the
    reported beta is an *upper* bound on the true ratio).
    """
    headers = ["n", "k", "solved", "beta_ub_mean", "beta_ub_max", "sec_mean", "sec_max"]
    rows = []
    for n in sizes:
        for k in (2, 3):
            betas, secs = [], []
            for inst in er_anticorrelated(
                n=n, p=min(0.3, 6.0 / n + 0.1), k=k,
                n_instances=n_instances, seed=10_000 + n * 10 + k,
            ):
                lp = solve_flow_lp(inst.graph, inst.s, inst.t, k, inst.delay_bound)
                if lp is None or lp.cost <= 0:
                    continue
                start = time.perf_counter()
                try:
                    sol = solve_krsp(
                        inst.graph, inst.s, inst.t, k, inst.delay_bound
                    )
                except ReproError:
                    continue
                secs.append(time.perf_counter() - start)
                betas.append(sol.cost / lp.cost)
            if betas:
                rows.append(
                    [
                        n,
                        k,
                        len(betas),
                        summarize(betas)["mean"],
                        max(betas),
                        summarize(secs)["mean"],
                        max(secs),
                    ]
                )
    return headers, rows


EXPERIMENTS["e10"] = run_e10_stress


def run_e11_kbcp(n_instances: int = 10):
    """E11: the kBCP adoption claim (Section 1.2) — on feasible kBCP
    instances the kRSP-engine solver stays within delay factor 1 and cost
    factor 2 of the *budgets*; infeasible instances are certifiably
    rejected. Ground truth via the kRSP MILP (kBCP feasible iff the
    delay-budgeted optimum costs at most C)."""
    from repro.core.kbcp import solve_kbcp
    from repro.errors import InfeasibleInstanceError

    headers = [
        "scenario",
        "instances",
        "within_factors",
        "rejected_ok",
        "cost_factor_max",
    ]
    feas_total = feas_ok = 0
    infeas_total = infeas_ok = 0
    factor_max = 0.0
    for inst in er_anticorrelated(n=11, n_instances=n_instances, seed=1110):
        exact = solve_krsp_milp(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
        if exact is None or exact.cost == 0:
            continue
        # Feasible scenario: budgets exactly at an achievable point.
        feas_total += 1
        try:
            res = solve_kbcp(
                inst.graph,
                inst.s,
                inst.t,
                inst.k,
                cost_bound=exact.cost,
                delay_bound=inst.delay_bound,
            )
            ok = res.delay <= inst.delay_bound and res.cost <= 2 * exact.cost
            feas_ok += int(ok)
            factor_max = max(factor_max, res.cost_within_factor)
        except InfeasibleInstanceError:
            pass  # counted as not-ok via feas_ok
        # Infeasible scenario: cost budget strictly below the optimum /
        # factor — rejection must be certified whenever it fires.
        infeas_total += 1
        try:
            solve_kbcp(
                inst.graph,
                inst.s,
                inst.t,
                inst.k,
                cost_bound=max(0, exact.cost // 4),
                delay_bound=inst.delay_bound,
            )
            # Acceptance is allowed only if the solver genuinely met the
            # tiny budget's factor — solve_kbcp enforces that internally,
            # so reaching here still counts as consistent.
            infeas_ok += 1
        except InfeasibleInstanceError:
            infeas_ok += 1
    rows = [
        ["feasible budgets", feas_total, feas_ok, "n/a", factor_max],
        ["quarter cost budget", infeas_total, "n/a", infeas_ok, "n/a"],
    ]
    return headers, rows


EXPERIMENTS["e11"] = run_e11_kbcp
