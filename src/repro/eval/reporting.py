"""Plain-text table/series rendering for experiment outputs.

The paper has no tables to imitate, so the harness emits compact aligned
ASCII tables — the same rows land in EXPERIMENTS.md. No plotting deps.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned monospace table.

    Floats go through ``float_fmt``; everything else through ``str``.
    """
    def render(cell: Any) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for r in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def format_series(
    x_label: str,
    y_labels: Sequence[str],
    points: Sequence[tuple[Any, Sequence[Any]]],
    title: str | None = None,
) -> str:
    """Render a figure-style series as a table of (x, y1, y2, ...) rows."""
    headers = [x_label, *y_labels]
    rows = [[x, *ys] for x, ys in points]
    return format_table(headers, rows, title=title)


def format_trace(records) -> str:
    """Render a cancellation trace (:class:`IterationRecord` list) as a
    table — the human-readable view of Algorithm 1's run."""
    headers = ["iter", "type", "cycle_cost", "cycle_delay", "cost", "delay", "r"]
    rows = []
    for rec in records:
        rows.append(
            [
                rec.iteration,
                rec.cycle_type.name,
                rec.cycle_cost,
                rec.cycle_delay,
                rec.cost_after,
                rec.delay_after,
                "-" if rec.r_value is None else f"{float(rec.r_value):.3f}",
            ]
        )
    return format_table(headers, rows, title="cancellation trace")
