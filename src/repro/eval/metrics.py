"""Quality metrics for kRSP solutions against ground truth or bounds.

Central question for every experiment: how close is a solution's cost to
``C_OPT`` and its delay to ``D``? On small instances the MILP oracle
provides ``C_OPT`` exactly; above that, the flow-LP optimum is the
normalizer (a certified lower bound, so reported ratios are upper bounds on
the true ones — the conservative direction for an approximation paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph
from repro.lp.flow_lp import solve_flow_lp
from repro.lp.milp import solve_krsp_milp


@dataclass(frozen=True)
class QualityReport:
    """Measured bifactor of one solution on one instance.

    Attributes
    ----------
    cost, delay:
        The solution's totals.
    opt_cost:
        Exact optimum when available, else ``None``.
    lp_bound:
        Fractional lower bound on ``C_OPT`` (``None`` if the LP was
        skipped or infeasible).
    alpha:
        ``delay / D`` (the bifactor's first component).
    beta:
        ``cost / opt_cost`` when exact, else ``cost / lp_bound``
        (an upper bound on the true beta). ``inf`` when no normalizer.
    beta_is_exact:
        Whether ``beta`` used the exact optimum.
    """

    cost: int
    delay: int
    opt_cost: int | None
    lp_bound: float | None
    alpha: float
    beta: float
    beta_is_exact: bool


def measure_quality(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    cost: int,
    delay: int,
    use_milp: bool = True,
    milp_time_limit: float | None = 30.0,
) -> QualityReport:
    """Normalize a solution's totals against the best available oracle."""
    opt_cost: int | None = None
    if use_milp:
        exact = solve_krsp_milp(g, s, t, k, delay_bound, time_limit=milp_time_limit)
        if exact is not None:
            opt_cost = exact.cost
    lp = solve_flow_lp(g, s, t, k, delay_bound)
    lp_bound = lp.cost if lp is not None else None

    alpha = delay / delay_bound if delay_bound else (0.0 if delay == 0 else float("inf"))
    if opt_cost is not None:
        beta = cost / opt_cost if opt_cost else (0.0 if cost == 0 else float("inf"))
        exact_flag = True
    elif lp_bound:
        beta = cost / lp_bound
        exact_flag = False
    else:
        beta = 0.0 if cost == 0 else float("inf")
        exact_flag = False
    return QualityReport(
        cost=cost,
        delay=delay,
        opt_cost=opt_cost,
        lp_bound=lp_bound,
        alpha=alpha,
        beta=beta,
        beta_is_exact=exact_flag,
    )


def summarize(values: list[float]) -> dict[str, float]:
    """Mean / max / min / count over a metric column (NaN-free inputs)."""
    if not values:
        return {"count": 0, "mean": float("nan"), "max": float("nan"), "min": float("nan")}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "max": max(values),
        "min": min(values),
    }
