"""Process-parallel trial execution for the evaluation harness.

Parameter sweeps are embarrassingly parallel across (instance, solver)
pairs; per the HPC guides, profile first — here the hot spots are HiGHS
LP/MILP solves, which release no useful parallelism within a process, so
scaling out across processes is the right lever. This module mirrors
:func:`repro.eval.harness.run_trials` with a :class:`ProcessPoolExecutor`.

Workers receive (instance payload, solver name) and resolve the solver from
a registry — functions themselves are not pickled, so lambdas and closures
on the caller's side stay usable via the named indirection.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable

from repro.errors import ReproError
from repro.eval.harness import TrialRecord
from repro.eval.workloads import WorkloadInstance
from repro.graph.io import graph_from_dict, graph_to_dict

#: Worker-side registry of named solver adapters. Populated at import time;
#: extend with :func:`register_solver` before launching a pool (the
#: registration must happen at module import so forked/spawned workers see
#: it — register at module scope in your driver script).
_SOLVER_REGISTRY: dict[str, Callable] = {}


def register_solver(name: str, fn: Callable) -> None:
    """Register a picklable-by-name solver adapter.

    ``fn(graph, s, t, k, delay_bound) -> (cost, delay, extra_dict)``.
    """
    _SOLVER_REGISTRY[name] = fn


def _builtin_bicameral(g, s, t, k, bound):
    from repro.core.krsp import solve_krsp

    sol = solve_krsp(g, s, t, k, bound)
    return sol.cost, sol.delay, {"iterations": sol.iterations}


def _builtin_baseline(which: str):
    def run(g, s, t, k, bound):
        from repro.baselines import BASELINES

        res = BASELINES[which](g, s, t, k, bound)
        return res.cost, res.delay, {"meets_delay_bound": res.meets_delay_bound}

    return run


register_solver("bicameral", _builtin_bicameral)
for _name in ("minsum", "lp_rounding_2_2", "orda_sprintson_style", "greedy_sequential"):
    register_solver(_name, _builtin_baseline(_name))


def _run_one(payload: tuple[dict, str]) -> dict:
    """Worker body: rebuild the instance, run the named solver, and return
    a plain-dict record (keeps pickling cheap and version-stable)."""
    inst_d, solver_name = payload
    g = graph_from_dict(inst_d["graph"])
    s, t, k, bound = inst_d["s"], inst_d["t"], inst_d["k"], inst_d["delay_bound"]
    fn = _SOLVER_REGISTRY[solver_name]
    start = time.perf_counter()
    try:
        cost, delay, extra = fn(g, s, t, k, bound)
        status = "ok"
    except ReproError as exc:
        cost = delay = None
        extra = {"error": f"{type(exc).__name__}: {exc}"}
        status = (
            "infeasible" if type(exc).__name__ == "InfeasibleInstanceError" else "error"
        )
    return {
        "workload": inst_d["name"],
        "seed": inst_d["seed"],
        "solver": solver_name,
        "n": g.n,
        "m": g.m,
        "k": k,
        "delay_bound": bound,
        "status": status,
        "cost": cost,
        "delay": delay,
        "seconds": time.perf_counter() - start,
        "extra": extra,
    }


def run_trials_parallel(
    instances: Iterable[WorkloadInstance],
    solver_names: list[str],
    max_workers: int | None = None,
) -> list[TrialRecord]:
    """Parallel counterpart of :func:`repro.eval.harness.run_trials`.

    ``solver_names`` must be registered (built-ins: ``bicameral`` plus the
    four baselines). Records come back in deterministic (instance, solver)
    order regardless of completion order.
    """
    payloads: list[tuple[dict, str]] = []
    for inst in instances:
        inst_d = {
            "graph": graph_to_dict(inst.graph),
            "s": inst.s,
            "t": inst.t,
            "k": inst.k,
            "delay_bound": inst.delay_bound,
            "name": inst.name,
            "seed": inst.seed,
        }
        for name in solver_names:
            if name not in _SOLVER_REGISTRY:
                raise KeyError(f"solver {name!r} is not registered")
            payloads.append((inst_d, name))

    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        raw = list(pool.map(_run_one, payloads))

    return [TrialRecord(**r) for r in raw]
