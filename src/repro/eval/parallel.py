"""Fault-tolerant process-parallel trial execution for the evaluation harness.

Parameter sweeps are embarrassingly parallel across (instance, solver)
pairs; per the HPC guides, profile first — here the hot spots are HiGHS
LP/MILP solves, which release no useful parallelism within a process, so
scaling out across processes is the right lever. This module mirrors
:func:`repro.eval.harness.run_trials` with a :class:`ProcessPoolExecutor`.

Unlike a bare ``pool.map`` (whose single aggregated result meant one crashed
worker lost *every* record of a sweep, including trials that had already
finished), trials are submitted individually and collected as they
complete, so the harness guarantees **one record per submitted trial**:

* a worker exception of any kind becomes a ``status="error"`` record
  (the worker body catches everything — a trial failing is a data point);
* a per-trial ``trial_timeout`` arms a cooperative
  :class:`~repro.robustness.SolveBudget` inside the worker (``"timeout"``
  records) and a harness-side stall guard for workers that stop
  responding entirely;
* a worker death (OOM kill, segfault, injected ``SIGKILL``) breaks the
  whole pool — completed records are kept, the pool is respawned **once**
  and the lost trials retried; trials lost again come back as
  ``status="crashed"`` records;
* with ``jsonl_path`` every record is appended (and flushed) the moment it
  is finalized, so even a harness-process crash loses at most the
  in-flight trials.

Workers receive (instance payload, solver name) and resolve the solver from
a registry — functions themselves are not pickled, so lambdas and closures
on the caller's side stay usable via the named indirection. Deterministic
fault injection for tests rides the same payloads: see
:mod:`repro.oracle.faults`.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, Iterable

from repro import obs
from repro._util.atomicio import DurableAppender, iter_jsonl, repair_jsonl_tail
from repro.errors import (
    BudgetExhaustedError,
    InfeasibleInstanceError,
    ReproError,
    SolveInterrupted,
)
from repro.eval.harness import TrialRecord
from repro.eval.workloads import WorkloadInstance
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.oracle.faults import FaultPlan, fault_spec_from_dict
from repro.robustness.budget import SolveBudget, metered
from repro.robustness.signals import GracefulShutdown

#: Worker-side registry of named solver adapters. Populated at import time;
#: extend with :func:`register_solver` before launching a pool (the
#: registration must happen at module import so forked/spawned workers see
#: it — register at module scope in your driver script).
_SOLVER_REGISTRY: dict[str, Callable] = {}


def register_solver(name: str, fn: Callable) -> None:
    """Register a picklable-by-name solver adapter.

    ``fn(graph, s, t, k, delay_bound) -> (cost, delay, extra_dict)``. An
    adapter may additionally accept a ``budget`` keyword
    (:class:`~repro.robustness.SolveBudget` or ``None``) to honor the
    harness's per-trial timeout natively; adapters without it run under the
    ambient budget meter instead (see :func:`repro.robustness.checkpoint`).
    """
    _SOLVER_REGISTRY[name] = fn


def _builtin_bicameral(g, s, t, k, bound, budget=None):
    from repro.core.krsp import solve_krsp

    sol = solve_krsp(g, s, t, k, bound, budget=budget)
    return sol.cost, sol.delay, {
        "iterations": sol.iterations,
        "solve_status": sol.status,
    }


def _builtin_baseline(which: str):
    def run(g, s, t, k, bound):
        from repro.baselines import BASELINES

        res = BASELINES[which](g, s, t, k, bound)
        return res.cost, res.delay, {"meets_delay_bound": res.meets_delay_bound}

    return run


register_solver("bicameral", _builtin_bicameral)
for _name in ("minsum", "lp_rounding_2_2", "orda_sprintson_style", "greedy_sequential"):
    register_solver(_name, _builtin_baseline(_name))


def _base_record(payload: dict) -> dict:
    """Record fields derivable without running (or even deserializing) the
    trial — used for both worker records and harness-side failure records."""
    inst_d = payload["inst"]
    return {
        "workload": inst_d["name"],
        "seed": inst_d["seed"],
        "solver": payload["solver"],
        "n": inst_d["graph"]["n"],
        "m": len(inst_d["graph"]["tail"]),
        "k": inst_d["k"],
        "delay_bound": inst_d["delay_bound"],
    }


def _run_one(payload: dict) -> dict:
    """Worker body: rebuild the instance, run the named solver, and return
    a plain-dict record (keeps pickling cheap and version-stable).

    Catches *everything*: a worker must never poison the pool with an
    exception it could have reported as data. (A ``kill`` fault bypasses
    this by construction — that is the crash path the harness recovers.)
    """
    record = _base_record(payload)
    inst_d = payload["inst"]
    trial_timeout = payload.get("trial_timeout")
    start = time.perf_counter()
    status: str = "error"
    cost = delay = None
    extra: dict[str, Any] = {}
    counters: dict[str, int] = {}
    try:
        fault_d = payload.get("fault")
        if fault_d is not None:
            spec = fault_spec_from_dict(fault_d)
            if spec.fires("worker", payload.get("attempt", 1)):
                spec.fire()  # "kill" does not return
        g = graph_from_dict(inst_d["graph"])
        s, t, k, bound = inst_d["s"], inst_d["t"], inst_d["k"], inst_d["delay_bound"]
        fn = _SOLVER_REGISTRY[payload["solver"]]
        budget = (
            SolveBudget(deadline_seconds=trial_timeout)
            if trial_timeout is not None
            else None
        )
        meter = budget.start() if budget is not None else None
        with obs.session(label=f"trial {payload['solver']}") as tel:
            with metered(meter):
                try:
                    cost, delay, extra = fn(g, s, t, k, bound, budget=budget)
                except TypeError as exc:
                    if "budget" not in str(exc):
                        raise
                    cost, delay, extra = fn(g, s, t, k, bound)
        counters = dict(tel.counters)
        status = "ok"
    except InfeasibleInstanceError as exc:
        extra = {"error": f"{type(exc).__name__}: {exc}"}
        status = "infeasible"
    except BudgetExhaustedError as exc:
        extra = {"error": f"{type(exc).__name__}: {exc}"}
        status = "timeout"
    except ReproError as exc:
        extra = {"error": f"{type(exc).__name__}: {exc}"}
        status = "error"
    except Exception as exc:  # noqa: BLE001 — never poison the pool
        extra = {"error": f"{type(exc).__name__}: {exc}"}
        status = "error"
    record.update(
        status=status,
        cost=cost,
        delay=delay,
        seconds=time.perf_counter() - start,
        extra=extra,
        counters=counters,
    )
    return record


def _trial_key(rec: dict) -> tuple:
    """Identity of one trial for resume matching (everything the harness
    knows about a trial before running it)."""
    return (
        rec["workload"], rec["seed"], rec["solver"],
        rec["n"], rec["m"], rec["k"], rec["delay_bound"],
    )


def run_trials_parallel(
    instances: Iterable[WorkloadInstance],
    solver_names: list[str],
    max_workers: int | None = None,
    *,
    trial_timeout: float | None = None,
    stall_grace: float = 5.0,
    fault_plan: FaultPlan | None = None,
    jsonl_path: str | Path | None = None,
    resume: bool = False,
    shutdown: GracefulShutdown | None = None,
) -> list[TrialRecord]:
    """Parallel counterpart of :func:`repro.eval.harness.run_trials`.

    ``solver_names`` must be registered (built-ins: ``bicameral`` plus the
    four baselines). Records come back in deterministic (instance, solver)
    order regardless of completion order, one per submitted trial, always
    — see the module docstring for the failure taxonomy.

    Parameters
    ----------
    trial_timeout:
        Per-trial wall-clock budget in seconds. Arms a cooperative
        :class:`~repro.robustness.SolveBudget` inside the worker; the
        bicameral solver then answers anytime-style (``status="ok"`` with
        a degraded certificate), baselines abort with ``status="timeout"``.
    stall_grace:
        Harness-side guard: if no trial completes for
        ``trial_timeout + stall_grace`` seconds, the remaining trials are
        recorded as ``"timeout"`` and abandoned (covers workers stuck in
        non-cooperative code). Only active when ``trial_timeout`` is set.
    fault_plan:
        Deterministic fault injection keyed by instance seed
        (:class:`repro.oracle.faults.FaultPlan`) — test seam.
    jsonl_path:
        Append each record to this JSONL file the moment it is finalized.
        Appends are fsync'd (:class:`~repro._util.atomicio.DurableAppender`)
        and a torn trailing line from a previously crashed harness is
        repaired before appending, so the file is always parseable JSONL.
    resume:
        With ``jsonl_path``: records already durable in the file are
        matched to this run's trials by identity (workload, seed, solver,
        instance shape) and **not** re-run; only trials without a durable
        record execute. A sweep killed halfway therefore continues where
        it stopped (``repro sweep --jsonl F --resume``).
    shutdown:
        Active :class:`~repro.robustness.GracefulShutdown`. On the first
        SIGINT/SIGTERM the harness stops launching work, keeps every
        already-durable record, and raises
        :class:`~repro.errors.SolveInterrupted` (in-flight trials get no
        record, so a later ``resume`` re-runs exactly those).
    """
    payloads: list[dict] = []
    for inst in instances:
        inst_d = {
            "graph": graph_to_dict(inst.graph),
            "s": inst.s,
            "t": inst.t,
            "k": inst.k,
            "delay_bound": inst.delay_bound,
            "name": inst.name,
            "seed": inst.seed,
        }
        spec = fault_plan.spec_for(inst.seed) if fault_plan is not None else None
        for name in solver_names:
            if name not in _SOLVER_REGISTRY:
                raise KeyError(f"solver {name!r} is not registered")
            payloads.append(
                {
                    "inst": inst_d,
                    "solver": name,
                    "trial_timeout": trial_timeout,
                    "fault": spec.to_dict() if spec is not None else None,
                }
            )

    # Records restored from a previous (crashed/interrupted) run.
    loaded: list[dict | None] = [None] * len(payloads)
    if jsonl_path is not None and Path(jsonl_path).exists():
        dropped = repair_jsonl_tail(jsonl_path)
        if dropped:
            obs.add("parallel.jsonl_torn_bytes_dropped", dropped)
        if resume:
            durable: dict[tuple, list[dict]] = {}
            for rec in iter_jsonl(jsonl_path):
                durable.setdefault(_trial_key(rec), []).append(rec)
            for i, payload in enumerate(payloads):
                bucket = durable.get(_trial_key(_base_record(payload)))
                if bucket:
                    loaded[i] = bucket.pop(0)
            obs.add("parallel.trials_resumed",
                    sum(1 for r in loaded if r is not None))

    to_run = [i for i, rec in enumerate(loaded) if rec is None]
    results: list[dict | None] = list(loaded)
    sink = (
        DurableAppender(jsonl_path) if jsonl_path is not None else None
    )

    def on_record(index: int, record: dict) -> None:
        results[to_run[index]] = record
        if sink is not None:
            sink.append_json(record)

    try:
        fresh = resilient_pool_map(
            _run_one,
            [payloads[i] for i in to_run],
            max_workers=max_workers,
            task_timeout=trial_timeout,
            stall_grace=stall_grace,
            failure_record=_trial_failure_record,
            on_record=on_record,
            shutdown=shutdown,
        )
    except SolveInterrupted as exc:
        # Durable records are already on disk; tell the caller where.
        raise SolveInterrupted(
            exc.signum,
            checkpoint_path=str(jsonl_path) if jsonl_path is not None else None,
        ) from None
    finally:
        if sink is not None:
            sink.close()
    for j, i in enumerate(to_run):
        results[i] = fresh[j]
    assert all(r is not None for r in results)
    return [TrialRecord(**r) for r in results]


def _trial_failure_record(
    payload: dict, kind: str, detail: str, seconds: float
) -> dict:
    """Map generic pool-failure kinds onto the trial-record status taxonomy."""
    rec = _base_record(payload)
    status = {"stalled": "timeout", "crashed": "crashed", "error": "error"}[kind]
    rec.update(
        status=status,
        cost=None,
        delay=None,
        seconds=seconds,
        extra={"error": detail},
        counters={},
    )
    return rec


def resilient_pool_map(
    fn: Callable[[dict], dict],
    payloads: list[dict],
    *,
    max_workers: int | None = None,
    task_timeout: float | None = None,
    stall_grace: float = 5.0,
    failure_record: Callable[[dict, str, str, float], dict],
    on_record: Callable[[int, dict], None] | None = None,
    shutdown: GracefulShutdown | None = None,
) -> list[dict]:
    """Generic fault-tolerant process-pool map: one record per payload.

    The machinery behind :func:`run_trials_parallel`, reusable for any
    picklable ``fn(payload) -> dict`` fan-out (the dirty-anchor search in
    :mod:`repro.perf.anchors` rides it too). Guarantees, in payload order:

    * ``fn``'s own return value when the worker finishes;
    * ``failure_record(payload, kind, detail, seconds)`` otherwise, with
      ``kind`` one of ``"stalled"`` (no completion within
      ``task_timeout + stall_grace``), ``"crashed"`` (worker death broke
      the pool twice — the pool is respawned once and lost tasks retried
      first), or ``"error"`` (harness-side surprise, e.g. an unpicklable
      result).

    ``on_record`` fires the moment each record is finalized (incremental
    persistence hook). Each payload is shipped with an added ``"attempt"``
    field (1 on the first round, 2 after a respawn) so deterministic fault
    injection can target specific attempts.

    ``shutdown`` makes the map interruptible: when the guard trips (first
    SIGINT/SIGTERM), remaining futures are cancelled and
    :class:`~repro.errors.SolveInterrupted` propagates — records already
    finalized (and persisted via ``on_record``) are kept.
    """
    results: list[dict | None] = [None] * len(payloads)

    def finalize(index: int, record: dict) -> None:
        results[index] = record
        if on_record is not None:
            on_record(index, record)

    lost = _run_pool_round(fn, payloads, list(range(len(payloads))), 1,
                           max_workers, task_timeout, stall_grace,
                           finalize, failure_record, shutdown)
    if lost:
        # The pool broke (a worker died). Respawn once and retry only the
        # tasks whose results were lost — everything already finalized is
        # kept.
        obs.inc("parallel.pool_respawns")
        obs.emit("parallel.pool_respawn", lost_trials=len(lost))
        lost = _run_pool_round(fn, payloads, lost, 2,
                               max_workers, task_timeout, stall_grace,
                               finalize, failure_record, shutdown)
        for i in lost:
            obs.inc("parallel.trials_crashed")
            finalize(i, failure_record(
                payloads[i], "crashed",
                "worker process died (pool broke twice)", 0.0,
            ))

    assert all(r is not None for r in results)  # one record per payload
    return results  # type: ignore[return-value]


def _run_pool_round(
    fn: Callable[[dict], dict],
    payloads: list[dict],
    pending: list[int],
    attempt: int,
    max_workers: int | None,
    task_timeout: float | None,
    stall_grace: float,
    finalize: Callable[[int, dict], None],
    failure_record: Callable[[dict, str, str, float], dict],
    shutdown: GracefulShutdown | None = None,
) -> list[int]:
    """Run one pool over ``pending`` payload indices.

    Finalizes a record for every index it can; returns the indices whose
    results were lost to a broken pool (candidates for the retry round).
    With ``shutdown``, the wait loop polls (sub-second) so a delivered
    signal cancels remaining work promptly and raises
    :class:`~repro.errors.SolveInterrupted`.
    """
    lost: list[int] = []
    guard = None if task_timeout is None else task_timeout + stall_grace
    # Without a shutdown guard we can block a full stall window at a time;
    # with one we must wake often enough to notice the signal.
    poll = guard if shutdown is None else (
        0.5 if guard is None else min(0.5, guard)
    )
    pool = ProcessPoolExecutor(max_workers=max_workers)
    try:
        futures = {
            pool.submit(fn, {**payloads[i], "attempt": attempt}): i
            for i in pending
        }
        not_done = set(futures)
        last_progress = time.monotonic()
        while not_done:
            if shutdown is not None and shutdown.triggered:
                for fut in not_done:
                    fut.cancel()
                obs.inc("parallel.interrupted")
                raise SolveInterrupted(shutdown.signum or 0)
            done, not_done = wait(not_done, timeout=poll, return_when=FIRST_COMPLETED)
            if done:
                last_progress = time.monotonic()
            elif guard is not None and time.monotonic() - last_progress >= guard:
                # Stall: a full guard window passed with zero completions.
                # Workers stuck in non-cooperative code cannot be killed
                # from here portably; record and abandon them.
                for fut in not_done:
                    i = futures[fut]
                    fut.cancel()
                    obs.inc("parallel.trials_stalled")
                    finalize(i, failure_record(
                        payloads[i], "stalled",
                        f"no completion within {guard:.3f}s guard",
                        float(guard),
                    ))
                not_done = set()
                break
            for fut in done:
                i = futures[fut]
                if fut.cancelled():
                    lost.append(i)
                    continue
                exc = fut.exception()
                if isinstance(exc, BrokenProcessPool):
                    lost.append(i)
                elif exc is not None:
                    # Harness-side surprise (e.g. unpicklable result); the
                    # worker itself catches everything, so this is rare.
                    finalize(i, failure_record(
                        payloads[i], "error",
                        f"{type(exc).__name__}: {exc}", 0.0,
                    ))
                else:
                    finalize(i, fut.result())
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return sorted(lost)
