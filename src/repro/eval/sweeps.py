"""Parameter-grid sweeps: the downstream user's evaluation entry point.

The experiment registry (E1–E11) pins the paper-validation suite; this
module is the general tool behind it — declare a grid of instance
parameters and solver configurations, execute (optionally in parallel),
and pivot the records into a printable table.

Example::

    from repro.eval.sweeps import Sweep, run_sweep, pivot

    sweep = Sweep(
        family="er_anticorrelated",
        family_params={"n": [12, 16], "tightness": [0.5, 0.8]},
        solvers=["bicameral", "minsum"],
        n_instances=5,
        seed=123,
    )
    records = run_sweep(sweep)
    print(pivot(records, row_key=lambda r: (r.extra["n"], r.extra["tightness"])))
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.eval.harness import TrialRecord, group_by, run_trials
from repro.eval.metrics import summarize
from repro.eval.reporting import format_table
from repro.eval.workloads import WORKLOADS


@dataclass(frozen=True)
class Sweep:
    """A declarative sweep: one workload family, a grid of its parameters,
    and the solver set to run on every emitted instance.

    Attributes
    ----------
    family:
        A key of :data:`repro.eval.workloads.WORKLOADS`.
    family_params:
        Mapping of parameter name -> list of values; the cartesian product
        defines the grid cells.
    solvers:
        Names registered with :mod:`repro.eval.parallel` (used for both
        serial and parallel execution, keeping the two paths identical).
    n_instances:
        Instances per grid cell.
    seed:
        Base seed; each cell derives its own stream deterministically.
    """

    family: str
    family_params: dict[str, Sequence[Any]] = field(default_factory=dict)
    solvers: Sequence[str] = ("bicameral",)
    n_instances: int = 5
    seed: int = 0

    def cells(self) -> list[dict[str, Any]]:
        """The grid cells as parameter dicts (sorted for determinism)."""
        keys = sorted(self.family_params)
        values = [self.family_params[k] for k in keys]
        return [dict(zip(keys, combo)) for combo in itertools.product(*values)]


def run_sweep(
    sweep: Sweep,
    parallel: bool = False,
    max_workers: int | None = None,
    *,
    jsonl_path=None,
    resume: bool = False,
    shutdown=None,
) -> list[TrialRecord]:
    """Execute the sweep; every record's ``extra`` carries its grid cell.

    ``jsonl_path``/``resume``/``shutdown`` (parallel mode only) make the
    sweep crash- and signal-resumable — they are forwarded per cell to
    :func:`repro.eval.parallel.run_trials_parallel`, which appends each
    record durably the moment it finalizes and, on resume, re-runs only
    trials without a durable record.
    """
    if sweep.family not in WORKLOADS:
        raise KeyError(f"unknown workload family {sweep.family!r}")
    family = WORKLOADS[sweep.family]
    records: list[TrialRecord] = []
    for i, cell in enumerate(sweep.cells()):
        instances = list(
            family(n_instances=sweep.n_instances, seed=sweep.seed + 7919 * i, **cell)
        )
        if parallel:
            from repro.eval.parallel import run_trials_parallel

            cell_records = run_trials_parallel(
                instances,
                list(sweep.solvers),
                max_workers=max_workers,
                jsonl_path=jsonl_path,
                resume=resume,
                shutdown=shutdown,
            )
        else:
            from repro.eval.parallel import _SOLVER_REGISTRY

            solver_fns = {}
            for name in sweep.solvers:
                if name not in _SOLVER_REGISTRY:
                    raise KeyError(f"solver {name!r} is not registered")
                fn = _SOLVER_REGISTRY[name]

                def adapter(inst, _fn=fn):
                    return _fn(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)

                solver_fns[name] = adapter
            cell_records = run_trials(instances, solver_fns)
        for rec in cell_records:
            rec.extra.update(cell)
        records.extend(cell_records)
    return records


def pivot(
    records: list[TrialRecord],
    row_key=lambda r: r.workload,
    metric=lambda r: float(r.cost) if r.cost is not None else None,
    metric_name: str = "cost",
) -> str:
    """Aggregate records into an ASCII table: one row per (row_key, solver)
    with ok/infeasible/error counts and the metric's mean/max."""
    headers = ["cell", "solver", "ok", "infeasible", "error",
               f"{metric_name}_mean", f"{metric_name}_max", "sec_mean"]
    rows = []
    grouped = group_by(records, lambda r: (row_key(r), r.solver))
    for (cell, solver), recs in sorted(grouped.items(), key=lambda kv: str(kv[0])):
        values = [metric(r) for r in recs if r.status == "ok" and metric(r) is not None]
        stats = summarize(values)
        rows.append(
            [
                str(cell),
                solver,
                sum(r.status == "ok" for r in recs),
                sum(r.status == "infeasible" for r in recs),
                sum(r.status == "error" for r in recs),
                stats["mean"],
                stats["max"],
                summarize([r.seconds for r in recs])["mean"],
            ]
        )
    return format_table(headers, rows)
