"""Evaluation harness: workloads, metrics, experiment registry E1-E9 + figures."""

from repro.eval.harness import SolverFn, TrialRecord, group_by, run_trials
from repro.eval.metrics import QualityReport, measure_quality, summarize
from repro.eval.reporting import format_series, format_table, format_trace
from repro.eval.workloads import (
    WORKLOADS,
    WorkloadInstance,
    interesting_delay_bound,
)
from repro.eval.experiments import EXPERIMENTS, figure1_instance, figure2_instance
from repro.eval.parallel import register_solver, run_trials_parallel
from repro.eval.sweeps import Sweep, pivot, run_sweep

__all__ = [
    "SolverFn",
    "TrialRecord",
    "group_by",
    "run_trials",
    "QualityReport",
    "measure_quality",
    "summarize",
    "format_series",
    "format_table",
    "format_trace",
    "WORKLOADS",
    "WorkloadInstance",
    "interesting_delay_bound",
    "EXPERIMENTS",
    "figure1_instance",
    "figure2_instance",
    "register_solver",
    "run_trials_parallel",
    "Sweep",
    "pivot",
    "run_sweep",
]
