"""Experiment runner: execute solvers over workloads, collect records.

The harness is deliberately dumb plumbing: a *trial* is (instance, solver
name, callable); the runner times it, captures totals or the failure mode,
and hands back flat records that experiments aggregate. Nothing here knows
what a bicameral cycle is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro import obs
from repro.errors import ReproError
from repro.eval.workloads import WorkloadInstance


@dataclass
class TrialRecord:
    """One (instance, solver) execution."""

    workload: str
    seed: int
    solver: str
    n: int
    m: int
    k: int
    delay_bound: int
    status: str  # "ok" | "infeasible" | "error"
    cost: int | None = None
    delay: int | None = None
    seconds: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)


#: A solver adapter: (instance) -> (cost, delay, extra-dict).
SolverFn = Callable[[WorkloadInstance], tuple[int, int, dict[str, Any]]]


def run_trials(
    instances: Iterable[WorkloadInstance],
    solvers: dict[str, SolverFn],
) -> list[TrialRecord]:
    """Run every solver on every instance; failures become records, not
    crashes (a baseline dying on an instance is a data point).

    Each trial runs inside its own telemetry session, so every record
    carries the solver-work counters (Dijkstra pops, LP solves, cancellation
    iterations, ...) for exactly that execution.
    """
    records: list[TrialRecord] = []
    for inst in instances:
        for name, fn in solvers.items():
            start = time.perf_counter()
            with obs.session(label=f"trial {name}") as tel:
                try:
                    cost, delay, extra = fn(inst)
                    status = "ok"
                except ReproError as exc:
                    cost = delay = None
                    extra = {"error": f"{type(exc).__name__}: {exc}"}
                    status = (
                        "infeasible"
                        if type(exc).__name__ == "InfeasibleInstanceError"
                        else "error"
                    )
            seconds = time.perf_counter() - start
            records.append(
                TrialRecord(
                    workload=inst.name,
                    seed=inst.seed,
                    solver=name,
                    n=inst.graph.n,
                    m=inst.graph.m,
                    k=inst.k,
                    delay_bound=inst.delay_bound,
                    status=status,
                    cost=cost,
                    delay=delay,
                    seconds=seconds,
                    extra=extra,
                    counters=dict(tel.counters),
                )
            )
    return records


def group_by(
    records: list[TrialRecord],
    key: Callable[[TrialRecord], Any],
) -> dict[Any, list[TrialRecord]]:
    """Stable grouping helper for aggregation."""
    out: dict[Any, list[TrialRecord]] = {}
    for r in records:
        out.setdefault(key(r), []).append(r)
    return out
