"""Named workload suites: seeded instance streams per experiment.

A workload is a deterministic generator of kRSP instances — graph family,
weight model, terminal choice, and a delay-budget policy expressed relative
to the instance's own extremes so the budget is always in the interesting
band (above the minimum achievable delay, below the delay of the min-cost
solution; outside that band the problem degenerates to min-sum or to
infeasible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro._util.rng import spawn_rng
from repro.flow.mincost import min_cost_k_flow
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    gnp_digraph,
    grid_digraph,
    layered_dag,
    ring_of_cliques,
    scale_free_digraph,
    waxman_digraph,
)
from repro.graph.weights import (
    anticorrelated_weights,
    correlated_weights,
    euclidean_weights,
    uniform_weights,
)


@dataclass(frozen=True)
class WorkloadInstance:
    """One concrete instance emitted by a workload."""

    name: str
    graph: DiGraph
    s: int
    t: int
    k: int
    delay_bound: int
    seed: int


def interesting_delay_bound(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    tightness: float = 0.5,
) -> int | None:
    """Pick ``D`` inside the band where the constraint actually binds.

    ``tightness = 0`` puts ``D`` at the delay of the min-cost solution
    (constraint barely binds); ``tightness = 1`` at the minimum achievable
    delay (as tight as feasibly possible). Returns ``None`` when fewer than
    ``k`` disjoint paths exist or when the band is empty (the min-cost
    solution is already the fastest).
    """
    by_cost = min_cost_k_flow(g, s, t, k, weight=g.cost)
    if by_cost is None:
        return None
    by_delay = min_cost_k_flow(g, s, t, k, weight=g.delay)
    d_hi = int(g.delay[np.nonzero(by_cost.used)[0]].sum())
    d_lo = by_delay.weight
    if d_hi <= d_lo:
        return None
    return int(round(d_hi - tightness * (d_hi - d_lo)))


def _emit(
    name: str,
    builder: Callable[[int], tuple[DiGraph, int, int]],
    k: int,
    tightness: float,
    n_instances: int,
    seed: int,
) -> Iterator[WorkloadInstance]:
    """Drive a seeded builder, attaching in-band delay budgets; skips
    instances where no interesting budget exists (keeps streams dense)."""
    children = spawn_rng(seed, n_instances)
    for i, child in enumerate(children):
        sub_seed = int(child.integers(1 << 31))
        g, s, t = builder(sub_seed)
        bound = interesting_delay_bound(g, s, t, k, tightness)
        if bound is None:
            continue
        yield WorkloadInstance(
            name=name, graph=g, s=s, t=t, k=k, delay_bound=bound, seed=sub_seed
        )


def er_anticorrelated(
    n: int = 12,
    p: float = 0.35,
    k: int = 2,
    tightness: float = 0.5,
    n_instances: int = 10,
    seed: int = 2015,
) -> Iterator[WorkloadInstance]:
    """Erdos–Renyi digraphs with anti-correlated weights (the hard regime)."""

    def build(sub_seed: int):
        g = gnp_digraph(n, p, rng=sub_seed)
        g = anticorrelated_weights(g, rng=sub_seed + 1)
        return g, 0, n - 1

    yield from _emit(f"er{n}_anti", build, k, tightness, n_instances, seed)


def er_uniform(
    n: int = 12,
    p: float = 0.35,
    k: int = 2,
    tightness: float = 0.5,
    n_instances: int = 10,
    seed: int = 2016,
) -> Iterator[WorkloadInstance]:
    """Erdos–Renyi with independent uniform weights (the mild regime)."""

    def build(sub_seed: int):
        g = gnp_digraph(n, p, rng=sub_seed)
        g = uniform_weights(g, rng=sub_seed + 1)
        return g, 0, n - 1

    yield from _emit(f"er{n}_uni", build, k, tightness, n_instances, seed)


def waxman_euclidean(
    n: int = 14,
    k: int = 2,
    tightness: float = 0.5,
    n_instances: int = 10,
    seed: int = 2017,
) -> Iterator[WorkloadInstance]:
    """Waxman geometric graphs with euclidean cost/delay (router-level)."""

    def build(sub_seed: int):
        g, pos = waxman_digraph(n, alpha=0.8, beta=0.5, rng=sub_seed)
        g = euclidean_weights(g, pos, delay_scale=20, cost_scale=20, rng=sub_seed + 1)
        return g, 0, n - 1

    yield from _emit(f"waxman{n}", build, k, tightness, n_instances, seed)


def grid_anticorrelated(
    rows: int = 4,
    cols: int = 5,
    k: int = 2,
    tightness: float = 0.5,
    n_instances: int = 10,
    seed: int = 2018,
) -> Iterator[WorkloadInstance]:
    """Grid fabrics with anti-correlated weights."""

    def build(sub_seed: int):
        g, s, t = grid_digraph(rows, cols)
        g = anticorrelated_weights(g, rng=sub_seed)
        return g, s, t

    yield from _emit(f"grid{rows}x{cols}", build, k, tightness, n_instances, seed)


def layered_anticorrelated(
    layers: int = 4,
    width: int = 3,
    k: int = 2,
    tightness: float = 0.5,
    n_instances: int = 10,
    seed: int = 2019,
) -> Iterator[WorkloadInstance]:
    """Layered DAGs — equal hop counts force pure weight trade-offs."""

    def build(sub_seed: int):
        g, s, t = layered_dag(layers, width, rng=sub_seed)
        g = anticorrelated_weights(g, rng=sub_seed + 1)
        return g, s, t

    yield from _emit(f"layered{layers}x{width}", build, k, tightness, n_instances, seed)


def scale_free_anticorrelated(
    n: int = 20,
    m_attach: int = 2,
    k: int = 2,
    tightness: float = 0.5,
    n_instances: int = 10,
    seed: int = 2020,
) -> Iterator[WorkloadInstance]:
    """Scale-free (preferential attachment) digraphs: hub contention makes
    disjointness expensive. Terminals are the newest vertex and a seed
    vertex (periphery-to-core routing)."""

    def build(sub_seed: int):
        g = scale_free_digraph(n, m_attach, rng=sub_seed)
        g = anticorrelated_weights(g, rng=sub_seed + 1)
        return g, n - 1, 0

    yield from _emit(f"sf{n}", build, k, tightness, n_instances, seed)


def ring_anticorrelated(
    n_cliques: int = 4,
    clique_size: int = 3,
    k: int = 2,
    tightness: float = 0.5,
    n_instances: int = 10,
    seed: int = 2021,
) -> Iterator[WorkloadInstance]:
    """ISP-like ring-of-cliques PoP topologies: disjoint routes must split
    around the ring, so the two paths see very different delay profiles."""

    def build(sub_seed: int):
        g, s, t = ring_of_cliques(n_cliques, clique_size, rng=sub_seed, chords=1)
        g = anticorrelated_weights(g, rng=sub_seed + 1)
        return g, s, t

    yield from _emit(
        f"ring{n_cliques}x{clique_size}", build, k, tightness, n_instances, seed
    )


WORKLOADS = {
    "er_anticorrelated": er_anticorrelated,
    "ring_anticorrelated": ring_anticorrelated,
    "scale_free_anticorrelated": scale_free_anticorrelated,
    "er_uniform": er_uniform,
    "waxman_euclidean": waxman_euclidean,
    "grid_anticorrelated": grid_anticorrelated,
    "layered_anticorrelated": layered_anticorrelated,
}
"""Name registry for the experiment definitions."""
