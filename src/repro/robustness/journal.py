"""Write-ahead journal for crash-safe solving: the on-disk format layer.

A *journal* is an append-only log that makes one ``solve_krsp`` run
durable: if the process dies at any byte of the file — OOM kill,
preemption, ``kill -9`` mid-``write(2)`` — :func:`repro.robustness.
checkpointing.resume_krsp` reconstructs the exact solver state from what
did reach disk and continues to a result bit-identical to an
uninterrupted run. This module knows only the *format*; the semantic
encode/decode between solver objects and records lives in
:mod:`repro.robustness.checkpointing`.

Record framing
--------------
Each record is one line::

    <len> <crc32-hex> <json>\\n

where ``len`` is the byte length of the JSON payload and ``crc32`` its
checksum. Appends are flushed and ``fsync``'d before the writer returns
(write-ahead discipline: the record is durable before the in-memory state
transition it describes is committed). A crash can therefore tear at most
the record being written; the reader stops at the first frame that is
incomplete, misframed, or fails its CRC and treats everything before it
as the journal's content (*torn-tail truncation*).

Record kinds (payload schemas in docs/ROBUSTNESS.md):

``header``
    Sealed first record binding the journal to one solve: format version,
    the full instance, a SHA-256 over the canonical instance + config
    JSON, and the solve configuration. A journal whose header is missing,
    torn, or of an unknown version is rejected loudly
    (:class:`~repro.errors.JournalError`) — old checkpoints can never be
    silently misparsed.
``prelude``
    Pre-loop state (phase-1 solution, certified bounds, fallback paths)
    so resume never re-runs the LP phases.
``iteration``
    One cancellation step, written *before* the flip is applied: the
    flipped edge set, cycle cost/delay/type, residual version, the
    Lemma-12 rate, the resulting solution, and the budget-meter odometer.
``snapshot``
    Periodic full state (solution, best-so-far, seen states, the
    residual CSR, all iteration records so far) so resume cost is
    ``O(journal tail)``, not ``O(history)``.
``final``
    The finished solution; marks the journal complete.

Chaos hooks
-----------
Two environment variables let the crash campaign (``scripts/chaos_gate.py``)
SIGKILL the *writing* process at byte- and record-granular points,
including genuinely torn mid-record writes:

* ``REPRO_JOURNAL_KILL_AT_BYTE=<n>`` — die once total bytes written would
  exceed ``n``, after writing exactly the prefix up to ``n``;
* ``REPRO_JOURNAL_KILL_AFTER_RECORDS=<n>`` — die right after the ``n``-th
  record is durably appended;
* ``REPRO_JOURNAL_DELAY_PER_RECORD=<seconds>`` — sleep before each append
  (widens the window for the signal-delivery tests to land a SIGINT
  mid-loop deterministically).

All are inert unless set; they exist only for fault injection.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import obs
from repro._util.atomicio import fsync_dir
from repro.errors import JournalError

#: Bump when a record schema changes incompatibly. Readers hard-reject
#: other versions (tests/test_crash_resume.py pins a golden v1 journal).
JOURNAL_FORMAT_VERSION = 1

JOURNAL_MAGIC = "krsp-journal"

KIND_HEADER = "header"
KIND_PRELUDE = "prelude"
KIND_ITERATION = "iteration"
KIND_SNAPSHOT = "snapshot"
KIND_FINAL = "final"


def instance_config_hash(instance: dict[str, Any], config: dict[str, Any]) -> str:
    """SHA-256 binding an instance dict and a solve config (canonical JSON)."""
    blob = json.dumps(
        {"instance": instance, "config": config},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _frame(payload: dict[str, Any]) -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return f"{len(body)} {crc:08x} ".encode("ascii") + body + b"\n"


@dataclass
class JournalDoc:
    """Parsed journal content: the valid record prefix plus tail forensics."""

    records: list[dict[str, Any]]
    valid_bytes: int
    torn_bytes: int = 0

    @property
    def header(self) -> dict[str, Any]:
        return self.records[0]

    def last_of(self, kind: str) -> dict[str, Any] | None:
        for rec in reversed(self.records):
            if rec.get("kind") == kind:
                return rec
        return None

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        return [r for r in self.records if r.get("kind") == kind]


def read_journal(path: str | Path) -> JournalDoc:
    """Parse a journal, truncating (logically) any torn tail.

    Raises :class:`JournalError` when the file is not a journal at all:
    no intact sealed header, wrong magic, or an unsupported format
    version. A valid header followed by crash debris is *not* an error —
    that is the situation the journal exists for.
    """
    p = Path(path)
    try:
        raw = p.read_bytes()
    except OSError as exc:
        raise JournalError(f"cannot read journal {p}: {exc}") from None
    records: list[dict[str, Any]] = []
    pos = 0
    while pos < len(raw):
        sp1 = raw.find(b" ", pos)
        if sp1 < 0 or not raw[pos:sp1].isdigit():
            break
        sp2 = raw.find(b" ", sp1 + 1)
        if sp2 < 0:
            break
        length = int(raw[pos:sp1])
        crc_text = raw[sp1 + 1 : sp2]
        end = sp2 + 1 + length
        if len(crc_text) != 8 or end + 1 > len(raw):
            break
        body = raw[sp2 + 1 : end]
        if raw[end : end + 1] != b"\n":
            break
        try:
            if (zlib.crc32(body) & 0xFFFFFFFF) != int(crc_text, 16):
                break
        except ValueError:
            break
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            break
        if not isinstance(payload, dict):
            break
        records.append(payload)
        pos = end + 1
    torn = len(raw) - pos
    if not records:
        raise JournalError(f"{p}: no intact journal header (not a journal?)")
    header = records[0]
    if header.get("kind") != KIND_HEADER or header.get("magic") != JOURNAL_MAGIC:
        raise JournalError(f"{p}: first record is not a sealed {JOURNAL_MAGIC} header")
    version = header.get("format")
    if version != JOURNAL_FORMAT_VERSION:
        raise JournalError(
            f"{p}: unsupported journal format version {version!r} "
            f"(this build reads only v{JOURNAL_FORMAT_VERSION}; refusing to "
            f"guess at an old or future checkpoint layout)"
        )
    if torn:
        obs.inc("journal.torn_tail_truncated")
        obs.add("journal.torn_bytes_dropped", torn)
    return JournalDoc(records=records, valid_bytes=pos, torn_bytes=torn)


class JournalWriter:
    """Append-side of the journal: fsync'd, CRC-framed, crash-injectable.

    ``fresh`` creates/truncates the file and seals the header;
    ``reopen`` validates an existing journal, physically truncates any
    torn tail, and continues appending after the valid prefix (what
    ``repro resume`` and the post-signal continuation use).
    """

    def __init__(self, path: str | Path, *, fsync: bool = True):
        self.path = Path(path)
        self._fsync = fsync
        self._fh: Any = None
        self._bytes_written = 0
        self._records_written = 0
        self._kill_at_byte = _env_int("REPRO_JOURNAL_KILL_AT_BYTE")
        self._kill_after_records = _env_int("REPRO_JOURNAL_KILL_AFTER_RECORDS")
        self._delay_per_record = _env_float("REPRO_JOURNAL_DELAY_PER_RECORD")

    # -- construction ----------------------------------------------------

    @classmethod
    def fresh(
        cls,
        path: str | Path,
        *,
        instance: dict[str, Any],
        config: dict[str, Any],
        fsync: bool = True,
    ) -> "JournalWriter":
        """Start a new journal: truncate ``path`` and seal the header."""
        w = cls(path, fsync=fsync)
        w.path.parent.mkdir(parents=True, exist_ok=True)
        w._fh = open(w.path, "wb")
        if fsync:
            fsync_dir(w.path.parent)
        w.append(
            {
                "kind": KIND_HEADER,
                "magic": JOURNAL_MAGIC,
                "format": JOURNAL_FORMAT_VERSION,
                "instance": instance,
                "config": config,
                "seal": instance_config_hash(instance, config),
            }
        )
        return w

    @classmethod
    def reopen(cls, path: str | Path, *, fsync: bool = True) -> tuple["JournalWriter", JournalDoc]:
        """Reopen an existing journal for appending.

        Reads and validates it, truncates the physical file to the valid
        record prefix (dropping crash debris so new appends follow intact
        frames), and returns the writer plus the parsed document.
        """
        doc = read_journal(path)
        w = cls(path, fsync=fsync)
        w._fh = open(w.path, "r+b")
        w._fh.truncate(doc.valid_bytes)
        w._fh.seek(doc.valid_bytes)
        w._bytes_written = doc.valid_bytes
        w._records_written = len(doc.records)
        return w, doc

    # -- appending -------------------------------------------------------

    def append(self, payload: dict[str, Any]) -> None:
        """Durably append one record (flush + fsync before returning)."""
        if self._fh is None or self._fh.closed:
            raise JournalError(f"journal {self.path} is closed")
        if self._delay_per_record:
            time.sleep(self._delay_per_record)
        frame = _frame(payload)
        self._maybe_kill_at_byte(frame)
        self._fh.write(frame)
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())
        self._bytes_written += len(frame)
        self._records_written += 1
        obs.inc("journal.records_written")
        obs.add("journal.bytes_written", len(frame))
        if self._fsync:
            obs.inc("journal.fsyncs")
        if payload.get("kind") == KIND_SNAPSHOT:
            obs.inc("journal.snapshots_written")
        if (
            self._kill_after_records is not None
            and self._records_written >= self._kill_after_records
        ):
            _die()  # chaos hook: crash right after a durable record

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- chaos fault injection -------------------------------------------

    def _maybe_kill_at_byte(self, frame: bytes) -> None:
        if self._kill_at_byte is None:
            return
        if self._bytes_written + len(frame) <= self._kill_at_byte:
            return
        # Write exactly the prefix that "made it to disk", then die the
        # hard way — this is how a real mid-write SIGKILL tears a record.
        keep = max(0, self._kill_at_byte - self._bytes_written)
        self._fh.write(frame[:keep])
        self._fh.flush()
        os.fsync(self._fh.fileno())
        _die()


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def _die() -> None:  # pragma: no cover - ends the process
    os.kill(os.getpid(), signal.SIGKILL)
    os._exit(137)  # unreachable on POSIX; belt and braces elsewhere
