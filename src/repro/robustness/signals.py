"""Graceful SIGINT/SIGTERM handling for long-running solves and sweeps.

Policy (the classic two-strike shutdown):

* **first** signal: set a flag. Cooperative loops (the cancellation loop
  via its checkpoint hook, the parallel harness between completions) poll
  it, flush their durable state — a journal snapshot, the trial JSONL —
  and exit with the conventional code ``128 + signum`` (130 for SIGINT,
  143 for SIGTERM) after printing where the checkpoint landed;
* **second** signal: the user means it — hard-exit immediately with
  ``os._exit(128 + signum)`` (covers loops stuck in non-cooperative code,
  e.g. a long HiGHS solve).

Handlers are installed only inside the :class:`GracefulShutdown` context
manager and restored on exit, so library use never hijacks a host
application's signal disposition.
"""

from __future__ import annotations

import os
import signal
from types import FrameType


class GracefulShutdown:
    """Install two-strike SIGINT/SIGTERM handlers for a scoped region.

    Usage::

        with GracefulShutdown() as shutdown:
            ...long work, polling shutdown.signum...
        # handlers restored here

    ``signum`` is ``None`` until the first signal arrives, then the signal
    number. :meth:`exit_code` maps it to ``128 + signum``.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.signum: int | None = None
        self._previous: dict[int, object] = {}

    # -- context management ----------------------------------------------

    def __enter__(self) -> "GracefulShutdown":
        for sig in self.SIGNALS:
            self._previous[sig] = signal.signal(sig, self._handle)
        return self

    def __exit__(self, *exc) -> None:
        for sig, old in self._previous.items():
            signal.signal(sig, old)
        self._previous.clear()

    # -- signal handling --------------------------------------------------

    def _handle(self, signum: int, frame: FrameType | None) -> None:
        if self.signum is not None:
            os._exit(128 + signum)  # second strike: hard exit, now
        self.signum = signum

    @property
    def triggered(self) -> bool:
        return self.signum is not None

    def exit_code(self) -> int:
        """The conventional exit code for the received signal (0 if none)."""
        return 0 if self.signum is None else 128 + self.signum
