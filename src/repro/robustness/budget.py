"""Cooperative solve budgets: deadline, iteration cap, search-node cap.

The paper's Lemma 13 iteration bound (``D * sum(c) * sum(d)``) is
astronomically loose, so production solves need an *operational* stopping
rule that does not throw work away. A :class:`SolveBudget` is the immutable
policy (how much the caller is willing to spend); starting it yields a
:class:`BudgetMeter`, the mutable clock/odometer that the solver layers
consult cooperatively:

* :func:`repro.core.krsp.solve_krsp` checks between phases,
* :func:`repro.core.cancellation.cancel_to_feasibility` checks per
  iteration (and charges one iteration each loop),
* :mod:`repro.core.search` charges auxiliary-graph nodes against the node
  cap and checks the deadline between sweep levels and LP solves,
* the phase-1 Lagrangian loop and other LP-adjacent layers call the
  *ambient* :func:`checkpoint` hook, which is a no-op unless a meter is
  active (mirroring how :mod:`repro.obs` keeps disabled telemetry free).

A tripped check raises :class:`~repro.errors.BudgetExhaustedError`, which
the anytime layer catches and converts into a degraded-but-valid result —
see :mod:`repro.robustness.anytime` and docs/ROBUSTNESS.md.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator

from repro.errors import BudgetExhaustedError


@dataclass(frozen=True)
class SolveBudget:
    """How much work one solve may spend. ``None`` means unlimited.

    Attributes
    ----------
    deadline_seconds:
        Wall-clock budget, measured from :meth:`start`.
    max_iterations:
        Cancellation-iteration cap (anytime counterpart of the legacy
        ``max_iterations`` argument, which *raises* on exhaustion).
    max_search_nodes:
        Cap on auxiliary-graph nodes built by the candidate search across
        the whole solve — the search's dominant memory/time driver.
    """

    deadline_seconds: float | None = None
    max_iterations: int | None = None
    max_search_nodes: int | None = None

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise ValueError("deadline_seconds must be nonnegative")
        if self.max_iterations is not None and self.max_iterations < 0:
            raise ValueError("max_iterations must be nonnegative")
        if self.max_search_nodes is not None and self.max_search_nodes < 0:
            raise ValueError("max_search_nodes must be nonnegative")

    @property
    def unlimited(self) -> bool:
        return (
            self.deadline_seconds is None
            and self.max_iterations is None
            and self.max_search_nodes is None
        )

    def start(self) -> "BudgetMeter":
        """Arm the budget: the deadline clock starts now."""
        return BudgetMeter(self)

    def sliced(self, fraction: float) -> "SolveBudget":
        """A budget with ``fraction`` of this one's deadline (caps kept).

        Used by the fallback chain to give each tier its own slice of the
        overall deadline.
        """
        if self.deadline_seconds is None:
            return self
        return SolveBudget(
            deadline_seconds=self.deadline_seconds * fraction,
            max_iterations=self.max_iterations,
            max_search_nodes=self.max_search_nodes,
        )


class BudgetMeter:
    """Runtime state of one armed :class:`SolveBudget`.

    Not thread-safe; one meter per solve. All checks are cheap (an integer
    compare, plus one ``perf_counter`` call when a deadline is set) so
    sprinkling them through hot loops is fine.
    """

    def __init__(self, budget: SolveBudget):
        self.budget = budget
        self.started_at = time.perf_counter()
        self.iterations_used = 0
        self.search_nodes_used = 0
        #: Set once a check trips — later checks keep raising the same way.
        self.exhausted_reason: str | None = None

    # -- inspection ------------------------------------------------------

    def elapsed_seconds(self) -> float:
        return time.perf_counter() - self.started_at

    def remaining_seconds(self) -> float | None:
        """Deadline headroom (``None`` without a deadline; floored at 0)."""
        if self.budget.deadline_seconds is None:
            return None
        return max(0.0, self.budget.deadline_seconds - self.elapsed_seconds())

    def usage(self) -> dict:
        """Plain-data snapshot for certificates and telemetry."""
        return {
            "elapsed_seconds": self.elapsed_seconds(),
            "iterations_used": self.iterations_used,
            "search_nodes_used": self.search_nodes_used,
            "exhausted_reason": self.exhausted_reason,
        }

    # -- charging & checking --------------------------------------------

    def _trip(self, reason: str, where: str) -> None:
        self.exhausted_reason = reason
        raise BudgetExhaustedError(reason, where)

    def check(self, where: str = "") -> None:
        """Raise :class:`BudgetExhaustedError` if any limit is exceeded."""
        b = self.budget
        if self.exhausted_reason is not None:
            raise BudgetExhaustedError(self.exhausted_reason, where)
        if (
            b.deadline_seconds is not None
            and self.elapsed_seconds() >= b.deadline_seconds
        ):
            self._trip("deadline", where)
        if b.max_iterations is not None and self.iterations_used >= b.max_iterations:
            self._trip("iterations", where)
        if (
            b.max_search_nodes is not None
            and self.search_nodes_used >= b.max_search_nodes
        ):
            self._trip("search_nodes", where)

    def charge_iteration(self, where: str = "cancel") -> None:
        """Count one cancellation iteration, then re-check."""
        self.iterations_used += 1
        self.check(where)

    def charge_search_nodes(self, n: int, where: str = "search") -> None:
        """Count ``n`` auxiliary-graph nodes, then re-check."""
        self.search_nodes_used += int(n)
        self.check(where)


# -- ambient meter (contextvar) -----------------------------------------
#
# Layers that sit below an explicit-parameter seam (phase-1 providers, LP
# wrappers) consult the ambient meter so budget threading does not force a
# signature change on every registry-shaped API.

_ACTIVE_METER: ContextVar[BudgetMeter | None] = ContextVar(
    "repro_budget_meter", default=None
)


def current_meter() -> BudgetMeter | None:
    """The ambient meter installed by :func:`metered`, if any."""
    return _ACTIVE_METER.get()


@contextmanager
def metered(meter: BudgetMeter | None) -> Iterator[BudgetMeter | None]:
    """Install ``meter`` as the ambient budget for the enclosed solve."""
    token = _ACTIVE_METER.set(meter)
    try:
        yield meter
    finally:
        _ACTIVE_METER.reset(token)


def checkpoint(where: str = "") -> None:
    """Cooperative cancellation point for layers without a meter parameter.

    Free when no budget is armed (one contextvar read)."""
    meter = _ACTIVE_METER.get()
    if meter is not None:
        meter.check(where)
