"""Robustness layer: solve budgets, anytime results, fallback chain.

Production solving must never trade a late answer for no answer. This
package is the seam the whole stack routes through to guarantee that:

* :mod:`repro.robustness.budget` — :class:`SolveBudget` (wall-clock
  deadline, iteration cap, candidate-search node cap) and the cooperative
  :class:`BudgetMeter` threaded through ``solve_krsp`` →
  ``cancel_to_feasibility`` → the bicameral search → the phase-1/LP layers;
* :mod:`repro.robustness.anytime` — the ``ok | degraded |
  budget_exhausted`` status taxonomy and the quality
  :class:`Certificate` every degraded answer carries;
* :mod:`repro.robustness.fallback` — the deadline-sliced
  ``bicameral → lp_rounding_2_2 → greedy_sequential`` degradation chain
  with retry/backoff (``repro solve --deadline S --fallback``);
* :mod:`repro.robustness.journal` / :mod:`repro.robustness.checkpointing`
  — crash safety: a CRC-framed, fsync'd write-ahead journal of the
  cancellation loop, periodic full-state snapshots, and
  :func:`resume_krsp`, which reconstructs a killed solve and finishes it
  bit-identically (``repro solve --checkpoint J`` / ``repro resume J``);
* :mod:`repro.robustness.signals` — two-strike SIGINT/SIGTERM handling
  (:class:`GracefulShutdown`): the first signal flushes a checkpoint and
  exits ``128 + signum``, the second hard-exits.

Typical use::

    from repro.core import solve_krsp
    from repro.robustness import SolveBudget

    sol = solve_krsp(g, s, t, k, D, budget=SolveBudget(deadline_seconds=2))
    assert sol.status in ("ok", "degraded", "budget_exhausted")
    print(sol.certificate.delay_slack, sol.certificate.cost_bound_ratio)

See docs/ROBUSTNESS.md for the full semantics.
"""

from repro.robustness.anytime import (
    STATUS_BUDGET_EXHAUSTED,
    STATUS_DEGRADED,
    STATUS_OK,
    STATUSES,
    Certificate,
    make_certificate,
)
from repro.robustness.budget import (
    BudgetMeter,
    SolveBudget,
    checkpoint,
    current_meter,
    metered,
)
from repro.robustness.fallback import (
    DEFAULT_CHAIN,
    TIER_GUARANTEES,
    FallbackResult,
    TierReport,
    solve_with_fallback,
)
from repro.robustness.journal import (
    JOURNAL_FORMAT_VERSION,
    JournalDoc,
    JournalWriter,
    read_journal,
)
from repro.robustness.signals import GracefulShutdown

# checkpointing sits *above* the solver facade (it imports repro.core.krsp),
# while this package is imported *by* solver internals (budget, anytime) —
# so it must load lazily to keep the import graph acyclic (PEP 562).
_CHECKPOINTING_NAMES = {
    "CheckpointHook",
    "DEFAULT_CHECKPOINT_EVERY",
    "resume_krsp",
    "solve_checkpointed",
}


def __getattr__(name: str):
    if name in _CHECKPOINTING_NAMES:
        from repro.robustness import checkpointing

        return getattr(checkpointing, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BudgetMeter",
    "Certificate",
    "CheckpointHook",
    "DEFAULT_CHAIN",
    "DEFAULT_CHECKPOINT_EVERY",
    "GracefulShutdown",
    "JOURNAL_FORMAT_VERSION",
    "JournalDoc",
    "JournalWriter",
    "FallbackResult",
    "STATUSES",
    "STATUS_BUDGET_EXHAUSTED",
    "STATUS_DEGRADED",
    "STATUS_OK",
    "SolveBudget",
    "TIER_GUARANTEES",
    "TierReport",
    "checkpoint",
    "current_meter",
    "make_certificate",
    "metered",
    "read_journal",
    "resume_krsp",
    "solve_checkpointed",
    "solve_with_fallback",
]
