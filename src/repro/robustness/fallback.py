"""Deadline-sliced fallback chain with retry/backoff.

The ROADMAP's north star is serving heavy traffic, where a late answer
must still be an answer. The budgeted bicameral solver already degrades
gracefully on *time*; this module degrades gracefully on *faults*: when a
tier dies (numerical solver failure, injected fault, internal invariant
violation), the chain drops to the next-weaker guarantee, each tier under
its own slice of the remaining wall-clock deadline:

1. ``bicameral`` — the paper's (1, 2) algorithm (anytime under budget);
2. ``lp_rounding_2_2`` — phase 1 alone, Guo FAW 2014's bifactor (2, 2)
   (exactly the weaker-guarantee tier the related work suggests);
3. ``greedy_sequential`` — folklore sequential QoS routing, no guarantee.

Non-final tiers get half the remaining deadline; the final tier gets all
of it. Transient failures (:class:`~repro.errors.SolverError`, unexpected
exceptions) are retried once per tier with exponential backoff; structural
infeasibility from an *authoritative* tier (bicameral, LP rounding — both
certify via the fractional relaxation) stops the chain immediately, while
the greedy tier's failures are heuristic and merely advance the chain.

Exposed on the CLI as ``repro solve INSTANCE --deadline S --fallback``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from typing import TYPE_CHECKING

from repro import obs
from repro.errors import (
    BudgetExhaustedError,
    InfeasibleInstanceError,
    ReproError,
)
from repro.graph.digraph import DiGraph

if TYPE_CHECKING:  # solver/baseline imports are deferred to call time:
    # this module sits below repro.lp in the import graph (the LP layer
    # imports repro.robustness.budget for its cooperative checkpoint).
    from repro.core.krsp import KRSPSolution
from repro.robustness.anytime import (
    STATUS_DEGRADED,
    STATUS_OK,
    Certificate,
    make_certificate,
)
from repro.robustness.budget import SolveBudget, metered

#: Default tier order: strongest guarantee first.
DEFAULT_CHAIN: tuple[str, ...] = (
    "bicameral",
    "lp_rounding_2_2",
    "greedy_sequential",
)

#: Bifactor guarantee carried by each tier's answers (see
#: :data:`repro.baselines.GUARANTEES` for the baseline tags).
TIER_GUARANTEES = {
    "bicameral": "(1, 2) / (1+eps, 2+eps)",
    "lp_rounding_2_2": "(2, 2)",
    "greedy_sequential": "none",
}

def _authoritative_infeasible() -> frozenset[str]:
    """Tiers whose InfeasibleInstanceError is a *proof* (stops the chain);
    the rest treat it as a tier failure and fall through."""
    from repro.baselines import GUARANTEES

    return frozenset(
        name
        for name, tag in GUARANTEES.items()
        if tag in ("cost_anchor", "lemma5")
    ) | {"bicameral"}


@dataclass
class TierReport:
    """What one tier did: outcome per attempt, for the audit trail."""

    tier: str
    outcome: str  # "ok" | "degraded" | "infeasible" | "exhausted" | "error"
    seconds: float
    attempts: int
    deadline_slice: float | None
    error: str | None = None


@dataclass
class FallbackResult:
    """Outcome of :func:`solve_with_fallback`.

    ``paths`` is always a valid set of ``k`` edge-disjoint ``s``-``t``
    paths unless the chain proved infeasibility (then the call raised).
    ``status`` is ``"ok"`` only when the bicameral tier finished its full
    pipeline; any fallback or budget exhaustion reports ``"degraded"`` /
    ``"budget_exhausted"`` with the winning tier named in ``tier``.
    """

    paths: list[list[int]]
    cost: int
    delay: int
    delay_bound: int
    delay_feasible: bool
    status: str
    tier: str
    guarantee: str
    certificate: Certificate
    tiers: list[TierReport] = field(default_factory=list)
    solution: "KRSPSolution | None" = None  # set when the bicameral tier won


def _slice_deadline(remaining: float | None, tiers_left: int) -> float | None:
    """Non-final tiers get half the remaining deadline; the last gets all."""
    if remaining is None:
        return None
    if tiers_left <= 1:
        return remaining
    return remaining / 2.0


def solve_with_fallback(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    deadline_seconds: float | None = None,
    chain: tuple[str, ...] = DEFAULT_CHAIN,
    max_attempts: int = 2,
    backoff_base: float = 0.05,
    fault_hook: Callable[[str], None] | None = None,
    **solve_kwargs,
) -> FallbackResult:
    """Solve kRSP through the degradation chain under one overall deadline.

    Parameters
    ----------
    deadline_seconds:
        Overall wall-clock budget split across tiers (``None`` = no
        deadline; tiers then only fall through on faults).
    chain:
        Tier names, strongest first. ``"bicameral"`` runs
        :func:`repro.core.krsp.solve_krsp` (with an anytime budget when a
        deadline is set); every other name must be a registered baseline.
    max_attempts, backoff_base:
        Per-tier retry policy for transient failures: attempt ``i`` sleeps
        ``backoff_base * 2**(i-1)`` seconds first (skipped when it would
        eat the remaining deadline).
    fault_hook:
        Test seam: called with ``"{tier}.attempt{i}"`` before each attempt;
        the fault-injection plan (:mod:`repro.oracle.faults`) raises or
        sleeps here to drive the degradation paths deterministically.
    solve_kwargs:
        Extra keyword arguments for the bicameral tier's
        :func:`solve_krsp` (``phase1``, ``eps``, ...).

    Raises
    ------
    InfeasibleInstanceError
        When an authoritative tier proves the instance infeasible.
    ReproError
        When every tier failed and no valid answer exists to degrade to.
    """
    started = time.perf_counter()
    reports: list[TierReport] = []
    # (rank, result) candidates from tiers that answered but missed the
    # delay budget — returned only if no later tier does better.
    candidates: list[tuple[tuple[int, int], FallbackResult]] = []
    last_error: ReproError | None = None
    authoritative = _authoritative_infeasible()

    def remaining() -> float | None:
        if deadline_seconds is None:
            return None
        return max(0.0, deadline_seconds - (time.perf_counter() - started))

    for idx, tier in enumerate(chain):
        tiers_left = len(chain) - idx
        slice_s = _slice_deadline(remaining(), tiers_left)
        tier_started = time.perf_counter()
        attempts = 0
        error_text = None
        outcome = "error"
        answer: FallbackResult | None = None

        for attempt in range(1, max_attempts + 1):
            attempts = attempt
            if attempt > 1:
                pause = backoff_base * 2 ** (attempt - 2)
                rem = remaining()
                if rem is not None and pause >= rem:
                    break  # backing off would eat the whole deadline
                time.sleep(pause)
            try:
                if fault_hook is not None:
                    fault_hook(f"{tier}.attempt{attempt}")
                answer = _run_tier(
                    g, s, t, k, delay_bound, tier, slice_s, solve_kwargs
                )
                outcome = answer.status if tier == "bicameral" else "ok"
                break
            except InfeasibleInstanceError as exc:
                if tier in authoritative:
                    obs.emit("fallback.tier", tier=tier, outcome="infeasible")
                    raise
                # Heuristic failure (e.g. greedy painted into a corner):
                # the next tier may still answer.
                outcome, error_text = "infeasible", str(exc)
                last_error = exc
                break
            except BudgetExhaustedError as exc:
                # A baseline tier ran out of its slice mid-solve (the
                # bicameral tier absorbs its budget internally).
                outcome, error_text = "exhausted", str(exc)
                last_error = exc
                break
            except Exception as exc:  # noqa: BLE001 — the chain exists to
                # survive unexpected tier failures (that's the fault model).
                outcome, error_text = "error", f"{type(exc).__name__}: {exc}"
                if isinstance(exc, ReproError):
                    last_error = exc

        reports.append(
            TierReport(
                tier=tier,
                outcome=outcome,
                seconds=time.perf_counter() - tier_started,
                attempts=attempts,
                deadline_slice=slice_s,
                error=error_text,
            )
        )
        obs.emit(
            "fallback.tier",
            tier=tier,
            outcome=outcome,
            attempts=attempts,
            deadline_slice=slice_s,
        )

        if answer is not None:
            answer.tiers = reports
            if answer.delay_feasible:
                obs.inc("fallback.answered")
                obs.gauge("fallback.tier_index", idx)
                return answer
            # Valid but over budget: keep as a candidate, try the next tier.
            overshoot = answer.delay - delay_bound
            candidates.append(((max(0, overshoot), answer.cost), answer))

    if candidates:
        best = min(candidates, key=lambda rc: rc[0])[1]
        best.tiers = reports
        obs.inc("fallback.answered_infeasible")
        return best
    obs.inc("fallback.no_answer")
    if last_error is not None:
        raise last_error
    raise ReproError("every fallback tier failed without a usable answer")


def _run_tier(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    tier: str,
    slice_seconds: float | None,
    solve_kwargs: dict,
) -> FallbackResult:
    """Run one tier under its deadline slice, normalizing the result."""
    from repro.baselines import BASELINES, GUARANTEES
    from repro.core.krsp import solve_krsp

    if tier == "bicameral":
        budget = (
            SolveBudget(deadline_seconds=slice_seconds)
            if slice_seconds is not None
            else None
        )
        sol = solve_krsp(g, s, t, k, delay_bound, budget=budget, **solve_kwargs)
        return FallbackResult(
            paths=sol.paths,
            cost=sol.cost,
            delay=sol.delay,
            delay_bound=delay_bound,
            delay_feasible=sol.delay_feasible,
            status=sol.status,
            tier=tier,
            guarantee=TIER_GUARANTEES[tier],
            certificate=sol.certificate,
            solution=sol,
        )

    if tier not in BASELINES:
        raise KeyError(f"unknown fallback tier {tier!r}")
    budget = SolveBudget(deadline_seconds=slice_seconds)
    meter = budget.start() if slice_seconds is not None else None
    with metered(meter):
        res = BASELINES[tier](g, s, t, k, delay_bound)
    cert = make_certificate(
        res.cost,
        res.delay,
        delay_bound,
        None,
        exhausted_reason=None,
        usage=meter.usage() if meter is not None else None,
    )
    return FallbackResult(
        paths=[list(p) for p in res.paths],
        cost=res.cost,
        delay=res.delay,
        delay_bound=delay_bound,
        delay_feasible=res.delay <= delay_bound,
        status=STATUS_DEGRADED,
        tier=tier,
        guarantee=TIER_GUARANTEES.get(tier, GUARANTEES.get(tier, "none")),
        certificate=cert,
    )
