"""Checkpoint/resume semantics on top of the write-ahead journal.

:mod:`repro.robustness.journal` knows bytes and frames; this module knows
solver state. It provides the three public entry points of crash-safe
solving:

* :func:`solve_checkpointed` — ``solve_krsp`` with a journal attached:
  every cancellation step is durable *before* it is committed in memory,
  periodic snapshots bound the replay cost, and a pending SIGINT/SIGTERM
  (via :class:`repro.robustness.signals.GracefulShutdown`) flushes a final
  snapshot and raises :class:`~repro.errors.SolveInterrupted`.
* :func:`resume_krsp` — reconstructs the solver from a journal (snapshot
  load + tail replay through the incremental engine's delta path) and
  continues to a result **bit-identical** to the uninterrupted run: same
  paths, same cost/delay, same ``cancel.iteration`` telemetry trail.
* :class:`CheckpointHook` — the duck-typed seam ``cancel_to_feasibility``
  and ``_solve_krsp_impl`` call; constructed by the two functions above.

Replay verification
-------------------
Resume does not trust the journal blindly. Every replayed iteration record
is re-validated against the graph:

* iteration numbers are contiguous;
* the recorded flipped edge set equals ``previous ^ new`` solution edges;
* the recorded paths re-validate as ``k`` disjoint ``s``-``t`` paths whose
  recomputed totals equal the recorded ``cost_after``/``delay_after``
  (a tampered weight cannot hide);
* the recorded Lemma-12 rate ``r = DeltaD/DeltaC`` equals the recomputed
  value, and — when the journal was written with the exact optimum
  (``opt_cost``), where Lemma 12 holds unconditionally — the sequence is
  monotone non-decreasing; with estimated bounds a non-monotone step is
  legal (see :mod:`repro.core.cancellation`) and is only counted
  (``journal.resume.rate_regressions``);
* no solution state repeats (the live loop's convergence guard);
* the residual version advances in lockstep with the engine's delta
  applies.

Any violation raises :class:`~repro.errors.JournalError` — a journal that
contradicts its own instance is worse than no journal.

Scope: checkpointing supports the production finder with the incremental
engine (the configuration whose delta path is differentially proven
bit-identical) and no epsilon-scaling; :func:`solve_checkpointed` rejects
anything else up front.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable

from repro import obs
from repro.core.cancellation import (
    DEFAULT_MAX_ITERATIONS,
    IterationRecord,
    ResumeState,
    cancel_to_feasibility,
    _r_value,
)
from repro.core.bicameral import CycleType
from repro.core.instance import KRSPInstance, PathSet
from repro.core.krsp import KRSPSolution, assemble_solution, solve_krsp
from repro.core.residual import ResidualGraph
from repro.errors import GraphError, JournalError, SolveInterrupted
from repro.graph.digraph import DiGraph
from repro.graph.io import instance_from_dict, instance_to_dict
from repro.robustness.journal import (
    KIND_FINAL,
    KIND_ITERATION,
    KIND_PRELUDE,
    KIND_SNAPSHOT,
    JournalWriter,
    instance_config_hash,
)
from repro.robustness.signals import GracefulShutdown

#: Default snapshot cadence (iterations between full-state snapshots).
#: Snapshots carry the residual CSR, so they are orders of magnitude
#: heavier than iteration records; the tail replayed on resume is at most
#: this many records.
DEFAULT_CHECKPOINT_EVERY = 64


# -- scalar / path encoding -------------------------------------------------


def _enc_fraction(f: Fraction | None) -> str | None:
    return None if f is None else str(f)


def _dec_fraction(text: str | None) -> Fraction | None:
    return None if text is None else Fraction(text)


def _enc_paths(paths) -> list[list[int]]:
    return [[int(e) for e in p] for p in paths]


def _enc_record(rec: IterationRecord, *, solution_edges: int, cycle_edges: int) -> dict[str, Any]:
    """Journal-side form of one :class:`IterationRecord` (plus the two edge
    counts the ``cancel.iteration`` event needs for bit-identical
    re-emission)."""
    return {
        "iteration": rec.iteration,
        "cycle_type": rec.cycle_type.name,
        "cycle_cost": rec.cycle_cost,
        "cycle_delay": rec.cycle_delay,
        "cycle_edges": cycle_edges,
        "solution_edges": solution_edges,
        "cost_after": rec.cost_after,
        "delay_after": rec.delay_after,
        "r_value": _enc_fraction(rec.r_value),
    }


def _dec_record(data: dict[str, Any]) -> IterationRecord:
    return IterationRecord(
        iteration=int(data["iteration"]),
        cycle_type=CycleType[data["cycle_type"]],
        cycle_cost=int(data["cycle_cost"]),
        cycle_delay=int(data["cycle_delay"]),
        cost_after=int(data["cost_after"]),
        delay_after=int(data["delay_after"]),
        r_value=_dec_fraction(data.get("r_value")),
    )


def _emit_iteration_event(rec: dict[str, Any], delay_bound: int) -> None:
    """Re-emit the ``cancel.iteration`` event a live run would have emitted
    for this record (identical fields; ``seq`` is assigned fresh by the
    session, which is why trail comparisons drop it)."""
    obs.emit(
        "cancel.iteration",
        iteration=rec["iteration"],
        cycle_type=rec["cycle_type"],
        cycle_cost=rec["cycle_cost"],
        cycle_delay=rec["cycle_delay"],
        cycle_edges=rec["cycle_edges"],
        solution_edges=rec["solution_edges"],
        cost_after=rec["cost_after"],
        delay_after=rec["delay_after"],
        delay_bound=delay_bound,
        r_value=rec.get("r_value"),
    )


# -- the write side ---------------------------------------------------------


class CheckpointHook:
    """The seam the solver calls to make one run crash-safe.

    ``cancel_to_feasibility`` invokes :meth:`poll_shutdown` at the top of
    every iteration, :meth:`record_iteration` after selecting/applying a
    cycle but *before* committing it in memory (write-ahead discipline),
    and :meth:`maybe_snapshot` after the commit; ``_solve_krsp_impl``
    invokes :meth:`write_prelude` once the LP phases are done. All methods
    are duck-typed — the solver core never imports this module.
    """

    def __init__(
        self,
        writer: JournalWriter,
        *,
        every: int = DEFAULT_CHECKPOINT_EVERY,
        shutdown: GracefulShutdown | None = None,
    ) -> None:
        self.writer = writer
        self.every = max(1, int(every))
        self.shutdown = shutdown
        # {iteration: (cycle_edges, solution_edges)} — the two counts the
        # cancel.iteration event carries but IterationRecord does not;
        # snapshots embed them so resume can re-emit the trail verbatim.
        self._counts: dict[int, tuple[int, int]] = {}

    @property
    def path(self):
        return self.writer.path

    # -- solver-facing hooks --------------------------------------------

    def poll_shutdown(self, state_fn: Callable[[], dict[str, Any]]) -> None:
        """Cooperative shutdown: on a pending first signal, flush a full
        snapshot and raise :class:`SolveInterrupted` (the CLI maps it to
        exit code ``128 + signum`` after printing the journal path)."""
        if self.shutdown is None or not self.shutdown.triggered:
            return
        self.snapshot_now(state_fn)
        raise SolveInterrupted(self.shutdown.signum, checkpoint_path=self.path)

    def record_iteration(
        self,
        *,
        iteration: int,
        ctype: CycleType,
        cycle,
        prev_edge_ids,
        new_sol: PathSet,
        r_before: Fraction | None,
        residual_version: int | None,
        meter=None,
    ) -> None:
        new_edges = set(int(e) for e in new_sol.edge_ids)
        flipped = sorted(set(int(e) for e in prev_edge_ids) ^ new_edges)
        self._counts[iteration] = (len(cycle.edges), len(new_edges))
        rec = IterationRecord(
            iteration=iteration,
            cycle_type=ctype,
            cycle_cost=cycle.cost,
            cycle_delay=cycle.delay,
            cost_after=new_sol.cost,
            delay_after=new_sol.delay,
            r_value=r_before,
        )
        payload = _enc_record(
            rec, solution_edges=len(new_edges), cycle_edges=len(cycle.edges)
        )
        payload.update(
            {
                "kind": KIND_ITERATION,
                "flipped": flipped,
                # The full new solution, not just the flip: the live loop's
                # decompose + strip ordering is what resume must land on
                # bit-identically, and re-deriving it from an edge set is
                # not guaranteed to reproduce the same path ordering.
                "paths": _enc_paths(new_sol.paths),
                "residual_version": residual_version,
                "meter": meter.usage() if meter is not None else None,
            }
        )
        self.writer.append(payload)

    def maybe_snapshot(
        self, iterations: int, state_fn: Callable[[], dict[str, Any]]
    ) -> None:
        if iterations % self.every == 0:
            self.snapshot_now(state_fn)

    def snapshot_now(self, state_fn: Callable[[], dict[str, Any]]) -> None:
        """Append a full-state snapshot record (bounds the resume tail)."""
        state = state_fn()
        sol: PathSet = state["solution"]
        best: PathSet = state["best"]
        records: list[IterationRecord] = state["records"]
        residual = state["residual"]
        meter = state.get("meter")
        self.writer.append(
            {
                "kind": KIND_SNAPSHOT,
                "iteration": len(records),
                "paths": _enc_paths(sol.paths),
                "best_paths": _enc_paths(best.paths),
                "seen_states": [list(s) for s in sorted(state["seen_states"])],
                "records": [
                    # Counts for re-emission are derivable for past records
                    # only from their journal copies; the snapshot embeds
                    # them so it is self-contained.
                    self._snapshot_record(r)
                    for r in records
                ],
                "residual": residual.to_state() if residual is not None else None,
                "meter": meter.usage() if meter is not None else None,
            }
        )

    def _snapshot_record(self, rec: IterationRecord) -> dict[str, Any]:
        # Edge counts live on the matching journal iteration record; pull
        # them from the in-memory cache maintained by record_iteration so
        # snapshots never need to re-read the file.
        counts = self._counts.get(rec.iteration, (0, 0))
        return _enc_record(rec, cycle_edges=counts[0], solution_edges=counts[1])

    # -- pipeline bookends ----------------------------------------------

    def write_prelude(
        self,
        *,
        provider: str,
        p1_solution: PathSet,
        lower_bound: Fraction | None,
        cost_cap: int | None,
        cap_paths: list[list[int]] | None,
        min_delay_flow,
    ) -> None:
        self.writer.append(
            {
                "kind": KIND_PRELUDE,
                "provider": provider,
                "p1_paths": _enc_paths(p1_solution.paths),
                "lower_bound": _enc_fraction(lower_bound),
                "cost_cap": None if cost_cap is None else int(cost_cap),
                "cap_paths": None if cap_paths is None else _enc_paths(cap_paths),
                "min_delay_weight": (
                    None if min_delay_flow is None else int(min_delay_flow.weight)
                ),
            }
        )

    def write_final(self, sol: KRSPSolution) -> None:
        self.writer.append(
            {
                "kind": KIND_FINAL,
                "paths": _enc_paths(sol.paths),
                "cost": sol.cost,
                "delay": sol.delay,
                "status": sol.status,
                "iterations": sol.iterations,
                "provider": sol.provider,
            }
        )


def _make_hook(
    writer: JournalWriter,
    *,
    every: int,
    shutdown: GracefulShutdown | None,
    counts: dict[int, tuple[int, int]] | None = None,
) -> CheckpointHook:
    hook = CheckpointHook(writer, every=every, shutdown=shutdown)
    if counts:
        hook._counts.update(counts)
    return hook


def _solve_config(
    *,
    phase1: str,
    b_max: int | None,
    max_iterations: int,
    opt_cost: int | None,
    strict_monitor: bool,
    checkpoint_every: int,
) -> dict[str, Any]:
    return {
        "phase1": phase1,
        "b_max": b_max,
        "max_iterations": max_iterations,
        "opt_cost": opt_cost,
        "strict_monitor": strict_monitor,
        "finder": "production",
        "incremental": True,
        "checkpoint_every": checkpoint_every,
    }


def solve_checkpointed(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    *,
    journal_path,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    phase1: str = "lp_rounding",
    b_max: int | None = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    opt_cost: int | None = None,
    strict_monitor: bool = False,
    finder: str = "production",
    shutdown: GracefulShutdown | None = None,
    fsync: bool = True,
) -> KRSPSolution:
    """``solve_krsp`` with a write-ahead journal at ``journal_path``.

    The result is bit-identical to the journal-less call (journalling only
    observes; it never changes a solver decision). On a first
    SIGINT/SIGTERM (when ``shutdown`` is active) a snapshot is flushed and
    :class:`SolveInterrupted` propagates with the journal path attached;
    ``resume_krsp(journal_path)`` later finishes the run.

    Only the production finder with the incremental engine is supported —
    the configuration whose delta path is proven bit-identical — and no
    epsilon-scaling (scaled iterations are not replayable in original
    units).
    """
    if finder != "production":
        raise GraphError(
            "checkpointed solving supports only the production finder "
            f"(got {finder!r}); the resume replay path relies on the "
            "incremental engine's bit-identical delta contract"
        )
    config = _solve_config(
        phase1=phase1,
        b_max=b_max,
        max_iterations=max_iterations,
        opt_cost=opt_cost,
        strict_monitor=strict_monitor,
        checkpoint_every=checkpoint_every,
    )
    writer = JournalWriter.fresh(
        journal_path,
        instance=instance_to_dict(g, s, t, k, delay_bound),
        config=config,
        fsync=fsync,
    )
    hook = _make_hook(writer, every=checkpoint_every, shutdown=shutdown)
    try:
        sol = solve_krsp(
            g,
            s,
            t,
            k,
            delay_bound,
            phase1=phase1,
            b_max=b_max,
            max_iterations=max_iterations,
            opt_cost=opt_cost,
            strict_monitor=strict_monitor,
            finder="production",
            incremental=True,
            checkpoint_hook=hook,
        )
        hook.write_final(sol)
        return sol
    finally:
        writer.close()


# -- the resume side --------------------------------------------------------


def _rebuild_instance(header: dict[str, Any]) -> KRSPInstance:
    seal = header.get("seal")
    if seal != instance_config_hash(header["instance"], header["config"]):
        raise JournalError(
            "journal seal mismatch: header instance/config were altered "
            "after sealing"
        )
    g, s, t, k, delay_bound = instance_from_dict(header["instance"])
    return KRSPInstance(graph=g, s=s, t=t, k=k, delay_bound=delay_bound)


def _replay_tail(
    inst: KRSPInstance,
    *,
    start: PathSet,
    best: PathSet,
    seen: set[tuple[int, ...]],
    records: list[IterationRecord],
    tail: list[dict[str, Any]],
    engine,
    cost_bound: Fraction | None,
    exact_bound: bool,
) -> tuple[PathSet, PathSet]:
    """Replay journal iteration records through the engine's delta path.

    Mirrors the live loop's call sequence exactly: one ``residual_for``
    per replayed record (applying the *previous* commit's flip), so the
    engine lands in the same residual/version state the crashed process
    had. Returns the (solution, best) pair after the last record.
    """
    g = inst.graph
    D = inst.delay_bound
    sol = start
    prev_r: Fraction | None = None
    for rec in tail:
        expected = len(records) + 1
        if int(rec["iteration"]) != expected:
            raise JournalError(
                f"journal iteration records not contiguous: expected "
                f"iteration {expected}, found {rec['iteration']}"
            )
        residual = engine.residual_for(sol.edge_ids)
        rv = rec.get("residual_version")
        if rv is not None and residual.version != int(rv):
            raise JournalError(
                f"residual version diverged during replay at iteration "
                f"{expected}: journal says {rv}, engine is at "
                f"{residual.version}"
            )
        prev_edges = set(int(e) for e in sol.edge_ids)
        flipped = set(int(e) for e in rec["flipped"])
        paths = [list(p) for p in rec["paths"]]
        try:
            new_sol = inst.path_set(paths)
        except GraphError as exc:
            raise JournalError(
                f"iteration {expected}: recorded paths are not a valid "
                f"solution ({exc})"
            ) from None
        if set(int(e) for e in new_sol.edge_ids) != (prev_edges ^ flipped):
            raise JournalError(
                f"iteration {expected}: flipped edge set inconsistent with "
                f"recorded solution"
            )
        if new_sol.cost != int(rec["cost_after"]) or new_sol.delay != int(
            rec["delay_after"]
        ):
            raise JournalError(
                f"iteration {expected}: recorded totals "
                f"({rec['cost_after']}, {rec['delay_after']}) != recomputed "
                f"({new_sol.cost}, {new_sol.delay})"
            )
        r_here = _r_value(D, cost_bound, sol)
        if _enc_fraction(r_here) != rec.get("r_value"):
            raise JournalError(
                f"iteration {expected}: Lemma-12 rate mismatch — journal "
                f"says {rec.get('r_value')!r}, recomputed {r_here!r}"
            )
        if r_here is not None and prev_r is not None and r_here < prev_r:
            # With the exact optimum Lemma 12 guarantees monotonicity; a
            # regression there means the journal contradicts the theory.
            # With estimated bounds a type-2 step may legally regress.
            if exact_bound:
                raise JournalError(
                    f"iteration {expected}: Lemma-12 monotonicity violated "
                    f"on replay (r {prev_r} -> {r_here} with exact bound)"
                )
            obs.inc("journal.resume.rate_regressions")
        if r_here is not None:
            prev_r = r_here
        state = tuple(sorted(new_sol.edge_ids))
        if state in seen:
            raise JournalError(
                f"iteration {expected}: journal revisits a solution state "
                f"the live loop would have rejected"
            )
        seen.add(state)
        records.append(_dec_record(rec))
        _emit_iteration_event(rec, D)
        obs.inc("cancellation.iterations")
        obs.inc(f"cancellation.applied.{rec['cycle_type'].lower()}")
        obs.inc("journal.resume.replayed_iterations")
        sol = new_sol
        if (sol.delay, sol.cost) < (best.delay, best.cost):
            best = sol
    return sol, best


def resume_krsp(
    journal_path,
    *,
    shutdown: GracefulShutdown | None = None,
    fsync: bool = True,
) -> KRSPSolution:
    """Resume a (possibly crashed) checkpointed solve from its journal.

    Reads the journal (torn tail truncated), verifies the sealed header,
    restores the newest snapshot (or the prelude, or — header-only — just
    restarts the solve into the same journal), replays the iteration tail
    through the incremental engine's delta path with full verification
    (see module docstring), re-emits the ``cancel.iteration`` telemetry
    trail, and continues the cancellation loop to completion. The final
    :class:`KRSPSolution` is bit-identical to what the uninterrupted run
    would have produced.

    A journal that already contains a ``final`` record short-circuits:
    the stored solution is revalidated and returned without re-solving.
    """
    with obs.span("resume"):
        writer, doc = JournalWriter.reopen(journal_path, fsync=fsync)
        try:
            return _resume_inner(writer, doc, shutdown)
        finally:
            writer.close()


def _resume_inner(
    writer: JournalWriter, doc, shutdown: GracefulShutdown | None
) -> KRSPSolution:
    header = doc.header
    inst = _rebuild_instance(header)
    g, D = inst.graph, inst.delay_bound
    config = header["config"]
    every = int(config.get("checkpoint_every", DEFAULT_CHECKPOINT_EVERY))
    prelude = doc.last_of(KIND_PRELUDE)

    if prelude is None:
        # Crashed before the LP phases finished: nothing to replay, the
        # solve simply restarts, appending into the same journal.
        obs.inc("journal.resume.restarts")
        hook = _make_hook(writer, every=every, shutdown=shutdown)
        sol = solve_krsp(
            g,
            inst.s,
            inst.t,
            inst.k,
            D,
            phase1=config["phase1"],
            b_max=config["b_max"],
            max_iterations=config["max_iterations"],
            opt_cost=config["opt_cost"],
            strict_monitor=config["strict_monitor"],
            finder="production",
            incremental=True,
            checkpoint_hook=hook,
        )
        hook.write_final(sol)
        return sol

    lower_bound = _dec_fraction(prelude.get("lower_bound"))
    opt_cost = config.get("opt_cost")
    cost_bound = Fraction(opt_cost) if opt_cost is not None else lower_bound
    provider = prelude["provider"]

    final = doc.last_of(KIND_FINAL)
    snap = doc.last_of(KIND_SNAPSHOT)
    iter_recs = doc.of_kind(KIND_ITERATION)

    # Restore the newest durable full state.
    if snap is not None:
        sol = inst.path_set([list(p) for p in snap["paths"]])
        best = inst.path_set([list(p) for p in snap["best_paths"]])
        seen = {tuple(int(e) for e in s) for s in snap["seen_states"]}
        base_records = list(snap["records"])
        snap_iter = int(snap["iteration"])
        residual_state = snap["residual"]
    else:
        sol = inst.path_set([list(p) for p in prelude["p1_paths"]])
        best = sol
        seen = {tuple(sorted(sol.edge_ids))}
        base_records = []
        snap_iter = 0
        residual_state = None

    records = [_dec_record(r) for r in base_records]
    tail = [r for r in iter_recs if int(r["iteration"]) > snap_iter]

    if final is not None:
        # Completed journal: revalidate the stored answer and re-emit the
        # full trail; no solving needed.
        all_recs = base_records + tail
        fin_sol = inst.path_set([list(p) for p in final["paths"]])
        if fin_sol.cost != int(final["cost"]) or fin_sol.delay != int(final["delay"]):
            raise JournalError(
                "final record totals do not match its recorded paths"
            )
        for rec in all_recs:
            _emit_iteration_event(rec, D)
        records += [_dec_record(r) for r in tail]
        from repro.core.cancellation import CancellationResult

        result = CancellationResult(solution=fin_sol, records=records)
        return assemble_solution(
            g,
            D,
            final_paths=[list(p) for p in fin_sol.paths],
            result=result,
            exhausted=None,
            lower_bound=lower_bound,
            provider_name=provider,
            scaled=False,
            timings={},
            meter=None,
        )

    from repro.perf import IncrementalSearch

    engine = IncrementalSearch(g)
    if residual_state is not None:
        engine.restore(ResidualGraph.from_state(residual_state))

    # The pre-snapshot history replays from the snapshot's embedded copy
    # (telemetry only — its state is already folded into the snapshot).
    for rec in base_records:
        _emit_iteration_event(rec, D)

    sol, best = _replay_tail(
        inst,
        start=sol,
        best=best,
        seen=seen,
        records=records,
        tail=tail,
        engine=engine,
        cost_bound=cost_bound,
        exact_bound=opt_cost is not None,
    )

    counts = {
        int(r["iteration"]): (int(r["cycle_edges"]), int(r["solution_edges"]))
        for r in base_records + tail
    }
    hook = _make_hook(writer, every=every, shutdown=shutdown, counts=counts)
    resume_state = ResumeState(
        solution=sol,
        records=records,
        seen_states=seen,
        best=best,
        engine=engine,
    )
    result = cancel_to_feasibility(
        inst,
        start=sol,
        cost_lower_bound=lower_bound,
        opt_cost=opt_cost,
        cost_cap=prelude.get("cost_cap"),
        b_max=config["b_max"],
        max_iterations=config["max_iterations"],
        strict_monitor=config["strict_monitor"],
        finder="production",
        incremental=True,
        journal=hook,
        resume_state=resume_state,
    )
    sol_out = assemble_solution(
        g,
        D,
        final_paths=[list(p) for p in result.solution.paths],
        result=result,
        exhausted=result.exhausted,
        lower_bound=lower_bound,
        provider_name=provider,
        scaled=False,
        timings={},
        meter=None,
    )
    hook.write_final(sol_out)
    return sol_out


__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "CheckpointHook",
    "resume_krsp",
    "solve_checkpointed",
]
