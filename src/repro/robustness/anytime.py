"""Anytime-result vocabulary: statuses and degradation certificates.

An anytime solver never answers "I ran out of time" with an exception —
it answers with the best valid solution it has, *tagged* so the caller can
tell how much trust to place in it:

``STATUS_OK``
    The full bifactor pipeline finished; the result is bit-identical to an
    unbudgeted solve and carries the paper's (1, 2) / (1+eps, 2+eps)
    guarantee.
``STATUS_BUDGET_EXHAUSTED``
    The budget tripped mid-pipeline; the result is the best **valid**
    (k edge-disjoint s-t paths) solution seen so far, possibly
    delay-infeasible. The certificate quantifies the miss.
``STATUS_DEGRADED``
    A weaker tier produced the answer — either the fallback chain dropped
    to LP-rounding (bifactor (2, 2), Guo FAW 2014) or greedy-sequential
    (no guarantee), or the cancellation loop stalled (state repetition
    under estimated bounds) while still holding a valid solution.

The :class:`Certificate` is the machine-checkable residue of a degraded
answer: how far over the delay budget it is (``delay_slack < 0`` means
infeasible by that much) and how far its cost sits above the certified
lower bound (``cost_bound_gap`` / ``cost_bound_ratio``). See
docs/ROBUSTNESS.md for the taxonomy.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from fractions import Fraction

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_BUDGET_EXHAUSTED = "budget_exhausted"

#: All statuses a budgeted solve can report, in decreasing order of trust.
STATUSES = (STATUS_OK, STATUS_DEGRADED, STATUS_BUDGET_EXHAUSTED)


@dataclass(frozen=True)
class Certificate:
    """What a non-``ok`` (or any) result can still prove about itself.

    Attributes
    ----------
    delay_slack:
        ``delay_bound - delay``. Nonnegative iff the answer is
        delay-feasible; ``-x`` means the budget is missed by ``x``.
    cost_bound_gap:
        ``cost - lower_bound`` against the certified C_OPT lower bound
        (``None`` when no bound survived, e.g. after epsilon-scaling).
    cost_bound_ratio:
        ``cost / lower_bound`` (``None`` without a positive bound) — an
        upper bound on the true approximation ratio.
    exhausted_reason:
        ``"deadline" | "iterations" | "search_nodes" | "stalled"`` when
        the pipeline stopped early, else ``None``.
    elapsed_seconds, iterations_used, search_nodes_used:
        Budget odometer at the time the result was sealed (zeros when the
        solve ran unbudgeted).
    """

    delay_slack: int
    cost_bound_gap: float | None = None
    cost_bound_ratio: float | None = None
    exhausted_reason: str | None = None
    elapsed_seconds: float = 0.0
    iterations_used: int = 0
    search_nodes_used: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


def make_certificate(
    cost: int,
    delay: int,
    delay_bound: int,
    lower_bound: Fraction | None,
    exhausted_reason: str | None = None,
    usage: dict | None = None,
) -> Certificate:
    """Build a :class:`Certificate` from solve outputs and meter usage."""
    gap = ratio = None
    if lower_bound is not None:
        gap = float(Fraction(cost) - lower_bound)
        if lower_bound > 0:
            ratio = float(Fraction(cost) / lower_bound)
    usage = usage or {}
    return Certificate(
        delay_slack=delay_bound - delay,
        cost_bound_gap=gap,
        cost_bound_ratio=ratio,
        exhausted_reason=exhausted_reason,
        elapsed_seconds=float(usage.get("elapsed_seconds", 0.0)),
        iterations_used=int(usage.get("iterations_used", 0)),
        search_nodes_used=int(usage.get("search_nodes_used", 0)),
    )
