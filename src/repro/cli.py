"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``
    Solve a kRSP instance from a JSON file (schema of
    :mod:`repro.graph.io` plus ``s``, ``t``, ``k``, ``delay_bound`` keys)
    or from a generated workload, printing paths and totals.
``resume``
    Resume a crashed or interrupted ``solve --checkpoint`` run from its
    write-ahead journal; the finished result is bit-identical to the
    uninterrupted solve (see docs/ROBUSTNESS.md, "Crash safety").
``resolve``
    Apply an instance delta (edge drift/removal/addition, demand move) to
    a persisted online session (``solve --state``) and re-solve, warm when
    the delta preserves the warm-start preconditions (see docs/ONLINE.md).
``experiment``
    Run one experiment from the registry (``f1``, ``f2``, ``e1`` ... ``e9``)
    and print its table.
``generate``
    Generate a random instance and write it as JSON (for sharing or
    regression pinning).
``fuzz``
    Run the differential/metamorphic oracle (:mod:`repro.oracle`) under a
    time budget: replay the regression corpus, stream adversarial
    instances through every solver vs the exact MILP, shrink and persist
    any reproducer, and emit a JSON report for CI.
``trace``
    Render (or ``--validate``) a JSONL telemetry trace written by
    ``solve --trace`` / ``sweep --trace`` / ``fuzz --trace``: phase-time
    breakdown, hot-span tree, latency quantiles, counters, and the
    per-iteration cancellation table. ``--flamegraph OUT`` folds the span
    tree into collapsed-stack format; ``--diff A B`` compares two traces
    with counter drift ranked by contribution. See
    ``docs/OBSERVABILITY.md``.
``metrics``
    ``serve`` runs a Prometheus ``/metrics`` aggregator that solves and
    sweeps publish to via ``--metrics-port``; ``check`` validates a
    scraped exposition page as text-format 0.0.4.
``serve``
    Run the kRSP solve service (docs/SERVICE.md): an async HTTP server
    scheduling solve/resolve requests from many tenants onto a worker
    pool, with fair weighted scheduling, in-flight dedup, per-request
    deadlines, and verified certificates on every response. SIGTERM
    drains gracefully (stop admitting, finish queued work, then exit).

Examples
--------
::

    python -m repro generate --family er --n 16 --seed 7 -o inst.json
    python -m repro solve inst.json
    python -m repro solve inst.json --eps 0.25 --phase1 lagrangian
    python -m repro solve inst.json --trace out.jsonl
    python -m repro trace out.jsonl
    python -m repro trace out.jsonl --validate
    python -m repro trace out.jsonl --flamegraph out.collapsed
    python -m repro trace --diff a.jsonl b.jsonl
    python -m repro metrics serve --port 9109 &
    python -m repro solve inst.json --metrics-port 9109
    python -m repro metrics check http://127.0.0.1:9109/metrics
    python -m repro serve --port 8710 --workers 4 --metrics-port 9109
    python -m repro experiment e1
    python -m repro fuzz --budget 30 --seed 0 --report fuzz.json
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path

from repro import obs
from repro.core.krsp import solve_krsp
from repro.errors import (
    InfeasibleInstanceError,
    InputError,
    JournalError,
    ReproError,
    SolveInterrupted,
)
from repro.eval.experiments import EXPERIMENTS
from repro.eval.reporting import format_table
from repro.eval.workloads import interesting_delay_bound
from repro.graph.io import instance_from_dict, instance_to_dict, load_instance
from repro.robustness import SolveBudget


def _load_instance(path: str):
    return load_instance(path)


@contextlib.contextmanager
def _telemetry(trace_path, metrics_port, label):
    """Session + optional `/metrics` attachment for one CLI command.

    Yields the live :class:`repro.obs.Telemetry` (or ``None`` when neither
    ``--trace`` nor ``--metrics-port`` was given). With a metrics port the
    session is published to the shared endpoint on that port — reusing an
    aggregator already listening there (``repro metrics serve``), else
    starting an in-process one for the duration of the command.
    """
    if not trace_path and not metrics_port:
        yield None
        return
    with obs.session(trace_path=trace_path, label=label) as tel:
        publisher = server = None
        if metrics_port:
            from repro.obs.server import attach_metrics

            publisher, server = attach_metrics(metrics_port, tel, label)
        try:
            yield tel
        finally:
            if publisher is not None:
                publisher.close()
            if server is not None:
                server.close()


def _print_solution(
    g, s, t, k, bound, *, paths, cost, delay, feasible, status, cert,
    detail, lower_bound, verify,
) -> int:
    print(f"cost={cost} delay={delay} (budget {bound}, "
          f"feasible={feasible}) status={status} {detail}")
    if lower_bound is not None:
        print(f"certified lower bound on OPT cost: {float(lower_bound):.3f}")
    if cert is not None and status != "ok":
        ratio = (
            f" cost_ratio<={cert.cost_bound_ratio:.3f}"
            if cert.cost_bound_ratio is not None
            else ""
        )
        elapsed = (
            f" elapsed={cert.elapsed_seconds:.3f}s"
            if cert.elapsed_seconds is not None
            else ""
        )
        print(f"certificate: delay_slack={cert.delay_slack}{ratio}"
              f"{elapsed} reason={cert.exhausted_reason}")
    for i, path in enumerate(paths, 1):
        hops = [int(g.tail[path[0]])] + [int(g.head[e]) for e in path]
        print(f"path {i}: {hops} cost={g.cost_of(path)} delay={g.delay_of(path)}")
    if verify:
        from repro.core.verify import verify_solution

        report = verify_solution(g, s, t, k, bound, paths)
        audit = "clean" if report.clean else f"ISSUES: {report.issues}"
        ratio = (
            f" ratio<= {report.approximation_ratio_upper_bound:.3f}"
            if report.approximation_ratio_upper_bound is not None
            else ""
        )
        print(f"independent audit: {audit}{ratio}")
        if not report.clean:
            return 4
    return 0


def _report_interrupt(exc: SolveInterrupted) -> int:
    print(f"interrupted by signal {exc.signum}; checkpoint flushed to "
          f"{exc.checkpoint_path}", file=sys.stderr)
    print(f"resume with: python -m repro resume {exc.checkpoint_path}",
          file=sys.stderr)
    return 128 + exc.signum


def cmd_solve(args: argparse.Namespace) -> int:
    try:
        g, s, t, k, bound = _load_instance(args.instance)
    except InputError as exc:
        print(f"bad instance: {exc}", file=sys.stderr)
        return 2
    eps = args.eps if args.eps else None
    if args.checkpoint and (eps is not None or args.fallback
                            or args.deadline is not None):
        print("--checkpoint is incompatible with --eps, --fallback and "
              "--deadline (checkpointed solves must be deterministic and "
              "replayable; see docs/ROBUSTNESS.md)", file=sys.stderr)
        return 2
    if args.state and (eps is not None or args.fallback):
        print("--state is incompatible with --eps and --fallback (online "
              "sessions carry the registered (1, 2) guarantee; see "
              "docs/ONLINE.md)", file=sys.stderr)
        return 2
    session = _telemetry(
        args.trace, args.metrics_port, f"solve {args.instance}"
    )
    try:
        with session:
            if args.checkpoint:
                from repro.robustness import (
                    DEFAULT_CHECKPOINT_EVERY,
                    GracefulShutdown,
                    solve_checkpointed,
                )

                with GracefulShutdown() as shutdown:
                    sol = solve_checkpointed(
                        g, s, t, k, bound,
                        journal_path=args.checkpoint,
                        checkpoint_every=(args.checkpoint_every
                                          or DEFAULT_CHECKPOINT_EVERY),
                        phase1=args.phase1,
                        shutdown=shutdown,
                    )
                paths, cost, delay = sol.paths, sol.cost, sol.delay
                feasible, status, cert = sol.delay_feasible, sol.status, sol.certificate
                detail = (f"iterations={sol.iterations} "
                          f"checkpoint={args.checkpoint}")
                lower_bound = sol.cost_lower_bound
            elif args.fallback:
                from repro.robustness import solve_with_fallback

                fb = solve_with_fallback(
                    g, s, t, k, bound,
                    deadline_seconds=args.deadline,
                    phase1=args.phase1,
                    eps=eps,
                )
                paths, cost, delay = fb.paths, fb.cost, fb.delay
                feasible, status, cert = fb.delay_feasible, fb.status, fb.certificate
                detail = f"tier={fb.tier} guarantee={fb.guarantee}"
                lower_bound = None
            else:
                budget = (
                    SolveBudget(deadline_seconds=args.deadline)
                    if args.deadline is not None
                    else None
                )
                sol = solve_krsp(
                    g, s, t, k, bound, phase1=args.phase1, eps=eps, budget=budget
                )
                paths, cost, delay = sol.paths, sol.cost, sol.delay
                feasible, status, cert = sol.delay_feasible, sol.status, sol.certificate
                detail = f"iterations={sol.iterations}"
                lower_bound = sol.cost_lower_bound
    except SolveInterrupted as exc:
        return _report_interrupt(exc)
    except InfeasibleInstanceError as exc:
        # Exit 2: a property of the *instance*, proven — distinct from
        # exit 1 (the solve itself failed) so scripts can tell them apart.
        print(f"infeasible: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.state:
        from repro.core.instance import KRSPInstance
        from repro.online import OnlineState, save_state

        save_state(args.state, OnlineState(
            instance=KRSPInstance(graph=g, s=s, t=t, k=k, delay_bound=bound),
            solution=sol,
            lower_bound=lower_bound,
            phase1=args.phase1,
        ))
        print(f"online session state written to {args.state} "
              f"(churn it with `repro resolve {args.state} --delta ...`)")
    return _print_solution(
        g, s, t, k, bound, paths=paths, cost=cost, delay=delay,
        feasible=feasible, status=status, cert=cert, detail=detail,
        lower_bound=lower_bound, verify=args.verify,
    )


def cmd_resume(args: argparse.Namespace) -> int:
    from repro.robustness import GracefulShutdown, read_journal, resume_krsp

    session = (
        obs.session(trace_path=args.trace, label=f"resume {args.journal}")
        if args.trace
        else contextlib.nullcontext()
    )
    try:
        header = read_journal(args.journal).header
        g, s, t, k, bound = instance_from_dict(header["instance"])
        with session:
            with GracefulShutdown() as shutdown:
                sol = resume_krsp(args.journal, shutdown=shutdown)
    except SolveInterrupted as exc:
        return _report_interrupt(exc)
    except JournalError as exc:
        print(f"bad journal: {exc}", file=sys.stderr)
        return 2
    except InfeasibleInstanceError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.trace:
        print(f"trace written to {args.trace}")
    return _print_solution(
        g, s, t, k, bound, paths=sol.paths, cost=sol.cost, delay=sol.delay,
        feasible=sol.delay_feasible, status=sol.status, cert=sol.certificate,
        detail=f"iterations={sol.iterations} resumed={args.journal}",
        lower_bound=sol.cost_lower_bound, verify=args.verify,
    )


def cmd_resolve(args: argparse.Namespace) -> int:
    from repro.online import load_delta, load_state
    from repro.online import resolve as online_resolve
    from repro.online import save_state

    if args.checkpoint and args.deadline is not None:
        print("--checkpoint is incompatible with --deadline (checkpointed "
              "resolves must be deterministic and replayable; see "
              "docs/ROBUSTNESS.md)", file=sys.stderr)
        return 2
    try:
        state = load_state(args.state)
        delta = load_delta(args.delta)
    except InputError as exc:
        print(f"bad input: {exc}", file=sys.stderr)
        return 2
    out = args.out or args.state
    budget = (
        SolveBudget(deadline_seconds=args.deadline)
        if args.deadline is not None
        else None
    )
    session = (
        obs.session(trace_path=args.trace,
                    label=f"resolve {args.state} + {args.delta}")
        if args.trace
        else contextlib.nullcontext()
    )
    try:
        with session:
            if args.checkpoint:
                from repro.robustness import (
                    DEFAULT_CHECKPOINT_EVERY,
                    GracefulShutdown,
                )

                with GracefulShutdown() as shutdown:
                    sol = online_resolve(
                        state, delta, budget=budget,
                        journal_path=args.checkpoint,
                        checkpoint_every=(args.checkpoint_every
                                          or DEFAULT_CHECKPOINT_EVERY),
                        shutdown=shutdown,
                    )
            else:
                sol = online_resolve(state, delta, budget=budget)
    except SolveInterrupted as exc:
        # The state file is left untouched: mid-resolve session state is
        # not a valid snapshot. Finish via `repro resume JOURNAL`, then
        # re-establish the session with `repro solve --state`.
        return _report_interrupt(exc)
    except InputError as exc:
        print(f"bad delta: {exc}", file=sys.stderr)
        return 2
    except InfeasibleInstanceError as exc:
        save_state(out, state)  # patched-but-unsolved; later deltas may recover
        print(f"infeasible after delta: {exc}", file=sys.stderr)
        print(f"session state (no solution) saved to {out}; a later delta "
              f"may restore feasibility", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    save_state(out, state)
    if args.trace:
        print(f"trace written to {args.trace}")
    info = state.last
    inst = state.instance
    fb = f" fallback={info.fallback}" if info.fallback else ""
    detail = (f"mode={info.mode}{fb} cycles={info.cycles_cancelled} "
              f"iterations={sol.iterations} state={out}")
    return _print_solution(
        inst.graph, inst.s, inst.t, inst.k, inst.delay_bound,
        paths=sol.paths, cost=sol.cost, delay=sol.delay,
        feasible=sol.delay_feasible, status=sol.status, cert=sol.certificate,
        detail=detail, lower_bound=sol.cost_lower_bound, verify=args.verify,
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.eval.sweeps import Sweep, pivot, run_sweep

    params: dict[str, list] = {}
    for spec in args.param or []:
        if "=" not in spec:
            print(f"bad --param {spec!r}; expected name=v1,v2,...", file=sys.stderr)
            return 2
        name, raw = spec.split("=", 1)
        values = []
        for tok in raw.split(","):
            try:
                values.append(int(tok))
            except ValueError:
                values.append(float(tok))
        params[name] = values
    sweep = Sweep(
        family=args.family,
        family_params=params,
        solvers=args.solver or ["bicameral"],
        n_instances=args.n_instances,
        seed=args.seed,
    )
    if (args.resume or args.jsonl) and not args.parallel:
        print("--jsonl/--resume require --parallel (the durable record "
              "sink lives in the parallel harness)", file=sys.stderr)
        return 2
    if args.resume and not args.jsonl:
        print("--resume requires --jsonl PATH (the file to resume from)",
              file=sys.stderr)
        return 2
    session = _telemetry(
        args.trace, args.metrics_port, f"sweep {args.family} seed={args.seed}"
    )
    try:
        with session:
            if args.parallel and args.jsonl:
                from repro.robustness import GracefulShutdown

                with GracefulShutdown() as shutdown:
                    records = run_sweep(
                        sweep, parallel=True,
                        jsonl_path=args.jsonl, resume=args.resume,
                        shutdown=shutdown,
                    )
            else:
                records = run_sweep(sweep, parallel=args.parallel)
    except SolveInterrupted as exc:
        print(f"interrupted by signal {exc.signum}; completed trials are "
              f"durable in {exc.checkpoint_path}", file=sys.stderr)
        print(f"resume with: python -m repro sweep ... --parallel "
              f"--jsonl {exc.checkpoint_path} --resume", file=sys.stderr)
        return 128 + exc.signum
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        print(f"trace written to {args.trace}")
    print(
        pivot(
            records,
            row_key=lambda r: tuple(sorted((k, r.extra[k]) for k in params)),
        )
    )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.id not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; choose from "
              f"{sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    headers, rows = EXPERIMENTS[args.id]()
    print(format_table(headers, rows, title=f"experiment {args.id}"))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.graph.generators import gnp_digraph, grid_digraph, waxman_digraph
    from repro.graph.weights import anticorrelated_weights, uniform_weights

    if args.family == "er":
        g = gnp_digraph(args.n, 0.35, rng=args.seed)
        s, t = 0, g.n - 1
    elif args.family == "grid":
        side = max(2, int(args.n**0.5))
        g, s, t = grid_digraph(side, side)
    elif args.family == "waxman":
        g, _ = waxman_digraph(args.n, rng=args.seed)
        s, t = 0, g.n - 1
    else:
        print(f"unknown family {args.family!r}", file=sys.stderr)
        return 2
    if args.weights == "anticorrelated":
        g = anticorrelated_weights(g, rng=args.seed + 1)
    else:
        g = uniform_weights(g, rng=args.seed + 1)
    bound = interesting_delay_bound(g, s, t, args.k, tightness=args.tightness)
    if bound is None:
        print("generated instance has no interesting budget band; "
              "try another seed", file=sys.stderr)
        return 3
    Path(args.output).write_text(
        json.dumps(instance_to_dict(g, s, t, args.k, bound))
    )
    print(f"wrote {args.output}: n={g.n} m={g.m} k={args.k} D={bound}")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.oracle import SUBSTRATES, FuzzConfig, run_fuzz, write_report

    substrates = None
    if args.substrates:
        substrates = [s.strip() for s in args.substrates.split(",") if s.strip()]
        unknown = sorted(set(substrates) - set(SUBSTRATES))
        if unknown:
            print(f"unknown substrates {unknown}; choose from "
                  f"{sorted(SUBSTRATES)}", file=sys.stderr)
            return 2
    corpus_dir = None if args.no_corpus else args.corpus
    config = FuzzConfig(
        seed=args.seed,
        budget_seconds=args.budget,
        max_instances=args.max_instances,
        substrates=substrates,
        corpus_dir=corpus_dir,
        replay_corpus=not args.no_replay,
        shrink_failures=not args.no_shrink,
    )
    # Label the trace header with the run's inputs (mirroring `solve
    # --trace`) so diff/flamegraph reports can name what they compare.
    session = (
        obs.session(
            trace_path=args.trace,
            label=f"fuzz seed={args.seed} budget={args.budget:g}s",
        )
        if args.trace
        else contextlib.nullcontext()
    )
    try:
        with session:
            report = run_fuzz(config)
    except (ReproError, json.JSONDecodeError) as exc:
        print(f"error: corrupt corpus entry under {corpus_dir}: {exc}",
              file=sys.stderr)
        return 2
    d = report.as_dict()
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.report:
        write_report(report, args.report)
    print(f"fuzz: {d['instances_checked']} instances "
          f"({d['base_instances']} base, {d['transformed_instances']} transformed, "
          f"{d['corpus_replayed']} corpus) in {d['elapsed_seconds']:.1f}s")
    print(f"substrates: {', '.join(f'{k}={v}' for k, v in d['per_substrate'].items())}")
    print(f"transforms: {', '.join(f'{k}={v}' for k, v in d['per_transform'].items())}")
    if report.clean:
        print("clean: no differential, metamorphic, or invariant failures")
        return 0
    print(f"FAILURES: {len(report.failures)}", file=sys.stderr)
    for rec in report.failures:
        where = f" [reproducer: {rec.reproducer}]" if rec.reproducer else ""
        print(f"  {rec.kind}/{rec.solver} on {rec.label}: {rec.message}{where}",
              file=sys.stderr)
    return 1


def _load_trace_or_complain(path: str):
    """Load a trace for the CLI; returns ``None`` after printing the
    diagnosis (exit-2 discipline: garbage input is the caller's problem,
    reported in one line, never a traceback)."""
    from repro.obs.report import load_trace

    try:
        return load_trace(path)
    except (OSError, ValueError, InputError) as exc:
        print(f"error: cannot load trace {path!r}: {exc}", file=sys.stderr)
        return None


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.report import render_report, report_json, validate_trace

    if args.diff:
        if args.trace_file:
            print("error: --diff A B takes its two traces as option "
                  "arguments; drop the positional trace file",
                  file=sys.stderr)
            return 2
        from repro.obs.diff import diff_json, diff_traces, render_diff

        a = _load_trace_or_complain(args.diff[0])
        b = _load_trace_or_complain(args.diff[1])
        if a is None or b is None:
            return 2
        d = diff_traces(a, b)
        if args.json:
            print(json.dumps(diff_json(d), indent=2, sort_keys=True))
        else:
            print(render_diff(d, top=args.top))
        return 0
    if not args.trace_file:
        print("error: a trace file is required (or use --diff A B)",
              file=sys.stderr)
        return 2
    trace = _load_trace_or_complain(args.trace_file)
    if trace is None:
        return 2
    if args.flamegraph:
        from repro.obs.flamegraph import fold_trace

        folded = fold_trace(trace)
        Path(args.flamegraph).write_text(folded.text())
        capped = (f" (capped {folded.capped_ns}ns of rounding jitter)"
                  if folded.capped_ns else "")
        print(f"wrote {args.flamegraph}: {len(folded.lines)} stacks from "
              f"{folded.span_count} spans, {folded.total_ns}ns self time "
              f"== {folded.root_total_ns}ns root time{capped}")
        print("render: flamegraph.pl {0} > out.svg, or load {0} in "
              "speedscope".format(args.flamegraph))
        return 0
    if args.validate:
        problems = validate_trace(trace)
        if problems:
            print(f"INVALID: {len(problems)} problem(s) in {args.trace_file}",
                  file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(f"valid: {args.trace_file} (schema {trace.header.get('schema')}, "
              f"{len(trace.spans)} spans, {len(trace.events)} events, "
              f"{len(trace.counters)} counters)")
        return 0
    if args.json:
        print(json.dumps(report_json(trace, top=args.top), indent=2, sort_keys=True))
    else:
        print(render_report(trace, top=args.top))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    if args.metrics_command == "serve":
        return _metrics_serve(args)
    return _metrics_check(args)


def _metrics_serve(args: argparse.Namespace) -> int:
    import time

    from repro.obs.server import MetricsServer

    try:
        srv = MetricsServer(args.port, host=args.host,
                            allow_remote_push=args.allow_remote_push)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(f"metrics aggregator on {srv.url}/metrics (push endpoint "
          f"{srv.url}/push, health {srv.url}/healthz)")
    print("attach solves with: repro solve INST --metrics-port "
          f"{args.port}")
    try:
        if args.for_seconds is not None:
            time.sleep(args.for_seconds)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        srv.close()
    return 0


def _metrics_check(args: argparse.Namespace) -> int:
    from urllib.error import URLError
    from urllib.request import urlopen

    from repro.obs.promtext import parse_prometheus

    source = args.source
    try:
        if source.startswith(("http://", "https://")):
            with urlopen(source, timeout=5.0) as resp:
                text = resp.read().decode("utf-8")
        else:
            text = Path(source).read_text()
    except (OSError, URLError, UnicodeDecodeError) as exc:
        print(f"error: cannot read {source!r}: {exc}", file=sys.stderr)
        return 2
    try:
        families = parse_prometheus(text)
    except InputError as exc:
        print(f"INVALID exposition format: {exc}", file=sys.stderr)
        return 1
    by_type: dict[str, int] = {}
    for fam in families.values():
        by_type[fam.type] = by_type.get(fam.type, 0) + 1
    kinds = ", ".join(f"{v} {k}" for k, v in sorted(by_type.items()))
    print(f"valid text-format 0.0.4: {len(families)} metric families "
          f"({kinds}) from {source}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service.server import ServiceConfig, SolveService

    weights: dict[str, int] = {}
    for spec in args.tenant_weight or []:
        name, sep, raw = spec.partition("=")
        try:
            weight = int(raw)
            if not sep or not name or weight < 1:
                raise ValueError
        except ValueError:
            print(f"error: --tenant-weight wants NAME=W with W >= 1, "
                  f"got {spec!r}", file=sys.stderr)
            return 2
        weights[name] = weight

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        spool_dir=args.spool,
        metrics_port=args.metrics_port,
        default_deadline=args.default_deadline,
        max_queue=args.max_queue,
        tenant_weights=weights,
        allow_chaos=args.allow_chaos,
        warm=not args.no_warm,
    )

    async def _main() -> int:
        service = SolveService(config)
        try:
            await service.start()
        except OSError as exc:
            print(f"error: cannot bind {config.host}:{config.port}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"kRSP service ready on {service.url} "
              f"({config.workers} workers, spool {service.spool})",
              flush=True)
        shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, shutdown.set)
        drained = True
        try:
            if args.for_seconds is not None:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(shutdown.wait(), args.for_seconds)
            else:
                await shutdown.wait()
            print("draining: no new requests, finishing queued work...",
                  flush=True)
            drained = await service.drain(timeout=args.drain_timeout)
        finally:
            await service.stop()
        if not drained:
            print(f"error: drain timed out after {args.drain_timeout}s",
                  file=sys.stderr)
            return 1
        print("drained cleanly", flush=True)
        return 0

    return asyncio.run(_main())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="kRSP bifactor approximation (SPAA 2015)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve a JSON instance")
    p_solve.add_argument("instance", help="instance JSON path")
    p_solve.add_argument("--phase1", default="lp_rounding",
                         choices=["lp_rounding", "lagrangian", "minsum"])
    p_solve.add_argument("--eps", type=float, default=None,
                         help="run the (1+eps, 2+eps) polynomial variant")
    p_solve.add_argument("--verify", action="store_true",
                         help="independently audit the returned solution")
    p_solve.add_argument("--deadline", type=float, default=None, metavar="S",
                         help="wall-clock budget in seconds; on exhaustion "
                              "the best valid solution found is returned "
                              "with status != ok (anytime semantics)")
    p_solve.add_argument("--fallback", action="store_true",
                         help="on tier failure degrade through the chain "
                              "bicameral -> lp_rounding_2_2 -> "
                              "greedy_sequential (shares --deadline)")
    p_solve.add_argument("--trace", default=None, metavar="OUT.JSONL",
                         help="record a telemetry trace (spans, counters, "
                              "events) to this JSONL file; inspect with "
                              "`repro trace OUT.JSONL`")
    p_solve.add_argument("--checkpoint", default=None, metavar="JOURNAL",
                         help="write a crash-safe write-ahead journal here; "
                              "if the process dies, `repro resume JOURNAL` "
                              "finishes the solve bit-identically")
    p_solve.add_argument("--checkpoint-every", type=int, default=None,
                         metavar="N",
                         help="full-state snapshot cadence in cancellation "
                              "iterations (default 64; smaller = cheaper "
                              "resume, larger = cheaper solve)")
    p_solve.add_argument("--state", default=None, metavar="STATE",
                         help="persist the solved instance + solution as an "
                              "online session; apply churn deltas to it "
                              "with `repro resolve` (docs/ONLINE.md)")
    p_solve.add_argument("--metrics-port", type=int, default=None, metavar="P",
                         help="publish live telemetry to a /metrics endpoint "
                              "on this localhost port (joins a running "
                              "`repro metrics serve` aggregator, else serves "
                              "in-process for the duration of the solve)")
    p_solve.set_defaults(func=cmd_solve)

    p_resolve = sub.add_parser(
        "resolve",
        help="apply a churn delta to an online session and re-solve warm",
    )
    p_resolve.add_argument("state", help="session state from solve --state "
                                         "or a previous resolve")
    p_resolve.add_argument("--delta", required=True, metavar="DELTA",
                           help="instance-delta/1 JSON file (docs/ONLINE.md)")
    p_resolve.add_argument("--out", default=None, metavar="STATE",
                           help="write the updated session here instead of "
                                "overwriting the input state")
    p_resolve.add_argument("--verify", action="store_true",
                           help="independently audit the returned solution")
    p_resolve.add_argument("--deadline", type=float, default=None, metavar="S",
                           help="wall-clock budget in seconds (anytime "
                                "semantics as in solve --deadline)")
    p_resolve.add_argument("--trace", default=None, metavar="OUT.JSONL",
                           help="record a telemetry trace (includes "
                                "online.* counters and the resolve event)")
    p_resolve.add_argument("--checkpoint", default=None, metavar="JOURNAL",
                           help="write a crash-safe journal for the warm "
                                "cancellation; `repro resume JOURNAL` "
                                "finishes a killed resolve bit-identically")
    p_resolve.add_argument("--checkpoint-every", type=int, default=None,
                           metavar="N",
                           help="snapshot cadence in cancellation iterations "
                                "(default 64)")
    p_resolve.set_defaults(func=cmd_resolve)

    p_resume = sub.add_parser(
        "resume", help="resume a crashed/interrupted checkpointed solve"
    )
    p_resume.add_argument("journal", help="journal path from solve --checkpoint")
    p_resume.add_argument("--verify", action="store_true",
                          help="independently audit the final solution")
    p_resume.add_argument("--trace", default=None, metavar="OUT.JSONL",
                          help="record a telemetry trace (includes the "
                               "re-emitted cancel.iteration trail and the "
                               "resume span)")
    p_resume.set_defaults(func=cmd_resume)

    p_sweep = sub.add_parser("sweep", help="run a parameter-grid sweep")
    p_sweep.add_argument("family", help="workload family name")
    p_sweep.add_argument("--param", action="append",
                         help="grid axis, e.g. --param n=10,14")
    p_sweep.add_argument("--solver", action="append",
                         default=None, help="solver name (repeatable)")
    p_sweep.add_argument("--n-instances", type=int, default=5)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--parallel", action="store_true")
    p_sweep.add_argument("--jsonl", default=None, metavar="PATH",
                         help="with --parallel: append every trial record "
                              "durably to this JSONL the moment it finishes")
    p_sweep.add_argument("--resume", action="store_true",
                         help="with --jsonl: skip trials that already have "
                              "a durable record (continue a killed sweep)")
    p_sweep.add_argument("--trace", default=None, metavar="OUT.JSONL",
                         help="record a telemetry trace of the whole sweep "
                              "to this JSONL file")
    p_sweep.add_argument("--metrics-port", type=int, default=None, metavar="P",
                         help="publish live sweep telemetry to a /metrics "
                              "endpoint on this localhost port (see "
                              "`repro metrics serve`)")
    p_sweep.set_defaults(func=cmd_sweep)

    p_exp = sub.add_parser("experiment", help="run a registered experiment")
    p_exp.add_argument("id", help="experiment id (f1, f2, e1..e9)")
    p_exp.set_defaults(func=cmd_experiment)

    p_gen = sub.add_parser("generate", help="generate a random instance")
    p_gen.add_argument("--family", default="er", choices=["er", "grid", "waxman"])
    p_gen.add_argument("--weights", default="anticorrelated",
                       choices=["anticorrelated", "uniform"])
    p_gen.add_argument("--n", type=int, default=14)
    p_gen.add_argument("--k", type=int, default=2)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--tightness", type=float, default=0.5)
    p_gen.add_argument("-o", "--output", default="instance.json")
    p_gen.set_defaults(func=cmd_generate)

    p_fuzz = sub.add_parser(
        "fuzz", help="run the differential/metamorphic oracle under a budget"
    )
    p_fuzz.add_argument("--budget", type=float, default=30.0,
                        help="time budget in seconds (default 30)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="master seed; the instance stream is a pure "
                             "function of it")
    p_fuzz.add_argument("--max-instances", type=int, default=None,
                        help="also stop after this many instances")
    p_fuzz.add_argument("--substrates", default=None,
                        help="comma-separated substrate subset (default all)")
    p_fuzz.add_argument("--corpus", default="tests/corpus",
                        help="regression corpus directory (replayed first; "
                             "crashers land here)")
    p_fuzz.add_argument("--no-corpus", action="store_true",
                        help="disable the corpus entirely")
    p_fuzz.add_argument("--no-replay", action="store_true",
                        help="skip corpus replay (still saves crashers)")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="save crashers unminimized")
    p_fuzz.add_argument("--report", default=None,
                        help="write a machine-readable JSON report here")
    p_fuzz.add_argument("--trace", default=None, metavar="OUT.JSONL",
                        help="record a telemetry trace of the whole fuzz "
                             "run to this JSONL file")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_trace = sub.add_parser(
        "trace", help="render, validate, diff, or export a telemetry trace"
    )
    p_trace.add_argument("trace_file", nargs="?", default=None,
                         help="trace JSONL path (from solve/sweep/fuzz "
                              "--trace); omitted with --diff")
    p_trace.add_argument("--validate", action="store_true",
                         help="schema-validate instead of rendering; exit 1 "
                              "on any problem")
    p_trace.add_argument("--json", action="store_true",
                         help="emit the machine-readable report (or --diff) "
                              "JSON")
    p_trace.add_argument("--top", type=int, default=10,
                         help="rows in the hot-span tree / diff tables "
                              "(default 10)")
    p_trace.add_argument("--diff", nargs=2, default=None,
                         metavar=("A.JSONL", "B.JSONL"),
                         help="compare two traces: counter drift ranked by "
                              "contribution, phase-share shift, wall clock")
    p_trace.add_argument("--flamegraph", default=None, metavar="OUT.COLLAPSED",
                         help="fold the span tree into collapsed-stack "
                              "format (flamegraph.pl / speedscope input)")
    p_trace.set_defaults(func=cmd_trace)

    p_metrics = sub.add_parser(
        "metrics", help="Prometheus endpoint: serve an aggregator or "
                        "validate exposition output"
    )
    metrics_sub = p_metrics.add_subparsers(dest="metrics_command",
                                           required=True)
    p_mserve = metrics_sub.add_parser(
        "serve", help="run a /metrics aggregator that solves push to"
    )
    p_mserve.add_argument("--port", type=int, required=True,
                          help="TCP port to listen on")
    p_mserve.add_argument("--host", default="127.0.0.1",
                          help="bind address (default 127.0.0.1)")
    p_mserve.add_argument("--for-seconds", type=float, default=None,
                          metavar="S",
                          help="exit after S seconds (default: run until "
                               "interrupted)")
    p_mserve.add_argument("--allow-remote-push", action="store_true",
                          help="accept /push from non-loopback sources "
                               "(default: loopback only, 403 otherwise)")
    p_mserve.set_defaults(func=cmd_metrics)
    p_mcheck = metrics_sub.add_parser(
        "check", help="validate a /metrics page (file or http URL) as "
                      "text-format 0.0.4"
    )
    p_mcheck.add_argument("source", help="path to a scraped exposition file, "
                                         "or an http(s)://.../metrics URL")
    p_mcheck.set_defaults(func=cmd_metrics)

    p_serve = sub.add_parser(
        "serve", help="run the kRSP solve service (docs/SERVICE.md)"
    )
    p_serve.add_argument("--port", type=int, default=8710,
                         help="TCP port to listen on (default 8710; 0 picks "
                              "a free port)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="solver worker processes (default 2)")
    p_serve.add_argument("--metrics-port", type=int, default=None, metavar="P",
                         help="publish service.* telemetry to a /metrics "
                              "endpoint on port P (reuses a running "
                              "`repro metrics serve` aggregator)")
    p_serve.add_argument("--spool", default=None, metavar="DIR",
                         help="directory for per-job status journals "
                              "(default: a private temp dir)")
    p_serve.add_argument("--default-deadline", type=float, default=None,
                         metavar="S",
                         help="deadline applied to requests that do not "
                              "set deadline_seconds")
    p_serve.add_argument("--max-queue", type=int, default=256,
                         help="admission cap; beyond it submissions get "
                              "HTTP 429 (default 256)")
    p_serve.add_argument("--tenant-weight", action="append", metavar="NAME=W",
                         help="give tenant NAME a dispatch weight of W "
                              "(repeatable; unlisted tenants weigh 1)")
    p_serve.add_argument("--for-seconds", type=float, default=None,
                         metavar="S",
                         help="begin draining after S seconds (default: "
                              "run until SIGTERM/SIGINT)")
    p_serve.add_argument("--drain-timeout", type=float, default=60.0,
                         metavar="S",
                         help="max seconds to wait for queued work on "
                              "shutdown (default 60)")
    p_serve.add_argument("--allow-chaos", action="store_true",
                         help="accept the test-only 'chaos' request field "
                              "(worker fault injection)")
    p_serve.add_argument("--no-warm", action="store_true",
                         help="skip pre-spawning the worker pool at start")
    p_serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
