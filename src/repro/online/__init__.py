"""Online kRSP: warm-start re-solving under instance churn.

Entry points::

    from repro.online import start_online, resolve, InstanceDelta, EdgeReweight

    state = start_online(g, s, t, k, D)
    sol = resolve(state, InstanceDelta(ops=(EdgeReweight(3, cost=7, delay=2),)))

:func:`resolve` patches the live residual and aux-graph cache in place
through :class:`repro.perf.IncrementalSearch` and cancels only the newly
exposed delay-violating cycles; deltas that break the warm-start
preconditions fall back to a cold :func:`repro.core.solve_krsp` with a
counted ``online.fallback.<reason>``. Every ``status == "ok"`` result —
warm or cold — is held to the registered bifactor ``(1, 2)`` guarantee.
See docs/ONLINE.md for the delta wire format, precondition and fallback
taxonomy, and counter reference.
"""

from repro.online.deltas import (
    DELTA_SCHEMA,
    DeltaOp,
    DemandMove,
    EdgeAddition,
    EdgeRemoval,
    EdgeReweight,
    InstanceDelta,
    apply_delta,
    delta_from_dict,
    delta_to_dict,
    graphs_equivalent,
    invert_delta,
    load_delta,
    save_delta,
)
from repro.online.engine import (
    FALLBACK_BUDGET_TIGHTENED,
    FALLBACK_DEMAND_MOVED,
    FALLBACK_GUARANTEE,
    FALLBACK_NO_PRIOR,
    FALLBACK_REASONS,
    FALLBACK_REMOVED_SOLUTION_EDGE,
    FALLBACK_WARM_INFEASIBLE,
    FALLBACK_WARM_STALLED,
    STATE_SCHEMA,
    WARM_PROVIDER,
    OnlineState,
    ResolveInfo,
    load_state,
    resolve,
    save_state,
    start_online,
    state_from_dict,
    state_to_dict,
)

__all__ = [
    "DELTA_SCHEMA",
    "STATE_SCHEMA",
    "WARM_PROVIDER",
    "DeltaOp",
    "DemandMove",
    "EdgeAddition",
    "EdgeRemoval",
    "EdgeReweight",
    "InstanceDelta",
    "OnlineState",
    "ResolveInfo",
    "FALLBACK_BUDGET_TIGHTENED",
    "FALLBACK_DEMAND_MOVED",
    "FALLBACK_GUARANTEE",
    "FALLBACK_NO_PRIOR",
    "FALLBACK_REASONS",
    "FALLBACK_REMOVED_SOLUTION_EDGE",
    "FALLBACK_WARM_INFEASIBLE",
    "FALLBACK_WARM_STALLED",
    "apply_delta",
    "delta_from_dict",
    "delta_to_dict",
    "graphs_equivalent",
    "invert_delta",
    "load_delta",
    "load_state",
    "resolve",
    "save_delta",
    "save_state",
    "start_online",
    "state_from_dict",
    "state_to_dict",
]
