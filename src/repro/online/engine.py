"""Warm-start re-solving of kRSP instances under churn.

The cycle-cancellation scheme repairs an *infeasible* k-flow by cancelling
only delay-violating cycles, and its infeasibility proof (Algorithm 1 step
2(a)) is valid from **any** integral k-flow start — not just phase 1's.
That makes the previous solution a legitimate warm start after a small
instance change: :func:`resolve` patches the live residual (and its
aux-graph cache) through the flip-delta machinery of
:class:`repro.perf.IncrementalSearch`, re-prices the old paths under the
new weights, and cancels only the newly exposed violating cycles.

Guarantee discipline
--------------------
A warm result must meet the same registered bifactor ``(1, 2)`` guarantee
as a cold solve. The engine maintains a certified cost lower bound ``LB``:

* *hardening* deltas (cost/delay increases, removals, ``D`` tightening)
  can only raise the optimum, so the previous ``LB`` stays valid and is
  reused (``online.lb_reused``);
* *softening* deltas (any decrease, additions, ``D`` relaxation) may
  lower the optimum, so ``LB`` is refreshed from the delay-budgeted flow
  LP (``online.lb_refresh``).

After cancellation the engine checks ``cost <= 2 * LB``; a failed check
refreshes ``LB`` once more and, if still failing, falls back to a cold
solve (``online.fallback.guarantee``) — so every ``status == "ok"``
resolve, warm or cold, is held to ``cost <= 2 * OPT``.

Warm-start preconditions and fallback
-------------------------------------
A delta breaks the warm start when a removed edge carried solution flow,
the demand endpoints or ``k`` moved, ``D`` tightened below the current
delay, or no prior solution exists; each cold fallback is counted under
``online.fallback.<reason>`` (see docs/ONLINE.md for the full taxonomy).

Crash safety
------------
With ``journal_path`` set, a warm resolve writes the standard write-ahead
journal against the *patched* instance, with the warm start recorded as
the prelude's phase-1 paths — :func:`repro.robustness.resume_krsp`
continues a killed resolve bit-identically with no online-specific resume
code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path

import numpy as np

from repro import obs
from repro._util.atomicio import atomic_write_json
from repro._util.timer import Timer
from repro.core.cancellation import (
    DEFAULT_MAX_ITERATIONS,
    ResumeState,
    cancel_to_feasibility,
)
from repro.core.instance import KRSPInstance, PathSet
from repro.core.krsp import KRSPSolution, assemble_solution, solve_krsp
from repro.core.residual import ResidualGraph
from repro.errors import (
    BudgetExhaustedError,
    GraphError,
    InfeasibleInstanceError,
    InputError,
    IterationLimitError,
)
from repro.graph.io import instance_from_dict, instance_to_dict
from repro.lp.flow_lp import solve_flow_lp
from repro.online.deltas import (
    DemandMove,
    EdgeAddition,
    EdgeRemoval,
    EdgeReweight,
    InstanceDelta,
)
from repro.perf.engine import IncrementalSearch
from repro.robustness.budget import SolveBudget, metered
from repro.robustness.checkpointing import (
    DEFAULT_CHECKPOINT_EVERY,
    CheckpointHook,
    _solve_config,
    solve_checkpointed,
)
from repro.robustness.journal import JournalWriter

#: Schema tag of the persisted online-state file (``repro solve --state``).
STATE_SCHEMA = "online-state/1"

#: Provider name stamped on warm-resolve solutions and journal preludes.
WARM_PROVIDER = "online_warm"

# Cold-fallback reasons (counted as ``online.fallback.<reason>``).
FALLBACK_NO_PRIOR = "no_prior"
FALLBACK_DEMAND_MOVED = "demand_moved"
FALLBACK_REMOVED_SOLUTION_EDGE = "removed_solution_edge"
FALLBACK_BUDGET_TIGHTENED = "budget_tightened"
FALLBACK_GUARANTEE = "guarantee"
FALLBACK_WARM_INFEASIBLE = "warm_infeasible"
FALLBACK_WARM_STALLED = "warm_stalled"

FALLBACK_REASONS = (
    FALLBACK_NO_PRIOR,
    FALLBACK_DEMAND_MOVED,
    FALLBACK_REMOVED_SOLUTION_EDGE,
    FALLBACK_BUDGET_TIGHTENED,
    FALLBACK_GUARANTEE,
    FALLBACK_WARM_INFEASIBLE,
    FALLBACK_WARM_STALLED,
)


class _WarmAbort(Exception):
    """Internal: the warm path surrendered; fall back cold with a reason."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class ResolveInfo:
    """What the last :func:`resolve` call actually did (telemetry mirror)."""

    mode: str  # "warm" | "cold"
    fallback: str | None
    ops: dict[str, int] = field(default_factory=dict)
    cycles_cancelled: int = 0
    lb_refreshed: bool = False


@dataclass
class OnlineState:
    """The persistent handle of an online solving session.

    Owns the *live* instance (its graph is mutated in place by
    :func:`resolve`), the last solution, the certified cost lower bound,
    and — when the previous resolve stayed warm — the incremental engine
    whose residual and aux cache carry over to the next delta.
    ``solution`` is ``None`` before the first successful solve and after
    an infeasible churn step; the next resolve then starts cold
    (``online.fallback.no_prior``) and re-arms the warm machinery.
    """

    instance: KRSPInstance
    solution: KRSPSolution | None
    lower_bound: Fraction | None
    phase1: str = "lp_rounding"
    engine: IncrementalSearch | None = None
    last: ResolveInfo | None = None


def start_online(
    g,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    *,
    phase1: str = "lp_rounding",
    budget: SolveBudget | None = None,
    copy: bool = True,
) -> OnlineState:
    """Cold-solve an instance and open an online session around it.

    The graph is deep-copied by default — :func:`resolve` mutates the
    session's graph in place, and callers rarely want their input arrays
    drifting underneath them. Pass ``copy=False`` to adopt the arrays.
    """
    work = g.copy() if copy else g
    sol = solve_krsp(
        work, s, t, k, delay_bound, phase1=phase1, budget=budget, incremental=True
    )
    inst = KRSPInstance(graph=work, s=s, t=t, k=k, delay_bound=delay_bound)
    return OnlineState(
        instance=inst,
        solution=sol,
        lower_bound=sol.cost_lower_bound,
        phase1=phase1,
    )


def resolve(
    state: OnlineState,
    delta: InstanceDelta,
    *,
    budget: SolveBudget | None = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    journal_path=None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    shutdown=None,
    fsync: bool = True,
) -> KRSPSolution:
    """Apply ``delta`` to the session and re-solve, warm when possible.

    Always leaves ``state.instance`` on the patched instance (identical to
    :func:`repro.online.deltas.apply_delta` on the old one — the
    delta-vs-scratch oracle relies on this). Returns the new solution and
    updates ``state``; ``state.last`` records whether the resolve ran warm
    and why it fell back if not.

    Raises :class:`InfeasibleInstanceError` when the patched instance
    admits no solution; the session survives (``state.solution`` becomes
    ``None``) and later deltas may restore feasibility.
    """
    obs.inc("online.resolves")
    inst = state.instance
    g = inst.graph
    old_bound = inst.delay_bound
    prev = state.solution

    op_counts = {"reweight": 0, "remove": 0, "add": 0, "demand": 0}
    fallback: str | None = None if prev is not None else FALLBACK_NO_PRIOR
    # Mirror ops into the live residual only while the warm start is still
    # viable *and* a residual exists; otherwise the residual is rebuilt (or
    # dropped) afterwards and mirroring would be wasted work.
    engine = state.engine if fallback is None else None
    mirror = engine is not None and engine.residual is not None

    sol_paths = [list(p) for p in prev.paths] if prev is not None else None
    new_s, new_t, new_k, new_bound = inst.s, inst.t, inst.k, inst.delay_bound
    softening = False

    def drop_warm(reason: str) -> None:
        nonlocal fallback, mirror, engine, sol_paths
        if fallback is None:
            fallback = reason
        mirror = False
        engine = None
        sol_paths = None

    for op in delta.ops:
        if isinstance(op, EdgeReweight):
            op_counts["reweight"] += 1
            e = int(op.edge_id)
            if not (0 <= e < g.m):
                raise InputError(f"reweight edge id {e} out of range (m={g.m})")
            if op.cost < 0 or op.delay < 0:
                raise InputError("reweight weights must be nonnegative")
            if op.cost < int(g.cost[e]) or op.delay < int(g.delay[e]):
                softening = True
            g.cost[e] = op.cost
            g.delay[e] = op.delay
            if mirror:
                engine.apply_reweight([e], [op.cost], [op.delay])
        elif isinstance(op, EdgeRemoval):
            op_counts["remove"] += 1
            e = int(op.edge_id)
            if not (0 <= e < g.m):
                raise InputError(f"remove edge id {e} out of range (m={g.m})")
            if sol_paths is not None and any(e in p for p in sol_paths):
                # The edge carries solution flow: deleting it breaks the
                # k-flow, the canonical warm-start precondition failure.
                drop_warm(FALLBACK_REMOVED_SOLUTION_EDGE)
            if mirror:
                engine.remove_edges([e])
            id_map = g.remove_edges(np.array([e], dtype=np.int64))
            if sol_paths is not None:
                sol_paths = [[int(id_map[x]) for x in p] for p in sol_paths]
        elif isinstance(op, EdgeAddition):
            op_counts["add"] += 1
            if not (0 <= op.tail < g.n and 0 <= op.head < g.n):
                raise InputError(
                    f"add endpoints ({op.tail}, {op.head}) out of range (n={g.n})"
                )
            if op.cost < 0 or op.delay < 0:
                raise InputError("add weights must be nonnegative")
            if mirror:
                engine.add_edges([op.tail], [op.head], [op.cost], [op.delay])
            g.add_edges(
                np.array([op.tail]),
                np.array([op.head]),
                np.array([op.cost]),
                np.array([op.delay]),
            )
            softening = True
        elif isinstance(op, DemandMove):
            op_counts["demand"] += 1
            if op.s is not None and int(op.s) != new_s:
                new_s = int(op.s)
                drop_warm(FALLBACK_DEMAND_MOVED)
            if op.t is not None and int(op.t) != new_t:
                new_t = int(op.t)
                drop_warm(FALLBACK_DEMAND_MOVED)
            if op.k is not None and int(op.k) != new_k:
                new_k = int(op.k)
                drop_warm(FALLBACK_DEMAND_MOVED)
            if op.delay_bound is not None:
                if int(op.delay_bound) > new_bound:
                    softening = True
                new_bound = int(op.delay_bound)
        else:
            raise InputError(f"unknown delta op {op!r}")
        obs.inc("online.delta_applied")
    for kind, cnt in op_counts.items():
        if cnt:
            obs.add(f"online.ops.{kind}", cnt)

    try:
        new_inst = KRSPInstance(
            graph=g, s=new_s, t=new_t, k=new_k, delay_bound=new_bound
        )
    except GraphError:
        # The delta produced a nonsensical instance (s == t, k < 1, ...);
        # the graph patches already landed, so poison the session's warm
        # machinery before surfacing the input error.
        state.engine = None
        state.solution = None
        state.last = ResolveInfo(mode="cold", fallback="invalid", ops=op_counts)
        raise
    state.instance = new_inst
    state.engine = engine

    start: PathSet | None = None
    if fallback is None:
        try:
            start = new_inst.path_set(sol_paths)
        except GraphError:
            drop_warm(FALLBACK_REMOVED_SOLUTION_EDGE)  # defensive; unreachable
    if (
        fallback is None
        and start is not None
        and new_bound < old_bound
        and start.delay > new_bound
    ):
        # D tightened past the current delay: the warm start would have to
        # cancel its way down from a budget it was never shaped for; the
        # registered precondition says re-solve cold instead.
        drop_warm(FALLBACK_BUDGET_TIGHTENED)

    kwargs = dict(
        budget=budget,
        max_iterations=max_iterations,
        journal_path=journal_path,
        checkpoint_every=checkpoint_every,
        shutdown=shutdown,
        fsync=fsync,
    )
    if fallback is not None:
        state.engine = None
        return _resolve_cold(state, reason=fallback, ops=op_counts, **kwargs)
    assert start is not None
    try:
        return _resolve_warm(
            state, start, softening=softening, ops=op_counts, **kwargs
        )
    except _WarmAbort as abort:
        state.engine = None
        return _resolve_cold(state, reason=abort.reason, ops=op_counts, **kwargs)


def _flow_lb(inst: KRSPInstance) -> Fraction:
    """Certified cost lower bound from the delay-budgeted flow LP.

    An infeasible LP certifies instance infeasibility — surrender the warm
    path and let the cold solve's exact gate raise the canonical error.
    """
    lp = solve_flow_lp(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
    if lp is None:
        raise _WarmAbort(FALLBACK_WARM_INFEASIBLE)
    # Same solver-tolerance shave as the cold pipeline: float noise must
    # never push a "certified" bound above the true optimum.
    return Fraction(max(0.0, lp.cost - 1e-6)).limit_denominator(10**9)


def _resolve_warm(
    state: OnlineState,
    start: PathSet,
    *,
    softening: bool,
    ops: dict[str, int],
    budget: SolveBudget | None,
    max_iterations: int,
    journal_path,
    checkpoint_every: int,
    shutdown,
    fsync: bool,
) -> KRSPSolution:
    inst = state.instance
    g = inst.graph
    timer = Timer(span_prefix="online")
    meter = budget.start() if budget is not None else None

    engine = state.engine
    if engine is None or engine.residual is None:
        engine = IncrementalSearch(g)
        state.engine = engine
    with timer.section("residual"):
        # Sync the residual to the warm-start solution. With a carried-over
        # engine this flips nothing (the delta mirroring kept it current);
        # a fresh engine builds it once from the patched graph.
        engine.residual_for(start.edge_ids)

    writer = None
    hook = None
    result = None
    exhausted: str | None = None
    lb = state.lower_bound
    refreshed = False
    try:
        with metered(meter):
            try:
                with timer.section("lower_bound"):
                    if softening or lb is None:
                        # A softening delta may lower the optimum below the
                        # carried bound — the old LB is no longer certified.
                        lb = _flow_lb(inst)
                        refreshed = True
                        obs.inc("online.lb_refresh")
                    else:
                        obs.inc("online.lb_reused")

                if journal_path is not None:
                    config = _solve_config(
                        phase1=state.phase1,
                        b_max=None,
                        max_iterations=max_iterations,
                        opt_cost=None,
                        strict_monitor=False,
                        checkpoint_every=checkpoint_every,
                    )
                    writer = JournalWriter.fresh(
                        journal_path,
                        instance=instance_to_dict(
                            g, inst.s, inst.t, inst.k, inst.delay_bound
                        ),
                        config=config,
                        fsync=fsync,
                    )
                    hook = CheckpointHook(
                        writer, every=checkpoint_every, shutdown=shutdown
                    )
                    # The warm start plays the prelude's phase-1 role: a
                    # killed resolve resumes through the stock resume_krsp
                    # path, bit-identically, with no online-specific code.
                    hook.write_prelude(
                        provider=WARM_PROVIDER,
                        p1_solution=start,
                        lower_bound=lb,
                        cost_cap=None,
                        cap_paths=None,
                        min_delay_flow=None,
                    )

                if start.delay > inst.delay_bound:
                    with timer.section("cancel"):
                        resume = ResumeState(
                            solution=start,
                            records=[],
                            seen_states={tuple(sorted(start.edge_ids))},
                            best=start,
                            engine=engine,
                        )
                        result = cancel_to_feasibility(
                            inst,
                            start,
                            cost_lower_bound=lb,
                            cost_cap=None,
                            max_iterations=max_iterations,
                            finder="production",
                            meter=meter,
                            incremental=True,
                            journal=hook,
                            resume_state=resume,
                        )
                    exhausted = result.exhausted
                    obs.add("online.cycles_cancelled", result.iterations)
            except BudgetExhaustedError as exc:
                exhausted = exc.reason
            except InfeasibleInstanceError:
                # Step 2(a) from the warm flow says infeasible; the cold
                # pipeline's exact min-delay-flow gate is the authority.
                raise _WarmAbort(FALLBACK_WARM_INFEASIBLE) from None
            except IterationLimitError:
                raise _WarmAbort(FALLBACK_WARM_STALLED) from None

        if result is not None:
            final_paths = [list(p) for p in result.solution.paths]
        else:
            # Either no cancellation was needed or the budget tripped before
            # the loop ran; the warm start itself is the best valid answer.
            final_paths = [list(p) for p in start.paths]

        if exhausted is None:
            cost = g.cost_of([e for p in final_paths for e in p])
            if Fraction(cost) > 2 * lb and not refreshed:
                # The reused (hardening) bound may just be slack — buy one
                # LP re-certification before giving up on the warm result.
                lb = max(lb, _flow_lb(inst))
                refreshed = True
                obs.inc("online.lb_refresh")
            if Fraction(cost) > 2 * lb:
                raise _WarmAbort(FALLBACK_GUARANTEE)

        sol = assemble_solution(
            g,
            inst.delay_bound,
            final_paths=final_paths,
            result=result,
            exhausted=exhausted,
            lower_bound=lb,
            provider_name=WARM_PROVIDER,
            scaled=False,
            timings=timer.as_dict(),
            meter=meter,
        )
        if hook is not None:
            hook.write_final(sol)
        # Keep the residual synced to the answer we are handing back, so
        # the next delta mirrors against the right flip state.
        engine.residual_for([e for p in final_paths for e in p])
        state.solution = sol
        state.lower_bound = lb
        state.engine = engine
        state.last = ResolveInfo(
            mode="warm",
            fallback=None,
            ops=ops,
            cycles_cancelled=result.iterations if result is not None else 0,
            lb_refreshed=refreshed,
        )
        obs.inc("online.warm")
        obs.emit(
            "online.resolve",
            mode="warm",
            fallback=None,
            cost=sol.cost,
            delay=sol.delay,
            cycles=state.last.cycles_cancelled,
            lb_refreshed=refreshed,
            status=sol.status,
        )
        return sol
    finally:
        if writer is not None:
            writer.close()


def _resolve_cold(
    state: OnlineState,
    *,
    reason: str,
    ops: dict[str, int],
    budget: SolveBudget | None,
    max_iterations: int,
    journal_path,
    checkpoint_every: int,
    shutdown,
    fsync: bool,
) -> KRSPSolution:
    obs.inc("online.cold")
    obs.inc(f"online.fallback.{reason}")
    inst = state.instance
    info = ResolveInfo(mode="cold", fallback=reason, ops=ops, lb_refreshed=True)
    state.last = info
    try:
        if journal_path is not None:
            sol = solve_checkpointed(
                inst.graph,
                inst.s,
                inst.t,
                inst.k,
                inst.delay_bound,
                journal_path=journal_path,
                checkpoint_every=checkpoint_every,
                phase1=state.phase1,
                max_iterations=max_iterations,
                shutdown=shutdown,
                fsync=fsync,
            )
        else:
            sol = solve_krsp(
                inst.graph,
                inst.s,
                inst.t,
                inst.k,
                inst.delay_bound,
                phase1=state.phase1,
                max_iterations=max_iterations,
                budget=budget,
                incremental=True,
            )
    except InfeasibleInstanceError:
        state.solution = None
        state.lower_bound = None
        raise
    state.solution = sol
    state.lower_bound = sol.cost_lower_bound
    obs.emit(
        "online.resolve",
        mode="cold",
        fallback=reason,
        cost=sol.cost,
        delay=sol.delay,
        cycles=0,
        lb_refreshed=True,
        status=sol.status,
    )
    return sol


# -- persistence (CLI round-trips) ------------------------------------------


def state_to_dict(state: OnlineState) -> dict:
    """Serializable snapshot of a session (instance, solution, residual)."""
    inst = state.instance
    sol = state.solution
    residual = state.engine.residual if state.engine is not None else None
    return {
        "schema": STATE_SCHEMA,
        "phase1": state.phase1,
        "instance": instance_to_dict(
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
        ),
        "lower_bound": None if state.lower_bound is None else str(state.lower_bound),
        "solution": None
        if sol is None
        else {
            "paths": [[int(e) for e in p] for p in sol.paths],
            "status": sol.status,
            "provider": sol.provider,
            "iterations": int(sol.iterations),
        },
        "residual": residual.to_state() if residual is not None else None,
    }


def state_from_dict(data) -> OnlineState:
    """Rebuild a session from :func:`state_to_dict` output (untrusted).

    Everything is revalidated: the solution must be ``k`` disjoint
    ``s``-``t`` paths of the stored instance, and a stored residual must
    be exactly the Definition-6 reversal of the instance graph along those
    paths — a tampered state file degrades to an error, never to a
    silently wrong warm start.
    """
    if not isinstance(data, dict) or data.get("schema") != STATE_SCHEMA:
        raise InputError(
            f"unsupported online state schema "
            f"{data.get('schema') if isinstance(data, dict) else data!r} "
            f"(expected {STATE_SCHEMA!r})"
        )
    g, s, t, k, delay_bound = instance_from_dict(data["instance"])
    inst = KRSPInstance(graph=g, s=s, t=t, k=k, delay_bound=delay_bound)
    lb_text = data.get("lower_bound")
    if lb_text is None:
        lb = None
    else:
        try:
            lb = Fraction(lb_text)
        except (ValueError, ZeroDivisionError) as exc:
            raise InputError(f"bad lower_bound in online state: {exc}") from None
    phase1 = data.get("phase1", "lp_rounding")
    if not isinstance(phase1, str):
        raise InputError("online state phase1 must be a string")

    solution = None
    engine = None
    sol_data = data.get("solution")
    if sol_data is not None:
        try:
            paths = [[int(e) for e in p] for p in sol_data["paths"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise InputError(f"bad solution paths in online state: {exc}") from None
        try:
            ps = inst.path_set(paths)
        except GraphError as exc:
            raise InputError(f"online state solution invalid: {exc}") from None
        solution = KRSPSolution(
            paths=paths,
            cost=ps.cost,
            delay=ps.delay,
            delay_bound=delay_bound,
            delay_feasible=ps.delay <= delay_bound,
            cost_lower_bound=lb,
            iterations=int(sol_data.get("iterations", 0)),
            provider=str(sol_data.get("provider", "")),
            status=str(sol_data.get("status", "ok")),
        )
        res_state = data.get("residual")
        if res_state is not None:
            try:
                residual = ResidualGraph.from_state(res_state)
            except (GraphError, KeyError, TypeError, ValueError) as exc:
                raise InputError(
                    f"corrupt residual in online state: {exc}"
                ) from None
            _check_residual(residual, g, ps)
            engine = IncrementalSearch(g)
            engine.restore(residual)
    return OnlineState(
        instance=inst,
        solution=solution,
        lower_bound=lb,
        phase1=phase1,
        engine=engine,
    )


def _check_residual(residual: ResidualGraph, g, ps: PathSet) -> None:
    """Assert a deserialized residual matches Definition 6 for ``ps``."""
    mask = residual.reversed_mask
    if residual.m != g.m or len(mask) != g.m:
        raise InputError("online state residual size disagrees with instance")
    sol_edges = np.zeros(g.m, dtype=bool)
    sol_edges[np.asarray(ps.edge_ids, dtype=np.int64)] = True
    if not np.array_equal(mask, sol_edges):
        raise InputError("online state residual disagrees with its solution")
    rg = residual.graph
    sign = np.where(mask, -1, 1).astype(np.int64)
    ok = (
        np.array_equal(rg.tail, np.where(mask, g.head, g.tail))
        and np.array_equal(rg.head, np.where(mask, g.tail, g.head))
        and np.array_equal(rg.cost, g.cost * sign)
        and np.array_equal(rg.delay, g.delay * sign)
    )
    if not ok:
        raise InputError("online state residual arrays disagree with instance")


def save_state(path: str | Path, state: OnlineState) -> None:
    """Atomically persist a session (``repro solve --state`` / ``resolve``)."""
    atomic_write_json(path, state_to_dict(state), indent=2, sort_keys=True)


def load_state(path: str | Path) -> OnlineState:
    """Read and validate a persisted session."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise InputError(f"cannot read online state {path}: {exc}") from None
    return state_from_dict(data)
