"""Typed instance deltas: the wire format of online kRSP churn.

A :class:`InstanceDelta` is an ordered list of primitive operations
against a live instance:

* :class:`EdgeReweight` — cost/delay drift on one edge (new nonnegative
  original-orientation values);
* :class:`EdgeRemoval` — delete one edge. Edge ids *compact*: every id
  above the removed one shifts down by one (see
  :meth:`repro.graph.digraph.DiGraph.remove_edges`);
* :class:`EdgeAddition` — append one edge, taking the next free id;
* :class:`DemandMove` — change any of ``s``, ``t``, ``k``, ``D``.

Each op addresses the instance *as it stands at that point of the list*,
so an id mentioned after a removal refers to the compacted numbering.

Two consumers share this module and must agree exactly:
:func:`apply_delta` is the pure from-scratch application (what the
delta-vs-scratch differential and the MILP referee solve), while
:meth:`repro.online.engine.resolve` replays the same op stream against
the warm residual state. JSON round-trips via :func:`delta_to_dict` /
:func:`delta_from_dict` (``repro resolve --delta FILE``) are validated
as untrusted input.

:func:`invert_delta` builds the exact inverse for the *churn-identity*
metamorphic relation. Because removal compacts ids and re-addition
appends, applying a delta and then its inverse reproduces the original
instance up to a permutation of edge ids — the edge multiset, and hence
every solution certificate, is identical (checked by
:func:`graphs_equivalent`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Union

import numpy as np

from repro.errors import InputError
from repro.graph.digraph import DiGraph

#: Schema tag of the JSON wire format.
DELTA_SCHEMA = "instance-delta/1"


@dataclass(frozen=True)
class EdgeReweight:
    """Set edge ``edge_id``'s weights to ``(cost, delay)`` (both >= 0)."""

    edge_id: int
    cost: int
    delay: int


@dataclass(frozen=True)
class EdgeRemoval:
    """Delete edge ``edge_id``; higher ids shift down by one."""

    edge_id: int


@dataclass(frozen=True)
class EdgeAddition:
    """Append edge ``tail -> head`` with weights ``(cost, delay)``."""

    tail: int
    head: int
    cost: int
    delay: int


@dataclass(frozen=True)
class DemandMove:
    """Change any subset of the demand ``(s, t, k, D)``; ``None`` = keep."""

    s: int | None = None
    t: int | None = None
    k: int | None = None
    delay_bound: int | None = None


DeltaOp = Union[EdgeReweight, EdgeRemoval, EdgeAddition, DemandMove]


@dataclass(frozen=True)
class InstanceDelta:
    """One churn step: an ordered tuple of primitive ops."""

    ops: tuple[DeltaOp, ...]
    label: str = ""

    def __len__(self) -> int:
        return len(self.ops)


# -- validation helpers ------------------------------------------------------


def _as_int(value: Any, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise InputError(f"{what} must be an integer, got {value!r}")
    return int(value)


def _as_weight(value: Any, what: str) -> int:
    v = _as_int(value, what)
    if v < 0:
        raise InputError(f"{what} must be nonnegative, got {v}")
    return v


# -- JSON wire format --------------------------------------------------------


def op_to_dict(op: DeltaOp) -> dict[str, Any]:
    if isinstance(op, EdgeReweight):
        return {"op": "reweight", "edge": op.edge_id, "cost": op.cost, "delay": op.delay}
    if isinstance(op, EdgeRemoval):
        return {"op": "remove", "edge": op.edge_id}
    if isinstance(op, EdgeAddition):
        return {
            "op": "add",
            "tail": op.tail,
            "head": op.head,
            "cost": op.cost,
            "delay": op.delay,
        }
    if isinstance(op, DemandMove):
        out: dict[str, Any] = {"op": "demand"}
        for key in ("s", "t", "k", "delay_bound"):
            value = getattr(op, key)
            if value is not None:
                out[key] = value
        return out
    raise InputError(f"unknown delta op {op!r}")


def op_from_dict(data: Any) -> DeltaOp:
    if not isinstance(data, dict):
        raise InputError(f"delta op must be an object, got {type(data).__name__}")
    kind = data.get("op")
    if kind == "reweight":
        return EdgeReweight(
            edge_id=_as_int(data.get("edge"), "reweight edge id"),
            cost=_as_weight(data.get("cost"), "reweight cost"),
            delay=_as_weight(data.get("delay"), "reweight delay"),
        )
    if kind == "remove":
        return EdgeRemoval(edge_id=_as_int(data.get("edge"), "remove edge id"))
    if kind == "add":
        return EdgeAddition(
            tail=_as_int(data.get("tail"), "add tail"),
            head=_as_int(data.get("head"), "add head"),
            cost=_as_weight(data.get("cost"), "add cost"),
            delay=_as_weight(data.get("delay"), "add delay"),
        )
    if kind == "demand":
        fields = {}
        for key in ("s", "t", "k", "delay_bound"):
            if key in data and data[key] is not None:
                fields[key] = _as_int(data[key], f"demand {key}")
        if not fields:
            raise InputError("demand op changes nothing")
        return DemandMove(**fields)
    raise InputError(f"unknown delta op kind {kind!r}")


def delta_to_dict(delta: InstanceDelta) -> dict[str, Any]:
    """Serialize a delta to its ``instance-delta/1`` wire dict."""
    return {
        "schema": DELTA_SCHEMA,
        "label": delta.label,
        "ops": [op_to_dict(op) for op in delta.ops],
    }


def delta_from_dict(data: Any) -> InstanceDelta:
    """Parse and validate an ``instance-delta/1`` wire dict (untrusted)."""
    if not isinstance(data, dict):
        raise InputError("delta payload must be a JSON object")
    if data.get("schema") != DELTA_SCHEMA:
        raise InputError(
            f"unsupported delta schema {data.get('schema')!r} "
            f"(expected {DELTA_SCHEMA!r})"
        )
    ops = data.get("ops")
    if not isinstance(ops, list) or not ops:
        raise InputError("delta must carry a non-empty 'ops' list")
    label = data.get("label", "")
    if not isinstance(label, str):
        raise InputError("delta label must be a string")
    return InstanceDelta(ops=tuple(op_from_dict(o) for o in ops), label=label)


def load_delta(path: str | Path) -> InstanceDelta:
    """Read and validate a delta file (untrusted input)."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise InputError(f"cannot read delta file {path}: {exc}") from None
    return delta_from_dict(data)


def save_delta(path: str | Path, delta: InstanceDelta) -> None:
    """Write a delta to ``path`` in the ``instance-delta/1`` format."""
    Path(path).write_text(json.dumps(delta_to_dict(delta), indent=2) + "\n")


# -- pure application --------------------------------------------------------


def apply_delta(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    delta: InstanceDelta,
) -> tuple[DiGraph, int, int, int, int]:
    """Apply ``delta`` from scratch; returns the patched instance tuple.

    Pure with respect to its inputs (``g`` is deep-copied first). This is
    the *reference semantics* of a delta — the online engine's warm path
    must land on exactly this instance, and the delta-vs-scratch oracle
    solves precisely this tuple cold.
    """
    work = g.copy()
    for op in delta.ops:
        if isinstance(op, EdgeReweight):
            e = _as_int(op.edge_id, "reweight edge id")
            if not (0 <= e < work.m):
                raise InputError(f"reweight edge id {e} out of range (m={work.m})")
            work.cost[e] = _as_weight(op.cost, "reweight cost")
            work.delay[e] = _as_weight(op.delay, "reweight delay")
        elif isinstance(op, EdgeRemoval):
            e = _as_int(op.edge_id, "remove edge id")
            if not (0 <= e < work.m):
                raise InputError(f"remove edge id {e} out of range (m={work.m})")
            work.remove_edges(np.array([e], dtype=np.int64))
        elif isinstance(op, EdgeAddition):
            if not (0 <= op.tail < work.n and 0 <= op.head < work.n):
                raise InputError(
                    f"add endpoints ({op.tail}, {op.head}) out of range (n={work.n})"
                )
            work.add_edges(
                np.array([op.tail]),
                np.array([op.head]),
                np.array([_as_weight(op.cost, "add cost")]),
                np.array([_as_weight(op.delay, "add delay")]),
            )
        elif isinstance(op, DemandMove):
            if op.s is not None:
                s = _as_int(op.s, "demand s")
            if op.t is not None:
                t = _as_int(op.t, "demand t")
            if op.k is not None:
                k = _as_int(op.k, "demand k")
            if op.delay_bound is not None:
                delay_bound = _as_int(op.delay_bound, "demand delay_bound")
        else:
            raise InputError(f"unknown delta op {op!r}")
    if not (0 <= s < work.n and 0 <= t < work.n) or s == t:
        raise InputError(f"demand endpoints invalid after delta: s={s} t={t}")
    if k < 1 or delay_bound < 0:
        raise InputError(f"demand invalid after delta: k={k} D={delay_bound}")
    return work, s, t, k, delay_bound


# -- exact inversion (churn-identity) ---------------------------------------


def invert_delta(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    delta: InstanceDelta,
) -> InstanceDelta:
    """The exact inverse of ``delta`` against the pre-delta instance.

    ``apply_delta(apply_delta(I, delta), inverse)`` reproduces ``I`` up to
    an edge-id permutation (removal + re-addition cycles an edge to the
    end of the id space); the (tail, head, cost, delay) edge multiset and
    the demand tuple are restored exactly.

    Implemented by double simulation: a forward pass tags every edge with
    a stable identity and records per-op undo intents against tags, then
    a backward pass replays the undos on the tag list, materializing each
    as a concrete op in the id space it will actually execute in.
    """
    tags: list[int] = list(range(g.m))
    info: dict[int, list[int]] = {
        tag: [int(g.tail[tag]), int(g.head[tag]), int(g.cost[tag]), int(g.delay[tag])]
        for tag in tags
    }
    next_tag = g.m
    cur = {"s": s, "t": t, "k": k, "delay_bound": delay_bound}
    undo: list[tuple] = []
    for op in delta.ops:
        if isinstance(op, EdgeReweight):
            if not (0 <= op.edge_id < len(tags)):
                raise InputError(f"reweight edge id {op.edge_id} out of range")
            tag = tags[op.edge_id]
            undo.append(("reweight", tag, info[tag][2], info[tag][3]))
            info[tag][2] = _as_weight(op.cost, "reweight cost")
            info[tag][3] = _as_weight(op.delay, "reweight delay")
        elif isinstance(op, EdgeRemoval):
            if not (0 <= op.edge_id < len(tags)):
                raise InputError(f"remove edge id {op.edge_id} out of range")
            tag = tags.pop(op.edge_id)
            undo.append(("recreate", tag))
        elif isinstance(op, EdgeAddition):
            tag = next_tag
            next_tag += 1
            tags.append(tag)
            info[tag] = [op.tail, op.head, op.cost, op.delay]
            undo.append(("delete", tag))
        elif isinstance(op, DemandMove):
            restore = {
                key: cur[key]
                for key in ("s", "t", "k", "delay_bound")
                if getattr(op, key) is not None
            }
            undo.append(("demand", restore))
            for key in restore:
                cur[key] = getattr(op, key)
        else:
            raise InputError(f"unknown delta op {op!r}")
    inverse: list[DeltaOp] = []
    for entry in reversed(undo):
        kind = entry[0]
        if kind == "reweight":
            _, tag, old_cost, old_delay = entry
            inverse.append(
                EdgeReweight(edge_id=tags.index(tag), cost=old_cost, delay=old_delay)
            )
            info[tag][2] = old_cost
            info[tag][3] = old_delay
        elif kind == "recreate":
            _, tag = entry
            tail, head, cost_v, delay_v = info[tag]
            inverse.append(
                EdgeAddition(tail=tail, head=head, cost=cost_v, delay=delay_v)
            )
            tags.append(tag)
        elif kind == "delete":
            _, tag = entry
            inverse.append(EdgeRemoval(edge_id=tags.index(tag)))
            tags.remove(tag)
        else:
            _, restore = entry
            inverse.append(DemandMove(**restore))
    label = f"inverse({delta.label})" if delta.label else "inverse"
    return InstanceDelta(ops=tuple(inverse), label=label)


def graphs_equivalent(a: DiGraph, b: DiGraph) -> bool:
    """Equality up to an edge-id permutation (the churn-identity notion).

    Two graphs with the same vertex set and the same multiset of
    ``(tail, head, cost, delay)`` tuples induce the same kRSP polytope —
    every path set of one maps to a path set of the other with identical
    cost/delay, so all optima and certificates coincide.
    """
    if a.n != b.n or a.m != b.m:
        return False
    def key(g: DiGraph) -> np.ndarray:
        return np.lexsort((g.delay, g.cost, g.head, g.tail))
    ka, kb = key(a), key(b)
    return all(
        bool(np.array_equal(arr_a[ka], arr_b[kb]))
        for arr_a, arr_b in (
            (a.tail, b.tail),
            (a.head, b.head),
            (a.cost, b.cost),
            (a.delay, b.delay),
        )
    )
