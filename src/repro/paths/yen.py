"""Yen's algorithm: k shortest loopless paths by a single weight.

Substrate for the KSP-filtering baseline (a family of practical QoS
routers: enumerate cheap paths, then post-filter for disjointness and
delay). Classic spur-node formulation over the library's Dijkstra:

* the best path comes from a plain shortest-path query;
* candidate ``i+1``-th paths deviate from some prefix ("root") of an
  existing path at a spur node, with the root's edges and the previously
  used continuations masked out;
* candidates live in a priority queue keyed by total weight; ties break on
  the edge-id sequence for full determinism.

Complexity ``O(K * n * (m + n log n))`` — fine at this library's scale.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.paths.dijkstra import INF, dijkstra, extract_path


def _shortest_avoiding(
    g: DiGraph,
    s: int,
    t: int,
    weight: np.ndarray,
    banned_edges: set[int],
    banned_vertices: set[int],
) -> list[int] | None:
    """Shortest s->t path in the graph minus banned edges/vertices."""
    keep = [
        e
        for e in range(g.m)
        if e not in banned_edges
        and int(g.tail[e]) not in banned_vertices
        and int(g.head[e]) not in banned_vertices
    ]
    eids = np.asarray(keep, dtype=np.int64)
    sub = g.subgraph_edges(eids)
    dist, pred = dijkstra(sub, s, weight=weight[eids], target=t)
    if int(dist[t]) >= INF:
        return None
    sub_path = extract_path(pred, sub, t, source=s, dist=dist)
    return [int(eids[e]) for e in sub_path]


def yen_k_shortest_paths(
    g: DiGraph,
    s: int,
    t: int,
    K: int,
    weight: np.ndarray | None = None,
) -> list[list[int]]:
    """Up to ``K`` loopless s->t paths in nondecreasing weight order.

    Returns fewer than ``K`` paths when the graph runs out. Paths are
    edge-id lists; vertices never repeat within a path.
    """
    if K < 1:
        raise GraphError("K must be positive")
    if s == t:
        return [[]]
    w = g.cost if weight is None else np.asarray(weight, dtype=np.int64)
    if len(w) != g.m:
        raise GraphError("weight array length mismatch")

    first = _shortest_avoiding(g, s, t, w, set(), set())
    if first is None:
        return []
    accepted: list[list[int]] = [first]
    seen: set[tuple[int, ...]] = {tuple(first)}
    # Heap entries: (total weight, edge-id tuple) — tuple breaks ties
    # deterministically and is the candidate itself.
    candidates: list[tuple[int, tuple[int, ...]]] = []

    while len(accepted) < K:
        prev = accepted[-1]
        prev_vertices = [s] + [int(g.head[e]) for e in prev]
        for i in range(len(prev)):
            spur_node = prev_vertices[i]
            root = prev[:i]
            # Ban continuations already used by accepted paths sharing the
            # same root.
            banned_edges: set[int] = set()
            for p in accepted:
                if p[:i] == root and len(p) > i:
                    banned_edges.add(p[i])
            # Ban root vertices (keeps paths loopless).
            banned_vertices = set(prev_vertices[:i])
            spur = _shortest_avoiding(g, spur_node, t, w, banned_edges, banned_vertices)
            if spur is None:
                continue
            total = root + spur
            key = tuple(total)
            if key in seen:
                continue
            seen.add(key)
            heapq.heappush(candidates, (int(w[np.asarray(total)].sum()), key))
        if not candidates:
            break
        _, best = heapq.heappop(candidates)
        accepted.append(list(best))
    return accepted
