"""Exact pseudo-polynomial DP for the single restricted shortest path (RSP).

RSP (k=1 case of kRSP, Definition 2): minimum-cost ``s -> t`` path with total
delay at most ``D``. NP-hard in general, but solvable exactly in
``O((D+1) * (n log n + m))`` time by dynamic programming over delay budgets —
small enough to serve as ground truth for the k=1 experiments (E8) and as the
inner exact oracle for FPTAS validation.

State: ``best[b][v]`` = minimum cost of an ``s -> v`` walk whose total delay
is *exactly* ``b`` (up to zero-delay detours). Positive-delay edges move
between layers; zero-delay edges stay inside a layer and are closed with an
intra-layer multi-source Dijkstra (their costs are nonnegative by the input
contract, so Dijkstra is sound). The answer minimizes over all layers
``b <= D``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.paths.dijkstra import INF
from repro.robustness.budget import checkpoint
from repro._util.heap import AddressableHeap


def rsp_exact(
    g: DiGraph,
    s: int,
    t: int,
    delay_bound: int,
) -> tuple[int, list[int]] | None:
    """Exact RSP: min-cost ``s``-``t`` path with delay ``<= delay_bound``.

    Returns ``(cost, edge_id_path)`` or ``None`` when no feasible path
    exists. Ties between equal-cost solutions break toward smaller delay.
    The returned path may be assumed simple whenever all costs are positive;
    with zero-cost edges it is still a valid walk of optimal cost whose
    delay respects the bound.
    """
    g.require_nonnegative()
    if delay_bound < 0:
        return None
    if s == t:
        return (0, [])
    D = int(delay_bound)
    n = g.n

    best = np.full((D + 1, n), INF, dtype=np.int64)
    # pred[b, v] packs (edge id, source layer) as eid * (D + 1) + layer.
    pred = np.full((D + 1, n), -1, dtype=np.int64)
    best[0, s] = 0

    zero_eids = np.nonzero(g.delay == 0)[0]
    pos_eids = np.nonzero(g.delay > 0)[0]
    tail, head, cost, delay = g.tail, g.head, g.cost, g.delay

    # Zero-delay adjacency, built once (used in every layer closure).
    zero_out: dict[int, list[int]] = {}
    for e in zero_eids:
        zero_out.setdefault(int(tail[e]), []).append(int(e))

    for b in range(D + 1):
        # Pseudo-polynomial in D: honor an ambient solve budget per layer
        # so deadline-sliced callers (the greedy fallback tier) can bail.
        if b % 256 == 0:
            checkpoint("rsp_exact.layer")
        row = best[b]
        if b > 0 and len(pos_eids):
            src_layer = b - delay[pos_eids]
            ok = src_layer >= 0
            eids = pos_eids[ok]
            if len(eids):
                src = src_layer[ok]
                src_cost = best[src, tail[eids]]
                reach = src_cost < INF
                eids, src = eids[reach], src[reach]
                cand = src_cost[reach] + cost[eids]
                # Vectorized scatter-min relaxation (one pass): apply all
                # improvements at once, then record a witnessing
                # predecessor per improved vertex.
                targets = head[eids]
                new_row = row.copy()
                np.minimum.at(new_row, targets, cand)
                improved = cand < row[targets]
                winners = (cand == new_row[targets]) & improved
                pred[b, targets[winners]] = eids[winners] * (D + 1) + src[winners]
                np.copyto(row, new_row)
        if len(zero_eids):
            _close_zero_delay_layer(g, zero_out, row, pred[b], b, D)

    col = best[:, t]
    if int(col.min()) >= INF:
        return None
    b_star = int(col.argmin())  # argmin returns the first (smallest-delay) optimum
    path = _reconstruct(g, pred, D, b_star, t, s)
    return int(col[b_star]), path


def _close_zero_delay_layer(
    g: DiGraph,
    zero_out: dict[int, list[int]],
    row: np.ndarray,
    pred_row: np.ndarray,
    layer: int,
    D: int,
) -> None:
    """Multi-source Dijkstra over the zero-delay subgraph, updating ``row``
    (costs) and ``pred_row`` in place."""
    heap = AddressableHeap(g.n)
    for v in np.nonzero(row < INF)[0]:
        heap.push(int(v), int(row[v]))
    while heap:
        u, du = heap.pop()
        if du > row[u]:
            continue
        for e in zero_out.get(u, ()):
            v = int(g.head[e])
            cand = du + int(g.cost[e])
            if cand < row[v]:
                row[v] = cand
                pred_row[v] = e * (D + 1) + layer
                heap.push_or_decrease(v, cand)


def _reconstruct(
    g: DiGraph,
    pred: np.ndarray,
    D: int,
    b_final: int,
    t: int,
    s: int,
) -> list[int]:
    """Walk packed predecessors from state ``(b_final, t)`` back to the DP
    source state ``(0, s)``; returns the forward edge-id list.

    Every labelled state except ``(0, s)`` has a predecessor, and each
    backward step either decreases the layer or strictly decreases the cost
    within a layer's Dijkstra tree, so the walk terminates.
    """
    path: list[int] = []
    b, v = b_final, t
    limit = g.n * (D + 1) + 1
    while True:
        packed = int(pred[b, v])
        if packed == -1:
            if v == s and b == 0:
                break
            raise GraphError("RSP reconstruction hit a dead state")
        e, src_layer = divmod(packed, D + 1)
        path.append(e)
        v = int(g.tail[e])
        b = src_layer
        if len(path) > limit:
            raise GraphError("RSP reconstruction did not terminate")
    path.reverse()
    return path
