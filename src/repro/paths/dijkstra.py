"""Dijkstra shortest paths with optional vertex potentials.

The potentials hook is what the flow layer needs: successive-shortest-path
min-cost flow keeps reduced costs ``c(e) + pi[tail] - pi[head]`` nonnegative
so Dijkstra stays applicable even after residual edges with negative raw cost
appear (Johnson's technique). Plain single-source shortest paths is the
``potential=None`` special case.

Returns distances and a predecessor *edge* array so callers can reconstruct
paths as edge-id lists (the library-wide path representation).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro._util.heap import AddressableHeap
from repro.errors import GraphError
from repro.graph.digraph import DiGraph

#: Sentinel distance for unreachable vertices (fits in int64 with headroom
#: for one addition).
INF = np.iinfo(np.int64).max // 4


def dijkstra(
    g: DiGraph,
    source: int,
    weight: np.ndarray | None = None,
    potential: np.ndarray | None = None,
    target: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Single-source shortest paths under nonnegative (reduced) weights.

    Parameters
    ----------
    g:
        Graph to search.
    source:
        Start vertex.
    weight:
        Per-edge weights; defaults to ``g.cost``.
    potential:
        Optional vertex potentials ``pi``; the search runs on reduced
        weights ``w(e) + pi[tail] - pi[head]``, which must be nonnegative
        for edges leaving settled vertices, and the returned distances are
        *un-reduced* (true ``w``-distances).
    target:
        Early-exit vertex: the search stops once ``target`` is settled.
        Distances of unsettled vertices are then upper bounds only.

    Returns
    -------
    (dist, pred_edge):
        ``dist[v]`` is the true weight of a shortest ``source -> v`` path
        (``INF`` if unreachable); ``pred_edge[v]`` is the incoming edge id
        on such a path (-1 for source/unreachable).

    Raises
    ------
    GraphError
        If a negative (reduced) weight is encountered.
    """
    w = g.cost if weight is None else np.asarray(weight, dtype=np.int64)
    if len(w) != g.m:
        raise GraphError("weight array length mismatch")
    dist = np.full(g.n, INF, dtype=np.int64)
    pred = np.full(g.n, -1, dtype=np.int64)
    done = np.zeros(g.n, dtype=bool)
    starts, eids = g.out_csr()
    heads = g.head
    pi = potential

    # The heap orders vertices by *reduced* distance (true distance shifted
    # by pi[v] - pi[source], a per-vertex constant), so relaxation order is
    # correct; `dist` always stores true distances.
    heap = AddressableHeap(g.n)
    dist[source] = 0
    heap.push(source, 0)
    # Work counters accumulate locally and flush once on exit, so the
    # telemetry-disabled cost inside the loop is a bare integer add.
    pops = 0
    relaxations = 0
    # try/finally so the flush also happens when the loop aborts (e.g. a
    # negative reduced weight raising GraphError): the work was done, so
    # the record of it must survive the failure — fuzzing and post-mortem
    # triage read these counters off failed trials.
    try:
        while heap:
            u, du_reduced = heap.pop()
            pops += 1
            done[u] = True
            if u == target:
                break
            du_true = int(dist[u])
            for e in eids[starts[u] : starts[u + 1]]:
                e = int(e)
                v = int(heads[e])
                if done[v]:
                    continue
                we = int(w[e])
                if pi is not None:
                    red = we + int(pi[u]) - int(pi[v])
                else:
                    red = we
                if red < 0:
                    raise GraphError(
                        f"negative reduced weight {red} on edge {e}"
                        + ("" if pi is None else "; potentials invalid")
                    )
                cand_true = du_true + we
                if cand_true < dist[v]:
                    relaxations += 1
                    dist[v] = cand_true
                    pred[v] = e
                    heap.push_or_decrease(v, du_reduced + red)
    finally:
        obs.add("dijkstra.pops", pops)
        obs.add("dijkstra.relaxations", relaxations)
    return dist, pred


def extract_path(
    pred_edge: np.ndarray,
    g: DiGraph,
    target: int,
    source: int | None = None,
    dist: np.ndarray | None = None,
) -> list[int]:
    """Edge-id path from the search source to ``target`` via ``pred_edge``.

    ``pred_edge[target] == -1`` is ambiguous on its own: it marks both the
    source (empty path — a real answer) and an unreachable vertex (no path
    at all). Historically both cases returned ``[]``, which let a missed
    reachability check turn "no path" into "free path" downstream. Now the
    empty path is returned only when ``target`` is provably the source —
    pass ``source`` (the search's start vertex) or ``dist`` (its distance
    array: the source is the unique ``pred == -1`` vertex with finite
    distance) — and every other ``-1`` raises :class:`GraphError`. Calls
    that pass neither keep raising for non-source ``-1`` targets, and raise
    an "ambiguous" error for the source-or-unreachable case.
    """
    path: list[int] = []
    v = target
    guard = 0
    if int(pred_edge[target]) == -1:
        if source is not None:
            if target == source:
                return []
            raise GraphError(f"target {target} unreachable from source {source}")
        if dist is not None:
            if int(dist[target]) < INF:
                return []  # finite distance + no incoming edge == source
            raise GraphError(f"target {target} unreachable (distance INF)")
        raise GraphError(
            f"target {target} has no predecessor: source or unreachable? "
            "pass source= or dist= to extract_path to disambiguate"
        )
    while pred_edge[v] != -1:
        e = int(pred_edge[v])
        path.append(e)
        v = int(g.tail[e])
        guard += 1
        if guard > g.m + 1:
            raise GraphError("predecessor cycle — corrupt search state")
    path.reverse()
    return path
