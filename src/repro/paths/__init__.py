"""Shortest-path substrate: Dijkstra, Bellman–Ford, exact/approximate RSP."""

from repro.paths.dijkstra import INF, dijkstra, extract_path
from repro.paths.bellman_ford import (
    bellman_ford,
    find_negative_cycle,
    negative_cycle_value,
)
from repro.paths.rsp_exact import rsp_exact
from repro.paths.rsp_fptas import rsp_fptas
from repro.paths.larac import LaracResult, larac
from repro.paths.yen import yen_k_shortest_paths
from repro.paths.karp_mmc import minimum_mean_cycle

__all__ = [
    "INF",
    "dijkstra",
    "extract_path",
    "bellman_ford",
    "find_negative_cycle",
    "negative_cycle_value",
    "rsp_exact",
    "rsp_fptas",
    "LaracResult",
    "larac",
    "yen_k_shortest_paths",
    "minimum_mean_cycle",
]
