"""Karp's minimum mean cycle algorithm.

The paper's Section 2.1 credits prior work ([12], [18]) with using "the
minimum-mean-cycle algorithm" on their single-criterion residual graphs —
possible there precisely because their reversed edges keep cost
nonnegative. This module supplies that classical tool (and its
cross-checks), both for the Orda–Sprintson-style baseline family and as an
independent oracle in tests of the cycle machinery.

Karp's theorem: for weights ``w`` and a source reaching the whole
component,

    mu* = min over cycles of mean weight
        = min_v max_k ( D_n(v) - D_k(v) ) / (n - k)

where ``D_k(v)`` is the minimum weight of a *walk* of exactly ``k`` edges
from the source to ``v`` (``+inf`` if none), minimized over ``v`` with
``D_n(v)`` finite.

Witness extraction uses the numerically robust route rather than walking
the DP table: with ``mu* = p/q`` exact, the integer reweighting
``w' = q*w - p`` has no negative cycle and gives every minimum-mean cycle
total weight 0; Bellman–Ford potentials under ``w'`` make those cycles
zero-*reduced*-weight edges, and any cycle inside the zero-reduced
subgraph is a valid witness.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

_INF = np.iinfo(np.int64).max // 4


def _karp_value_from_source(g: DiGraph, source: int, w: np.ndarray) -> Fraction | None:
    """Karp's mu* over cycles reachable from ``source`` (None if acyclic)."""
    n = g.n
    tail, head = g.tail, g.head
    D = np.full((n + 1, n), _INF, dtype=np.int64)
    D[0, source] = 0
    for k in range(1, n + 1):
        prev = D[k - 1]
        reach = prev[tail] < _INF
        if not reach.any():
            break
        cand = prev[tail[reach]] + w[reach]
        np.minimum.at(D[k], head[reach], cand)

    finite_n = D[n] < _INF
    if not finite_n.any():
        return None
    best: Fraction | None = None
    for v in np.nonzero(finite_n)[0]:
        v = int(v)
        worst: Fraction | None = None
        for k in range(n):
            if D[k, v] >= _INF:
                continue
            val = Fraction(int(D[n, v]) - int(D[k, v]), n - k)
            if worst is None or val > worst:
                worst = val
        if worst is not None and (best is None or worst < best):
            best = worst
    return best


def _cycle_in_edge_subset(g: DiGraph, edge_ids: np.ndarray) -> list[int] | None:
    """Any directed cycle using only ``edge_ids``, or None."""
    out: dict[int, list[int]] = {}
    for e in edge_ids:
        out.setdefault(int(g.tail[e]), []).append(int(e))
    state: dict[int, int] = {}  # 0 = in progress, 1 = done

    for root in list(out):
        if state.get(root) == 1:
            continue
        # Iterative DFS with an explicit edge stack.
        path_edges: list[int] = []
        on_path: dict[int, int] = {root: 0}
        stack: list[tuple[int, int]] = [(root, 0)]
        while stack:
            u, idx = stack[-1]
            edges_u = out.get(u, ())
            if idx >= len(edges_u):
                stack.pop()
                state[u] = 1
                on_path.pop(u, None)
                if path_edges:
                    path_edges.pop()
                continue
            stack[-1] = (u, idx + 1)
            e = edges_u[idx]
            v = int(g.head[e])
            if v in on_path:
                depth = on_path[v]
                return path_edges[depth:] + [e]
            if state.get(v) == 1:
                continue
            on_path[v] = len(path_edges) + 1
            path_edges.append(e)
            stack.append((v, 0))
    return None


def minimum_mean_cycle(
    g: DiGraph,
    weight: np.ndarray | None = None,
) -> tuple[Fraction, list[int]] | None:
    """Minimum mean-weight cycle of ``g`` under ``weight``.

    Returns ``(mean, edge_id_cycle)`` with ``mean`` an exact
    :class:`~fractions.Fraction`, or ``None`` for acyclic graphs. Weights
    may be negative. The witness cycle's mean equals the reported value
    exactly (asserted internally).
    """
    w = g.cost if weight is None else np.asarray(weight, dtype=np.int64)
    if len(w) != g.m:
        raise GraphError("weight array length mismatch")
    if g.m == 0:
        return None

    # mu* over the whole graph: run Karp once per undiscovered region.
    best: Fraction | None = None
    visited = np.zeros(g.n, dtype=bool)
    starts, eids = g.out_csr()
    for source in range(g.n):
        if visited[source]:
            continue
        stack = [source]
        while stack:
            u = stack.pop()
            if visited[u]:
                continue
            visited[u] = True
            for e in eids[starts[u] : starts[u + 1]]:
                v = int(g.head[e])
                if not visited[v]:
                    stack.append(v)
        val = _karp_value_from_source(g, source, w)
        if val is not None and (best is None or val < best):
            best = val
    if best is None:
        return None

    # Witness via exact reweighting: w' = q*w - p has min cycle mean 0.
    p, q = best.numerator, best.denominator
    w2 = w * q - p
    # Bellman-Ford potentials from a virtual super-source (all zeros);
    # convergence guaranteed: no negative cycle under w2.
    dist = np.zeros(g.n, dtype=np.int64)
    tail, head = g.tail, g.head
    for _ in range(g.n):
        cand = dist[tail] + w2
        new = dist.copy()
        np.minimum.at(new, head, cand)
        if np.array_equal(new, dist):
            break
        dist = new
    zero_reduced = np.nonzero(dist[tail] + w2 == dist[head])[0]
    cycle = _cycle_in_edge_subset(g, zero_reduced)
    if cycle is None:
        raise GraphError("min-mean witness extraction failed — internal error")
    got = Fraction(int(w[np.asarray(cycle)].sum()), len(cycle))
    assert got == best, "witness mean mismatch — internal error"
    return best, cycle
