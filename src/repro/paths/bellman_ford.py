"""Bellman–Ford shortest paths and negative-cycle extraction.

Residual graphs in this library carry *negative* weights on reversed edges
(Definition 6 negates both cost and delay), so negative-cycle detection under
a single criterion is a first-class operation: a negative-*delay* cycle in
the residual graph is the raw material of cycle cancellation (Lemma 9), and
the heuristic bicameral finder starts from one.

Two entry points:

* :func:`bellman_ford` — distances + predecessors from a source, raising
  :class:`~repro.errors.NegativeCycleError` (with the cycle attached) when a
  reachable negative cycle exists.
* :func:`find_negative_cycle` — detection from a virtual super-source, i.e.
  finds a negative cycle anywhere in the graph or reports none.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import GraphError, NegativeCycleError
from repro.graph.digraph import DiGraph
from repro.paths.dijkstra import INF


def _trace_cycle(g: DiGraph, pred: np.ndarray, start: int) -> list[int]:
    """Walk predecessors from ``start`` until a vertex repeats, then cut out
    the cycle as a forward edge-id list.

    A vertex improved in relaxation round ``n`` lies downstream of a
    predecessor-graph cycle, so the walk must revisit a vertex within
    ``n + 1`` steps; the visited-set walk (rather than a blind fixed-length
    one) keeps this robust under synchronous numpy relaxation where several
    predecessors update in one round.
    """
    # Preallocated visit stamps + plain-int predecessor/tail lookups: the
    # walk is bounded by n + 1 steps, and staying off numpy scalars keeps
    # each step O(1) Python-int work even on long cycles.
    seen = [-1] * g.n
    pred_l = pred.tolist()
    tail_l = g.tail.tolist()
    walk_edges: list[int] = []  # edges in reverse walk order
    v = start
    while seen[v] == -1:
        seen[v] = len(walk_edges)
        e = pred_l[v]
        if e == -1:
            raise GraphError("predecessor chain broke while tracing cycle")
        walk_edges.append(e)
        v = tail_l[e]
        if len(walk_edges) > g.n + 1:
            raise GraphError("failed to close cycle — corrupt predecessors")
    # Cycle consists of the edges walked between the two visits of v.
    first_visit = seen[v]
    cycle = walk_edges[first_visit:]
    cycle.reverse()
    return cycle


def bellman_ford(
    g: DiGraph,
    source: int,
    weight: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Single-source shortest paths allowing negative weights.

    Returns ``(dist, pred_edge)`` like
    :func:`repro.paths.dijkstra.dijkstra`. Raises
    :class:`NegativeCycleError` (with ``.cycle`` filled) when a negative
    cycle is reachable from ``source``.

    Implementation: edge-array relaxation vectorized with numpy — each round
    computes all tentative improvements at once and applies them with
    ``np.minimum.at``; per the optimization guide this beats a Python
    edge loop by an order of magnitude on dense rounds.
    """
    w = g.cost if weight is None else np.asarray(weight, dtype=np.int64)
    if len(w) != g.m:
        raise GraphError("weight array length mismatch")
    dist = np.full(g.n, INF, dtype=np.int64)
    pred = np.full(g.n, -1, dtype=np.int64)
    dist[source] = 0
    if g.m == 0:
        return dist, pred
    tail, head = g.tail, g.head
    rounds = 0
    try:
        for round_no in range(g.n):
            rounds += 1
            reach = dist[tail] < INF
            cand = dist[tail[reach]] + w[reach]
            targets = head[reach]
            eids = np.nonzero(reach)[0]
            # Improvements must be applied serially per target to keep pred
            # consistent; group by target via a scatter-min then one pass.
            new_dist = dist.copy()
            np.minimum.at(new_dist, targets, cand)
            improved_mask = cand < dist[targets]
            if not improved_mask.any():
                return dist, pred
            # For each improved target record one witnessing edge achieving
            # the scatter-min value.
            winners = cand == new_dist[targets]
            pick = improved_mask & winners
            pred[targets[pick]] = eids[pick]
            dist = new_dist
            if round_no == g.n - 1:
                # Improvement in round n ⇒ negative cycle; trace from any
                # vertex improved this round.
                start = int(targets[pick][0])
                cycle = _trace_cycle(g, pred, start)
                if int(w[np.asarray(cycle)].sum()) >= 0:
                    raise GraphError("traced a non-negative cycle — corrupt state")
                obs.inc("bellman_ford.negative_cycles")
                raise NegativeCycleError(
                    "negative cycle reachable from source", cycle
                )
        return dist, pred
    finally:
        obs.add("bellman_ford.rounds", rounds)


def find_negative_cycle(
    g: DiGraph,
    weight: np.ndarray | None = None,
) -> list[int] | None:
    """Return some negative-total-weight cycle as an edge-id list, or None.

    Uses Bellman–Ford from a virtual super-source (all distances start at 0,
    equivalent to a zero-weight edge into every vertex), so cycles anywhere
    in the graph are found.
    """
    w = g.cost if weight is None else np.asarray(weight, dtype=np.int64)
    if len(w) != g.m:
        raise GraphError("weight array length mismatch")
    if g.m == 0:
        return None
    dist = np.zeros(g.n, dtype=np.int64)
    pred = np.full(g.n, -1, dtype=np.int64)
    tail, head = g.tail, g.head
    eids_all = np.arange(g.m, dtype=np.int64)
    rounds = 0
    try:
        for round_no in range(g.n):
            rounds += 1
            cand = dist[tail] + w
            new_dist = dist.copy()
            np.minimum.at(new_dist, head, cand)
            improved_mask = cand < dist[head]
            if not improved_mask.any():
                return None
            winners = cand == new_dist[head]
            pick = improved_mask & winners
            pred[head[pick]] = eids_all[pick]
            dist = new_dist
            if round_no == g.n - 1:
                start = int(head[pick][0])
                cycle = _trace_cycle(g, pred, start)
                if int(w[np.asarray(cycle)].sum()) >= 0:
                    raise GraphError("traced a non-negative cycle — corrupt state")
                obs.inc("bellman_ford.negative_cycles")
                return cycle
        return None
    finally:
        obs.add("bellman_ford.rounds", rounds)


def negative_cycle_value(g: DiGraph, cycle: list[int], weight: np.ndarray | None = None) -> int:
    """Total weight of an edge-id cycle (convenience for assertions)."""
    w = g.cost if weight is None else np.asarray(weight, dtype=np.int64)
    return int(w[np.asarray(cycle, dtype=np.int64)].sum())
