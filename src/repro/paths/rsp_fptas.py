"""FPTAS for the single restricted shortest path, Lorenz–Raz / Hassin style.

The paper's Theorem 4 turns its pseudo-polynomial algorithm polynomial with
exactly this technique ("the traditional technique for polynomial time
approximation scheme design as in [7]", crediting Lorenz–Raz [17]); this
module implements the k=1 original both as a substrate reference and to
cross-validate the scaling wrapper in :mod:`repro.core.scaling`.

Guarantee: returns a path with delay ``<= D`` and cost ``<= (1+eps) * OPT``
in time polynomial in ``n``, ``m`` and ``1/eps``.

Structure
---------
* an exact inner DP (:func:`_min_delay_dp`) over *scaled-cost* budgets
  computing minimum delay per budget — all scaled costs are >= 1 by the
  ``floor(c/theta) + 1`` trick, so layers strictly increase;
* a Hassin-style TEST that decides ``OPT <= C`` vs ``OPT > C`` up to factor 2;
* geometric interval narrowing until ``UB <= 2 * LB``, then one final scaled
  DP with ``theta = eps * LB / (n + 1)``.

All scaling arithmetic is exact (rationals via integer cross-multiplication).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.paths.dijkstra import INF, dijkstra, extract_path


def _min_delay_dp(
    g: DiGraph,
    s: int,
    t: int,
    chat: np.ndarray,
    budget: int,
    delay_bound: int,
) -> tuple[int, list[int]] | None:
    """Min-delay path with scaled cost ``sum(chat) <= budget``.

    ``chat`` must be >= 1 per edge. Returns ``(scaled_cost, path)`` for the
    cheapest scaled budget whose min delay is ``<= delay_bound``, or None.
    """
    if (chat < 1).any():
        raise GraphError("scaled costs must be >= 1")
    B = int(budget)
    n = g.n
    mind = np.full((B + 1, n), INF, dtype=np.int64)
    pred = np.full((B + 1, n), -1, dtype=np.int64)
    mind[0, s] = 0
    tail, head, delay = g.tail, g.head, g.delay
    answer_beta = -1
    for beta in range(B + 1):
        if mind[beta, t] <= delay_bound:
            answer_beta = beta
            break
        if beta == B:
            break
        src_beta = beta
        # Relax all edges out of states in this layer (chat >= 1 guarantees
        # the destination layer is strictly larger, so one pass suffices).
        live = mind[src_beta] < INF
        if not live.any():
            continue
        for e in range(g.m):
            u = int(tail[e])
            if not live[u]:
                continue
            nb = src_beta + int(chat[e])
            if nb > B:
                continue
            cand = int(mind[src_beta, u]) + int(delay[e])
            v = int(head[e])
            if cand < mind[nb, v]:
                mind[nb, v] = cand
                pred[nb, v] = e * (B + 1) + src_beta
    if answer_beta < 0:
        return None
    # Reconstruct from (answer_beta, t).
    path: list[int] = []
    b, v = answer_beta, t
    while True:
        packed = int(pred[b, v])
        if packed == -1:
            if v == s and b == 0:
                break
            raise GraphError("FPTAS DP reconstruction hit a dead state")
        e, src = divmod(packed, B + 1)
        path.append(e)
        v = int(g.tail[e])
        b = src
        if len(path) > g.n * (B + 1) + 1:
            raise GraphError("FPTAS DP reconstruction did not terminate")
    path.reverse()
    return answer_beta, path


def _scaled_costs(g: DiGraph, theta_num: int, theta_den: int) -> np.ndarray:
    """``floor(c(e) / theta) + 1`` with ``theta = theta_num / theta_den``,
    computed exactly in integers (c * den // num)."""
    if theta_num <= 0 or theta_den <= 0:
        raise GraphError("theta must be positive")
    return (g.cost * theta_den) // theta_num + 1


def rsp_fptas(
    g: DiGraph,
    s: int,
    t: int,
    delay_bound: int,
    eps: float = 0.25,
) -> tuple[int, list[int]] | None:
    """(1+eps)-approximate RSP: delay ``<= delay_bound`` strictly, cost
    ``<= (1+eps) * OPT``.

    Returns ``(cost, edge_id_path)`` or ``None`` when infeasible.
    """
    g.require_nonnegative()
    if eps <= 0:
        raise GraphError(f"eps must be positive, got {eps}")
    if delay_bound < 0:
        return None
    if s == t:
        return (0, [])

    # Feasibility + trivial bounds from the two single-criterion extremes.
    dist_d, pred_d = dijkstra(g, s, weight=g.delay)
    if int(dist_d[t]) > delay_bound:
        return None
    dist_c, pred_c = dijkstra(g, s, weight=g.cost)
    min_cost_path = extract_path(pred_c, g, t, source=s, dist=dist_c)
    if g.delay_of(min_cost_path) <= delay_bound:
        # The globally cheapest path is already feasible: exact optimum.
        return int(dist_c[t]), min_cost_path
    min_delay_path = extract_path(pred_d, g, t, source=s, dist=dist_d)

    lb = max(1, int(dist_c[t]))  # min cost over all paths <= OPT
    ub = max(lb, g.cost_of(min_delay_path))  # a feasible path's cost >= OPT
    n1 = g.n + 1

    # Interval narrowing: TEST(C) with eps'=1 decides OPT > C (NO) or
    # provides a feasible path of cost < 2C (YES). The 4*lb exit (not 2*lb)
    # is what guarantees strict progress on the YES branch: new ub <=
    # 2*sqrt(lb*ub) < ub exactly when ub > 4*lb.
    while ub > 4 * lb:
        c_mid = int(np.sqrt(float(lb) * float(ub)))
        c_mid = min(max(c_mid, lb + 1), ub - 1)
        chat = _scaled_costs(g, c_mid, n1)  # theta = C / (n+1)
        budget = 2 * n1  # C/theta + n + 1 = 2n + 2
        hit = _min_delay_dp(g, s, t, chat, budget, delay_bound)
        if hit is None:
            lb = c_mid  # OPT > C
        else:
            _, path = hit
            # True cost < theta * budget = 2C, so ub strictly shrinks.
            ub = min(ub, g.cost_of(path), 2 * c_mid)

    # Final scaled DP: theta = eps * lb / (n+1) (exact rational).
    f = Fraction(eps).limit_denominator(10**6)
    theta_num = f.numerator * lb
    theta_den = f.denominator * n1
    chat = _scaled_costs(g, theta_num, theta_den)
    budget = int((ub * theta_den) // theta_num) + g.n + 1
    hit = _min_delay_dp(g, s, t, chat, budget, delay_bound)
    if hit is None:
        # ub came from a concrete feasible path, so this cannot happen.
        raise GraphError("final FPTAS DP lost a known-feasible path")
    _, path = hit
    return g.cost_of(path), path
