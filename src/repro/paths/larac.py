"""LARAC: Lagrangian relaxation for the single restricted shortest path.

The classic dual heuristic for RSP (and the ancestor of the Lagrangian
phase-1 provider in :mod:`repro.core.phase1`): relax the delay constraint
into the objective with multiplier ``lambda >= 0``, walk the lower convex
envelope of (delay, cost) path trade-offs, and return

* the best *feasible* path found (delay ``<= D``), and
* the Lagrangian dual value ``L(lambda*) = c(P) + lambda* (d(P) - D)``,
  a certified lower bound on OPT.

LARAC's feasible path is not worst-case bounded, but its lower bound is what
the evaluation harness uses to normalize costs on instances too large for
the exact MILP.

All multiplier arithmetic is exact: ``lambda = num/den`` and the combined
weight is ``den * c(e) + num * d(e)`` (integral, nonnegative), so Dijkstra
applies at every step and no floating-point tie can derail the iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.paths.dijkstra import INF, dijkstra, extract_path


@dataclass(frozen=True)
class LaracResult:
    """Outcome of :func:`larac`.

    Attributes
    ----------
    path:
        Edge ids of the best delay-feasible path found.
    cost, delay:
        Its totals.
    lower_bound:
        Certified lower bound on the optimal feasible cost (a
        :class:`~fractions.Fraction`; ``float()`` it for display).
    lam:
        The final multiplier (Fraction).
    iterations:
        Number of combined-weight shortest-path calls.
    """

    path: list[int]
    cost: int
    delay: int
    lower_bound: Fraction
    lam: Fraction
    iterations: int


def _sp(g: DiGraph, s: int, t: int, weight) -> tuple[list[int], int]:
    dist, pred = dijkstra(g, s, weight=weight, target=t)
    if int(dist[t]) >= INF:
        raise GraphError("target unreachable")
    return extract_path(pred, g, t, source=s, dist=dist), int(dist[t])


def larac(
    g: DiGraph,
    s: int,
    t: int,
    delay_bound: int,
    max_iterations: int = 100,
) -> LaracResult | None:
    """Run LARAC; returns ``None`` when no delay-feasible path exists.

    Terminates when the multiplier update reaches a fixed point (standard
    LARAC convergence) or after ``max_iterations`` combined searches.
    """
    g.require_nonnegative()
    if s == t:
        return LaracResult([], 0, 0, Fraction(0), Fraction(0), 0)

    iterations = 0

    # p_c: min-cost extreme. Feasible => exact optimum, lower bound tight.
    # An unreachable target means no path at all, hence infeasible.
    try:
        path_c, _ = _sp(g, s, t, g.cost)
    except GraphError:
        return None
    iterations += 1
    cost_c, delay_c = g.cost_of(path_c), g.delay_of(path_c)
    if delay_c <= delay_bound:
        return LaracResult(
            path_c, cost_c, delay_c, Fraction(cost_c), Fraction(0), iterations
        )

    # p_d: min-delay extreme. Infeasible => no feasible path at all.
    path_d, _ = _sp(g, s, t, g.delay)
    iterations += 1
    if g.delay_of(path_d) > delay_bound:
        return None
    # Among min-delay paths prefer cheap ones: re-run with cost tie-break
    # folded in (weight = delay * (1 + sum(cost)) + cost keeps ordering by
    # delay primary, cost secondary, still integral).
    big = g.total_cost() + 1
    path_d, _ = _sp(g, s, t, g.delay * big + g.cost)
    iterations += 1
    cost_d, delay_d = g.cost_of(path_d), g.delay_of(path_d)

    infeasible = (path_c, cost_c, delay_c)  # cheap but too slow
    feasible = (path_d, cost_d, delay_d)

    # Dual bound bookkeeping: every combined search at multiplier lam yields
    # the certified bound min_P [c(P) + lam*(d(P) - D)]; lam=0 (the min-cost
    # search above) contributes cost_c.
    best_bound = Fraction(cost_c)

    lam = Fraction(0)
    while iterations < max_iterations:
        pc, cc, dc = infeasible
        pf, cf, df = feasible
        if dc == df:
            break
        lam = Fraction(cf - cc, dc - df)
        if lam <= 0:
            break
        # Integral combined weight den*c + num*d.
        w = lam.denominator * g.cost + lam.numerator * g.delay
        path_r, wval = _sp(g, s, t, w)
        iterations += 1
        cr, dr = g.cost_of(path_r), g.delay_of(path_r)
        # The search certifies L(lam) = wval/den - lam*D <= OPT.
        best_bound = max(best_bound, Fraction(wval, lam.denominator) - lam * delay_bound)
        # Fixed point: the new path achieves the same combined value as the
        # current extremes — lambda is optimal for the dual.
        cur_val = lam.denominator * cc + lam.numerator * dc
        if wval == cur_val:
            break
        if dr <= delay_bound:
            feasible = (path_r, cr, dr)
        else:
            infeasible = (path_r, cr, dr)

    pf, cf, df = feasible
    lower = min(max(best_bound, Fraction(0)), Fraction(cf))
    return LaracResult(pf, cf, df, lower, lam, iterations)
