"""Dirty-anchor tracking and parallel fan-out for the Algorithm 3 finder.

The paper-literal finder solves LP (6) on ``H_v^±(B)`` for every anchor
``v`` × budget level × sign — by far the most LP solves of any code path.
Yet one cancellation step flips only a handful of residual edges, so most
anchors see an *unchanged neighbourhood*:

* :class:`AnchorTracker` stamps every residual edge with the version at
  which it last flipped. An anchor whose incident edges are all older
  than its last probe is **clean**: its cached candidates are replayed
  (each one re-validated edge-by-edge against the flip stamps, so a
  replayed candidate is always a still-valid residual cycle with its
  recorded cost and delay). Only **dirty** anchors are re-probed.
* The dirty set fans out over the fault-tolerant process pool of
  :mod:`repro.eval.parallel` (submit/wait, stall guard, respawn-once);
  an anchor task lost to a crash is transparently recomputed serially,
  so the candidate set never silently shrinks. Merge order is the
  canonical serial ``(B, anchor, sign)`` order, so the fan-out itself is
  deterministic.

Soundness vs. fidelity: replayed verdicts were computed against an older
residual and an older ``DeltaD``, so the *set* of candidates may differ
from a full re-probe (an LP on the current graph might find different
cycles) — every replayed candidate is still a genuine residual cycle,
candidate *selection* downstream re-checks all rate tests, and the final
solution still verifies. This is therefore a documented heuristic, kept
**opt-in** (``incremental=True`` with ``finder="paper_literal"``); the
bit-identity guarantee of :mod:`repro.perf` applies to the production
finder. Counters: ``search.anchors.{probes,dirty,skipped}`` plus
``search.anchors.replayed`` / ``search.anchors.replay_dropped``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.auxgraph import build_aux_paper
from repro.core.auxlp import candidates_from_circulation, solve_lp6
from repro.core.bicameral import CandidateCycle
from repro.core.residual import ResidualGraph
from repro.graph.digraph import DiGraph
from repro.robustness.budget import BudgetMeter

#: (b, sign) -> candidates found by one anchor probe.
AnchorResults = dict[tuple[int, int], list[CandidateCycle]]


@dataclass
class _Verdict:
    version: int
    results: AnchorResults


class AnchorTracker:
    """Per-edge flip stamps + per-anchor cached probe verdicts."""

    def __init__(self, m: int) -> None:
        # Version at which each residual edge last flipped; 0 = never
        # (build_residual starts at version 0, flips bump to >= 1).
        self._last_flip = np.zeros(m, dtype=np.int64)
        self._verdicts: dict[int, _Verdict] = {}

    def note_flips(self, flipped_eids, version: int) -> None:
        """Stamp ``flipped_eids`` as changed at residual ``version``."""
        self._last_flip[np.asarray(flipped_eids, dtype=np.int64)] = version

    def is_dirty(self, residual: ResidualGraph, anchor: int) -> bool:
        """True when ``anchor`` must be re-probed.

        Never probed, or some edge incident to it (incidence is
        flip-invariant: reversal swaps endpoints but keeps the vertex
        pair) flipped after its cached verdict.
        """
        verdict = self._verdicts.get(anchor)
        if verdict is None:
            return True
        g = residual.graph
        incident = np.concatenate([g.out_edges(anchor), g.in_edges(anchor)])
        return bool((self._last_flip[incident] > verdict.version).any())

    def store(self, anchor: int, version: int, results: AnchorResults) -> None:
        self._verdicts[anchor] = _Verdict(version=version, results=results)

    def replay(self, anchor: int, b: int, sign: int) -> list[CandidateCycle]:
        """Cached candidates for ``(anchor, b, sign)`` that are still valid.

        A candidate survives iff none of its edges flipped after the
        verdict was recorded — then it is verbatim the same residual
        cycle, with the same cost and delay.
        """
        verdict = self._verdicts.get(anchor)
        if verdict is None:
            return []
        out: list[CandidateCycle] = []
        dropped = 0
        for cand in verdict.results.get((b, sign), []):
            edges = np.asarray(cand.edges, dtype=np.int64)
            if (self._last_flip[edges] <= verdict.version).all():
                out.append(cand)
            else:
                dropped += 1
        if out:
            obs.add("search.anchors.replayed", len(out))
        if dropped:
            obs.add("search.anchors.replay_dropped", dropped)
        return out


def _probe_anchor(
    g: DiGraph,
    anchor: int,
    b_values: list[int],
    delta_d: int,
    meter: BudgetMeter | None = None,
) -> tuple[AnchorResults, int, int, int]:
    """One anchor's full probe: every ``(b, sign)`` pair of Algorithm 3.

    Returns ``(results, aux_nodes, aux_edges, lp_solves)`` — pure compute,
    shared verbatim by the in-process path and the pool worker so both
    produce the same candidates for the same inputs.
    """
    results: AnchorResults = {}
    aux_nodes = aux_edges = lp_solves = 0
    for b in b_values:
        for sign in (+1, -1):
            aux = build_aux_paper(g, anchor, b, sign)
            aux_nodes += aux.graph.n
            aux_edges += aux.graph.m
            if meter is not None:
                meter.charge_search_nodes(aux.graph.n, "search.paper_tracked")
            x = solve_lp6(aux, delta_d)
            lp_solves += 1
            if x is None:
                results[(b, sign)] = []
                continue
            results[(b, sign)] = candidates_from_circulation(aux, g, x)
    return results, aux_nodes, aux_edges, lp_solves


def _anchor_worker(payload: dict) -> dict:
    """Pool worker: probe one anchor on a deserialized residual graph.

    Catches everything (a failed probe is recomputed serially by the
    caller — it must never poison the pool)."""
    from repro.graph.io import graph_from_dict

    try:
        g = graph_from_dict(payload["graph"])
        results, aux_nodes, aux_edges, lp_solves = _probe_anchor(
            g, payload["anchor"], payload["b_values"], payload["delta_d"]
        )
        return {
            "status": "ok",
            "anchor": payload["anchor"],
            "results": [
                (b, sign, [(list(c.edges), c.cost, c.delay) for c in cands])
                for (b, sign), cands in results.items()
            ],
            "aux_nodes": aux_nodes,
            "aux_edges": aux_edges,
            "lp_solves": lp_solves,
        }
    except Exception as exc:  # noqa: BLE001 — report as data, never raise
        return {
            "status": "error",
            "anchor": payload.get("anchor"),
            "error": f"{type(exc).__name__}: {exc}",
        }


def _anchor_failure_record(payload: dict, kind: str, detail: str, seconds: float) -> dict:
    return {"status": kind, "anchor": payload.get("anchor"), "error": detail}


def _fan_out(
    g: DiGraph,
    dirty: list[int],
    b_values: list[int],
    delta_d: int,
    max_workers: int,
) -> tuple[dict[int, AnchorResults], tuple[int, int, int]]:
    """Probe dirty anchors on the fault-tolerant worker pool.

    Returns ``(results by anchor, (aux_nodes, aux_edges, lp_solves))`` for
    the anchors that came back ``ok`` — the caller recomputes the rest
    in-process, so crashes and stalls degrade throughput, never
    correctness. Worker-side telemetry counters do not propagate (separate
    processes); the aggregate aux/LP work is folded into the caller's
    :class:`~repro.core.search.SearchStats` instead.
    """
    from repro.eval.parallel import resilient_pool_map
    from repro.graph.io import graph_to_dict

    g_dict = graph_to_dict(g)
    payloads = [
        {"graph": g_dict, "anchor": v, "b_values": list(b_values), "delta_d": delta_d}
        for v in dirty
    ]
    records = resilient_pool_map(
        _anchor_worker,
        payloads,
        max_workers=max_workers,
        failure_record=_anchor_failure_record,
    )
    out: dict[int, AnchorResults] = {}
    aux_nodes = aux_edges = lp_solves = 0
    for rec in records:
        if rec.get("status") != "ok":
            obs.inc("search.anchors.fanout_failures")
            continue
        results: AnchorResults = {}
        for b, sign, cands in rec["results"]:
            results[(int(b), int(sign))] = [
                CandidateCycle(edges=tuple(edges), cost=int(c), delay=int(d))
                for edges, c, d in cands
            ]
        out[int(rec["anchor"])] = results
        aux_nodes += rec["aux_nodes"]
        aux_edges += rec["aux_edges"]
        lp_solves += rec["lp_solves"]
    return out, (aux_nodes, aux_edges, lp_solves)


def find_bicameral_candidates_paper_tracked(
    residual: ResidualGraph,
    delta_d: int,
    tracker: AnchorTracker,
    b_values: list[int] | None = None,
    anchors: list[int] | None = None,
    stats=None,
    meter: BudgetMeter | None = None,
    max_workers: int | None = None,
) -> list[CandidateCycle]:
    """Algorithm 3 with dirty-anchor reuse (and optional fan-out).

    Drop-in for :func:`repro.core.search.find_bicameral_candidates_paper`
    plus a ``tracker`` carried across cancellation iterations. Clean
    anchors replay cached (still-valid) candidates; dirty anchors are
    re-probed — in parallel when ``max_workers > 1`` and no budget meter
    is armed (a meter needs in-process cooperative checks). Candidates
    merge in the canonical serial ``(b, anchor, sign)`` order.
    """
    from repro.core.search import SearchStats

    stats = stats if stats is not None else SearchStats()
    stats.short_circuited_type0 = False
    before = stats._snapshot()
    with obs.span("search.paper_tracked"):
        try:
            return _tracked_impl(
                residual, delta_d, tracker, b_values, anchors, stats,
                meter, max_workers,
            )
        finally:
            stats._flush_delta(before)


def _tracked_impl(
    residual: ResidualGraph,
    delta_d: int,
    tracker: AnchorTracker,
    b_values: list[int] | None,
    anchors: list[int] | None,
    stats,
    meter: BudgetMeter | None,
    max_workers: int | None,
) -> list[CandidateCycle]:
    from repro.core.search import reversed_edge_anchors

    g = residual.graph
    if anchors is None:
        anchors = reversed_edge_anchors(residual)
    if b_values is None:
        total = max(1, int(np.abs(g.cost).sum()))
        b_values = []
        b = 1
        while True:
            b_values.append(b)
            if b >= total:
                break
            b = min(b * 2, total)

    dirty = [v for v in anchors if tracker.is_dirty(residual, v)]
    dirty_set = set(dirty)
    obs.add("search.anchors.probes", len(anchors))
    obs.add("search.anchors.dirty", len(dirty))
    obs.add("search.anchors.skipped", len(anchors) - len(dirty))

    fresh: dict[int, AnchorResults] = {}
    if (
        max_workers is not None
        and max_workers > 1
        and len(dirty) > 1
        and meter is None
    ):
        fresh, (aux_nodes, aux_edges, lp_solves) = _fan_out(
            g, dirty, b_values, delta_d, max_workers
        )
        stats.aux_nodes_built += aux_nodes
        stats.aux_edges_built += aux_edges
        stats.lp_solves += lp_solves
    for v in dirty:
        if v not in fresh:
            results, aux_nodes, aux_edges, lp_solves = _probe_anchor(
                g, v, b_values, delta_d, meter
            )
            stats.aux_nodes_built += aux_nodes
            stats.aux_edges_built += aux_edges
            stats.lp_solves += lp_solves
            fresh[v] = results
    for v in dirty:
        tracker.store(v, residual.version, fresh[v])

    candidates: list[CandidateCycle] = []
    seen: set[tuple[int, ...]] = set()
    for b in b_values:
        for v in anchors:
            for sign in (+1, -1):
                if v in dirty_set:
                    found = fresh[v].get((b, sign), [])
                else:
                    found = tracker.replay(v, b, sign)
                for cand in found:
                    key = tuple(sorted(cand.edges))
                    if key not in seen:
                        seen.add(key)
                        candidates.append(cand)
        stats.b_values.append(b)
    stats.candidates = len(candidates)
    return candidates
