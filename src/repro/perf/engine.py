"""The incremental search engine threaded through the cancellation loop.

One :class:`IncrementalSearch` instance lives for the duration of one
``cancel_to_feasibility`` call. Instead of rebuilding the residual graph
from the solution edge set every iteration, the engine keeps a single
:class:`~repro.core.residual.ResidualGraph` and advances it by flipping
exactly the edges whose solution membership changed (the symmetric
difference of consecutive solutions — which also covers edges removed by
``strip_improving_cycles`` beyond the applied cycle itself). Its
:meth:`IncrementalSearch.aux_provider` hook slots into
:func:`repro.core.search.find_bicameral_cycle` in place of
:func:`repro.core.auxgraph.build_aux_shifted`, serving layered graphs from
the :class:`~repro.perf.auxcache.AuxCache`.

Because the served residual and auxiliary arrays are bit-identical to
their from-scratch counterparts, every downstream decision — Bellman–Ford
probes, HiGHS LP solves, candidate extraction, selection — is unchanged;
the differential suite (``tests/test_search_incremental.py``) asserts the
full cancelled-cycle sequence and telemetry trail match.
"""

from __future__ import annotations

import numpy as np

from repro.core.auxgraph import AuxGraph
from repro.core.residual import ResidualGraph, build_residual
from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.lp.engine import LPEngine, get_engine
from repro.perf.anchors import AnchorTracker
from repro.perf.auxcache import DEFAULT_MAX_BYTES, AuxCache


class IncrementalSearch:
    """Long-lived residual + aux-graph state for one cancellation run.

    Usage (what :func:`repro.core.cancellation.cancel_to_feasibility`
    does when ``incremental`` is on)::

        engine = IncrementalSearch(g)
        while infeasible:
            residual = engine.residual_for(sol.edge_ids)
            pick = find_bicameral_cycle(
                residual, ..., aux_provider=engine.aux_provider)
            ...
    """

    def __init__(
        self, graph: DiGraph, *, max_cache_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        self._g = graph
        self._max_cache_bytes = max_cache_bytes
        self._residual: ResidualGraph | None = None
        self._solution: frozenset[int] | None = None
        self._cache: AuxCache | None = None
        self._tracker: AnchorTracker | None = None

    @property
    def residual(self) -> ResidualGraph | None:
        return self._residual

    @property
    def lp_engine(self) -> LPEngine:
        """The process-global LP engine the search's solves run through.

        Deliberately *not* stored on the instance: the engine owns
        unpicklable HiGHS handles, and ``IncrementalSearch`` state crosses
        spawn boundaries in checkpoints and the service worker pool.
        Warm-model continuity comes from the aux cache's family token, not
        from holding a reference — the doubling schedule, cancellation
        iterations, and online ``resolve`` sessions all land on the same
        per-process models as long as the cache (and thus its token)
        survives, which is exactly the lifetime ``residual_for`` maintains.
        """
        return get_engine()

    @property
    def tracker(self) -> AnchorTracker:
        """Dirty-anchor tracker for the paper-literal finder (lazy)."""
        if self._tracker is None:
            self._tracker = AnchorTracker(self._g.m)
        return self._tracker

    def residual_for(self, solution_edge_ids) -> ResidualGraph:
        """The residual of the current solution, updated in place.

        First call builds it from scratch (Definition 6); later calls flip
        the symmetric difference against the previous solution and bump the
        version, which is bit-identical to a rebuild (differentially
        tested) at ``O(changed edges)`` cost.
        """
        new_solution = frozenset(int(e) for e in solution_edge_ids)
        if self._residual is None:
            self._residual = build_residual(self._g, sorted(new_solution))
            self._cache = AuxCache(
                self._residual, max_bytes=self._max_cache_bytes
            )
        else:
            diff = self._solution ^ new_solution
            if diff:
                flipped = self._residual.apply_flip(sorted(diff))
                assert self._cache is not None
                self._cache.note_flips(flipped)
                if self._tracker is not None:
                    self._tracker.note_flips(flipped, self._residual.version)
        self._solution = new_solution
        return self._residual

    def restore(self, residual: ResidualGraph) -> None:
        """Adopt a checkpoint-restored residual as the engine's live state.

        The resume path (:func:`repro.robustness.checkpointing.resume_krsp`)
        deserializes the snapshot's residual and hands it here; the solution
        it reflects is exactly its reversed edge set, so no separate edge
        list is needed. The aux cache restarts cold — correctness never
        depended on it being warm — and the anchor tracker is dropped
        (resume supports the production finder only).
        """
        self._residual = residual
        self._solution = frozenset(
            int(e) for e in np.nonzero(residual.reversed_mask)[0]
        )
        self._cache = AuxCache(residual, max_bytes=self._max_cache_bytes)
        self._tracker = None

    def apply_reweight(self, edge_ids, cost, delay) -> np.ndarray:
        """Drift edge weights in place (online churn seam); returns ids.

        ``cost``/``delay`` are new original-orientation values aligned with
        ``edge_ids``; the residual stores them sign-adjusted and bumps its
        version, and the aux cache reconciles eagerly (reweights cannot ride
        the parity-folded flip log — see :meth:`AuxCache.note_reweight`).
        The anchor tracker is dropped: reweights are an online-resolve
        operation and resume/online paths run the production finder only.
        """
        if self._residual is None:
            raise GraphError("apply_reweight: engine has no residual yet")
        eids = self._residual.reweight_edges(edge_ids, cost, delay)
        assert self._cache is not None
        self._cache.note_reweight(eids)
        self._tracker = None
        return eids

    def remove_edges(self, edge_ids) -> np.ndarray:
        """Delete edges from the residual (online churn seam); returns map.

        Refuses edges carrying solution flow (see
        :meth:`ResidualGraph.remove_edges`); the old->new id map is what
        callers use to renumber their path sets. Edge ids shift, so the
        cached solution set is recomputed from the compacted mask and the
        aux cache and flip log are discarded wholesale.
        """
        if self._residual is None:
            raise GraphError("remove_edges: engine has no residual yet")
        id_map = self._residual.remove_edges(edge_ids)
        self._rebind_structural()
        return id_map

    def add_edges(self, tail, head, cost, delay) -> np.ndarray:
        """Append forward edges to the residual (online churn seam)."""
        if self._residual is None:
            raise GraphError("add_edges: engine has no residual yet")
        new_ids = self._residual.add_edges(tail, head, cost, delay)
        self._rebind_structural()
        return new_ids

    def _rebind_structural(self) -> None:
        """Re-derive engine state after a structural residual mutation."""
        assert self._residual is not None
        self._solution = frozenset(
            int(e) for e in np.nonzero(self._residual.reversed_mask)[0]
        )
        if self._cache is not None:
            self._cache.note_structural_change()
        self._cache = AuxCache(self._residual, max_bytes=self._max_cache_bytes)
        self._tracker = None

    def aux_provider(self, residual_graph: DiGraph, B: int) -> AuxGraph:
        """Drop-in for ``build_aux_shifted`` backed by the keyed cache.

        Guards against being handed a residual the engine does not manage
        (the cache's delta bookkeeping would silently desynchronise).
        """
        if self._residual is None or residual_graph is not self._residual.graph:
            raise GraphError(
                "aux_provider called with a residual this engine does not own"
            )
        assert self._cache is not None
        return self._cache.get(B)
