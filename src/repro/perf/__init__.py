"""Incremental candidate-search engine (PR 4).

The dominant cost of Algorithm 1 outside the LP solves is redundant
reconstruction: every cancellation iteration rebuilt the residual graph
from scratch and re-materialised every layered auxiliary graph of the
doubling schedule, even though a cancelled cycle flips only
``O(cycle length)`` residual edges. This package removes that redundancy
without changing a single solver decision:

* :class:`~repro.perf.engine.IncrementalSearch` — owns a long-lived
  :class:`~repro.core.residual.ResidualGraph` updated in place via
  versioned edge flips, plus an :class:`~repro.perf.auxcache.AuxCache`
  of layered auxiliary graphs keyed ``(residual version, B)``.
* :class:`~repro.perf.auxcache.AuxCache` — delta-patches cached aux
  graphs when the residual changes (only the flipped edges' layer
  segments are rewritten) and grows level ``B`` from level ``B/2``
  instead of re-enumerating all layer copies.
* :class:`~repro.perf.anchors.AnchorTracker` — dirty-anchor bookkeeping
  for the paper-literal Algorithm 3 finder: anchors whose incident
  residual edges are unchanged replay their cached candidate cycles,
  and the surviving dirty set can fan out over the fault-tolerant
  worker pool of :mod:`repro.eval.parallel`.

Correctness contract: with the production finder the incremental engine
is **bit-identical** to the from-scratch path — same residual arrays,
same auxiliary graphs edge-for-edge, hence the same LP inputs, the same
cancelled cycles and the same ``cancel.iteration`` telemetry trail
(enforced by ``tests/test_search_incremental.py``). Dirty-anchor replay
for the paper finder is a documented heuristic (replayed candidates are
always still-valid residual cycles, but the candidate *set* may differ
from a full re-probe) and stays opt-in. See docs/PERFORMANCE.md.
"""

from repro.perf.anchors import AnchorTracker, find_bicameral_candidates_paper_tracked
from repro.perf.auxcache import AuxCache
from repro.perf.engine import IncrementalSearch

__all__ = [
    "AnchorTracker",
    "AuxCache",
    "IncrementalSearch",
    "find_bicameral_candidates_paper_tracked",
]
