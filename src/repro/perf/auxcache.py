"""Versioned cache of shifted auxiliary graphs with in-place delta patching.

Three observations make layered auxiliary graphs cacheable across the
cancellation loop (see docs/PERFORMANCE.md for the full protocol):

1. **Flip-invariant layout.** Edge ``e`` owns ``max(0, 2B + 1 - |c(e)|)``
   consecutive layer copies in the shifted graph of radius ``B``
   (:func:`repro.core.auxgraph.layer_window_counts`), and that count is
   symmetric in the sign of ``c(e)``. Cancelling a cycle negates costs but
   never changes ``|c|``, so every edge keeps exactly its segment of the
   flat arrays — a flip rewrites segment *values* (new endpoints, negated
   weights, shifted layer window) without moving a single byte of layout.
2. **Structural wraps.** Wrap edges depend only on ``(n, B)``
   (:func:`repro.core.auxgraph.shifted_wrap_arrays`) — they survive every
   residual change untouched.
3. **Prefix windows across the doubling schedule.** An edge's layer window
   at radius ``B`` starts at the same offset as at radius ``B/2`` and only
   extends, so level ``B`` is assembled by scattering level ``B/2``'s
   (edge id, window offset) structure into the wider layout and appending
   the extension copies — no re-enumeration of the shared prefix.

The cache key is ``(residual version, B)``; any entry can be brought to
the current version by replaying the flip log (parity-folded, so an edge
flipped twice costs nothing). Entries produced by any path — full build,
delta refresh, or growth — are **bit-identical** to a fresh
:func:`repro.core.auxgraph.build_aux_shifted` call on the current
residual, which is what keeps the incremental engine's LP inputs (and
therefore every solver decision) exactly equal to the from-scratch path.

Counters (see docs/OBSERVABILITY.md): ``search.aux_cache.hit`` /
``.miss`` / ``.delta_refresh`` / ``.grow`` / ``.evict``, the
``search.aux_cache.bytes`` gauge, and ``search.rebuild_bytes`` (bytes
actually written per construction or patch — the work a from-scratch
rebuild would have multiplied).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.auxgraph import (
    AuxGraph,
    build_aux_shifted,
    layer_window_counts,
    shifted_wrap_arrays,
)
from repro.core.residual import ResidualGraph
from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.lp.engine import next_family_token

#: Default byte budget for cached auxiliary graphs (per cache / per solve).
DEFAULT_MAX_BYTES = 128 * 1024 * 1024


class WarmHandle:
    """The LP engine's view of one cached level: family identity + deltas.

    Attached to every :class:`~repro.core.auxgraph.AuxGraph` the cache
    serves (``aux.warm``). The engine keys its persistent HiGHS models by
    ``(token(), B, sign)`` and calls :meth:`dirty_since` to fetch the
    parity-folded edge ids a model missed since it last synced — exactly
    the edges :meth:`AuxCache._patch` rewrote in the aux arrays, so
    value-patching those edges' layer columns brings the model to the
    graph the solve is about to run on. A ``None`` from
    :meth:`dirty_since` or :meth:`layout` means the delta is not
    expressible (flip-log gap, reweight, eviction) and the engine must
    rebuild cold.
    """

    def __init__(self, cache: "AuxCache", B: int) -> None:
        self._cache = cache
        self._B = B

    def token(self) -> int:
        """Process-unique id of the owning cache (rotates on unpickle)."""
        return self._cache.token

    def version(self) -> int:
        """Current residual version — what a solve syncs a model to."""
        return self._cache.residual_version

    def layout(self) -> tuple[np.ndarray, np.ndarray] | None:
        """``(counts, seg_starts)`` of this level, or ``None`` if evicted."""
        entry = self._cache._entries.get(self._B)
        if entry is None or entry.B != self._B:
            return None
        return entry.counts, entry.seg_starts

    def dirty_since(self, version: int) -> np.ndarray | None:
        """Edges changed in ``[version, now)``; ``None`` → cold rebuild."""
        if version < 0:
            return None
        return self._cache._parity_between(version, self._cache.residual_version)


def _exclusive_cumsum(counts: np.ndarray) -> np.ndarray:
    starts = np.zeros(len(counts), dtype=np.int64)
    if len(counts) > 1:
        np.cumsum(counts[:-1], out=starts[1:])
    return starts


@dataclass
class _Entry:
    """One cached level: the aux graph plus its structural skeleton.

    ``counts``/``seg_starts`` describe the per-residual-edge segment
    layout of the layered (non-wrap) prefix; ``eids``/``offs`` are the
    per-copy (residual edge id, within-window offset) pairs. The skeleton
    depends only on ``|c|`` and ``B`` — never on flip state — so it is
    valid at every residual version and is what growth reuses.
    """

    aux: AuxGraph
    B: int
    version: int
    counts: np.ndarray
    seg_starts: np.ndarray
    eids: np.ndarray
    offs: np.ndarray

    @property
    def n_layer_edges(self) -> int:
        return len(self.eids)

    @property
    def nbytes(self) -> int:
        h = self.aux.graph
        return int(
            h.tail.nbytes
            + h.head.nbytes
            + h.cost.nbytes
            + h.delay.nbytes
            + self.aux.orig_eid.nbytes
            + self.aux.wrap_cost.nbytes
            + self.counts.nbytes
            + self.seg_starts.nbytes
            + self.eids.nbytes
            + self.offs.nbytes
        )


class AuxCache:
    """Keyed cache ``(residual version, B) -> AuxGraph`` over one residual.

    Bound to a single :class:`ResidualGraph` whose edge set evolves via
    :meth:`ResidualGraph.apply_flip`; the owner must report every flip
    through :meth:`note_flips` so stale entries can be parity-patched to
    the current version. At most one entry per ``B`` is kept (older
    versions are never needed again — the cancellation loop only moves
    forward), bounded by ``max_bytes`` with least-recently-used eviction.
    """

    def __init__(
        self, residual: ResidualGraph, max_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        self._res = residual
        self._max_bytes = int(max_bytes)
        self._entries: dict[int, _Entry] = {}
        self._lru: list[int] = []  # least-recently-used first
        # Flip log: _flips[v] holds the edge ids whose flip advanced the
        # residual from version v to v + 1.
        self._flips: dict[int, np.ndarray] = {}
        # Warm-family identity for the LP engine's persistent models.
        self.token = next_family_token()

    def __getstate__(self):
        return self.__dict__.copy()

    def __setstate__(self, state):
        # A fresh token per unpickle: a worker process must never replay
        # this cache's deltas against a model another cache warmed (the
        # engine's model store is per-process; tokens are never reused
        # within one).
        self.__dict__.update(state)
        self.token = next_family_token()

    @property
    def residual_version(self) -> int:
        """The bound residual's current version (see :class:`WarmHandle`)."""
        return self._res.version

    # -- bookkeeping ---------------------------------------------------------

    def note_flips(self, flipped_eids: np.ndarray) -> None:
        """Record a flip that already advanced the residual's version."""
        self._flips[self._res.version - 1] = np.asarray(
            flipped_eids, dtype=np.int64
        )

    def note_reweight(self, eids: np.ndarray) -> None:
        """Absorb an in-place reweight that already bumped the version.

        Reweights are *not* flips: they are not involutions, so they must
        never enter the parity-folded flip log (a later flip of the same
        edge would cancel the parity and leave stale magnitudes behind).
        Instead every cached level is reconciled eagerly, right now:

        * a level whose layer-window layout changed (``|c|`` drifted on
          some edge) is dropped — its skeleton can no longer describe the
          current residual, not even as a growth source;
        * a level with an intact layout is parity-patched over the flips
          it missed *plus* the reweighted edges, bringing it fully to the
          current version.

        The reweight's version increment deliberately stays absent from
        the flip log; the resulting gap only ever forces a rebuild for an
        entry older than this call, and none survive it.
        """
        eids = np.asarray(eids, dtype=np.int64)
        for B in list(self._entries):
            entry = self._entries[B]
            if not np.array_equal(
                layer_window_counts(self._res.graph.cost, B), entry.counts
            ):
                del self._entries[B]
                if B in self._lru:
                    self._lru.remove(B)
                obs.inc("search.aux_cache.reweight_drop")
                continue
            # Flips the entry missed, *excluding* the reweight bump itself
            # (it has no flip-log entry — see above).
            dirty = self._parity_between(entry.version, self._res.version - 1)
            if dirty is None:
                del self._entries[B]
                if B in self._lru:
                    self._lru.remove(B)
                obs.inc("search.aux_cache.reweight_drop")
                continue
            self._patch(entry, np.union1d(dirty, eids))
            obs.inc("search.aux_cache.reweight_patch")
        obs.gauge("search.aux_cache.bytes", float(self.total_bytes()))

    def note_structural_change(self) -> None:
        """Forget everything after an edge removal/addition on the residual.

        Structural deltas renumber or grow the edge id space: segment
        skeletons, the flip log's id references, and every parity array
        length become meaningless. The next :meth:`get` rebuilds from
        scratch (and subsequent radii grow from it as usual).
        """
        dropped = len(self._entries)
        self._entries.clear()
        self._lru.clear()
        self._flips.clear()
        if dropped:
            obs.add("search.aux_cache.structural_drop", dropped)
        obs.gauge("search.aux_cache.bytes", 0.0)

    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    def _touch(self, B: int) -> None:
        if B in self._lru:
            self._lru.remove(B)
        self._lru.append(B)

    def _evict_to_cap(self) -> None:
        while len(self._lru) > 1 and self.total_bytes() > self._max_bytes:
            victim = self._lru.pop(0)
            del self._entries[victim]
            obs.inc("search.aux_cache.evict")
        obs.gauge("search.aux_cache.bytes", float(self.total_bytes()))

    def _parity_since(self, version: int) -> np.ndarray | None:
        """Edges whose state differs between ``version`` and now, or
        ``None`` when the flip log has a gap (forces a full rebuild)."""
        return self._parity_between(version, self._res.version)

    def _parity_between(self, v0: int, v1: int) -> np.ndarray | None:
        """Parity-folded flips over versions ``[v0, v1)``; ``None`` on a gap."""
        parity = np.zeros(self._res.m, dtype=bool)
        for v in range(v0, v1):
            flips = self._flips.get(v)
            if flips is None:
                return None
            parity[flips] ^= True
        return np.nonzero(parity)[0].astype(np.int64)

    # -- the lookup ----------------------------------------------------------

    def get(self, B: int) -> AuxGraph:
        """The shifted aux graph of radius ``B`` for the current residual.

        Bit-identical to ``build_aux_shifted(residual.graph, B)``. The
        returned graph is owned by the cache and valid until the next
        flip is applied to the residual — callers must treat it as
        transient within one search sweep.
        """
        version = self._res.version
        entry = self._entries.get(B)
        if entry is not None:
            if entry.version != version:
                dirty = self._parity_since(entry.version)
                if dirty is None:
                    entry = None  # log gap — rebuild below
                else:
                    self._patch(entry, dirty)
                    obs.inc("search.aux_cache.delta_refresh")
            if entry is not None:
                obs.inc("search.aux_cache.hit")
                self._touch(B)
                return self._served(entry, B)
        obs.inc("search.aux_cache.miss")
        source = None
        for b_prev in self._entries:
            if b_prev < B and (source is None or b_prev > source):
                source = b_prev
        if source is not None:
            entry = self._grow(self._entries[source], B)
            obs.inc("search.aux_cache.grow")
        else:
            entry = self._build(B)
        self._entries[B] = entry
        self._touch(B)
        self._evict_to_cap()
        return self._served(entry, B)

    def _served(self, entry: _Entry, B: int) -> AuxGraph:
        """Attach the warm-start handle before handing a level out.

        The handle is transport for the LP engine (family token + delta
        access); it is set via ``object.__setattr__`` because
        :class:`~repro.core.auxgraph.AuxGraph` is frozen and the field is
        deliberately excluded from its value semantics.
        """
        if entry.aux.warm is None:
            object.__setattr__(entry.aux, "warm", WarmHandle(self, B))
        return entry.aux

    # -- construction paths ---------------------------------------------------

    def _skeleton(self, B: int) -> tuple[np.ndarray, np.ndarray]:
        counts = layer_window_counts(self._res.graph.cost, B)
        return counts, _exclusive_cumsum(counts)

    def _build(self, B: int) -> _Entry:
        aux = build_aux_shifted(self._res.graph, B)
        counts, seg_starts = self._skeleton(B)
        n_layer = int(counts.sum())
        eids = aux.orig_eid[:n_layer]
        offs = np.arange(n_layer, dtype=np.int64) - seg_starts[eids]
        obs.add(
            "search.rebuild_bytes",
            aux.graph.tail.nbytes * 4 + aux.orig_eid.nbytes + aux.wrap_cost.nbytes,
        )
        return _Entry(
            aux=aux,
            B=B,
            version=self._res.version,
            counts=counts,
            seg_starts=seg_starts,
            eids=eids,
            offs=offs,
        )

    def _patch(self, entry: _Entry, dirty_eids: np.ndarray) -> None:
        """Rewrite the layer segments of ``dirty_eids`` to current values.

        O(sum of the dirty edges' window counts) instead of O(total aux
        edges): the layout is flip-invariant (see module docstring), so
        only values move. Idempotent against the current residual — an
        edge flipped an even number of times may be rewritten safely.
        """
        g = self._res.graph
        n_layers = entry.aux.n_layers
        active = dirty_eids[entry.counts[dirty_eids] > 0]
        entry.version = self._res.version
        if len(active) == 0:
            return
        cnt = entry.counts[active]
        total = int(cnt.sum())
        rep = np.repeat(active, cnt)
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            _exclusive_cumsum(cnt), cnt
        )
        pos = np.repeat(entry.seg_starts[active], cnt) + offs
        layers = np.repeat(np.maximum(0, -g.cost[active]), cnt) + offs
        h = entry.aux.graph
        h.tail[pos] = g.tail[rep] * n_layers + layers
        h.head[pos] = g.head[rep] * n_layers + layers + g.cost[rep]
        h.cost[pos] = g.cost[rep]
        h.delay[pos] = g.delay[rep]
        h.invalidate_csr()
        obs.add("search.rebuild_bytes", int(4 * total * 8))

    def _grow(self, src: _Entry, B: int) -> _Entry:
        """Assemble level ``B`` from level ``src.B < B`` plus extensions.

        The source skeleton is version-independent (windows depend only on
        ``|c|``), so a stale source still grows correctly — values are
        always derived from the *current* residual arrays.
        """
        g = self._res.graph
        if src.B >= B:
            raise GraphError("growth source must have a smaller radius")
        n_layers = 2 * B + 1
        counts, seg_starts = self._skeleton(B)
        total = int(counts.sum())
        eids = np.empty(total, dtype=np.int64)
        offs = np.empty(total, dtype=np.int64)
        # Shared prefix: each edge's level-B segment starts with its
        # level-src.B copies at the same within-window offsets.
        pos_old = seg_starts[src.eids] + src.offs
        eids[pos_old] = src.eids
        offs[pos_old] = src.offs
        # Extension: offsets src.counts[e] .. counts[e]-1 per edge.
        ext_cnt = counts - src.counts
        active = np.nonzero(ext_cnt)[0].astype(np.int64)
        cnt = ext_cnt[active]
        n_ext = int(cnt.sum())
        if n_ext:
            rep = np.repeat(active, cnt)
            o = np.arange(n_ext, dtype=np.int64) - np.repeat(
                _exclusive_cumsum(cnt), cnt
            )
            within = src.counts[rep] + o
            pos_ext = seg_starts[rep] + within
            eids[pos_ext] = rep
            offs[pos_ext] = within
        layers = np.maximum(0, -g.cost)[eids] + offs
        tails = g.tail[eids] * n_layers + layers
        heads = g.head[eids] * n_layers + layers + g.cost[eids]
        w_tails, w_heads, w_costs = shifted_wrap_arrays(g.n, B)
        zeros = np.zeros(len(w_tails), dtype=np.int64)
        graph = DiGraph(
            g.n * n_layers,
            np.concatenate([tails, w_tails]),
            np.concatenate([heads, w_heads]),
            np.concatenate([g.cost[eids], zeros]),
            np.concatenate([g.delay[eids], zeros]),
        )
        aux = AuxGraph(
            graph=graph,
            n_base=g.n,
            B=B,
            offset=B,
            n_layers=n_layers,
            orig_eid=np.concatenate(
                [eids, np.full(len(w_tails), -1, dtype=np.int64)]
            ),
            wrap_cost=np.concatenate(
                [np.zeros(total, dtype=np.int64), w_costs]
            ),
        )
        obs.add(
            "search.rebuild_bytes",
            int(n_ext * 8 * 4) + int(len(w_tails) * 8 * 3),
        )
        return _Entry(
            aux=aux,
            B=B,
            version=self._res.version,
            counts=counts,
            seg_starts=seg_starts,
            eids=eids,
            offs=offs,
        )
