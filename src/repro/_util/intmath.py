"""Exact integer arithmetic helpers.

The bicameral-cycle machinery compares delay/cost *ratios* of cycles whose
numerators and denominators can be negative (Definition 10 of the paper).
Doing this in floating point invites misclassification near ties, which the
Lemma 12 progress monitor would then flag as invariant violations. All ratio
comparisons therefore cross-multiply in exact Python integers.

A ratio is an ordered pair ``(num, den)`` with ``den != 0``; the represented
value is ``num / den``. Signs are normalized by multiplying through, never by
division.
"""

from __future__ import annotations


def ratio_cmp(num1: int, den1: int, num2: int, den2: int) -> int:
    """Three-way compare ``num1/den1`` against ``num2/den2`` exactly.

    Returns -1, 0, or 1. Denominators must be nonzero; either may be
    negative.
    """
    if den1 == 0 or den2 == 0:
        raise ZeroDivisionError("ratio with zero denominator")
    lhs = num1 * den2
    rhs = num2 * den1
    # Flipping a comparison for each negative denominator is equivalent to
    # multiplying both sides by den1*den2 and tracking its sign.
    if (den1 < 0) != (den2 < 0):
        lhs, rhs = rhs, lhs
    if lhs < rhs:
        return -1
    if lhs > rhs:
        return 1
    return 0


def ratio_le(num1: int, den1: int, num2: int, den2: int) -> bool:
    """Exact test ``num1/den1 <= num2/den2``."""
    return ratio_cmp(num1, den1, num2, den2) <= 0


def ratio_lt(num1: int, den1: int, num2: int, den2: int) -> bool:
    """Exact test ``num1/den1 < num2/den2``."""
    return ratio_cmp(num1, den1, num2, den2) < 0


def floor_div(a: int, b: int) -> int:
    """Floor division that insists on a positive divisor.

    Python's ``//`` already floors, but the scaling code (Theorem 4) must
    never be handed a nonpositive scale; failing loudly here beats a silent
    sign flip downstream.
    """
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return a // b


def ceil_div(a: int, b: int) -> int:
    """Ceiling division with a positive divisor."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -((-a) // b)
