"""Dial's bucket queue: a monotone priority queue for small integer keys.

When edge weights are small integers — scaled instances (Theorem 4) by
construction, most synthetic workloads in practice — Dijkstra's heap can be
replaced by an array of buckets indexed by tentative distance: pops are
amortized O(1) instead of O(log n), and all memory is flat arrays (the
optimization guides' favourite shape).

Supports the monotone use pattern only: keys popped in nondecreasing order,
and a pushed/decreased key is never below the last popped key. Dijkstra
satisfies this; general priority-queue users should stay with
:class:`repro._util.heap.AddressableHeap`.
"""

from __future__ import annotations

from repro.errors import GraphError


class BucketQueue:
    """Monotone integer-key priority queue (Dial's buckets).

    Parameters
    ----------
    capacity:
        Item ids lie in ``range(capacity)``.
    max_key:
        Keys lie in ``range(max_key + 1)``. Memory is ``O(max_key)`` —
        callers bound it by (max edge weight) * (max hops), e.g.
        ``C * (n - 1)`` for Dijkstra.
    """

    __slots__ = ("_buckets", "_key", "_cursor", "_size", "_max_key")

    def __init__(self, capacity: int, max_key: int):
        if max_key < 0:
            raise GraphError("max_key must be nonnegative")
        self._buckets: list[list[int]] = [[] for _ in range(max_key + 1)]
        self._key = [-1] * capacity  # current key per item; -1 = absent/stale
        self._cursor = 0
        self._size = 0
        self._max_key = max_key

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push_or_decrease(self, item: int, key: int) -> bool:
        """Insert or lower ``item``'s key. Lazy-deletion style: the old
        bucket entry becomes stale and is skipped at pop time."""
        if not 0 <= key <= self._max_key:
            raise GraphError(f"key {key} outside [0, {self._max_key}]")
        if key < self._cursor:
            raise GraphError(
                f"monotonicity violated: key {key} below cursor {self._cursor}"
            )
        current = self._key[item]
        if current != -1 and current <= key:
            return False
        if current == -1:
            self._size += 1
        self._key[item] = key
        self._buckets[key].append(item)
        return True

    def pop(self) -> tuple[int, int]:
        """Remove and return ``(item, key)`` with the minimum key."""
        while self._cursor <= self._max_key:
            bucket = self._buckets[self._cursor]
            while bucket:
                item = bucket.pop()
                if self._key[item] == self._cursor:
                    self._key[item] = -1
                    self._size -= 1
                    return item, self._cursor
                # stale entry: the item was re-pushed at a lower key earlier
            self._cursor += 1
        raise IndexError("pop from empty bucket queue")


def dial_dijkstra(g, source: int, weight=None, target: int | None = None):
    """Dijkstra specialized to small integer weights via Dial's buckets.

    Same contract as :func:`repro.paths.dijkstra.dijkstra` (without
    potentials); requires nonnegative weights. Falls back to the binary
    heap automatically when the key range would be excessive (> ~4M).
    Returns ``(dist, pred_edge)``.
    """
    import numpy as np

    from repro.paths.dijkstra import INF, dijkstra as _heap_dijkstra

    w = g.cost if weight is None else np.asarray(weight, dtype=np.int64)
    if g.m and int(w.min()) < 0:
        raise GraphError("dial_dijkstra requires nonnegative weights")
    max_w = int(w.max()) if g.m else 0
    max_key = max_w * max(g.n - 1, 1)
    if max_key > 4_000_000:
        return _heap_dijkstra(g, source, weight=w, target=target)

    dist = np.full(g.n, INF, dtype=np.int64)
    pred = np.full(g.n, -1, dtype=np.int64)
    starts, eids = g.out_csr()
    heads = g.head
    q = BucketQueue(g.n, max_key)
    dist[source] = 0
    q.push_or_decrease(source, 0)
    while q:
        u, du = q.pop()
        if u == target:
            break
        if du > dist[u]:
            continue
        for e in eids[starts[u] : starts[u + 1]]:
            e = int(e)
            v = int(heads[e])
            nd = du + int(w[e])
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = e
                q.push_or_decrease(v, nd)
    return dist, pred
