"""Lightweight wall-clock timing with named sub-sections.

The evaluation harness attributes solver time to phases (phase-1 LP,
bicameral search, oplus bookkeeping). A :class:`Timer` is a context manager
that accumulates into a shared dict, so nesting and re-entry just add up.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager


class Timer:
    """Accumulates wall-clock seconds per named section.

    >>> t = Timer()
    >>> with t.section("lp"):
    ...     pass
    >>> t.total("lp") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._acc: dict[str, float] = {}
        self._count: dict[str, int] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._acc[name] = self._acc.get(name, 0.0) + elapsed
            self._count[name] = self._count.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Accumulated seconds in ``name`` (0.0 if never entered)."""
        return self._acc.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of times section ``name`` was entered."""
        return self._count.get(name, 0)

    def as_dict(self) -> dict[str, float]:
        """Snapshot of all accumulated totals."""
        return dict(self._acc)

    def merge(self, other: "Timer") -> None:
        """Fold another timer's accumulators into this one."""
        for name, seconds in other._acc.items():
            self._acc[name] = self._acc.get(name, 0.0) + seconds
        for name, n in other._count.items():
            self._count[name] = self._count.get(name, 0) + n
