"""Lightweight wall-clock timing with named sub-sections (compat shim).

Historically this was the solver's only observability; it is now a thin
facade over :mod:`repro.obs`: every ``section`` also opens an obs span
(named ``<span_prefix>.<name>``), so legacy ``Timer`` call sites feed the
telemetry layer for free while keeping their local accumulate-and-query
API.

Semantics fix vs the original implementation: :meth:`Timer.total` now
*includes still-open sections*, so querying a section's accumulated time
from inside a nested re-entry reports the elapsed time so far instead of
0.0 — the documented accumulate-on-nest behaviour (nested re-entries of
the same name each contribute their full elapsed time on close, so inner
time is counted once per enclosing level, exactly as before).
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager

from repro.obs.spans import span as _obs_span


class Timer:
    """Accumulates wall-clock seconds per named section.

    >>> t = Timer()
    >>> with t.section("lp"):
    ...     pass
    >>> t.total("lp") >= 0.0
    True
    """

    def __init__(self, span_prefix: str = "timer") -> None:
        self._acc: dict[str, float] = {}
        self._count: dict[str, int] = {}
        self._open: dict[str, list[float]] = {}
        self._span_prefix = span_prefix

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        self._open.setdefault(name, []).append(start)
        try:
            with _obs_span(f"{self._span_prefix}.{name}"):
                yield
        finally:
            opens = self._open.get(name)
            if opens:
                opens.pop()
                if not opens:
                    del self._open[name]
            elapsed = time.perf_counter() - start
            self._acc[name] = self._acc.get(name, 0.0) + elapsed
            self._count[name] = self._count.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Accumulated seconds in ``name``, including still-open entries
        (0.0 if never entered)."""
        total = self._acc.get(name, 0.0)
        opens = self._open.get(name)
        if opens:
            now = time.perf_counter()
            total += sum(now - start for start in opens)
        return total

    def count(self, name: str) -> int:
        """Number of times section ``name`` was entered and closed."""
        return self._count.get(name, 0)

    def as_dict(self) -> dict[str, float]:
        """Snapshot of all accumulated (closed-section) totals."""
        return dict(self._acc)

    def merge(self, other: "Timer") -> None:
        """Fold another timer's accumulators into this one."""
        for name, seconds in other._acc.items():
            self._acc[name] = self._acc.get(name, 0.0) + seconds
        for name, n in other._count.items():
            self._count[name] = self._count.get(name, 0) + n
