"""Durable filesystem primitives shared by every writer that must survive
a crash: the solve journal, the eval harness's JSONL sink, the fuzz
crasher saver, and the bench report writers.

Two disciplines cover every use case here:

* **snapshot files** (reports, corpus entries, instance pins) go through
  :func:`atomic_write_text` / :func:`atomic_write_bytes`: write to a
  temporary file in the same directory, flush + ``fsync``, then
  ``os.replace`` over the target and ``fsync`` the directory. A reader
  never observes a half-written file — it sees the old content or the new
  one, nothing in between.
* **append-only JSONL / record logs** go through :class:`DurableAppender`
  (fsync-on-append) and are *repaired* on reopen with
  :func:`repair_jsonl_tail`, which truncates a torn trailing line left by
  a mid-write crash. A valid prefix is always preserved.

``fsync`` calls are real by default; pass ``fsync=False`` where a test
cares about speed, not durability.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator


def fsync_dir(path: str | Path) -> None:
    """Flush directory metadata so a rename/creation survives power loss.

    Best-effort: some filesystems refuse to open directories (then the
    rename is already as durable as the platform allows).
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes, *, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically (tmp → fsync → rename)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=str(target.parent)
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(target.parent)


def atomic_write_text(path: str | Path, text: str, *, fsync: bool = True) -> None:
    """Text counterpart of :func:`atomic_write_bytes` (UTF-8)."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(path: str | Path, obj: Any, *, fsync: bool = True, **dumps_kwargs: Any) -> None:
    """Serialize ``obj`` as JSON and write it atomically."""
    atomic_write_text(path, json.dumps(obj, **dumps_kwargs) + "\n", fsync=fsync)


class DurableAppender:
    """Append-only writer with fsync-on-append semantics.

    Every :meth:`append_line` is flushed and fsynced before returning, so
    a record handed to this class is durable the moment the call returns —
    a later crash can tear at most the record currently being written,
    which :func:`repair_jsonl_tail` drops on the next open.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._fh = open(self.path, "ab")

    def append_bytes(self, data: bytes) -> None:
        self._fh.write(data)
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())

    def append_line(self, line: str) -> None:
        """Append one newline-terminated record (newline added here)."""
        self.append_bytes(line.encode("utf-8") + b"\n")

    def append_json(self, obj: Any) -> None:
        self.append_line(json.dumps(obj))

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "DurableAppender":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def repair_jsonl_tail(path: str | Path) -> int:
    """Truncate a torn trailing record of a JSONL file; return bytes dropped.

    A crash mid-append leaves either a line without a terminating newline
    or a line that is not valid JSON. Every *complete, valid* line is kept;
    the torn tail (if any) is cut off in place. Missing files are fine
    (0 dropped).
    """
    p = Path(path)
    try:
        raw = p.read_bytes()
    except FileNotFoundError:
        return 0
    valid = 0
    pos = 0
    while pos < len(raw):
        nl = raw.find(b"\n", pos)
        if nl < 0:
            break  # unterminated tail
        line = raw[pos : nl]
        if line.strip():
            try:
                json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                break  # corrupt line: everything from here on is suspect
        valid = nl + 1
        pos = nl + 1
    dropped = len(raw) - valid
    if dropped:
        with open(p, "r+b") as fh:
            fh.truncate(valid)
            fh.flush()
            os.fsync(fh.fileno())
    return dropped


def iter_jsonl(path: str | Path) -> Iterator[dict]:
    """Yield parsed records of a (repaired) JSONL file; missing file = empty."""
    p = Path(path)
    if not p.exists():
        return
    with open(p, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)
