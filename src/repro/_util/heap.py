"""Addressable binary min-heap keyed by integer item ids.

Dijkstra-style algorithms need ``decrease_key``; :mod:`heapq` cannot do that
without lazy deletion. This implementation stores the heap as three parallel
Python lists (keys, item ids, and an id->position index) which profiling shows
beats an object-per-node design by a wide margin for the graph sizes this
library targets (the guide's advice: measure, keep data in flat arrays).

Keys may be any comparable values; the kRSP code uses ints and
(int, int) tuples (lexicographic tie-breaking for deterministic runs).
"""

from __future__ import annotations

from typing import Any


class AddressableHeap:
    """Binary min-heap over integer item ids with ``decrease_key``.

    Parameters
    ----------
    capacity:
        Item ids must lie in ``range(capacity)``. The position index is a
        preallocated list of that length.
    """

    __slots__ = ("_keys", "_items", "_pos")

    def __init__(self, capacity: int):
        self._keys: list[Any] = []
        self._items: list[int] = []
        # _pos[item] is the index of `item` inside the heap arrays, or -1.
        self._pos: list[int] = [-1] * capacity

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, item: int) -> bool:
        return self._pos[item] >= 0

    def key_of(self, item: int) -> Any:
        """Return the current key of ``item`` (must be in the heap)."""
        i = self._pos[item]
        if i < 0:
            raise KeyError(item)
        return self._keys[i]

    def push(self, item: int, key: Any) -> None:
        """Insert ``item`` with ``key``. ``item`` must not already be present."""
        if self._pos[item] >= 0:
            raise ValueError(f"item {item} already in heap")
        self._keys.append(key)
        self._items.append(item)
        self._pos[item] = len(self._items) - 1
        self._sift_up(len(self._items) - 1)

    def push_or_decrease(self, item: int, key: Any) -> bool:
        """Insert ``item`` or lower its key; no-op if ``key`` is not smaller.

        Returns ``True`` when the heap changed.
        """
        i = self._pos[item]
        if i < 0:
            self.push(item, key)
            return True
        if key < self._keys[i]:
            self._keys[i] = key
            self._sift_up(i)
            return True
        return False

    def pop(self) -> tuple[int, Any]:
        """Remove and return ``(item, key)`` with the minimum key."""
        if not self._items:
            raise IndexError("pop from empty heap")
        top_item = self._items[0]
        top_key = self._keys[0]
        last_item = self._items.pop()
        last_key = self._keys.pop()
        self._pos[top_item] = -1
        if self._items:
            self._items[0] = last_item
            self._keys[0] = last_key
            self._pos[last_item] = 0
            self._sift_down(0)
        return top_item, top_key

    # -- internal sifting ---------------------------------------------------

    def _sift_up(self, i: int) -> None:
        keys, items, pos = self._keys, self._items, self._pos
        key, item = keys[i], items[i]
        while i > 0:
            parent = (i - 1) >> 1
            if keys[parent] <= key:
                break
            keys[i] = keys[parent]
            items[i] = items[parent]
            pos[items[i]] = i
            i = parent
        keys[i] = key
        items[i] = item
        pos[item] = i

    def _sift_down(self, i: int) -> None:
        keys, items, pos = self._keys, self._items, self._pos
        n = len(items)
        key, item = keys[i], items[i]
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            child = left
            right = left + 1
            if right < n and keys[right] < keys[left]:
                child = right
            if keys[child] >= key:
                break
            keys[i] = keys[child]
            items[i] = items[child]
            pos[items[i]] = i
            i = child
        keys[i] = key
        items[i] = item
        pos[item] = i
