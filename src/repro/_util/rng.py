"""Deterministic random-number-generator plumbing.

Every stochastic entry point in the library accepts ``rng`` as either an
integer seed, a :class:`numpy.random.Generator`, or ``None`` (fresh OS
entropy). Experiments additionally *spawn* independent child generators per
trial so that adding a trial never perturbs earlier ones — the standard
reproducibility discipline for parameter sweeps.
"""

from __future__ import annotations

import numpy as np


def as_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``rng`` to a :class:`numpy.random.Generator`.

    Integers are used as seeds; generators pass through; ``None`` yields a
    freshly seeded generator.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rng(rng: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Return ``n`` statistically independent child generators.

    Children are derived via :meth:`numpy.random.Generator.spawn`, so the
    stream consumed by child ``i`` is independent of how much entropy the
    parent or siblings consumed.
    """
    return list(as_rng(rng).spawn(n))
