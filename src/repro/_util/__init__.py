"""Internal utilities: addressable heap, RNG helpers, timers, integer math.

Nothing in here is part of the public API; modules under :mod:`repro._util`
may change without notice.
"""

from repro._util.heap import AddressableHeap
from repro._util.rng import spawn_rng, as_rng
from repro._util.timer import Timer
from repro._util.intmath import ratio_le, ratio_lt, ratio_cmp, ceil_div, floor_div

__all__ = [
    "AddressableHeap",
    "spawn_rng",
    "as_rng",
    "Timer",
    "ratio_le",
    "ratio_lt",
    "ratio_cmp",
    "ceil_div",
    "floor_div",
]
