"""Random topology generators for kRSP workloads.

The paper evaluates nothing empirically, so these generators supply the
synthetic substrate (DESIGN.md "Substitutions"): the graph families standard
in the QoS-routing literature the paper builds on — uniform random digraphs,
geometric/Waxman graphs (router-level internet models), grids (regular fabric
topologies), layered DAGs (worst cases for delay/cost trade-offs), and an
ISP-like ring-of-cliques. Each generator returns topology only; edge weights
are attached separately by :mod:`repro.graph.weights` so families and weight
models compose freely.

All generators take a ``rng`` (seed / Generator / None) and return a
:class:`~repro.graph.digraph.DiGraph` whose edges carry placeholder zero
weights, plus designated terminals ``(s, t)`` where the family has a natural
choice.
"""

from __future__ import annotations

import numpy as np

from repro._util.rng import as_rng
from repro.errors import GraphError
from repro.graph.digraph import DiGraph


def _graph_from_pairs(n: int, pairs: np.ndarray) -> DiGraph:
    z = np.zeros(len(pairs), dtype=np.int64)
    if len(pairs) == 0:
        return DiGraph.empty(n)
    return DiGraph(n, pairs[:, 0].astype(np.int64), pairs[:, 1].astype(np.int64), z, z.copy())


def gnp_digraph(n: int, p: float, rng=None) -> DiGraph:
    """Erdos–Renyi ``G(n, p)`` digraph (no self-loops, no parallel edges).

    Each of the ``n*(n-1)`` ordered pairs is an edge independently with
    probability ``p``. Sampled vectorized: one Bernoulli draw per pair.
    """
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0,1], got {p}")
    gen = as_rng(rng)
    us, vs = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    mask = (us != vs) & (gen.random((n, n)) < p)
    pairs = np.stack([us[mask], vs[mask]], axis=1)
    return _graph_from_pairs(n, pairs)


def waxman_digraph(
    n: int,
    alpha: float = 0.6,
    beta: float = 0.4,
    rng=None,
) -> tuple[DiGraph, np.ndarray]:
    """Waxman random geometric digraph on the unit square.

    Vertices get uniform positions; the ordered pair ``(u, v)`` is an edge
    with probability ``alpha * exp(-dist(u,v) / (beta * sqrt(2)))`` — the
    classic internet-topology model. Returns ``(graph, positions)``;
    positions feed the euclidean weight model.
    """
    gen = as_rng(rng)
    pos = gen.random((n, 2))
    diff = pos[:, None, :] - pos[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    prob = alpha * np.exp(-dist / (beta * np.sqrt(2.0)))
    us, vs = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    mask = (us != vs) & (gen.random((n, n)) < prob)
    pairs = np.stack([us[mask], vs[mask]], axis=1)
    return _graph_from_pairs(n, pairs), pos


def grid_digraph(rows: int, cols: int, bidirectional: bool = True) -> tuple[DiGraph, int, int]:
    """``rows x cols`` grid; vertex ``(r, c)`` is ``r*cols + c``.

    Edges connect 4-neighbours (both directions when ``bidirectional``).
    Returns ``(graph, s, t)`` with ``s`` the top-left and ``t`` the
    bottom-right corner — the natural long-haul terminal pair.
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid needs positive dimensions")
    pairs = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                pairs.append((u, u + 1))
                if bidirectional:
                    pairs.append((u + 1, u))
            if r + 1 < rows:
                pairs.append((u, u + cols))
                if bidirectional:
                    pairs.append((u + cols, u))
    g = _graph_from_pairs(rows * cols, np.array(pairs, dtype=np.int64))
    return g, 0, rows * cols - 1


def layered_dag(
    layers: int,
    width: int,
    rng=None,
    extra_skip_prob: float = 0.1,
) -> tuple[DiGraph, int, int]:
    """Layered DAG: ``s`` -> ``layers`` ranks of ``width`` vertices -> ``t``.

    Adjacent ranks are completely bipartitely connected; with probability
    ``extra_skip_prob`` a vertex also gets a rank-skipping edge. Layered DAGs
    are where cost/delay trade-offs bite hardest (every s-t path has the same
    hop count through full ranks, so weights alone decide).
    Returns ``(graph, s, t)``.
    """
    gen = as_rng(rng)
    n = 2 + layers * width
    s, t = 0, n - 1

    def vid(layer: int, i: int) -> int:
        return 1 + layer * width + i

    pairs: list[tuple[int, int]] = []
    for i in range(width):
        pairs.append((s, vid(0, i)))
        pairs.append((vid(layers - 1, i), t))
    for layer in range(layers - 1):
        for i in range(width):
            for j in range(width):
                pairs.append((vid(layer, i), vid(layer + 1, j)))
            if layer + 2 < layers and gen.random() < extra_skip_prob:
                j = int(gen.integers(width))
                pairs.append((vid(layer, i), vid(layer + 2, j)))
    g = _graph_from_pairs(n, np.array(pairs, dtype=np.int64))
    return g, s, t


def ring_of_cliques(
    n_cliques: int,
    clique_size: int,
    rng=None,
    chords: int = 0,
) -> tuple[DiGraph, int, int]:
    """ISP-like topology: PoP cliques joined in a ring, plus random chords.

    Each clique is a bidirected complete graph; consecutive cliques share a
    bidirected link between designated gateway vertices; ``chords`` extra
    bidirected long-range links are added between uniform random vertices.
    Returns ``(graph, s, t)`` with terminals in diametrically opposite
    cliques, so disjoint routes must split around the ring.
    """
    if n_cliques < 3 or clique_size < 2:
        raise GraphError("need >=3 cliques of size >=2")
    gen = as_rng(rng)
    n = n_cliques * clique_size
    pairs: list[tuple[int, int]] = []

    def member(c: int, i: int) -> int:
        return c * clique_size + i

    for c in range(n_cliques):
        for i in range(clique_size):
            for j in range(clique_size):
                if i != j:
                    pairs.append((member(c, i), member(c, j)))
        gw_out = member(c, 0)
        gw_in = member((c + 1) % n_cliques, 1 % clique_size)
        pairs.append((gw_out, gw_in))
        pairs.append((gw_in, gw_out))
    for _ in range(chords):
        u, v = (int(x) for x in gen.integers(0, n, size=2))
        if u != v:
            pairs.append((u, v))
            pairs.append((v, u))
    g = _graph_from_pairs(n, np.array(pairs, dtype=np.int64))
    s = member(0, clique_size - 1)
    t = member(n_cliques // 2, clique_size - 1)
    return g, s, t


def parallel_chains(
    k: int,
    length: int,
) -> tuple[DiGraph, int, int]:
    """``k`` vertex-disjoint chains of ``length`` edges from ``s`` to ``t``.

    The minimal family guaranteeing exactly ``k`` edge-disjoint s-t paths —
    the workhorse for feasibility-boundary tests.
    """
    if k < 1 or length < 1:
        raise GraphError("need k >= 1 chains of length >= 1")
    # length==1 chains are parallel (s, t) edges.
    n = 2 + k * max(length - 1, 0)
    s, t = 0, 1
    pairs: list[tuple[int, int]] = []
    for chain in range(k):
        prev = s
        for hop in range(length - 1):
            v = 2 + chain * (length - 1) + hop
            pairs.append((prev, v))
            prev = v
        pairs.append((prev, t))
    g = _graph_from_pairs(n, np.array(pairs, dtype=np.int64))
    return g, s, t


def scale_free_digraph(
    n: int,
    m_attach: int = 2,
    rng=None,
) -> DiGraph:
    """Barabasi–Albert-style scale-free digraph (bidirected edges).

    Starts from a small bidirected clique and attaches each new vertex to
    ``m_attach`` existing vertices chosen proportionally to their current
    degree (preferential attachment). Hub-heavy topologies model AS-level
    internet graphs, where disjoint-path routing contends for the hubs.
    """
    if m_attach < 1 or n <= m_attach:
        raise GraphError("need n > m_attach >= 1")
    gen = as_rng(rng)
    pairs: list[tuple[int, int]] = []
    # Seed clique over the first m_attach + 1 vertices.
    seed_size = m_attach + 1
    for i in range(seed_size):
        for j in range(seed_size):
            if i != j:
                pairs.append((i, j))
    degree = np.zeros(n, dtype=np.float64)
    degree[:seed_size] = 2 * (seed_size - 1)
    for v in range(seed_size, n):
        probs = degree[:v] / degree[:v].sum()
        targets = gen.choice(v, size=min(m_attach, v), replace=False, p=probs)
        for u in targets:
            u = int(u)
            pairs.append((v, u))
            pairs.append((u, v))
            degree[u] += 2
            degree[v] += 2
    return _graph_from_pairs(n, np.array(pairs, dtype=np.int64))
