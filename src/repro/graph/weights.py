"""Cost/delay assignment models for generated topologies.

The hardness of a kRSP instance is driven less by topology than by how cost
and delay relate per edge:

* ``uniform`` — independent uniform integers; mild instances.
* ``correlated`` — expensive edges are also slow (cost ~ delay + noise);
  easy, because one criterion nearly optimizes the other.
* ``anticorrelated`` — expensive edges are *fast* (cost + delay ~ const);
  the adversarial regime where the delay budget genuinely constrains the
  cheapest solution. This is the regime the paper's bicameral machinery
  exists for, and the default for the evaluation suite.
* ``euclidean`` — delay proportional to geometric length (Waxman positions),
  cost anti-proportional; models long fat pipes vs short slow hops.

All models return fresh ``(cost, delay)`` int64 arrays; attach them with
:meth:`DiGraph.with_weights`.
"""

from __future__ import annotations

import numpy as np

from repro._util.rng import as_rng
from repro.errors import GraphError
from repro.graph.digraph import DiGraph


def uniform_weights(
    g: DiGraph,
    cost_range: tuple[int, int] = (1, 20),
    delay_range: tuple[int, int] = (1, 20),
    rng=None,
) -> DiGraph:
    """Independent uniform integer cost and delay per edge (inclusive ranges)."""
    gen = as_rng(rng)
    lo_c, hi_c = cost_range
    lo_d, hi_d = delay_range
    if lo_c < 0 or lo_d < 0 or hi_c < lo_c or hi_d < lo_d:
        raise GraphError("weight ranges must be nonnegative and nonempty")
    cost = gen.integers(lo_c, hi_c + 1, size=g.m, dtype=np.int64)
    delay = gen.integers(lo_d, hi_d + 1, size=g.m, dtype=np.int64)
    return g.with_weights(cost, delay)


def correlated_weights(
    g: DiGraph,
    base_range: tuple[int, int] = (1, 20),
    noise: int = 3,
    rng=None,
) -> DiGraph:
    """Positively correlated weights: ``cost = base + noise_c``,
    ``delay = base + noise_d`` with independent small noise terms."""
    gen = as_rng(rng)
    lo, hi = base_range
    base = gen.integers(lo, hi + 1, size=g.m, dtype=np.int64)
    cost = base + gen.integers(0, noise + 1, size=g.m, dtype=np.int64)
    delay = base + gen.integers(0, noise + 1, size=g.m, dtype=np.int64)
    return g.with_weights(cost, delay)


def anticorrelated_weights(
    g: DiGraph,
    total: int = 21,
    noise: int = 2,
    rng=None,
) -> DiGraph:
    """Anti-correlated weights: ``cost + delay ~ total``.

    ``cost`` uniform in ``[1, total-1]``, ``delay = total - cost`` plus
    bounded noise (clipped at 0). Cheap edges are slow and vice versa —
    the canonical hard regime for restricted shortest paths.
    """
    if total < 2:
        raise GraphError("total must be >= 2")
    gen = as_rng(rng)
    cost = gen.integers(1, total, size=g.m, dtype=np.int64)
    jitter = gen.integers(-noise, noise + 1, size=g.m, dtype=np.int64)
    delay = np.clip(total - cost + jitter, 0, None).astype(np.int64)
    return g.with_weights(cost, delay)


def euclidean_weights(
    g: DiGraph,
    pos: np.ndarray,
    delay_scale: int = 100,
    cost_scale: int = 100,
    rng=None,
) -> DiGraph:
    """Geometric weights from vertex positions (e.g. Waxman's).

    ``delay`` grows with euclidean edge length (propagation delay);
    ``cost`` shrinks with it (long-haul links amortize better), both with
    multiplicative jitter in [0.8, 1.2].
    """
    if pos.shape != (g.n, 2):
        raise GraphError(f"pos must be ({g.n}, 2), got {pos.shape}")
    gen = as_rng(rng)
    seg = pos[g.head] - pos[g.tail]
    length = np.sqrt((seg**2).sum(axis=1))  # in [0, sqrt(2)]
    norm = length / np.sqrt(2.0)
    jit_d = 0.8 + 0.4 * gen.random(g.m)
    jit_c = 0.8 + 0.4 * gen.random(g.m)
    delay = np.maximum(1, np.rint(delay_scale * norm * jit_d)).astype(np.int64)
    cost = np.maximum(1, np.rint(cost_scale * (1.0 - 0.9 * norm) * jit_c)).astype(np.int64)
    return g.with_weights(cost, delay)


WEIGHT_MODELS = {
    "uniform": uniform_weights,
    "correlated": correlated_weights,
    "anticorrelated": anticorrelated_weights,
}
"""Name -> callable registry for the position-free models (the evaluation
harness selects by name; ``euclidean`` needs positions so it is wired
explicitly where Waxman graphs are generated)."""
