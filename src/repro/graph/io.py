"""JSON (de)serialization for graphs and kRSP instances.

Instances round-trip through a small, versioned, human-diffable JSON schema
so experiment inputs can be pinned in the repository and shared. Weights are
plain JSON integers (arbitrary precision — int64 overflow cannot corrupt a
stored instance).

Untrusted input discipline
--------------------------
Everything read here may come from outside the repository — a user's
``repro solve instance.json``, a fuzz corpus entry, a file that lost half
its bytes to a crashed writer. Deserialization therefore validates *types*
before touching NumPy: a float smuggled into a weight array would be
silently truncated by ``np.array(..., dtype=np.int64)`` (``1.9 -> 1``),
``NaN``/``Infinity`` (which Python's JSON parser happily produces) would
crash deep inside the solver, and integers beyond int64 would overflow.
All such inputs — plus truncated/binary/non-JSON files, wrong top-level
shapes, out-of-range endpoints and terminals — raise the typed
:class:`~repro.errors.InputError`, never a raw ``ValueError`` or a wrong
answer. ``tests/test_io_hardening.py`` fuzzes this contract with
truncated and bit-flipped files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import GraphError, InputError
from repro.graph.digraph import DiGraph

SCHEMA_VERSION = 1

#: int64 bounds — JSON carries arbitrary-precision ints; NumPy does not.
_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


def _require_dict(data: Any, what: str) -> dict[str, Any]:
    if not isinstance(data, dict):
        raise InputError(f"{what}: expected a JSON object, got {type(data).__name__}")
    return data


def _require_int(value: Any, what: str, *, lo: int | None = None, hi: int | None = None) -> int:
    # bool is an int subclass; a weight of `true` is corruption, not 1.
    if isinstance(value, bool) or not isinstance(value, int):
        raise InputError(f"{what}: expected an integer, got {value!r}")
    if not (_I64_MIN <= value <= _I64_MAX):
        raise InputError(f"{what}: {value} overflows int64")
    if lo is not None and value < lo:
        raise InputError(f"{what}: {value} below minimum {lo}")
    if hi is not None and value > hi:
        raise InputError(f"{what}: {value} above maximum {hi}")
    return value


def _int_array(values: Any, what: str, *, lo: int | None = None, hi: int | None = None) -> np.ndarray:
    if not isinstance(values, list):
        raise InputError(f"{what}: expected a JSON array, got {type(values).__name__}")
    out = np.empty(len(values), dtype=np.int64)
    for i, v in enumerate(values):
        out[i] = _require_int(v, f"{what}[{i}]", lo=lo, hi=hi)
    return out


def graph_to_dict(g: DiGraph) -> dict[str, Any]:
    """Plain-dict form of a graph (schema v1)."""
    return {
        "schema": SCHEMA_VERSION,
        "n": g.n,
        "tail": g.tail.tolist(),
        "head": g.head.tolist(),
        "cost": g.cost.tolist(),
        "delay": g.delay.tolist(),
    }


def graph_from_dict(data: dict[str, Any], *, require_nonnegative: bool = False) -> DiGraph:
    """Inverse of :func:`graph_to_dict`; validates schema *and* content.

    ``require_nonnegative`` is what kRSP *instances* demand of their input
    graph (Definition 2); it stays off by default because residual graphs
    — which legitimately carry negated weights — also travel through this
    schema (:mod:`repro.perf.anchors` ships them to pool workers).
    """
    data = _require_dict(data, "graph")
    if data.get("schema") != SCHEMA_VERSION:
        raise InputError(f"unsupported graph schema: {data.get('schema')!r}")
    for key in ("n", "tail", "head", "cost", "delay"):
        if key not in data:
            raise InputError(f"graph: missing required field {key!r}")
    n = _require_int(data["n"], "graph.n", lo=0)
    tail = _int_array(data["tail"], "graph.tail", lo=0, hi=max(0, n - 1))
    head = _int_array(data["head"], "graph.head", lo=0, hi=max(0, n - 1))
    wlo = 0 if require_nonnegative else None
    cost = _int_array(data["cost"], "graph.cost", lo=wlo)
    delay = _int_array(data["delay"], "graph.delay", lo=wlo)
    if not (len(tail) == len(head) == len(cost) == len(delay)):
        raise InputError(
            "graph: edge arrays must share one length: "
            f"tail={len(tail)} head={len(head)} cost={len(cost)} delay={len(delay)}"
        )
    if "edge_ids" in data:
        # Optional explicit ids: must be exactly a permutation of range(m)
        # (a duplicated or dropped id silently reorders every weight).
        eids = _int_array(data["edge_ids"], "graph.edge_ids", lo=0)
        if len(eids) != len(tail) or len(np.unique(eids)) != len(eids) or (
            len(eids) and int(eids.max()) != len(eids) - 1
        ):
            raise InputError(
                "graph.edge_ids: duplicate or out-of-range edge ids "
                "(must be a permutation of 0..m-1)"
            )
        order = np.argsort(eids)
        tail, head = tail[order], head[order]
        cost, delay = cost[order], delay[order]
    try:
        return DiGraph(n, tail, head, cost, delay)
    except GraphError as exc:
        raise InputError(f"graph: {exc}") from None


def _read_json(path: str | Path, what: str) -> Any:
    p = Path(path)
    try:
        text = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise InputError(f"cannot read {what} {p}: {exc}") from None
    except UnicodeDecodeError:
        raise InputError(f"{what} {p} is not valid UTF-8 (binary corruption?)") from None
    try:
        return json.loads(text)
    except ValueError as exc:
        raise InputError(f"{what} {p} is not valid JSON: {exc}") from None


def save_graph(g: DiGraph, path: str | Path) -> None:
    """Write a graph as JSON to ``path`` (atomic + durable)."""
    from repro._util.atomicio import atomic_write_json

    atomic_write_json(path, graph_to_dict(g))


def load_graph(path: str | Path) -> DiGraph:
    """Read a graph written by :func:`save_graph`."""
    return graph_from_dict(_read_json(path, "graph file"))


def instance_to_dict(g: DiGraph, s: int, t: int, k: int, delay_bound: int) -> dict[str, Any]:
    """Plain-dict form of a full kRSP instance (graph + query)."""
    return {
        "schema": SCHEMA_VERSION,
        "graph": graph_to_dict(g),
        "s": int(s),
        "t": int(t),
        "k": int(k),
        "delay_bound": int(delay_bound),
    }


def instance_from_dict(data: dict[str, Any]) -> tuple[DiGraph, int, int, int, int]:
    """Inverse of :func:`instance_to_dict`; returns
    ``(graph, s, t, k, delay_bound)``.

    Instance graphs must satisfy Definition 2's nonnegativity; terminals,
    ``k`` and the delay budget are range-checked here so a corrupt file
    fails as :class:`InputError` before any solver code runs.
    """
    data = _require_dict(data, "instance")
    if data.get("schema") != SCHEMA_VERSION:
        raise InputError(f"unsupported instance schema: {data.get('schema')!r}")
    for key in ("graph", "s", "t", "k", "delay_bound"):
        if key not in data:
            raise InputError(f"instance: missing required field {key!r}")
    g = graph_from_dict(data["graph"], require_nonnegative=True)
    hi = max(0, g.n - 1)
    s = _require_int(data["s"], "instance.s", lo=0, hi=hi)
    t = _require_int(data["t"], "instance.t", lo=0, hi=hi)
    k = _require_int(data["k"], "instance.k", lo=1)
    delay_bound = _require_int(data["delay_bound"], "instance.delay_bound", lo=0)
    return g, s, t, k, delay_bound


def save_instance(path: str | Path, g: DiGraph, s: int, t: int, k: int, delay_bound: int) -> None:
    """Write a full instance as JSON to ``path`` (atomic + durable)."""
    from repro._util.atomicio import atomic_write_json

    atomic_write_json(path, instance_to_dict(g, s, t, k, delay_bound))


def load_instance(path: str | Path) -> tuple[DiGraph, int, int, int, int]:
    """Read an instance written by :func:`save_instance`."""
    return instance_from_dict(_read_json(path, "instance file"))
