"""JSON (de)serialization for graphs and kRSP instances.

Instances round-trip through a small, versioned, human-diffable JSON schema
so experiment inputs can be pinned in the repository and shared. Weights are
plain JSON integers (arbitrary precision — int64 overflow cannot corrupt a
stored instance).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

SCHEMA_VERSION = 1


def graph_to_dict(g: DiGraph) -> dict[str, Any]:
    """Plain-dict form of a graph (schema v1)."""
    return {
        "schema": SCHEMA_VERSION,
        "n": g.n,
        "tail": g.tail.tolist(),
        "head": g.head.tolist(),
        "cost": g.cost.tolist(),
        "delay": g.delay.tolist(),
    }


def graph_from_dict(data: dict[str, Any]) -> DiGraph:
    """Inverse of :func:`graph_to_dict`; validates the schema tag."""
    if data.get("schema") != SCHEMA_VERSION:
        raise GraphError(f"unsupported graph schema: {data.get('schema')!r}")
    return DiGraph(
        int(data["n"]),
        np.array(data["tail"], dtype=np.int64),
        np.array(data["head"], dtype=np.int64),
        np.array(data["cost"], dtype=np.int64),
        np.array(data["delay"], dtype=np.int64),
    )


def save_graph(g: DiGraph, path: str | Path) -> None:
    """Write a graph as JSON to ``path``."""
    Path(path).write_text(json.dumps(graph_to_dict(g)))


def load_graph(path: str | Path) -> DiGraph:
    """Read a graph written by :func:`save_graph`."""
    return graph_from_dict(json.loads(Path(path).read_text()))


def instance_to_dict(g: DiGraph, s: int, t: int, k: int, delay_bound: int) -> dict[str, Any]:
    """Plain-dict form of a full kRSP instance (graph + query)."""
    return {
        "schema": SCHEMA_VERSION,
        "graph": graph_to_dict(g),
        "s": int(s),
        "t": int(t),
        "k": int(k),
        "delay_bound": int(delay_bound),
    }


def instance_from_dict(data: dict[str, Any]) -> tuple[DiGraph, int, int, int, int]:
    """Inverse of :func:`instance_to_dict`; returns
    ``(graph, s, t, k, delay_bound)``."""
    if data.get("schema") != SCHEMA_VERSION:
        raise GraphError(f"unsupported instance schema: {data.get('schema')!r}")
    g = graph_from_dict(data["graph"])
    return g, int(data["s"]), int(data["t"]), int(data["k"]), int(data["delay_bound"])


def save_instance(path: str | Path, g: DiGraph, s: int, t: int, k: int, delay_bound: int) -> None:
    """Write a full instance as JSON to ``path``."""
    Path(path).write_text(json.dumps(instance_to_dict(g, s, t, k, delay_bound)))


def load_instance(path: str | Path) -> tuple[DiGraph, int, int, int, int]:
    """Read an instance written by :func:`save_instance`."""
    return instance_from_dict(json.loads(Path(path).read_text()))
