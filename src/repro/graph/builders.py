"""Constructors bridging :class:`~repro.graph.digraph.DiGraph` and friendlier
representations (edge tuples with arbitrary vertex names, networkx graphs).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph


def from_edges(
    edges: Iterable[tuple[Hashable, Hashable, int, int]],
    nodes: Iterable[Hashable] | None = None,
) -> tuple[DiGraph, dict[Hashable, int]]:
    """Build a graph from ``(u, v, cost, delay)`` tuples with arbitrary names.

    Vertex ids are assigned in order of first appearance (after any vertices
    listed explicitly in ``nodes``, which lets callers pin ``s=0`` etc. or
    include isolated vertices).

    Returns
    -------
    (graph, name_to_id)
    """
    name_to_id: dict[Hashable, int] = {}
    if nodes is not None:
        for name in nodes:
            if name not in name_to_id:
                name_to_id[name] = len(name_to_id)
    tails: list[int] = []
    heads: list[int] = []
    costs: list[int] = []
    delays: list[int] = []
    for u, v, c, d in edges:
        for name in (u, v):
            if name not in name_to_id:
                name_to_id[name] = len(name_to_id)
        tails.append(name_to_id[u])
        heads.append(name_to_id[v])
        costs.append(int(c))
        delays.append(int(d))
    g = DiGraph(
        len(name_to_id),
        np.array(tails, dtype=np.int64),
        np.array(heads, dtype=np.int64),
        np.array(costs, dtype=np.int64),
        np.array(delays, dtype=np.int64),
    )
    return g, name_to_id


def to_networkx(g: DiGraph):
    """Convert to a :class:`networkx.MultiDiGraph` with ``cost``/``delay``
    edge attributes and the edge id stored under key ``eid``.

    Used by tests to cross-check substrate algorithms against networkx.
    """
    import networkx as nx

    out = nx.MultiDiGraph()
    out.add_nodes_from(range(g.n))
    for e in range(g.m):
        out.add_edge(
            int(g.tail[e]),
            int(g.head[e]),
            eid=e,
            cost=int(g.cost[e]),
            delay=int(g.delay[e]),
        )
    return out


def from_networkx(nxg, cost="cost", delay="delay") -> DiGraph:
    """Convert a networkx (Multi)DiGraph with integer-labelled nodes
    ``0..n-1`` and the named edge attributes into a :class:`DiGraph`."""
    n = nxg.number_of_nodes()
    if set(nxg.nodes) != set(range(n)):
        raise GraphError("from_networkx requires nodes labelled 0..n-1")
    tails, heads, costs, delays = [], [], [], []
    for u, v, data in nxg.edges(data=True):
        tails.append(u)
        heads.append(v)
        costs.append(int(data[cost]))
        delays.append(int(data[delay]))
    return DiGraph(
        n,
        np.array(tails, dtype=np.int64),
        np.array(heads, dtype=np.int64),
        np.array(costs, dtype=np.int64),
        np.array(delays, dtype=np.int64),
    )
