"""Graph substrate: array-backed directed multigraphs, generators, weights.

Public surface::

    from repro.graph import DiGraph, from_edges, gnp_digraph, ...
"""

from repro.graph.digraph import DiGraph
from repro.graph.builders import from_edges, from_networkx, to_networkx
from repro.graph.generators import (
    gnp_digraph,
    grid_digraph,
    layered_dag,
    parallel_chains,
    ring_of_cliques,
    scale_free_digraph,
    waxman_digraph,
)
from repro.graph.weights import (
    WEIGHT_MODELS,
    anticorrelated_weights,
    correlated_weights,
    euclidean_weights,
    uniform_weights,
)
from repro.graph.validate import (
    check_disjoint_paths,
    degree_imbalance,
    is_cycle,
    is_path,
    is_simple_path,
)
from repro.graph.transform import (
    SplitGraph,
    graft_at_terminals,
    inject_parallel_edges,
    solve_krsp_vertex_disjoint,
    split_vertices,
    subdivide_edges,
)
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_graph,
    load_instance,
    save_graph,
    save_instance,
)

__all__ = [
    "DiGraph",
    "from_edges",
    "from_networkx",
    "to_networkx",
    "gnp_digraph",
    "grid_digraph",
    "layered_dag",
    "parallel_chains",
    "ring_of_cliques",
    "scale_free_digraph",
    "waxman_digraph",
    "WEIGHT_MODELS",
    "anticorrelated_weights",
    "correlated_weights",
    "euclidean_weights",
    "uniform_weights",
    "check_disjoint_paths",
    "degree_imbalance",
    "is_cycle",
    "is_path",
    "is_simple_path",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "save_graph",
    "instance_from_dict",
    "instance_to_dict",
    "load_instance",
    "save_instance",
    "SplitGraph",
    "split_vertices",
    "solve_krsp_vertex_disjoint",
    "subdivide_edges",
    "inject_parallel_edges",
    "graft_at_terminals",
]
