"""Array-backed directed multigraph with integer cost and delay per edge.

Design
------
Edges are the primary objects: edge ``e`` is described by
``tail[e] -> head[e]`` with weights ``cost[e]`` and ``delay[e]``. All four
attributes live in flat :mod:`numpy` ``int64`` arrays — the layout the HPC
guides recommend (contiguous, vectorizable, no per-edge Python objects).
Parallel edges and self-loops are allowed; residual graphs (Definition 6 of
the paper) are genuine multigraphs, so the substrate must be one too.

A compressed-sparse-row (CSR) adjacency index over *edge ids* is built lazily
on first use and cached; the arrays themselves are treated as immutable after
construction (mutating helpers return new graphs).

Vertices are ``0..n-1``. Algorithms that need names keep their own mapping
(:func:`repro.graph.builders.from_edges` accepts arbitrary hashable names).
"""

from __future__ import annotations

import base64
from typing import Any, Iterator

import numpy as np

from repro.errors import GraphError


def encode_array(arr: np.ndarray) -> str:
    """Compact, exact wire form of an int64/bool array (base64 of raw bytes).

    Used by the crash-safety snapshots (:meth:`DiGraph.to_state`,
    :meth:`repro.core.residual.ResidualGraph.to_state`): JSON digit lists
    are human-diffable but ~4x larger and slower to round-trip, and a
    snapshot must be cheap enough to write every N iterations.
    """
    a = np.ascontiguousarray(arr)
    return f"{a.dtype.str}:{base64.b64encode(a.tobytes()).decode('ascii')}"


def decode_array(text: str) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    if not isinstance(text, str):
        raise GraphError(
            f"corrupt array snapshot: expected string, got {type(text).__name__}"
        )
    try:
        dtype_str, b64 = text.split(":", 1)
        return np.frombuffer(
            base64.b64decode(b64.encode("ascii"), validate=True),
            dtype=np.dtype(dtype_str),
        ).copy()  # frombuffer views are read-only; snapshots must be mutable
    except (ValueError, TypeError) as exc:
        raise GraphError(f"corrupt array snapshot: {exc}") from None


class DiGraph:
    """Directed multigraph over vertices ``0..n-1`` with int64 edge weights.

    Parameters
    ----------
    n:
        Number of vertices.
    tail, head:
        Edge endpoint arrays (any integer dtype; stored as int64).
    cost, delay:
        Edge weight arrays. May be negative — residual graphs negate them.
        Use :meth:`require_nonnegative` to assert the input-instance
        contract.

    All arrays must share one length ``m``.
    """

    __slots__ = (
        "n",
        "m",
        "tail",
        "head",
        "cost",
        "delay",
        "_csr_out",
        "_csr_in",
    )

    def __init__(
        self,
        n: int,
        tail: np.ndarray,
        head: np.ndarray,
        cost: np.ndarray,
        delay: np.ndarray,
    ):
        tail = np.asarray(tail, dtype=np.int64)
        head = np.asarray(head, dtype=np.int64)
        cost = np.asarray(cost, dtype=np.int64)
        delay = np.asarray(delay, dtype=np.int64)
        m = len(tail)
        if not (len(head) == len(cost) == len(delay) == m):
            raise GraphError(
                "edge arrays must share one length: "
                f"tail={len(tail)} head={len(head)} cost={len(cost)} delay={len(delay)}"
            )
        if n < 0:
            raise GraphError(f"vertex count must be nonnegative, got {n}")
        if m and (tail.min() < 0 or tail.max() >= n or head.min() < 0 or head.max() >= n):
            raise GraphError("edge endpoint outside range(n)")
        self.n = int(n)
        self.m = int(m)
        self.tail = tail
        self.head = head
        self.cost = cost
        self.delay = delay
        self._csr_out: tuple[np.ndarray, np.ndarray] | None = None
        self._csr_in: tuple[np.ndarray, np.ndarray] | None = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def empty(cls, n: int) -> "DiGraph":
        """Graph on ``n`` vertices with no edges."""
        z = np.zeros(0, dtype=np.int64)
        return cls(n, z, z, z, z)

    def copy(self) -> "DiGraph":
        """Deep copy (fresh arrays; CSR caches not shared)."""
        return DiGraph(
            self.n,
            self.tail.copy(),
            self.head.copy(),
            self.cost.copy(),
            self.delay.copy(),
        )

    def with_weights(self, cost: np.ndarray, delay: np.ndarray) -> "DiGraph":
        """Same topology, new weights (used by scaling, Theorem 4)."""
        return DiGraph(self.n, self.tail, self.head, cost, delay)

    def subgraph_edges(self, edge_ids: np.ndarray) -> "DiGraph":
        """Graph on the same vertex set keeping only ``edge_ids``.

        Edge ids in the result are renumbered ``0..len(edge_ids)-1`` in the
        order given; callers needing the original ids keep ``edge_ids``.
        """
        eids = np.asarray(edge_ids, dtype=np.int64)
        return DiGraph(
            self.n,
            self.tail[eids],
            self.head[eids],
            self.cost[eids],
            self.delay[eids],
        )

    # -- in-place mutation (perf engine seam) ---------------------------------

    def flip_edges(self, edge_ids: np.ndarray) -> None:
        """Reverse the given edges in place: swap endpoints, negate weights.

        One of the three sanctioned mutations of a ``DiGraph`` (with
        :meth:`remove_edges` / :meth:`add_edges`). It exists solely as
        the delta-application seam for
        :meth:`repro.core.residual.ResidualGraph.apply_flip` — cancelling a
        cycle flips ``O(cycle length)`` residual edges, and rebuilding the
        whole residual (plus its CSR indices) for that is the dominant
        redundant cost of the cancellation loop. Callers must exclusively
        own the weight arrays (``build_residual`` always allocates fresh
        ones); graphs whose arrays are shared copy-on-write must never be
        flipped.

        CSR caches, when built, are *patched* rather than rebuilt: flipped
        edge ids are spliced out of each index and re-inserted at their new
        buckets in ascending-id order — exactly the (key, eid) order the
        stable argsort in :meth:`_build_csr` produces — so a patched index
        is bit-identical to a from-scratch rebuild.
        """
        eids = np.unique(np.asarray(edge_ids, dtype=np.int64))
        if len(eids) == 0:
            return
        if eids[0] < 0 or eids[-1] >= self.m:
            raise GraphError("flip_edges: edge id out of range")
        old_tail = self.tail[eids].copy()
        self.tail[eids] = self.head[eids]
        self.head[eids] = old_tail
        self.cost[eids] = -self.cost[eids]
        self.delay[eids] = -self.delay[eids]
        if self._csr_out is not None:
            self._csr_out = self._patch_csr(self._csr_out, self.tail, eids)
        if self._csr_in is not None:
            self._csr_in = self._patch_csr(self._csr_in, self.head, eids)

    def remove_edges(self, edge_ids: np.ndarray) -> np.ndarray:
        """Delete edges in place, compacting edge ids; returns the id map.

        Edge ids are renumbered to stay dense: a surviving edge with old id
        ``e`` becomes ``e - (#removed ids below e)``. The returned int64
        array has length *old* ``m`` and maps old id -> new id, with ``-1``
        marking removed edges — callers holding edge-id references (path
        sets, residual masks) remap through it.

        CSR caches, when built, are patched: surviving entries keep their
        (key, eid) order and renumbering is monotone in the old ids, so the
        compacted order array is bit-identical to a from-scratch rebuild.
        """
        eids = np.unique(np.asarray(edge_ids, dtype=np.int64))
        if len(eids) == 0:
            return np.arange(self.m, dtype=np.int64)
        if eids[0] < 0 or eids[-1] >= self.m:
            raise GraphError("remove_edges: edge id out of range")
        keep = np.ones(self.m, dtype=bool)
        keep[eids] = False
        new_m = int(keep.sum())
        id_map = np.full(self.m, -1, dtype=np.int64)
        id_map[keep] = np.arange(new_m, dtype=np.int64)
        old_csr_out, old_csr_in = self._csr_out, self._csr_in
        self.tail = self.tail[keep]
        self.head = self.head[keep]
        self.cost = self.cost[keep]
        self.delay = self.delay[keep]
        self.m = new_m

        def patch(csr, keys):
            if csr is None:
                return None
            _, order = csr
            new_order = id_map[order[keep[order]]]
            counts = np.bincount(keys, minlength=self.n)
            starts = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(counts, out=starts[1:])
            return starts, new_order.astype(np.int64, copy=False)

        self._csr_out = patch(old_csr_out, self.tail)
        self._csr_in = patch(old_csr_in, self.head)
        return id_map

    def add_edges(
        self,
        tail: np.ndarray,
        head: np.ndarray,
        cost: np.ndarray,
        delay: np.ndarray,
    ) -> np.ndarray:
        """Append edges in place; returns the new edge ids.

        New edges take ids ``old_m .. old_m + len(tail) - 1`` (existing ids
        are stable, unlike :meth:`remove_edges`). CSR caches are patched by
        merging the new ids into each bucket in ascending-id order — the
        (key, eid) order the stable argsort in :meth:`_build_csr` produces —
        so patched indices stay bit-identical to a rebuild.
        """
        tail = np.atleast_1d(np.asarray(tail, dtype=np.int64))
        head = np.atleast_1d(np.asarray(head, dtype=np.int64))
        cost = np.atleast_1d(np.asarray(cost, dtype=np.int64))
        delay = np.atleast_1d(np.asarray(delay, dtype=np.int64))
        k = len(tail)
        if not (len(head) == len(cost) == len(delay) == k):
            raise GraphError("add_edges: arrays must share one length")
        if k == 0:
            return np.zeros(0, dtype=np.int64)
        if tail.min() < 0 or tail.max() >= self.n or head.min() < 0 or head.max() >= self.n:
            raise GraphError("add_edges: edge endpoint outside range(n)")
        old_m = self.m
        old_csr_out, old_csr_in = self._csr_out, self._csr_in
        self.tail = np.concatenate([self.tail, tail])
        self.head = np.concatenate([self.head, head])
        self.cost = np.concatenate([self.cost, cost])
        self.delay = np.concatenate([self.delay, delay])
        self.m = old_m + k
        new_ids = np.arange(old_m, self.m, dtype=np.int64)

        def patch(csr, keys):
            if csr is None:
                return None
            _, order = csr
            ins = new_ids[np.argsort(keys[new_ids], kind="stable")]
            comp_keep = keys[order] * np.int64(self.m + 1) + order
            comp_ins = keys[ins] * np.int64(self.m + 1) + ins
            new_order = np.insert(order, np.searchsorted(comp_keep, comp_ins), ins)
            counts = np.bincount(keys, minlength=self.n)
            starts = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(counts, out=starts[1:])
            return starts, new_order.astype(np.int64, copy=False)

        self._csr_out = patch(old_csr_out, self.tail)
        self._csr_in = patch(old_csr_in, self.head)
        return new_ids

    def invalidate_csr(self) -> None:
        """Drop cached adjacency indices after an external array mutation.

        For the cache-owned auxiliary graphs in :mod:`repro.perf`, whose
        delta patches rewrite weight/endpoint values in place; a dropped
        index rebuilds lazily (and identically) on next use.
        """
        self._csr_out = None
        self._csr_in = None

    def _patch_csr(
        self,
        csr: tuple[np.ndarray, np.ndarray],
        keys: np.ndarray,
        eids: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Splice ``eids`` out of a CSR index and re-insert at ``keys[eids]``.

        ``keys`` is the *post-flip* key array. Surviving entries keep their
        relative order (they were (key, eid)-sorted and removal preserves
        that); the flipped ids are merged back via a composite
        ``key * (m+1) + eid`` searchsorted, which reproduces the stable
        argsort's ordering exactly.
        """
        _, order = csr
        flipped = np.zeros(self.m, dtype=bool)
        flipped[eids] = True
        keep = order[~flipped[order]]
        ins = eids[np.argsort(keys[eids], kind="stable")]
        comp_keep = keys[keep] * np.int64(self.m + 1) + keep
        comp_ins = keys[ins] * np.int64(self.m + 1) + ins
        new_order = np.insert(keep, np.searchsorted(comp_keep, comp_ins), ins)
        counts = np.bincount(keys, minlength=self.n)
        new_starts = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=new_starts[1:])
        return new_starts, new_order.astype(np.int64, copy=False)

    # -- crash-safety snapshots (journal seam) --------------------------------

    def to_state(self) -> dict[str, Any]:
        """Exact serializable state, *including* any built CSR indices.

        The checkpoint journal snapshots the live residual with this so a
        resumed solve restores not just the arrays but the (incrementally
        patched) adjacency indices — bit-identical to the state the crashed
        process held, with no re-sort on the resume path.
        """

        def csr_state(csr: tuple[np.ndarray, np.ndarray] | None):
            if csr is None:
                return None
            starts, order = csr
            return {"starts": encode_array(starts), "order": encode_array(order)}

        return {
            "n": self.n,
            "tail": encode_array(self.tail),
            "head": encode_array(self.head),
            "cost": encode_array(self.cost),
            "delay": encode_array(self.delay),
            "csr_out": csr_state(self._csr_out),
            "csr_in": csr_state(self._csr_in),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "DiGraph":
        """Rebuild a graph from :meth:`to_state` output (restores CSR caches)."""
        g = cls(
            int(state["n"]),
            decode_array(state["tail"]),
            decode_array(state["head"]),
            decode_array(state["cost"]),
            decode_array(state["delay"]),
        )

        def csr_load(d) -> tuple[np.ndarray, np.ndarray] | None:
            if d is None:
                return None
            starts = decode_array(d["starts"])
            order = decode_array(d["order"])
            if len(starts) != g.n + 1 or len(order) != g.m:
                raise GraphError("CSR snapshot inconsistent with edge arrays")
            return starts, order

        g._csr_out = csr_load(state.get("csr_out"))
        g._csr_in = csr_load(state.get("csr_in"))
        return g

    # -- contracts -----------------------------------------------------------

    def require_nonnegative(self) -> "DiGraph":
        """Raise :class:`GraphError` unless all costs and delays are >= 0.

        Input kRSP instances must satisfy this; residual graphs do not.
        Returns ``self`` for chaining.
        """
        if self.m:
            if int(self.cost.min()) < 0:
                raise GraphError("negative edge cost in input graph")
            if int(self.delay.min()) < 0:
                raise GraphError("negative edge delay in input graph")
        return self

    # -- adjacency -----------------------------------------------------------

    def _build_csr(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        order = np.argsort(keys, kind="stable").astype(np.int64)
        counts = np.bincount(keys, minlength=self.n)
        starts = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        return starts, order

    def out_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR over outgoing edges: ``(starts, edge_ids)``.

        Edges leaving vertex ``u`` are ``edge_ids[starts[u]:starts[u+1]]``.
        """
        if self._csr_out is None:
            self._csr_out = self._build_csr(self.tail)
        return self._csr_out

    def in_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR over incoming edges: ``(starts, edge_ids)``."""
        if self._csr_in is None:
            self._csr_in = self._build_csr(self.head)
        return self._csr_in

    def out_edges(self, u: int) -> np.ndarray:
        """Edge ids leaving ``u`` (a view into the CSR index)."""
        starts, eids = self.out_csr()
        return eids[starts[u] : starts[u + 1]]

    def in_edges(self, v: int) -> np.ndarray:
        """Edge ids entering ``v``."""
        starts, eids = self.in_csr()
        return eids[starts[v] : starts[v + 1]]

    def out_degree(self, u: int) -> int:
        starts, _ = self.out_csr()
        return int(starts[u + 1] - starts[u])

    def in_degree(self, v: int) -> int:
        starts, _ = self.in_csr()
        return int(starts[v + 1] - starts[v])

    # -- aggregate weight queries ---------------------------------------------

    def cost_of(self, edge_ids) -> int:
        """Total cost of a collection of edge ids (exact Python int)."""
        eids = np.fromiter(edge_ids, dtype=np.int64) if not isinstance(edge_ids, np.ndarray) else edge_ids
        return int(self.cost[eids].sum()) if len(eids) else 0

    def delay_of(self, edge_ids) -> int:
        """Total delay of a collection of edge ids (exact Python int)."""
        eids = np.fromiter(edge_ids, dtype=np.int64) if not isinstance(edge_ids, np.ndarray) else edge_ids
        return int(self.delay[eids].sum()) if len(eids) else 0

    def total_cost(self) -> int:
        """``sum(c(e))`` over all edges — the paper's :math:`\\sum c(e)`."""
        return int(self.cost.sum())

    def total_delay(self) -> int:
        """``sum(d(e))`` over all edges — the paper's :math:`\\sum d(e)`."""
        return int(self.delay.sum())

    # -- iteration / dunder ----------------------------------------------------

    def edges(self) -> Iterator[tuple[int, int, int, int, int]]:
        """Yield ``(eid, tail, head, cost, delay)`` tuples."""
        for e in range(self.m):
            yield (
                e,
                int(self.tail[e]),
                int(self.head[e]),
                int(self.cost[e]),
                int(self.delay[e]),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self.n == other.n
            and self.m == other.m
            and bool(np.array_equal(self.tail, other.tail))
            and bool(np.array_equal(self.head, other.head))
            and bool(np.array_equal(self.cost, other.cost))
            and bool(np.array_equal(self.delay, other.delay))
        )

    def __hash__(self) -> int:  # graphs are mutable-ish containers
        raise TypeError("DiGraph is unhashable")
