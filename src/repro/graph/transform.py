"""Graph transformations: the vertex-disjoint reduction.

Definition 2 asks for *edge*-disjoint paths. The standard node-splitting
transformation reduces vertex-disjointness to it: every vertex ``v`` other
than the terminals becomes an ``in``/``out`` pair joined by a single
zero-weight gate edge; all original edges route ``out -> in``. Any set of
edge-disjoint paths in the split graph passes each gate at most once and is
therefore internally vertex-disjoint when mapped back.

This makes the whole kRSP stack (and its guarantees) available for the
vertex-disjoint variant at zero algorithmic cost —
:func:`solve_krsp_vertex_disjoint` is the packaged pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class SplitGraph:
    """The node-split graph plus the maps back to the original.

    Vertex ``v``'s pair in the split graph is ``(v_in, v_out) =
    (2v, 2v + 1)``; terminals use a single merged node (their gate would be
    meaningless). ``orig_eid[e']`` maps split edges to original edge ids,
    -1 for gate edges.
    """

    graph: DiGraph
    s: int
    t: int
    orig_eid: np.ndarray

    def project_path(self, split_path: list[int]) -> list[int]:
        """Map a split-graph path back to original edge ids (gates drop)."""
        return [int(self.orig_eid[e]) for e in split_path if self.orig_eid[e] >= 0]


def split_vertices(g: DiGraph, s: int, t: int) -> SplitGraph:
    """Node-splitting transformation for internal vertex-disjointness."""
    if not (0 <= s < g.n and 0 <= t < g.n) or s == t:
        raise GraphError("terminals must be distinct in-range vertices")

    def v_in(v: int) -> int:
        return 2 * v

    def v_out(v: int) -> int:
        return 2 * v + 1

    n_split = 2 * g.n
    tails, heads, costs, delays, orig = [], [], [], [], []
    # Gate edges for non-terminals.
    for v in range(g.n):
        if v in (s, t):
            continue
        tails.append(v_in(v))
        heads.append(v_out(v))
        costs.append(0)
        delays.append(0)
        orig.append(-1)
    # Original edges: out(u) -> in(v); terminals use their merged side
    # (s leaves from out(s)... s has no gate, so route from in==out: use
    # v_out for tails and v_in for heads consistently, with terminals
    # mapped to a single canonical node each).
    def tail_node(u: int) -> int:
        return v_out(u) if u not in (s, t) else v_in(u)

    def head_node(v: int) -> int:
        return v_in(v)

    for e in range(g.m):
        u, v = int(g.tail[e]), int(g.head[e])
        tails.append(tail_node(u))
        heads.append(head_node(v))
        costs.append(int(g.cost[e]))
        delays.append(int(g.delay[e]))
        orig.append(e)

    split = DiGraph(
        n_split,
        np.array(tails, dtype=np.int64),
        np.array(heads, dtype=np.int64),
        np.array(costs, dtype=np.int64),
        np.array(delays, dtype=np.int64),
    )
    return SplitGraph(
        graph=split,
        s=v_in(s),
        t=v_in(t),
        orig_eid=np.array(orig, dtype=np.int64),
    )


def solve_krsp_vertex_disjoint(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    **solver_kwargs,
):
    """kRSP with *internally vertex-disjoint* paths via node splitting.

    Accepts the same keyword arguments as
    :func:`repro.core.krsp.solve_krsp`; the returned solution's ``paths``
    are already projected back to original edge ids (and are edge-disjoint
    *and* internally vertex-disjoint).
    """
    from repro.core.krsp import solve_krsp

    split = split_vertices(g, s, t)
    sol = solve_krsp(split.graph, split.s, split.t, k, delay_bound, **solver_kwargs)
    sol.paths = [split.project_path(p) for p in sol.paths]
    return sol
