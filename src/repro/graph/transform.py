"""Graph transformations: the vertex-disjoint reduction and graph surgery.

Definition 2 asks for *edge*-disjoint paths. The standard node-splitting
transformation reduces vertex-disjointness to it: every vertex ``v`` other
than the terminals becomes an ``in``/``out`` pair joined by a single
zero-weight gate edge; all original edges route ``out -> in``. Any set of
edge-disjoint paths in the split graph passes each gate at most once and is
therefore internally vertex-disjoint when mapped back.

This makes the whole kRSP stack (and its guarantees) available for the
vertex-disjoint variant at zero algorithmic cost —
:func:`solve_krsp_vertex_disjoint` is the packaged pipeline.

The surgery helpers (:func:`subdivide_edges`, :func:`inject_parallel_edges`,
:func:`graft_at_terminals`) are optimum-aware mutation operators shared by
the oracle fuzzer (:mod:`repro.oracle`) and available for workload
construction; each documents how it relates the mutated instance's optimum
to the original's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class SplitGraph:
    """The node-split graph plus the maps back to the original.

    Vertex ``v``'s pair in the split graph is ``(v_in, v_out) =
    (2v, 2v + 1)``; terminals use a single merged node (their gate would be
    meaningless). ``orig_eid[e']`` maps split edges to original edge ids,
    -1 for gate edges.
    """

    graph: DiGraph
    s: int
    t: int
    orig_eid: np.ndarray

    def project_path(self, split_path: list[int]) -> list[int]:
        """Map a split-graph path back to original edge ids (gates drop)."""
        return [int(self.orig_eid[e]) for e in split_path if self.orig_eid[e] >= 0]


def split_vertices(g: DiGraph, s: int, t: int, gates: int = 1) -> SplitGraph:
    """Node-splitting transformation for internal vertex-disjointness.

    ``gates`` controls how many parallel zero-weight gate edges each
    non-terminal pair gets. ``gates=1`` (default) enforces
    vertex-disjointness; ``gates >= k`` makes the split graph *equivalent*
    to the original for k edge-disjoint routing (every path set maps both
    ways with identical totals), which is what the metamorphic oracle
    exploits.
    """
    if not (0 <= s < g.n and 0 <= t < g.n) or s == t:
        raise GraphError("terminals must be distinct in-range vertices")
    if gates < 1:
        raise GraphError("gates must be >= 1")

    def v_in(v: int) -> int:
        return 2 * v

    n_split = 2 * g.n
    # Gate edges for non-terminals (v ascending, ``gates`` copies each).
    non_term = np.setdiff1d(
        np.arange(g.n, dtype=np.int64),
        np.array([s, t], dtype=np.int64),
        assume_unique=False,
    )
    gate_tails = np.repeat(2 * non_term, gates)
    gate_heads = np.repeat(2 * non_term + 1, gates)
    n_gates = len(gate_tails)
    gate_zeros = np.zeros(n_gates, dtype=np.int64)
    # Original edges: out(u) -> in(v); terminals have no gate, so their
    # merged node is v_in == 2v on both sides.
    term_tail = (g.tail == s) | (g.tail == t)
    e_tails = np.where(term_tail, 2 * g.tail, 2 * g.tail + 1)
    e_heads = 2 * g.head

    split = DiGraph(
        n_split,
        np.concatenate([gate_tails, e_tails]),
        np.concatenate([gate_heads, e_heads]),
        np.concatenate([gate_zeros, g.cost]),
        np.concatenate([gate_zeros, g.delay]),
    )
    return SplitGraph(
        graph=split,
        s=v_in(s),
        t=v_in(t),
        orig_eid=np.concatenate(
            [np.full(n_gates, -1, dtype=np.int64), np.arange(g.m, dtype=np.int64)]
        ),
    )


def solve_krsp_vertex_disjoint(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    **solver_kwargs,
):
    """kRSP with *internally vertex-disjoint* paths via node splitting.

    Accepts the same keyword arguments as
    :func:`repro.core.krsp.solve_krsp`; the returned solution's ``paths``
    are already projected back to original edge ids (and are edge-disjoint
    *and* internally vertex-disjoint).
    """
    from repro.core.krsp import solve_krsp

    split = split_vertices(g, s, t)
    sol = solve_krsp(split.graph, split.s, split.t, k, delay_bound, **solver_kwargs)
    sol.paths = [split.project_path(p) for p in sol.paths]
    return sol


# ---------------------------------------------------------------------------
# Graph surgery (mutation operators)
# ---------------------------------------------------------------------------


def subdivide_edges(g: DiGraph, edge_ids, rng=None) -> DiGraph:
    """Subdivide each edge in ``edge_ids``: ``u -> v`` becomes
    ``u -> x -> v`` through a fresh vertex ``x``, with the edge's cost and
    delay split between the two halves.

    The kRSP optimum is *unchanged* for any terminals and budget: paths
    through a subdivided edge must use both halves (the midpoint has no
    other edges), with identical totals, and two paths sharing a half would
    have shared the original edge. The split point is drawn from ``rng``
    (deterministic halves when ``rng is None``).
    """
    from repro._util.rng import as_rng

    eids = sorted({int(e) for e in edge_ids})
    if eids and not (0 <= eids[0] and eids[-1] < g.m):
        raise GraphError("edge id out of range")
    if not eids:
        # Nothing to subdivide: share the parent's arrays (copy-on-write —
        # every mutating helper builds fresh arrays, so the parent is safe).
        return DiGraph(g.n, g.tail, g.head, g.cost, g.delay)
    gen = as_rng(rng) if rng is not None else None
    eid_arr = np.asarray(eids, dtype=np.int64)
    c = g.cost[eid_arr]
    d = g.delay[eid_arr]
    if gen is None:
        c1 = c // 2
        d1 = d // 2
    else:
        # Per-edge draws in (cost, delay) order — the rng stream must match
        # the historical scalar loop so seeded fuzz cases stay reproducible.
        c1 = np.empty(len(eids), dtype=np.int64)
        d1 = np.empty(len(eids), dtype=np.int64)
        for i in range(len(eids)):
            c1[i] = gen.integers(0, c[i] + 1)
            d1[i] = gen.integers(0, d[i] + 1)
    # First halves replace the original edge ids; second halves append,
    # each through its fresh midpoint vertex.
    xs = g.n + np.arange(len(eids), dtype=np.int64)
    heads = g.head.copy()
    costs = g.cost.copy()
    delays = g.delay.copy()
    heads[eid_arr] = xs
    costs[eid_arr] = c1
    delays[eid_arr] = d1
    return DiGraph(
        g.n + len(eids),
        np.concatenate([g.tail, xs]),
        np.concatenate([heads, g.head[eid_arr]]),
        np.concatenate([costs, c - c1]),
        np.concatenate([delays, d - d1]),
    )


def inject_parallel_edges(
    g: DiGraph,
    edge_ids,
    cost_jitter: int = 0,
    delay_jitter: int = 0,
    rng=None,
) -> DiGraph:
    """Append a parallel copy of each edge in ``edge_ids``.

    With zero jitter each copy is an exact duplicate, so the optimum can
    only improve or stay equal (duplicates relax edge-disjointness
    contention); with jitter the copies get weights perturbed by up to the
    given amounts (clipped at 0) and no relation is promised — use as a
    relation-free adversarial mutation.
    """
    from repro._util.rng import as_rng

    eids = np.asarray(sorted({int(e) for e in edge_ids}), dtype=np.int64)
    if len(eids) and (eids[0] < 0 or eids[-1] >= g.m):
        raise GraphError("edge id out of range")
    if len(eids) == 0:
        # No copies to inject: share the parent's arrays (copy-on-write).
        return DiGraph(g.n, g.tail, g.head, g.cost, g.delay)
    gen = as_rng(rng)
    cost = g.cost[eids]
    delay = g.delay[eids]
    if cost_jitter:
        cost = np.clip(cost + gen.integers(-cost_jitter, cost_jitter + 1, size=len(eids)), 0, None)
    if delay_jitter:
        delay = np.clip(delay + gen.integers(-delay_jitter, delay_jitter + 1, size=len(eids)), 0, None)
    return DiGraph(
        g.n,
        np.concatenate([g.tail, g.tail[eids]]),
        np.concatenate([g.head, g.head[eids]]),
        np.concatenate([g.cost, cost.astype(np.int64)]),
        np.concatenate([g.delay, delay.astype(np.int64)]),
    )


def graft_at_terminals(
    g: DiGraph,
    s: int,
    t: int,
    h: DiGraph,
    hs: int,
    ht: int,
) -> DiGraph:
    """Disjoint union of ``g`` and ``h`` identifying ``hs -> s`` and
    ``ht -> t``.

    Edge ids ``0..g.m-1`` keep their meaning; ``h``'s edges follow in
    order. Grafting a trap gadget (e.g. the Figure-1 instance) across the
    terminals of a random instance plants adversarial route structure
    inside an otherwise benign topology — it only *adds* s-t routes, so
    the optimum can only improve or stay equal for the same ``k``.
    """
    if not (0 <= hs < h.n and 0 <= ht < h.n) or hs == ht:
        raise GraphError("gadget terminals must be distinct in-range vertices")

    def remap(vs: np.ndarray) -> np.ndarray:
        # Pack h's non-terminal vertices after g's; terminals identify.
        shift = (
            g.n
            - (hs < vs).astype(np.int64)
            - (ht < vs).astype(np.int64)
        )
        out = vs + shift
        out[vs == hs] = s
        out[vs == ht] = t
        return out

    h_tail = remap(h.tail)
    h_head = remap(h.head)
    return DiGraph(
        g.n + h.n - 2,
        np.concatenate([g.tail, h_tail]),
        np.concatenate([g.head, h_head]),
        np.concatenate([g.cost, h.cost]),
        np.concatenate([g.delay, h.delay]),
    )
