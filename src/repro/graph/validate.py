"""Structural validation helpers for graphs, paths and path sets.

These checks are the contract layer between the substrate and the solvers:
every public solver validates its inputs with them, and the test suite uses
them as oracles (a solver's output must pass :func:`check_disjoint_paths`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph


def is_path(g: DiGraph, edge_ids: list[int], s: int, t: int) -> bool:
    """True iff ``edge_ids`` is a (possibly non-simple) walk ``s -> t``
    with at least one edge when ``s != t``."""
    if s == t:
        return len(edge_ids) == 0
    if not edge_ids:
        return False
    cur = s
    for e in edge_ids:
        if not 0 <= e < g.m:
            return False
        if int(g.tail[e]) != cur:
            return False
        cur = int(g.head[e])
    return cur == t


def is_simple_path(g: DiGraph, edge_ids: list[int], s: int, t: int) -> bool:
    """True iff ``edge_ids`` is a simple directed path ``s -> t``
    (no repeated vertices)."""
    if not is_path(g, edge_ids, s, t):
        return False
    seen = {s}
    for e in edge_ids:
        v = int(g.head[e])
        if v in seen:
            return False
        seen.add(v)
    return True


def check_disjoint_paths(
    g: DiGraph,
    paths: list[list[int]],
    s: int,
    t: int,
    k: int | None = None,
) -> None:
    """Raise :class:`GraphError` unless ``paths`` are pairwise edge-disjoint
    ``s``-``t`` paths (and exactly ``k`` of them when given).

    Edge-disjointness is on edge *ids*: two parallel edges may both be used.
    """
    if k is not None and len(paths) != k:
        raise GraphError(f"expected {k} paths, got {len(paths)}")
    used: set[int] = set()
    for i, path in enumerate(paths):
        if not is_path(g, path, s, t):
            raise GraphError(f"entry {i} is not an s-t path")
        dup = used.intersection(path)
        if dup:
            raise GraphError(f"paths share edge ids {sorted(dup)}")
        if len(set(path)) != len(path):
            raise GraphError(f"path {i} repeats edge id")
        used.update(path)


def is_cycle(g: DiGraph, edge_ids: list[int]) -> bool:
    """True iff ``edge_ids`` traces a directed closed walk with >= 1 edge."""
    if not edge_ids:
        return False
    start = int(g.tail[edge_ids[0]])
    cur = start
    for e in edge_ids:
        if not 0 <= e < g.m or int(g.tail[e]) != cur:
            return False
        cur = int(g.head[e])
    return cur == start


def degree_imbalance(g: DiGraph, edge_ids) -> np.ndarray:
    """Per-vertex (out-degree minus in-degree) of the edge subset.

    A k-unit s-t flow has imbalance +k at s, -k at t, 0 elsewhere; a union
    of cycles is all-zero. The oplus machinery tests both facts with this.
    """
    eids = np.asarray(list(edge_ids), dtype=np.int64)
    bal = np.zeros(g.n, dtype=np.int64)
    if len(eids):
        np.add.at(bal, g.tail[eids], 1)
        np.add.at(bal, g.head[eids], -1)
    return bal
