"""repro: a production reproduction of "Efficient Approximation Algorithms
for Computing k Disjoint Restricted Shortest Paths" (SPAA 2015).

Quick start::

    from repro import solve_krsp
    from repro.graph import gnp_digraph, anticorrelated_weights

    g = anticorrelated_weights(gnp_digraph(20, 0.3, rng=0), rng=1)
    sol = solve_krsp(g, s=0, t=19, k=2, delay_bound=60)
    print(sol.cost, sol.delay, sol.paths)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.graph` -- array-backed digraphs, generators, weight models;
* :mod:`repro.paths` -- Dijkstra/Bellman-Ford, exact & approximate RSP;
* :mod:`repro.flow` -- max-flow, min-cost k-flow, Suurballe, decomposition;
* :mod:`repro.lp` -- delay-budgeted flow LP, rounding, exact MILP oracle;
* :mod:`repro.core` -- the paper's algorithm (residuals, bicameral cycles,
  auxiliary graphs, cancellation, scaling);
* :mod:`repro.baselines` -- comparison algorithms from the related work;
* :mod:`repro.eval` -- experiment harness and registry.
"""

from repro.core import (
    KBCPSolution,
    KRSPInstance,
    KRSPSolution,
    PathSet,
    solve_kbcp,
    solve_krsp,
)
from repro.errors import (
    GraphError,
    InfeasibleInstanceError,
    InvariantError,
    IterationLimitError,
    NegativeCycleError,
    ReproError,
    SolverError,
)

__version__ = "1.0.0"

__all__ = [
    "solve_krsp",
    "solve_kbcp",
    "KBCPSolution",
    "KRSPInstance",
    "KRSPSolution",
    "PathSet",
    "ReproError",
    "GraphError",
    "InfeasibleInstanceError",
    "SolverError",
    "InvariantError",
    "IterationLimitError",
    "NegativeCycleError",
    "__version__",
]
