"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class. Algorithm-level failure modes get
dedicated subclasses because callers typically need to distinguish
"your instance has no solution" (:class:`InfeasibleInstanceError`) from
"the library hit an internal invariant violation" (:class:`InvariantError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(ReproError):
    """Structural problem with a graph (bad endpoints, negative weights
    where nonnegative ones are required, inconsistent array lengths)."""


class InputError(GraphError):
    """Untrusted input (an instance/graph file or payload) failed
    validation: malformed JSON, non-integer or NaN/inf weights, values
    overflowing int64, out-of-range endpoints, duplicate edge ids.

    Subclasses :class:`GraphError` so existing ``except GraphError``
    call sites keep working; loaders raise this instead of leaking
    ``IndexError``/``ValueError``/``KeyError`` from half-parsed data.
    """


class JournalError(ReproError):
    """A solve journal (write-ahead log / checkpoint file) is unusable:
    missing or unsealed header, unsupported format version, instance-hash
    mismatch, or a replayed record that contradicts the solver (totals
    mismatch, broken Lemma-12 monotone improvement). Torn *tails* are not
    errors — they are truncated silently, as crash debris is expected."""


class SolveInterrupted(ReproError):
    """A cooperative shutdown signal (SIGINT/SIGTERM) stopped the solve.

    Raised after the in-flight state has been flushed to the checkpoint
    journal (when one is attached), so the run can be continued with
    ``repro resume``. ``signum`` is the signal number; CLI layers map it
    to the conventional exit code ``128 + signum`` (130/143).
    """

    def __init__(self, signum: int, checkpoint_path: str | None = None):
        where = f"; checkpoint at {checkpoint_path}" if checkpoint_path else ""
        super().__init__(f"interrupted by signal {signum}{where}")
        self.signum = signum
        self.checkpoint_path = checkpoint_path


class InfeasibleInstanceError(ReproError):
    """The kRSP instance admits no solution.

    Raised in three situations, mirroring DESIGN.md section 5:

    * fewer than ``k`` edge-disjoint ``s``-``t`` paths exist (structural),
    * the fractional delay-budgeted flow LP is infeasible, or
    * Algorithm 1 step 2(a): the current solution violates the delay bound
      but the residual graph contains no bicameral cycle.
    """


class SolverError(ReproError):
    """An underlying numerical solver (LP/MILP) failed unexpectedly."""


class InvariantError(ReproError):
    """An internal invariant was violated (e.g. the Lemma 12 progress
    monitor observed a non-improving iteration). Indicates a bug, not a
    property of the input instance."""


class IterationLimitError(ReproError):
    """The cycle-cancellation loop exceeded its iteration cap before
    reaching delay feasibility."""


class BudgetExhaustedError(ReproError):
    """A cooperative :class:`repro.robustness.SolveBudget` ran out mid-solve.

    This is a *control-flow signal*, not a user-facing failure: the anytime
    layers (:func:`repro.core.krsp.solve_krsp` with a budget,
    :func:`repro.robustness.solve_with_fallback`) catch it and return the
    best valid solution seen so far with ``status != "ok"``. It only
    escapes to callers that invoke budget-metered internals directly.

    ``reason`` is one of ``"deadline"``, ``"iterations"``, ``"search_nodes"``;
    ``where`` names the checkpoint that tripped.
    """

    def __init__(self, reason: str, where: str = ""):
        super().__init__(
            f"solve budget exhausted ({reason})" + (f" at {where}" if where else "")
        )
        self.reason = reason
        self.where = where


class NegativeCycleError(ReproError):
    """A shortest-path routine that requires the absence of negative
    cycles detected one. Carries the offending cycle when available."""

    def __init__(self, message: str, cycle: list[int] | None = None):
        super().__init__(message)
        #: Edge ids of a witnessing negative cycle, if the caller asked
        #: for extraction.
        self.cycle = cycle
