"""Entry point for ``python -m repro``."""

import os
import sys

from repro.cli import main

try:
    code = main()
    # Flush explicitly so a closed pipe surfaces here, not in the
    # interpreter's exit-time flush (which prints an unkillable warning).
    sys.stdout.flush()
except BrokenPipeError:
    # Downstream consumer (e.g. ``| head``) closed the pipe: the POSIX
    # convention is to die silently with SIGPIPE's exit status.
    devnull = os.open(os.devnull, os.O_WRONLY)
    os.dup2(devnull, sys.stdout.fileno())
    code = 141
raise SystemExit(code)
