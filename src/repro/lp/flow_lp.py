"""The delay-budgeted fractional k-flow LP (phase-1 relaxation).

    minimize    sum_e c(e) x_e
    subject to  sum_{e out of v} x_e - sum_{e into v} x_e = b_v   for all v
                sum_e d(e) x_e <= D
                0 <= x_e <= 1

with ``b_s = k``, ``b_t = -k``, ``b_v = 0`` otherwise. Its optimum is a lower
bound on the kRSP optimum ``C_OPT`` (every integral solution is feasible for
it), which the evaluation harness uses to normalize costs when the MILP
oracle is too slow, and whose basic optimal solutions feed the LP-rounding
phase-1 provider (Lemma 5 via [9]).

Solved with scipy's HiGHS dual simplex so the returned point is a vertex of
the polytope (the rounding layer exploits the resulting sparsity of the
fractional support but does not depend on it for correctness).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.errors import BudgetExhaustedError, SolverError
from repro.graph.digraph import DiGraph
from repro.robustness.budget import checkpoint, current_meter


def lp_time_limit_options() -> tuple[dict, bool]:
    """HiGHS options capping one LP solve at the ambient budget's headroom.

    An LP solve is the largest indivisible unit of work in the pipeline;
    cooperative checkpoints can refuse to *start* one, but without this cap
    a single big solve started just under the deadline would overshoot it
    by its full runtime. Returns ``(options, capped)`` — ``capped`` tells
    the caller whether a HiGHS status 1 means "budget deadline hit" (raise
    :class:`~repro.errors.BudgetExhaustedError`) rather than a genuine
    iteration-limit failure. The small floor keeps a nearly-spent budget
    from turning every solve into an instant, useless timeout.
    """
    meter = current_meter()
    remaining = meter.remaining_seconds() if meter is not None else None
    if remaining is None:
        return {}, False
    return {"time_limit": max(remaining, 0.05)}, True


@dataclass
class FlowLpResult:
    """Solution of the delay-budgeted flow LP.

    Attributes
    ----------
    x:
        Optimal fractional edge flows, shape ``(m,)``.
    cost:
        Optimal objective value (float; exact up to solver tolerance).
    delay:
        Total fractional delay ``d . x`` at the optimum.
    dual_delay:
        Dual multiplier of the delay budget row (>= 0; the marginal cost of
        tightening the budget). ``None`` when the solver exposes no duals.
    """

    x: np.ndarray
    cost: float
    delay: float
    dual_delay: float | None


def incidence_matrix(g: DiGraph) -> sp.csr_matrix:
    """Sparse vertex-edge incidence matrix: +1 at tails, -1 at heads.

    Row ``v`` dotted with a flow vector gives v's net outflow.
    """
    rows = np.concatenate([g.tail, g.head])
    cols = np.concatenate([np.arange(g.m), np.arange(g.m)])
    vals = np.concatenate([np.ones(g.m), -np.ones(g.m)])
    return sp.csr_matrix((vals, (rows, cols)), shape=(g.n, g.m))


def solve_flow_lp(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
) -> FlowLpResult | None:
    """Solve the relaxation; ``None`` when it is infeasible.

    Infeasibility of the relaxation certifies infeasibility of kRSP itself
    (the relaxation only removes constraints).
    """
    if g.m == 0:
        return None
    # Cooperative budget gate: an LP solve is the largest indivisible unit
    # of work in the pipeline, so refuse to start one on a spent budget
    # (no-op unless a meter is armed; see repro.robustness.budget).
    checkpoint("lp.flow_lp")
    from repro.lp.engine import get_engine  # late: engine imports this module

    options, deadline_capped = lp_time_limit_options()
    res = get_engine().solve_flow(g, s, t, k, delay_bound, options=options)
    obs.inc("lp.flow_lp.solves")
    if res.status == 2:  # infeasible
        obs.inc("lp.flow_lp.infeasible")
        return None
    if res.status == 1 and deadline_capped:
        raise BudgetExhaustedError("deadline", "lp.flow_lp")
    if not res.success:
        raise SolverError(f"flow LP failed: status={res.status} {res.message}")
    x = np.clip(res.x, 0.0, 1.0)
    dual = None
    if res.ineq_marginals is not None and len(res.ineq_marginals):
        # linprog reports <=-row marginals as nonpositive; negate to the
        # conventional shadow price.
        dual = float(-res.ineq_marginals[0])
    return FlowLpResult(
        x=x,
        cost=float(res.fun),
        delay=float(np.dot(g.delay, x)),
        dual_delay=dual,
    )
