"""LP substrate: warm-started engine, delay-budgeted flow LP,
score-monotone rounding, exact MILP."""

from repro.lp.engine import (
    LPEngine,
    LPResult,
    force_backend,
    get_engine,
    highspy_available,
    reset_engine,
)
from repro.lp.flow_lp import FlowLpResult, incidence_matrix, solve_flow_lp
from repro.lp.basis import round_flow_score_monotone
from repro.lp.milp import ExactSolution, solve_krsp_milp

__all__ = [
    "LPEngine",
    "LPResult",
    "force_backend",
    "get_engine",
    "highspy_available",
    "reset_engine",
    "FlowLpResult",
    "incidence_matrix",
    "solve_flow_lp",
    "round_flow_score_monotone",
    "ExactSolution",
    "solve_krsp_milp",
]
