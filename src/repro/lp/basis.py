"""Score-monotone rounding of a fractional k-flow to an integral one.

This implements the guarantee of the paper's Lemma 5 (due to [9]): from an
optimal fractional solution ``x*`` of the delay-budgeted flow LP, produce an
*integral* k-flow ``F`` with

    d(F)/D + c(F)/C_LP  <=  d(x*)/D + c(x*)/C_LP  <=  2,

i.e. there exists ``alpha in [0, 2]`` with ``d(F) <= alpha * D`` and
``c(F) <= (2 - alpha) * C_LP <= (2 - alpha) * C_OPT``.

Method: *cycle cancellation on the fractional support.* The fractional
edges of any conservation-feasible ``x`` contain an orientable undirected
cycle (every vertex touching a fractional edge touches at least two,
because its net balance is integral). Pushing ``epsilon`` around the cycle —
increasing forward-traversed edges, decreasing backward ones — preserves
conservation; the normalized score changes linearly in ``epsilon``, so one
of the two push directions is non-increasing. Push that direction until an
edge hits a bound; at least one fractional variable becomes integral per
round, so at most ``m`` rounds suffice. This is strictly more general than
decomposing a polytope *vertex* into its edge's two endpoints: it tolerates
degenerate or interior solutions and never needs the basis.

All pushes are float but each limiting edge is pinned exactly to 0/1; the
final edge set is re-verified as an exact integral flow downstream.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError
from repro.graph.digraph import DiGraph

#: Fractionality tolerance: LP solutions on integral data are rationals with
#: moderate denominators, so anything this close to an integer is one.
TOL = 1e-7


def _find_orientable_cycle(
    g: DiGraph,
    frac_eids: np.ndarray,
) -> list[tuple[int, int]] | None:
    """Find an undirected cycle in the fractional support.

    Returns a list of ``(edge_id, sign)`` with sign +1 when the edge is
    traversed tail->head and -1 otherwise, or ``None`` when the support is
    acyclic (a forest — possible only via float crumbs).
    """
    # Undirected incidence: vertex -> list of (edge, other endpoint, sign).
    inc: dict[int, list[tuple[int, int, int]]] = {}
    deg: dict[int, int] = {}
    for e in frac_eids:
        e = int(e)
        u, v = int(g.tail[e]), int(g.head[e])
        inc.setdefault(u, []).append((e, v, +1))
        inc.setdefault(v, []).append((e, u, -1))
        deg[u] = deg.get(u, 0) + 1
        deg[v] = deg.get(v, 0) + 1

    # Prune degree-<=1 vertices; what survives is the 2-core, where a walk
    # that never reuses an edge can always continue until it revisits a
    # vertex — which is exactly a cycle.
    removed: set[int] = set()
    queue = [v for v, d in deg.items() if d <= 1]
    while queue:
        v = queue.pop()
        for e, w, _ in inc[v]:
            if e in removed:
                continue
            removed.add(e)
            deg[v] -= 1
            deg[w] -= 1
            if deg[w] == 1:
                queue.append(w)
    live = [v for v, d in deg.items() if d >= 2]
    if not live:
        return None

    start = live[0]
    used: set[int] = set()
    pos: dict[int, int] = {start: 0}
    walk: list[tuple[int, int]] = []
    cur = start
    while True:
        step = next(
            ((e, w, s) for e, w, s in inc[cur] if e not in removed and e not in used),
            None,
        )
        if step is None:
            raise SolverError("2-core walk stuck — inconsistent support")
        e, w, s = step
        used.add(e)
        walk.append((e, s))
        if w in pos:
            return [(e2, s2) for e2, s2 in walk[pos[w] :]]
        pos[w] = len(walk)
        cur = w


def round_flow_score_monotone(
    g: DiGraph,
    x: np.ndarray,
    cost_norm: float,
    delay_norm: float,
) -> np.ndarray:
    """Round fractional flow ``x`` to a boolean edge mask without increasing
    ``c(x)/cost_norm + d(x)/delay_norm``.

    Parameters
    ----------
    cost_norm, delay_norm:
        Positive normalizers (typically ``C_LP`` and ``D``). When either is
        zero the corresponding criterion drops out of the score (the LP
        said it can be had for free) — pass 0 to ignore, and the rounding
        minimizes the other criterion's growth instead.
    """
    x = np.asarray(x, dtype=np.float64).copy()
    if len(x) != g.m:
        raise SolverError("fractional solution length mismatch")
    # Per-edge score rate, with zero normalizers dropping out.
    rate = np.zeros(g.m)
    if cost_norm > 0:
        rate += g.cost / float(cost_norm)
    if delay_norm > 0:
        rate += g.delay / float(delay_norm)

    for _ in range(g.m + 1):
        frac = np.nonzero((x > TOL) & (x < 1.0 - TOL))[0]
        if len(frac) == 0:
            break
        cycle = _find_orientable_cycle(g, frac)
        if cycle is None:
            # Forest of float crumbs: conservation forces them integral.
            x[frac] = np.rint(x[frac])
            break
        signs = np.array([s for _, s in cycle], dtype=np.float64)
        eids = np.array([e for e, _ in cycle], dtype=np.int64)
        # Score rate of pushing +1 around the cycle.
        push_rate = float(np.dot(signs, rate[eids]))
        direction = -1.0 if push_rate > 0 else 1.0
        d_signs = signs * direction
        # Max step before an edge leaves [0, 1].
        room = np.where(d_signs > 0, 1.0 - x[eids], x[eids])
        step = float(room.min())
        limit = int(np.argmin(room))
        x[eids] = x[eids] + step * d_signs
        # Pin the limiting edge exactly.
        x[eids[limit]] = 1.0 if d_signs[limit] > 0 else 0.0
        x = np.clip(x, 0.0, 1.0)
    else:
        raise SolverError("rounding did not converge — cyclic support persisted")

    return x > 0.5
