"""Exact kRSP oracle via mixed-integer programming (scipy HiGHS MILP).

The paper has no implementation to compare against, so ground truth on small
instances comes from this exact solver: binary edge variables, flow
conservation of value ``k``, one delay budget row, minimize cost. Integral
unit flows decompose into ``k`` disjoint paths plus cycles; because costs are
nonnegative any cycle in an *optimal* flow has zero cost and is stripped
without changing the optimum (and only lowering delay), so the MILP optimum
equals the kRSP optimum over path systems.

Exponential worst case — keep instances at laptop scale (the evaluation
suite stays under ~30 vertices, where HiGHS answers in milliseconds).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.optimize
import scipy.sparse as sp

from repro.errors import SolverError
from repro.flow.decompose import decompose_flow
from repro.graph.digraph import DiGraph
from repro.lp.flow_lp import incidence_matrix


@dataclass
class ExactSolution:
    """Optimal kRSP solution from the MILP oracle.

    Attributes
    ----------
    paths:
        ``k`` edge-disjoint s-t paths (edge-id lists).
    cost, delay:
        Exact totals of the paths (after zero-cost cycle stripping).
    """

    paths: list[list[int]]
    cost: int
    delay: int


def solve_krsp_milp(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    time_limit: float | None = None,
) -> ExactSolution | None:
    """Exact kRSP optimum, or ``None`` when the instance is infeasible.

    Raises :class:`SolverError` if HiGHS fails (e.g. hits ``time_limit``
    without proving optimality).
    """
    g.require_nonnegative()
    if k <= 0:
        return ExactSolution(paths=[], cost=0, delay=0)
    if g.m == 0 or s == t:
        return None
    # Structural infeasibility (max-flow < k) is common in adversarial
    # streams and vastly cheaper to detect combinatorially than by handing
    # HiGHS an infeasible MILP.
    from repro.flow.maxflow import has_k_disjoint_paths

    if not has_k_disjoint_paths(g, s, t, k):
        return None

    A_eq = incidence_matrix(g)
    b_eq = np.zeros(g.n)
    b_eq[s] += k
    b_eq[t] -= k
    constraints = [
        scipy.optimize.LinearConstraint(A_eq, b_eq, b_eq),
        scipy.optimize.LinearConstraint(
            sp.csr_matrix(g.delay.astype(np.float64)[None, :]),
            -np.inf,
            float(delay_bound),
        ),
    ]
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    res = scipy.optimize.milp(
        c=g.cost.astype(np.float64),
        constraints=constraints,
        integrality=np.ones(g.m),
        bounds=scipy.optimize.Bounds(0.0, 1.0),
        options=options,
    )
    if res.status == 2:  # infeasible
        return None
    if not res.success:
        raise SolverError(f"MILP failed: status={res.status} {res.message}")

    used = np.nonzero(np.rint(res.x).astype(np.int64) == 1)[0]
    paths, cycles = decompose_flow(g, used, s, t)
    for cyc in cycles:
        if g.cost_of(cyc) != 0:
            raise SolverError("optimal MILP flow contained a positive-cost cycle")
    flat = [e for p in paths for e in p]
    return ExactSolution(
        paths=paths,
        cost=g.cost_of(flat),
        delay=g.delay_of(flat),
    )
