"""Pluggable LP engine: warm-started persistent HiGHS models with a
bit-compatible scipy fallback.

``BENCH_PR4.json`` showed the ratio LP dominating the solver (95,746
simplex pivots over 60 ``solve_ratio_lp`` calls on the E5 kernel), even
though successive solves differ by only a few rows/columns: the doubling
schedule revisits the same radii ``B`` every cancellation iteration, and a
cancelled cycle flips ``O(cycle length)`` residual edges. This module
routes every LP in the pipeline through one :class:`LPEngine` with two
backends:

* **scipy** — the exact ``scipy.optimize.linprog`` calls the call sites
  made before the engine existed, assembled from the same arrays in the
  same order, so the fallback is *bit-compatible* with the pre-engine
  solver (the differential/chaos suites rely on this determinism).
* **highspy** — a persistent ``highspy.Highs`` model per warm family
  ``(aux-cache token, B, cost_sign)`` (ratio LPs) or per flow-LP
  structure signature. Between successive solves the engine applies only
  the *value deltas* — objective coefficients and the four incidence
  entries of each flipped edge's layer copies, derived from the same
  parity-folded flip log that :class:`repro.perf.auxcache.AuxCache`
  uses to patch aux graphs in place — and HiGHS re-solves from the
  previous optimal basis. Model dimensions never change within a family
  (the layer-window layout is flip-invariant), which is what keeps the
  basis valid.

Backend selection is automatic: ``highspy`` when importable, else
``scipy`` (install with the ``perf`` extra: ``pip install repro[perf]``).
``REPRO_LP_BACKEND=scipy|highspy|auto`` forces it, and
:func:`force_backend` scopes a choice to a ``with`` block (used by the
backend-differential tests and the bench gate's backend-ratio kernels).

Determinism note: warm starts make HiGHS answers *history-dependent* —
a warm solve may return a different optimal vertex than a cold one.
Every consumer in this repo verifies answers independently (certificates,
differential oracles), so correctness never depends on which optimum
comes back; but the byte-replay gates (``tests/test_search_incremental``,
``scripts/chaos_gate.py``) pin ``REPRO_LP_BACKEND=scipy``, the
deterministic backend, and docs/PERFORMANCE.md documents the trade.

Counters (docs/OBSERVABILITY.md): ``lp.backend.scipy.solves`` /
``lp.backend.highspy.solves``, ``lp.warm_start.hit`` / ``.miss`` /
``.error``, ``lp.pivots``, and ``lp.pivots_unreported`` (solves whose
backend reported no iteration count — never silently counted as zero).
"""

from __future__ import annotations

import hashlib
import itertools
import os
from dataclasses import dataclass, field

import numpy as np
import scipy.optimize
import scipy.sparse as sp

from repro import obs
from repro.errors import SolverError

#: Environment variable forcing the backend: ``scipy``, ``highspy``, ``auto``.
BACKEND_ENV = "REPRO_LP_BACKEND"

#: Cap on persistent warm-start models kept per engine (LRU-evicted). Each
#: ratio-LP model holds one HiGHS instance plus O(aux edges) bookkeeping.
MAX_MODELS = 24

#: Cap on cached conservation-incidence matrices (shared by the +1/-1 sign
#: solves of one sweep level and across iterations at a fixed radius).
MAX_ASSEMBLY_CACHE = 4

_token_counter = itertools.count(1)


def next_family_token() -> int:
    """Process-unique token naming one warm family owner (an AuxCache).

    Tokens are never reused within a process; unpickled caches take a
    fresh token (see ``AuxCache.__setstate__``) so a model warmed by one
    cache can never be replayed against another cache's deltas.
    """
    return next(_token_counter)


_highspy_mod = None


def highspy_available() -> bool:
    """True when the optional ``highspy`` backend is importable."""
    global _highspy_mod
    if _highspy_mod is None:
        try:
            import highspy  # noqa: PLC0415 — optional perf extra

            _highspy_mod = highspy
        except ImportError:
            _highspy_mod = False
    return bool(_highspy_mod)


def default_backend_name() -> str:
    """Resolve the backend: ``REPRO_LP_BACKEND`` override, else autodetect."""
    choice = os.environ.get(BACKEND_ENV, "auto").strip().lower() or "auto"
    if choice == "auto":
        return "highspy" if highspy_available() else "scipy"
    if choice == "highspy" and not highspy_available():
        raise SolverError(
            "REPRO_LP_BACKEND=highspy but highspy is not installed "
            "(pip install repro[perf])"
        )
    if choice not in ("scipy", "highspy"):
        raise SolverError(
            f"REPRO_LP_BACKEND={choice!r} is not one of scipy|highspy|auto"
        )
    return choice


@dataclass
class LPResult:
    """Backend-neutral LP outcome, in scipy ``linprog`` status conventions.

    ``status``: 0 optimal, 1 iteration/time limit, 2 infeasible,
    3 unbounded, 4 numerical/other. ``nit`` is the simplex iteration
    count, or ``None`` when the backend did not report one (counted as
    ``lp.pivots_unreported``, never as zero pivots). ``ineq_marginals``
    are the inequality-row duals in linprog's sign convention
    (nonpositive for binding ``<=`` rows of a minimization).
    """

    status: int
    success: bool
    x: np.ndarray | None
    fun: float | None
    nit: int | None
    message: str = ""
    ineq_marginals: np.ndarray | None = None
    backend: str = "scipy"
    warm: bool = False


def count_pivots(res: LPResult) -> None:
    """Fold one solve's iteration count into the ``lp.*`` counters.

    A missing count increments ``lp.pivots_unreported`` instead of adding
    zero to ``lp.pivots`` — the old ``int(getattr(res, "nit", 0) or 0)``
    idiom silently undercounted whenever a backend dropped the field, and
    ``validate_trace`` now cross-checks the two counters against the
    solve totals.
    """
    if res.nit is None:
        obs.inc("lp.pivots_unreported")
    else:
        obs.add("lp.pivots", int(res.nit))


def _scipy_result(res) -> LPResult:
    nit = getattr(res, "nit", None)
    marginals = None
    ineqlin = getattr(res, "ineqlin", None)
    if (
        ineqlin is not None
        and ineqlin.marginals is not None
        and len(ineqlin.marginals)
    ):
        marginals = np.asarray(ineqlin.marginals, dtype=np.float64)
    return LPResult(
        status=int(res.status),
        success=bool(res.success),
        x=getattr(res, "x", None),
        fun=getattr(res, "fun", None),
        nit=None if nit is None else int(nit),
        message=str(getattr(res, "message", "")),
        ineq_marginals=marginals,
        backend="scipy",
        warm=False,
    )


# ---------------------------------------------------------------------------
# problem assembly (shared by both backends; vectorized, no per-edge loops)
# ---------------------------------------------------------------------------


def _graph_digest(tail: np.ndarray, head: np.ndarray) -> str:
    """Structure signature of an incidence pattern (tails + heads)."""
    h = hashlib.sha1()
    h.update(np.ascontiguousarray(tail, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(head, dtype=np.int64).tobytes())
    return h.hexdigest()


@dataclass
class _AssemblyEntry:
    graph: object  # identity anchor: the DiGraph the matrix was built from
    version: int | None
    A: sp.csr_matrix


class _AssemblyCache:
    """Tiny LRU of conservation-incidence matrices keyed by graph identity.

    The +1 and -1 sign solves of one sweep level share the conservation
    block, as do successive solves at the same radius when the residual
    is unchanged. Holding a strong reference to the source graph makes
    the identity check sound (the id cannot be recycled while the entry
    lives); a version mismatch — the aux cache patches graphs in place —
    forces a rebuild.
    """

    def __init__(self, cap: int = MAX_ASSEMBLY_CACHE) -> None:
        self._cap = cap
        self._entries: list[_AssemblyEntry] = []

    def get(self, graph, version: int | None, build) -> sp.csr_matrix:
        for i, e in enumerate(self._entries):
            if e.graph is graph and e.version == version:
                self._entries.append(self._entries.pop(i))
                obs.inc("lp.assembly.reuse")
                return e.A
        A = build()
        self._entries = [e for e in self._entries if e.graph is not graph]
        self._entries.append(_AssemblyEntry(graph=graph, version=version, A=A))
        if len(self._entries) > self._cap:
            self._entries.pop(0)
        return A


def ratio_lp_arrays(aux, cost_sign: int, cons: sp.csr_matrix):
    """Assemble the normalized min-ratio circulation LP over ``aux``.

    Returns ``(c, A_eq, b_eq, bounds)`` exactly as the pre-engine
    ``solve_ratio_lp`` built them (same dtypes, same stacking order), so
    the scipy backend stays bit-compatible. Fully vectorized — the norm
    row and bound vectors are one masked scatter each.
    """
    from repro.core.auxlp import MASS_CAP  # late: avoid an import cycle

    h = aux.graph
    wraps = aux.wrap_cost
    chosen = (wraps * cost_sign) > 0
    other = (wraps * cost_sign) < 0
    idx = np.nonzero(chosen)[0]
    norm_row = sp.csr_matrix(
        (
            np.abs(wraps[idx]).astype(np.float64),
            (np.zeros(len(idx), dtype=np.int64), idx),
        ),
        shape=(1, h.m),
    )
    A_eq = sp.vstack([cons, norm_row], format="csr")
    b_eq = np.zeros(h.n + 1)
    b_eq[-1] = 1.0
    ub = np.full(h.m, MASS_CAP)
    ub[other] = 0.0
    bounds = np.stack([np.zeros(h.m), ub], axis=1)
    return h.delay.astype(np.float64), A_eq, b_eq, bounds


# ---------------------------------------------------------------------------
# highspy backend
# ---------------------------------------------------------------------------


def _highs_status(hs, model_status) -> tuple[int, bool]:
    """Map a HighsModelStatus onto linprog's (status, success) pair."""
    S = hs.HighsModelStatus
    if model_status == S.kOptimal:
        return 0, True
    if model_status == S.kInfeasible:
        return 2, False
    if model_status in (S.kTimeLimit, S.kIterationLimit):
        return 1, False
    if model_status == S.kUnbounded:
        return 3, False
    return 4, False


def _new_highs(hs):
    h = hs.Highs()
    h.setOptionValue("output_flag", False)
    return h


def _run_highs(h, hs, options: dict | None) -> tuple:
    """Apply per-solve options, run, and read back (status, success, x,
    fun, nit, duals)."""
    time_limit = float((options or {}).get("time_limit", np.inf))
    h.setOptionValue("time_limit", time_limit if np.isfinite(time_limit) else 1e30)
    h.run()
    status, success = _highs_status(hs, h.getModelStatus())
    info = h.getInfo()
    nit = getattr(info, "simplex_iteration_count", None)
    if nit is not None and nit < 0:
        nit = None
    x = fun = duals = None
    if success:
        sol = h.getSolution()
        x = np.asarray(sol.col_value, dtype=np.float64)
        fun = float(info.objective_function_value)
        duals = np.asarray(sol.row_dual, dtype=np.float64)
    return status, success, x, fun, nit, duals


def _pass_model(h, hs, c, A_csc: sp.csc_matrix, col_lb, col_ub, row_lb, row_ub):
    """Load a full model column-wise (one vectorized CSC handoff)."""
    lp = hs.HighsLp()
    n_rows, n_cols = A_csc.shape
    lp.num_col_ = int(n_cols)
    lp.num_row_ = int(n_rows)
    lp.col_cost_ = np.asarray(c, dtype=np.float64)
    lp.col_lower_ = np.asarray(col_lb, dtype=np.float64)
    lp.col_upper_ = np.asarray(col_ub, dtype=np.float64)
    lp.row_lower_ = np.asarray(row_lb, dtype=np.float64)
    lp.row_upper_ = np.asarray(row_ub, dtype=np.float64)
    lp.a_matrix_.format_ = hs.MatrixFormat.kColwise
    lp.a_matrix_.start_ = A_csc.indptr.astype(np.int64)
    lp.a_matrix_.index_ = A_csc.indices.astype(np.int32)
    lp.a_matrix_.value_ = A_csc.data.astype(np.float64)
    h.passModel(lp)


class _RatioModel:
    """One persistent HiGHS model for a ``(cache token, B, sign)`` family.

    ``tail``/``head`` snapshot the layer columns' incidence endpoints at
    the synced ``version`` — the warm path zeroes the old entries and
    writes the new ones for exactly the flipped edges' layer copies, then
    re-solves from the standing basis.
    """

    def __init__(self, hs) -> None:
        self._hs = hs
        self.h = _new_highs(hs)
        self.version: int = -1
        self.n_cols = self.n_rows = 0
        self.n_layer = 0
        self.tail: np.ndarray | None = None
        self.head: np.ndarray | None = None

    def build(self, aux, cost_sign: int, cons: sp.csr_matrix, version: int) -> None:
        c, A_eq, b_eq, bounds = ratio_lp_arrays(aux, cost_sign, cons)
        self.h = _new_highs(self._hs)  # fresh object: drop any stale basis
        _pass_model(
            self.h,
            self._hs,
            c,
            A_eq.tocsc(),
            bounds[:, 0],
            bounds[:, 1],
            b_eq,
            b_eq,
        )
        self.n_rows, self.n_cols = A_eq.shape
        self.n_layer = int((aux.orig_eid >= 0).sum())
        self.tail = aux.graph.tail[: self.n_layer].copy()
        self.head = aux.graph.head[: self.n_layer].copy()
        self.version = version

    def apply_delta(self, aux, cols: np.ndarray) -> None:
        """Rewrite the dirty layer columns' objective + incidence entries.

        Old entries are zeroed before new ones are written so an endpoint
        that moves onto a row the column already touched is overwritten,
        not double-counted; a (degenerate) self-loop column nets to the
        same stored-zero entry the CSC build produced.
        """
        h = self.h
        g = aux.graph
        assert self.tail is not None and self.head is not None
        new_cost = g.delay[cols].astype(np.float64)
        for c_i, v in zip(cols.tolist(), new_cost.tolist()):
            h.changeColCost(c_i, v)
        old_t = self.tail[cols]
        old_h = self.head[cols]
        new_t = g.tail[cols]
        new_h = g.head[cols]
        for c_i, ot, oh, nt, nh in zip(
            cols.tolist(),
            old_t.tolist(),
            old_h.tolist(),
            new_t.tolist(),
            new_h.tolist(),
        ):
            h.changeCoeff(ot, c_i, 0.0)
            h.changeCoeff(oh, c_i, 0.0)
            if nt == nh:
                h.changeCoeff(nt, c_i, 0.0)
            else:
                h.changeCoeff(nt, c_i, 1.0)
                h.changeCoeff(nh, c_i, -1.0)
        self.tail[cols] = new_t
        self.head[cols] = new_h


class _FlowModel:
    """Persistent HiGHS model for one flow-LP structure signature.

    The incidence pattern (tails/heads) is part of the family key, so a
    warm hit only ever needs value deltas: objective costs, the delay
    row's coefficients, and the budget bound.
    """

    def __init__(self, hs) -> None:
        self._hs = hs
        self.h = _new_highs(hs)
        self.cost: np.ndarray | None = None
        self.delay: np.ndarray | None = None
        self.bound: float | None = None
        self.n = 0

    def build(self, g, s: int, t: int, k: int, delay_bound: int) -> None:
        from repro.lp.flow_lp import incidence_matrix  # late: import cycle

        A_eq = incidence_matrix(g)
        delay_row = sp.csr_matrix(g.delay.astype(np.float64)[None, :])
        A = sp.vstack([A_eq, delay_row], format="csc")
        b_eq = np.zeros(g.n)
        b_eq[s] += k
        b_eq[t] -= k
        row_lb = np.concatenate([b_eq, [-np.inf]])
        row_ub = np.concatenate([b_eq, [float(delay_bound)]])
        self.h = _new_highs(self._hs)
        self.h.setOptionValue("solver", "simplex")
        _pass_model(
            self.h,
            self._hs,
            g.cost.astype(np.float64),
            A,
            np.zeros(g.m),
            np.ones(g.m),
            row_lb,
            row_ub,
        )
        self.cost = g.cost.astype(np.float64)
        self.delay = g.delay.astype(np.float64)
        self.bound = float(delay_bound)
        self.n = g.n

    def apply_delta(self, g, delay_bound: int) -> None:
        h = self.h
        assert self.cost is not None and self.delay is not None
        new_cost = g.cost.astype(np.float64)
        for c_i in np.nonzero(new_cost != self.cost)[0].tolist():
            h.changeColCost(c_i, float(new_cost[c_i]))
        new_delay = g.delay.astype(np.float64)
        for c_i in np.nonzero(new_delay != self.delay)[0].tolist():
            h.changeCoeff(self.n, c_i, float(new_delay[c_i]))
        if float(delay_bound) != self.bound:
            h.changeRowBounds(self.n, -np.inf, float(delay_bound))
        self.cost = new_cost
        self.delay = new_delay
        self.bound = float(delay_bound)


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


@dataclass
class _ModelStore:
    """LRU of persistent warm-start models (insertion-ordered dict)."""

    cap: int = MAX_MODELS
    models: dict = field(default_factory=dict)

    def get(self, key):
        m = self.models.pop(key, None)
        if m is not None:
            self.models[key] = m
        return m

    def put(self, key, model) -> None:
        self.models.pop(key, None)
        self.models[key] = model
        while len(self.models) > self.cap:
            self.models.pop(next(iter(self.models)))


class LPEngine:
    """Warm-started LP solving for every LP family in the pipeline.

    One engine lives per process (see :func:`get_engine`); its model
    store is what lets warm bases survive the doubling schedule, the
    cancellation loop, and online ``resolve`` sessions — all of which
    funnel through the same call sites. The engine is deliberately
    **unpicklable state-free**: pickling (spawn-context worker pools)
    keeps only the backend choice, so HiGHS handles never cross a
    process boundary (see ``tests/test_lp_engine.py``).
    """

    def __init__(self, backend: str | None = None) -> None:
        self._backend = backend or default_backend_name()
        self._store = _ModelStore()
        self._assembly = _AssemblyCache()

    @property
    def backend_name(self) -> str:
        """The resolved backend: ``"scipy"`` or ``"highspy"``."""
        return self._backend

    def reset(self) -> None:
        """Drop every persistent model and cached assembly (tests)."""
        self._store = _ModelStore()
        self._assembly = _AssemblyCache()

    # -- spawn safety -------------------------------------------------------

    def __getstate__(self):
        # HiGHS models must never cross a process boundary; a worker
        # warms its own engine. Only the backend choice survives.
        return {"backend": self._backend}

    def __setstate__(self, state):
        self.__init__(backend=state.get("backend"))

    # -- bookkeeping --------------------------------------------------------

    def _count_solve(self, res: LPResult) -> None:
        obs.inc(f"lp.backend.{res.backend}.solves")
        count_pivots(res)

    def _conservation(self, graph, version: int | None) -> sp.csr_matrix:
        from repro.lp.flow_lp import incidence_matrix  # late: import cycle

        if version is None:
            # No version to invalidate on — and DiGraph arrays mutate in
            # place under a stable object identity (flips, churn), so an
            # identity-keyed entry could go silently stale. Build fresh,
            # exactly as the pre-engine call sites did.
            return incidence_matrix(graph)
        return self._assembly.get(
            graph, version, lambda: incidence_matrix(graph)
        )

    # -- ratio LP -----------------------------------------------------------

    def solve_ratio(
        self, aux, cost_sign: int, options: dict | None = None
    ) -> LPResult:
        """Min-ratio circulation LP over ``aux`` for one wrap sign.

        Warm path: when ``aux`` carries a warm handle (served by
        :class:`repro.perf.auxcache.AuxCache`) and the highspy backend is
        active, the persistent model of its ``(token, B, sign)`` family
        is value-patched over the flips it missed and re-solved from the
        standing basis.
        """
        warm = getattr(aux, "warm", None)
        version = warm.version() if warm is not None else None
        with obs.span("lp.ratio_lp"):
            if self._backend == "highspy":
                res = self._solve_ratio_highspy(aux, cost_sign, options, warm)
            else:
                cons = self._conservation(aux.graph, version)
                c, A_eq, b_eq, bounds = ratio_lp_arrays(aux, cost_sign, cons)
                res = _scipy_result(
                    scipy.optimize.linprog(
                        c=c,
                        A_eq=A_eq,
                        b_eq=b_eq,
                        bounds=bounds,
                        method="highs",
                        options=options or {},
                    )
                )
        self._count_solve(res)
        return res

    def _solve_ratio_highspy(
        self, aux, cost_sign: int, options: dict | None, warm
    ) -> LPResult:
        hs = _highspy_mod
        key = ("ratio", warm.token(), aux.B, cost_sign) if warm is not None else None
        model = self._store.get(key) if key is not None else None
        warm_used = False
        if model is not None:
            try:
                warm_used = self._try_ratio_delta(model, aux, warm)
            except Exception:  # noqa: BLE001 — degrade to a cold rebuild
                obs.inc("lp.warm_start.error")
                model = None
        if model is None or not warm_used:
            model = _RatioModel(hs)
            version = warm.version() if warm is not None else -1
            cons = self._conservation(
                aux.graph, version if warm is not None else None
            )
            model.build(aux, cost_sign, cons, version)
            if key is not None:
                self._store.put(key, model)
        obs.inc("lp.warm_start.hit" if warm_used else "lp.warm_start.miss")
        status, success, x, fun, nit, duals = _run_highs(model.h, hs, options)
        if warm is not None:
            model.version = warm.version()
        return LPResult(
            status=status,
            success=success,
            x=x,
            fun=fun,
            nit=nit,
            message=f"highspy model status {status}",
            backend="highspy",
            warm=warm_used,
        )

    def _try_ratio_delta(self, model: _RatioModel, aux, warm) -> bool:
        """Patch ``model`` up to the aux graph's version; False → rebuild."""
        if warm is None:
            return False
        if model.n_cols != aux.graph.m or model.n_rows != aux.graph.n + 1:
            return False
        layout = warm.layout()
        if layout is None:
            return False
        counts, seg_starts = layout
        version = warm.version()
        if model.version == version:
            return True
        dirty = warm.dirty_since(model.version)
        if dirty is None:
            return False
        active = dirty[counts[dirty] > 0]
        if len(active):
            cnt = counts[active]
            starts = np.repeat(seg_starts[active], cnt)
            offs = np.arange(int(cnt.sum()), dtype=np.int64) - np.repeat(
                np.concatenate([[0], np.cumsum(cnt[:-1])]), cnt
            )
            cols = starts + offs
            model.apply_delta(aux, cols)
        model.version = version
        return True

    # -- flow LP ------------------------------------------------------------

    def solve_flow(
        self, g, s: int, t: int, k: int, delay_bound: int, options: dict | None = None
    ) -> LPResult:
        """Delay-budgeted fractional k-flow LP (phase-1 relaxation).

        Warm families are keyed by the incidence structure digest plus
        ``(s, t, k)``, so online re-solves of a reweighted instance reuse
        the standing basis while any structural churn (edge add/remove)
        rotates the key and starts cold.
        """
        with obs.span("lp.flow_lp"):
            if self._backend == "highspy":
                res = self._solve_flow_highspy(g, s, t, k, delay_bound, options)
            else:
                A_eq = self._conservation(g, None)
                b_eq = np.zeros(g.n)
                b_eq[s] += k
                b_eq[t] -= k
                res = _scipy_result(
                    scipy.optimize.linprog(
                        c=g.cost.astype(np.float64),
                        A_ub=sp.csr_matrix(g.delay.astype(np.float64)[None, :]),
                        b_ub=np.array([float(delay_bound)]),
                        A_eq=A_eq,
                        b_eq=b_eq,
                        bounds=(0.0, 1.0),
                        method="highs-ds",
                        options=options or {},
                    )
                )
        self._count_solve(res)
        return res

    def _solve_flow_highspy(
        self, g, s, t, k, delay_bound, options: dict | None
    ) -> LPResult:
        hs = _highspy_mod
        key = ("flow", g.n, g.m, s, t, k, _graph_digest(g.tail, g.head))
        model = self._store.get(key)
        warm_used = False
        if model is not None:
            try:
                model.apply_delta(g, delay_bound)
                warm_used = True
            except Exception:  # noqa: BLE001 — degrade to a cold rebuild
                obs.inc("lp.warm_start.error")
                model = None
        if model is None:
            model = _FlowModel(hs)
            model.build(g, s, t, k, delay_bound)
            self._store.put(key, model)
        obs.inc("lp.warm_start.hit" if warm_used else "lp.warm_start.miss")
        status, success, x, fun, nit, duals = _run_highs(model.h, hs, options)
        marginals = None
        if duals is not None and len(duals) == g.n + 1:
            marginals = duals[-1:].copy()
        return LPResult(
            status=status,
            success=success,
            x=x,
            fun=fun,
            nit=nit,
            message=f"highspy model status {status}",
            ineq_marginals=marginals,
            backend="highspy",
            warm=warm_used,
        )

    # -- LP (6), paper-literal ----------------------------------------------

    def solve_lp6(self, aux, delta_d: int) -> LPResult:
        """The paper's LP (6) on one anchored aux graph (one-shot).

        The paper-literal finder builds a distinct ``(v, B, sign)`` graph
        per solve, so there is no delta to exploit — each solve uses a
        fresh model on either backend (still counted per backend).
        """
        from repro.core.auxlp import MASS_CAP  # late: avoid an import cycle

        h = aux.graph
        with obs.span("lp.lp6"):
            if self._backend == "highspy":
                hs = _highspy_mod
                A = sp.vstack(
                    [
                        self._conservation(h, None),
                        sp.csr_matrix(h.delay.astype(np.float64)[None, :]),
                    ],
                    format="csc",
                )
                row_lb = np.concatenate([np.zeros(h.n), [-np.inf]])
                row_ub = np.concatenate([np.zeros(h.n), [float(delta_d)]])
                model = _new_highs(hs)
                _pass_model(
                    model,
                    hs,
                    h.cost.astype(np.float64),
                    A,
                    np.zeros(h.m),
                    np.full(h.m, MASS_CAP),
                    row_lb,
                    row_ub,
                )
                # Always cold (see docstring) — but still one warm-account
                # entry per highspy solve, so the validate_trace balance
                # hit + miss == backend.highspy.solves stays exact.
                obs.inc("lp.warm_start.miss")
                status, success, x, fun, nit, _ = _run_highs(model, hs, None)
                res = LPResult(
                    status=status,
                    success=success,
                    x=x,
                    fun=fun,
                    nit=nit,
                    message=f"highspy model status {status}",
                    backend="highspy",
                )
            else:
                res = _scipy_result(
                    scipy.optimize.linprog(
                        c=h.cost.astype(np.float64),
                        A_ub=sp.csr_matrix(h.delay.astype(np.float64)[None, :]),
                        b_ub=np.array([float(delta_d)]),
                        A_eq=self._conservation(h, None),
                        b_eq=np.zeros(h.n),
                        bounds=(0.0, MASS_CAP),
                        method="highs",
                    )
                )
        self._count_solve(res)
        return res


# ---------------------------------------------------------------------------
# the process-global engine
# ---------------------------------------------------------------------------

_engine: LPEngine | None = None


def get_engine() -> LPEngine:
    """The process-global engine (created lazily; spawn workers get their
    own on first LP solve)."""
    global _engine
    if _engine is None:
        _engine = LPEngine()
    return _engine


def reset_engine() -> None:
    """Discard the global engine (tests and backend switches)."""
    global _engine
    _engine = None


class force_backend:
    """Scope a backend choice: ``with force_backend("scipy"): ...``.

    Swaps in a fresh engine of the requested backend and restores the
    previous engine (with its warm models intact) on exit. Used by the
    backend-differential tests and the bench gate's backend-ratio
    kernels.
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._saved: LPEngine | None = None

    def __enter__(self) -> LPEngine:
        global _engine
        self._saved = _engine
        _engine = LPEngine(backend=self._name)
        return _engine

    def __exit__(self, *exc) -> None:
        global _engine
        _engine = self._saved
