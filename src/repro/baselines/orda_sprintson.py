"""Baseline in the style of Orda–Sprintson [18] (and [12]): cycle
cancellation over a *single-criterion* residual graph.

The paper's Section 2 describes exactly how prior work differs from its
contribution: in [18]/[12] the residual graph reverses solution edges and
negates their **delay**, but sets their **cost to zero** (rather than
negating it), so residual costs stay nonnegative and a best cycle — one
minimizing cost paid per unit of delay removed — is computable in
polynomial time by minimum-ratio-cycle search. The price is accounting:
removing an expensive edge refunds nothing, which is what caps this family
of algorithms at bifactor ``(1 + 1/r, 1 + r)`` for k = 2 instead of the
paper's ``(1 + eps, 2 + eps)``.

This module implements that scheme faithfully in structure (min-sum start,
zero-cost residual, exact minimum cost/|delay| ratio cycles via Lawler's
parametric search over Bellman–Ford), generalized to any ``k``. Measured
ratios — not the literal [18] pseudocode, which the brief announcement does
not reproduce — are what experiment E4 compares.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.baselines.minsum import BaselineResult
from repro.core.instance import KRSPInstance
from repro.core.residual import apply_residual_cycles, build_residual
from repro.errors import InfeasibleInstanceError, IterationLimitError
from repro.flow.decompose import decompose_flow, strip_improving_cycles
from repro.flow.suurballe import suurballe_k_paths
from repro.graph.digraph import DiGraph
from repro.paths.bellman_ford import find_negative_cycle


def min_cost_per_delay_cycle(
    g: DiGraph,
    cost: np.ndarray,
    delay: np.ndarray,
) -> list[int] | None:
    """Cycle minimizing ``cost(O) / -delay(O)`` among negative-delay cycles.

    ``cost`` must be nonnegative. Lawler's parametric search: a cycle with
    ``cost + mu * delay < 0`` exists iff some negative-delay cycle has
    ratio ``< mu``; binary-search ``mu`` on the exact rational grid of
    candidate ratios via repeated Bellman–Ford probes. Returns ``None``
    when no negative-delay cycle exists.
    """
    probe = find_negative_cycle(g, weight=delay)
    if probe is None:
        return None
    # Ratio values are fractions p/q with p <= sum(cost), q <= sum(|delay|);
    # binary search mu until the witness cycle's own ratio certifies
    # optimality (standard Lawler termination: search interval < 1/q^2).
    best = probe
    lo = Fraction(0)
    hi_q = int(np.abs(delay).sum()) or 1
    hi = Fraction(int(cost.sum()) + 1)
    # Invariant: a negative-delay cycle with ratio < hi exists (namely best);
    # none with ratio < lo exists.
    while hi - lo > Fraction(1, hi_q * hi_q):
        mid = (lo + hi) / 2
        w = cost * mid.denominator + delay * mid.numerator
        cyc = find_negative_cycle(g, weight=w)
        if cyc is None:
            lo = mid
        else:
            c, d = int(cost[cyc].sum()), int(delay[cyc].sum())
            if d >= 0:
                # cost+mu*delay < 0 with d >= 0 forces c < 0 — impossible
                # for nonnegative cost; defensive.
                lo = mid
                continue
            best = cyc
            hi = Fraction(c, -d)
    return best


def orda_sprintson_baseline(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    max_iterations: int = 10_000,
) -> BaselineResult:
    """Run the zero-cost-residual cancellation scheme to delay feasibility.

    Raises :class:`InfeasibleInstanceError` when no ``k`` disjoint paths
    meet the budget (no negative-delay cycle remains while infeasible —
    the same Lemma 9 argument applies, since delays are genuinely negated).
    """
    inst = KRSPInstance(graph=g, s=s, t=t, k=k, delay_bound=delay_bound)
    paths = suurballe_k_paths(g, s, t, k)
    if paths is None:
        raise InfeasibleInstanceError(f"fewer than k={k} disjoint paths exist")
    sol = inst.path_set(paths)

    iters = 0
    while sol.delay > delay_bound:
        if iters >= max_iterations:
            raise IterationLimitError("orda-sprintson-style loop exceeded cap")
        residual = build_residual(g, sol.edge_ids)
        res_g = residual.graph
        # Single-criterion residual: reversed edges keep negated delay but
        # contribute zero cost (the [18]/[12] accounting).
        os_cost = np.where(residual.reversed_mask, 0, res_g.cost).astype(np.int64)
        cyc = min_cost_per_delay_cycle(res_g, os_cost, res_g.delay)
        if cyc is None:
            raise InfeasibleInstanceError(
                "delay bound unreachable: no negative-delay cycle remains"
            )
        new_edges = apply_residual_cycles(sol.edge_ids, residual, [cyc])
        new_paths, cycles_left = decompose_flow(g, new_edges, s, t)
        strip_improving_cycles(g, new_paths, cycles_left)
        sol = inst.path_set(new_paths)
        iters += 1

    return BaselineResult(
        name="orda_sprintson_style",
        paths=[list(p) for p in sol.paths],
        cost=sol.cost,
        delay=sol.delay,
        meets_delay_bound=True,
    )
