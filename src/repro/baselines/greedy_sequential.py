"""Baseline: greedy sequential RSP — the folklore multipath heuristic.

Route ``k`` paths one at a time: give each round an equal share of the
remaining delay budget, solve a *single*-path exact RSP (pseudo-polynomial
DP), remove the used edges, repeat. If a round fails on the fair share,
retry with the whole remaining budget before giving up.

No worst-case guarantee — sequential routing can paint itself into a
corner that joint optimization avoids (the classic trap instances appear in
the test suite) — but it is what a practitioner would try first, which
makes it the honest fourth column of experiment E4.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.minsum import BaselineResult
from repro.errors import InfeasibleInstanceError
from repro.graph.digraph import DiGraph
from repro.paths.rsp_exact import rsp_exact


def greedy_sequential_baseline(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
) -> BaselineResult:
    """Greedy k-round RSP with fair-share budgets.

    Raises :class:`InfeasibleInstanceError` when some round finds no path
    within the remaining budget — which does **not** prove the instance
    infeasible (``meets_delay_bound`` semantics don't apply; the failure is
    the data point).
    """
    remaining_budget = int(delay_bound)
    alive = np.ones(g.m, dtype=bool)
    chosen: list[list[int]] = []
    for round_no in range(k):
        sub_eids = np.nonzero(alive)[0]
        sub = g.subgraph_edges(sub_eids)
        rounds_left = k - round_no
        fair_share = remaining_budget // rounds_left
        hit = rsp_exact(sub, s, t, fair_share)
        if hit is None and fair_share < remaining_budget:
            hit = rsp_exact(sub, s, t, remaining_budget)
        if hit is None:
            raise InfeasibleInstanceError(
                f"greedy round {round_no + 1}/{k} found no path within "
                f"budget {remaining_budget}"
            )
        _, sub_path = hit
        path = [int(sub_eids[e]) for e in sub_path]
        chosen.append(path)
        remaining_budget -= g.delay_of(path)
        alive[np.asarray(path, dtype=np.int64)] = False

    flat = [e for p in chosen for e in p]
    delay = g.delay_of(flat)
    return BaselineResult(
        name="greedy_sequential",
        paths=chosen,
        cost=g.cost_of(flat),
        delay=delay,
        meets_delay_bound=delay <= delay_bound,
    )
